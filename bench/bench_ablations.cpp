// Ablations over the design choices DESIGN.md calls out (Sec. 4.2–4.5):
// the noise mixture, partial supervision, candidacy vectors, the
// supervision boost Λ, the noise priors ρ, and Gibbs-EM refitting of
// (α, β). Each row reports hidden-user ACC@100 on the same fold.

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/string_util.h"

#include "bench/bench_util.h"
#include "core/model.h"
#include "eval/metrics.h"
#include "io/table_printer.h"

int main() {
  using namespace mlp;
  synth::WorldConfig world_config = bench::BenchWorldConfig();
  // Ablations run many fits; a somewhat smaller world keeps this bench
  // fast while preserving every effect.
  if (world_config.num_users > 2500) world_config.num_users = 2500;
  bench::BenchContext context(world_config);
  bench::PrintHeader("Ablations: MLP design choices",
                     "noise mixture (4.2), supervision & candidacy (4.3), "
                     "Gibbs-EM (4.5)",
                     context);

  core::ModelInput input = context.MakeInput(0);
  std::vector<graph::UserId> test_users = context.TestUsers(0);
  auto acc_of = [&](const core::MlpConfig& config,
                    const core::ModelInput& in) {
    core::MlpModel model(config);
    Result<core::MlpResult> result = model.Fit(in);
    MLP_CHECK(result.ok());
    return eval::AccuracyWithin(result->home, context.registered(),
                                test_users, *context.world().distances,
                                100.0);
  };

  core::MlpConfig reference = bench::BenchMlpConfig();
  io::TablePrinter table({"variant", "ACC@100", "delta vs full"});
  double full = acc_of(reference, input);
  auto row = [&](const std::string& name, double acc) {
    table.AddRow({name, StringPrintf("%.3f", acc),
                  StringPrintf("%+.3f", acc - full)});
  };
  row("full MLP (reference)", full);

  {
    core::MlpConfig c = reference;
    c.model_noise = false;
    row("no noise mixture (mu=nu=0)", acc_of(c, input));
  }
  {
    core::MlpConfig c = reference;
    c.use_supervision = false;
    row("no supervision (unsupervised, Sec 4.3)", acc_of(c, input));
  }
  {
    // Candidacy-off explodes the blocked following update (|L|^2 per
    // edge), so the ablation runs on the tweeting-only variant where the
    // update stays O(|L|) — the efficiency point the paper makes is
    // exactly that candidacy makes the full model tractable.
    core::MlpConfig with = reference;
    with.source = core::ObservationSource::kTweetingOnly;
    core::MlpConfig without = with;
    without.use_candidacy = false;
    row("MLP_C with candidacy", acc_of(with, input));
    row("MLP_C without candidacy (all L)", acc_of(without, input));
  }
  for (double boost : {5.0, 200.0}) {
    core::MlpConfig c = reference;
    c.supervision_boost = boost;
    row(StringPrintf("supervision boost = %.0f", boost), acc_of(c, input));
  }
  for (double rho : {0.05, 0.4}) {
    core::MlpConfig c = reference;
    c.rho_f = rho;
    c.rho_t = rho;
    row(StringPrintf("rho_f = rho_t = %.2f", rho), acc_of(c, input));
  }
  {
    core::MlpConfig c = reference;
    c.gibbs_em_rounds = 2;
    row("Gibbs-EM refit of (alpha, beta), 2 rounds", acc_of(c, input));
  }
  {
    core::MlpConfig c = reference;
    c.fit_power_law_from_data = false;  // paper's Twitter constants
    row("fixed alpha=-0.55, beta=0.0045 (no refit)", acc_of(c, input));
  }
  table.Print();

  std::printf(
      "\nexpected directions: removing the noise mixture or supervision "
      "hurts;\ncandidacy buys both accuracy and tractability.\n"
      "note: Gibbs-EM drifts alpha steeper than the generator's truth on "
      "this\nsubstrate (assignments over-concentrate at short distances); "
      "the refit is\ndamped and OFF by default — see DESIGN.md.\n");
  return 0;
}
