// Adaptive candidate pruning end to end (ISSUE 3 / ROADMAP "candidate-set
// pruning"): runs the full sweep program twice on the paper-calibrated
// power-law world — once with pruning off (the exact pre-pruning chain)
// and once with the default floor — and reports
//   - end-to-end sweep-loop wall time and the speedup,
//   - the surviving active-candidate fraction,
//   - Table-2 home-prediction accuracy (ACC@100 / ACC@20 on held-out
//     users) for both runs and their delta (the "AAD delta" at the Fig-4
//     100/20-mile points).
// Results are also written as machine-readable BENCH_pruning.json so CI
// can archive the perf trajectory PR-over-PR.
//
// Env overrides: MLP_BENCH_PRUNE_USERS (default 4000), MLP_BENCH_SEED,
// MLP_BENCH_PRUNE_FLOOR (default eval::kDefaultPruneFloor),
// MLP_BENCH_PRUNE_PATIENCE (default 3), MLP_BENCH_JSON_DIR (default ".").

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/candidate_space.h"
#include "core/pow_table.h"
#include "core/random_models.h"
#include "core/sampler.h"
#include "engine/parallel_gibbs.h"
#include "eval/cross_validation.h"
#include "eval/methods.h"
#include "eval/metrics.h"
#include "io/table_printer.h"
#include "synth/world_generator.h"

namespace {

using namespace mlp;

long long EnvOr(const char* name, long long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoll(value) : fallback;
}

double EnvOrDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

struct RunOutcome {
  double sweep_seconds = 0.0;      // sweep-loop wall time, whole program
  double active_fraction = 1.0;    // after the final barrier
  uint64_t layout_version = 0;
  int64_t deactivated = 0;
  double acc100 = 0.0;
  double acc20 = 0.0;
};

// Drives the same burn-in + sampling program core::MlpModel::Fit runs
// (without Gibbs-EM), through the engine so the pruning barrier is live,
// and times ONLY the sweep loop — world generation and scoring excluded.
RunOutcome RunProgram(const core::ModelInput& input,
                      const core::MlpConfig& config,
                      const std::vector<geo::CityId>& registered,
                      const std::vector<graph::UserId>& test_users,
                      const geo::CityDistanceMatrix& distances) {
  core::CandidateSpace space = core::CandidateSpace::Build(input, config);
  core::RandomModels random_models = core::RandomModels::Learn(*input.graph);
  core::PowTable pow_table(input.distances, config.alpha,
                           config.distance_floor_miles);
  core::GibbsSampler sampler(&input, &config, &space, &random_models,
                             &pow_table);
  engine::ParallelGibbsEngine engine(&sampler, &input, &config, &space);
  Pcg32 rng(config.seed, 0x5bd1e995u);
  engine.Initialize(&rng);

  auto start = std::chrono::steady_clock::now();
  int sweep = 0;
  for (int it = 0; it < config.burn_in_iterations; ++it) {
    engine.RunSweep(&rng);
    engine.MaybePrune(++sweep);
  }
  engine.Synchronize();
  sampler.ResetAccumulators();
  for (int it = 0; it < config.sampling_iterations; ++it) {
    engine.RunSweep(&rng);
    engine.Synchronize();
    sampler.AccumulateSample();
    ++sweep;
  }
  RunOutcome outcome;
  outcome.sweep_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  outcome.active_fraction = space.ActiveFraction();
  outcome.layout_version = space.layout_version();
  for (const core::PruneEvent& event : space.history()) {
    outcome.deactivated += event.deactivated;
  }

  core::MlpResult result = sampler.BuildResult();
  outcome.acc100 = eval::AccuracyWithin(result.home, registered, test_users,
                                        distances, 100.0);
  outcome.acc20 = eval::AccuracyWithin(result.home, registered, test_users,
                                       distances, 20.0);
  return outcome;
}

}  // namespace

int main() {
  synth::WorldConfig world_config = bench::BenchWorldConfig();
  world_config.num_users = static_cast<int>(
      EnvOr("MLP_BENCH_PRUNE_USERS", world_config.num_users));

  std::printf("generating %d-user power-law world...\n",
              world_config.num_users);
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(world_config);
  if (!world.ok()) {
    std::fprintf(stderr, "world generation failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }

  std::vector<std::vector<geo::CityId>> referents =
      world->vocab->ReferentTable();
  std::vector<geo::CityId> registered = eval::RegisteredHomes(*world->graph);
  eval::FoldAssignment folds = eval::MakeKFolds(registered, 5, 17);

  core::ModelInput input;
  input.gazetteer = world->gazetteer.get();
  input.graph = world->graph.get();
  input.distances = world->distances.get();
  input.venue_referents = &referents;
  input.observed_home = folds.MaskedHomes(registered, 0);
  std::vector<graph::UserId> test_users = folds.TestUsers(0);

  core::MlpConfig config = bench::BenchMlpConfig();
  const double floor =
      EnvOrDouble("MLP_BENCH_PRUNE_FLOOR", eval::kDefaultPruneFloor);
  const int patience =
      static_cast<int>(EnvOr("MLP_BENCH_PRUNE_PATIENCE", 3));

  std::printf("%d users, %d following, %d tweeting; floor=%g patience=%d\n",
              input.graph->num_users(), input.graph->num_following(),
              input.graph->num_tweeting(), floor, patience);

  core::MlpConfig base_config = config;
  base_config.prune_floor = 0.0;
  RunOutcome base =
      RunProgram(input, base_config, registered, test_users,
                 *world->distances);

  core::MlpConfig pruned_config = config;
  pruned_config.prune_floor = floor;
  pruned_config.prune_patience = patience;
  RunOutcome pruned =
      RunProgram(input, pruned_config, registered, test_users,
                 *world->distances);

  const double speedup =
      pruned.sweep_seconds > 0.0 ? base.sweep_seconds / pruned.sweep_seconds
                                 : 0.0;
  const double delta100 = (pruned.acc100 - base.acc100) * 100.0;
  const double delta20 = (pruned.acc20 - base.acc20) * 100.0;

  io::TablePrinter table(
      {"run", "sweep time s", "active frac", "ACC@100", "ACC@20"});
  table.AddRow({"no_prune", StringPrintf("%.2f", base.sweep_seconds),
                StringPrintf("%.3f", base.active_fraction),
                StringPrintf("%.2f%%", base.acc100 * 100.0),
                StringPrintf("%.2f%%", base.acc20 * 100.0)});
  table.AddRow({StringPrintf("floor=%g", floor),
                StringPrintf("%.2f", pruned.sweep_seconds),
                StringPrintf("%.3f", pruned.active_fraction),
                StringPrintf("%.2f%%", pruned.acc100 * 100.0),
                StringPrintf("%.2f%%", pruned.acc20 * 100.0)});
  table.Print();
  std::printf(
      "speedup %.2fx, %lld candidates deactivated over %llu compactions, "
      "AAD delta %.2f%% @100mi / %.2f%% @20mi\n",
      speedup, static_cast<long long>(pruned.deactivated),
      static_cast<unsigned long long>(pruned.layout_version), delta100,
      delta20);

  bench::BenchJson json;
  json.Set("bench", std::string("candidate_pruning"));
  json.Set("users", static_cast<int64_t>(input.graph->num_users()));
  json.Set("following", static_cast<int64_t>(input.graph->num_following()));
  json.Set("tweeting", static_cast<int64_t>(input.graph->num_tweeting()));
  json.Set("seed", static_cast<int64_t>(world_config.seed));
  json.Set("prune_floor", floor);
  json.Set("prune_patience", static_cast<int64_t>(patience));
  json.Set("sweep_seconds_base", base.sweep_seconds);
  json.Set("sweep_seconds_pruned", pruned.sweep_seconds);
  json.Set("speedup", speedup);
  json.Set("active_fraction", pruned.active_fraction);
  json.Set("deactivated", pruned.deactivated);
  json.Set("compactions", static_cast<int64_t>(pruned.layout_version));
  json.Set("acc100_base_pct", base.acc100 * 100.0);
  json.Set("acc100_pruned_pct", pruned.acc100 * 100.0);
  json.Set("acc20_base_pct", base.acc20 * 100.0);
  json.Set("acc20_pruned_pct", pruned.acc20 * 100.0);
  json.Set("aad_delta_100mi_pct", delta100);
  json.Set("aad_delta_20mi_pct", delta20);
  json.WriteTo(bench::BenchJsonPath("BENCH_pruning.json"));
  return 0;
}
