// Section 5 "Data Collection" statistics audit: the synthetic world must
// match the crawl's reported shape — 14.8 friends, 14.9 followers and 29.0
// tweeted venues per user; ~92% of users' locations appear among their
// relationships (Sec. 4.3); registered locations parse via the rules of
// [8].

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

#include "bench/bench_util.h"
#include "graph/graph_stats.h"
#include "io/table_printer.h"

int main() {
  using namespace mlp;
  bench::BenchContext context(bench::BenchWorldConfig());
  bench::PrintHeader("Data statistics audit",
                     "14.8 friends / 14.9 followers / 29.0 venues per user; "
                     "92% neighbor coverage",
                     context);

  const auto& world = context.world();
  graph::GraphStats stats = graph::ComputeGraphStats(*world.graph);
  auto referents = world.vocab->ReferentTable();
  double coverage = graph::NeighborLocationCoverage(*world.graph, referents);

  int noisy_f = 0;
  for (const synth::FollowingTruth& t : world.truth.following) {
    noisy_f += t.noisy;
  }
  int noisy_t = 0;
  for (const synth::TweetingTruth& t : world.truth.tweeting) {
    noisy_t += t.noisy;
  }
  int same_city = 0, location_based = 0;
  for (const synth::FollowingTruth& t : world.truth.following) {
    if (t.noisy) continue;
    ++location_based;
    if (t.x == t.y) ++same_city;
  }
  int multi = 0;
  double multi_locs = 0.0;
  for (const synth::TrueProfile& p : world.truth.profiles) {
    if (p.IsMultiLocation()) {
      ++multi;
      multi_locs += static_cast<double>(p.locations.size());
    }
  }

  io::TablePrinter table({"statistic", "measured", "paper/target"});
  table.AddRow({"avg friends per user",
                StringPrintf("%.1f", stats.avg_friends_per_user), "14.8"});
  table.AddRow({"avg followers per user",
                StringPrintf("%.1f", stats.avg_followers_per_user), "14.9"});
  table.AddRow({"avg tweeted venues per user",
                StringPrintf("%.1f", stats.avg_venues_per_user), "29.0"});
  table.AddRow({"labeled fraction",
                StringPrintf("%.2f", stats.labeled_fraction),
                "~0.86 (parseable city, state)"});
  table.AddRow({"neighbor location coverage", StringPrintf("%.2f", coverage),
                "0.92 (Sec. 4.3)"});
  table.AddRow({"noisy following fraction",
                StringPrintf("%.2f", noisy_f /
                                        std::max(1.0, double(world.truth
                                                                 .following
                                                                 .size()))),
                StringPrintf("%.2f (config)",
                             world.config.following_noise_fraction)});
  table.AddRow({"noisy tweeting fraction",
                StringPrintf("%.2f", noisy_t /
                                        std::max(1.0, double(world.truth
                                                                 .tweeting
                                                                 .size()))),
                StringPrintf("%.2f (config)",
                             world.config.tweeting_noise_fraction)});
  table.AddRow({"same-city share of location edges",
                StringPrintf("%.2f", same_city /
                                        std::max(1.0,
                                                 double(location_based))),
                "dominant on real Twitter (finite-size boost)"});
  table.AddRow({"multi-location user fraction",
                StringPrintf("%.2f", multi / double(stats.num_users)),
                StringPrintf("%.2f (config)",
                             world.config.multi_location_fraction)});
  table.AddRow({"avg locations of multi-loc users",
                StringPrintf("%.2f", multi > 0 ? multi_locs / multi : 0.0),
                "2.0 (585 labeled users, Sec. 5.2)"});
  table.Print();

  bool ok = std::abs(stats.avg_friends_per_user - 14.8) < 1.5 &&
            std::abs(stats.avg_venues_per_user - 29.0) < 2.0 &&
            coverage > 0.85;
  std::printf("\nshape check (degrees and coverage near paper): %s\n",
              ok ? "HOLDS" : "VIOLATED");
  return 0;
}
