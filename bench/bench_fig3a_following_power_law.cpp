// Figure 3(a): following probability versus distance, with the power-law
// fit. The paper buckets all labeled user pairs at 1-mile granularity,
// takes the per-bucket edge/pair ratio, and fits β·d^α in log-log space,
// obtaining α = -0.55, β = 0.0045 on its Twitter crawl.

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

#include "bench/bench_util.h"
#include "core/pair_distance.h"
#include "io/table_printer.h"

int main() {
  using namespace mlp;
  bench::BenchContext context(bench::BenchWorldConfig());
  bench::PrintHeader("Figure 3(a): following probabilities vs distance",
                     "power law; alpha=-0.55, beta=0.0045 (Sec. 4.1)",
                     context);

  const auto& world = context.world();
  std::vector<double> pairs = core::PairDistanceHistogram(
      context.registered(), *world.distances, 1.0, 3000);
  std::vector<double> edges = core::EdgeDistanceHistogram(
      *world.graph, context.registered(), *world.distances, 1.0, 3000);

  io::TablePrinter table({"distance(mi)", "pairs", "edges", "P(follow|d)"});
  for (int d : {1, 2, 5, 10, 20, 50, 100, 200, 400, 800, 1500, 2500}) {
    // Aggregate a neighborhood of buckets around d for readable output.
    int lo = d, hi = d + std::max(1, d / 5);
    double p = 0.0, e = 0.0;
    for (int b = lo; b < hi && b < 3000; ++b) {
      p += pairs[b];
      e += edges[b];
    }
    if (p <= 0.0) continue;
    table.AddRow({std::to_string(d), StringPrintf("%.0f", p),
                  StringPrintf("%.0f", e), StringPrintf("%.6f", e / p)});
  }
  table.Print();

  Result<stats::PowerLaw> fit = core::FitFollowingPowerLaw(
      *world.graph, context.registered(), *world.distances);
  if (fit.ok()) {
    std::printf(
        "\nfitted:    alpha=%.3f beta=%.5f\n"
        "generator: alpha=%.3f (true decay used to wire edges)\n"
        "paper:     alpha=-0.550 beta=0.00450 (Twitter, 2.5e10 pairs)\n",
        fit->alpha, fit->beta, world.config.following_alpha);
    std::printf(
        "\nshape check: alpha negative (probability decays with distance),\n"
        "long-range decay flatter than Facebook's alpha=-1 [5]: %s\n",
        (fit->alpha < -0.1 && fit->alpha > -1.0) ? "HOLDS" : "VIOLATED");
  } else {
    std::printf("fit failed: %s\n", fit.status().ToString().c_str());
  }
  return 0;
}
