// Figure 3(b): tweeting probabilities of the top venues for users in
// Austin and Los Angeles. The paper's observations: (1) distributions
// differ across locations, (2) nearby venues carry high probability,
// (3) far-but-popular venues still get tweeted — probability is not
// monotonic in distance.

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

#include "bench/bench_util.h"
#include "io/table_printer.h"
#include "stats/discrete.h"

int main() {
  using namespace mlp;
  bench::BenchContext context(bench::BenchWorldConfig());
  bench::PrintHeader("Figure 3(b): tweeting probabilities of venues",
                     "top-5 venues for Austin and Los Angeles (Sec. 4.1)",
                     context);

  const auto& world = context.world();
  const int num_venues = world.vocab->size();

  // Empirical venue distributions from the generated tweets, exactly how
  // the paper builds the figure (relative venue frequencies per city).
  auto empirical = [&](geo::CityId city) {
    std::vector<double> counts(num_venues, 0.0);
    for (graph::UserId u = 0; u < world.graph->num_users(); ++u) {
      if (context.registered()[u] != city) continue;
      for (graph::EdgeId k : world.graph->TweetEdges(u)) {
        counts[world.graph->tweeting(k).venue] += 1.0;
      }
    }
    stats::NormalizeInPlace(&counts);
    return counts;
  };

  for (const char* name : {"Austin", "Los Angeles"}) {
    geo::CityId city = world.gazetteer->Find(
        name, name[0] == 'A' ? "TX" : "CA");
    std::vector<double> probs = empirical(city);
    std::printf("-- users at %s --\n", world.gazetteer->FullName(city).c_str());
    io::TablePrinter table({"venue", "P(tweet venue)", "log10(P)"});
    for (int v : stats::TopK(probs, 5)) {
      table.AddRow({world.vocab->venue(v).name,
                    StringPrintf("%.4f", probs[v]),
                    StringPrintf("%.2f", std::log10(probs[v]))});
    }
    table.Print();
    std::printf("\n");
  }

  // Shape checks straight out of the paper's text.
  geo::CityId austin = world.gazetteer->Find("Austin", "TX");
  geo::CityId la = world.gazetteer->Find("Los Angeles", "CA");
  std::vector<double> at_austin = empirical(austin);
  std::vector<double> at_la = empirical(la);
  auto venue = [&](const char* n) { return *world.vocab->Find(n); };
  std::printf(
      "shape checks:\n"
      "  P(\"los angeles\" | LA) > P(\"los angeles\" | Austin): %s\n"
      "  P(\"austin\" | Austin) > P(\"hollywood\" | Austin):    %s\n"
      "  far-but-popular venue nonzero at Austin (\"new york\"): %s\n",
      at_la[venue("los angeles")] > at_austin[venue("los angeles")]
          ? "HOLDS" : "VIOLATED",
      at_austin[venue("austin")] > at_austin[venue("hollywood")]
          ? "HOLDS" : "VIOLATED",
      at_austin[venue("new york")] > 0.0 ? "HOLDS" : "VIOLATED");
  return 0;
}
