// Figure 3(c): a multi-location user's relationships split across their
// locations. The paper shows user 13069282 (Los Angeles + Austin) with
// friends and venues clustering around both regions.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace mlp;
  bench::BenchContext context(bench::BenchWorldConfig());
  bench::PrintHeader(
      "Figure 3(c): relationships as a mixture of a user's locations",
      "user 13069282's friends/venues cluster at LA and Austin (Sec. 4.2)",
      context);

  const auto& world = context.world();
  // Pick the two-location labeled user with the most relationships.
  graph::UserId best = -1;
  int best_degree = -1;
  for (graph::UserId u : context.ClearMultiLocationUsers(300.0)) {
    if (world.truth.profiles[u].locations.size() != 2) continue;
    int degree = static_cast<int>(world.graph->OutEdges(u).size() +
                                  world.graph->InEdges(u).size());
    if (degree > best_degree) {
      best_degree = degree;
      best = u;
    }
  }
  if (best < 0) {
    std::printf("no suitable user in this world\n");
    return 0;
  }

  const synth::TrueProfile& profile = world.truth.profiles[best];
  geo::CityId loc_a = profile.locations[0];
  geo::CityId loc_b = profile.locations[1];
  std::printf("user %s, true locations: %s (home, w=%.2f) and %s (w=%.2f)\n\n",
              world.graph->user(best).handle.c_str(),
              world.gazetteer->FullName(loc_a).c_str(), profile.weights[0],
              world.gazetteer->FullName(loc_b).c_str(), profile.weights[1]);

  auto region_of = [&](geo::CityId c) {
    if (c == geo::kInvalidCity) return 'n';  // unlabeled neighbor
    double da = world.distances->raw_miles(c, loc_a);
    double db = world.distances->raw_miles(c, loc_b);
    if (da <= 100.0 && da <= db) return 'A';
    if (db <= 100.0) return 'B';
    return '-';
  };

  int at_a = 0, at_b = 0, elsewhere = 0, unlabeled = 0;
  auto tally = [&](graph::UserId other) {
    switch (region_of(context.registered()[other])) {
      case 'A': ++at_a; break;
      case 'B': ++at_b; break;
      case 'n': ++unlabeled; break;
      default: ++elsewhere;
    }
  };
  for (graph::EdgeId s : world.graph->OutEdges(best)) {
    tally(world.graph->following(s).friend_user);
  }
  for (graph::EdgeId s : world.graph->InEdges(best)) {
    tally(world.graph->following(s).follower);
  }
  std::printf("neighbors within 100mi of %s: %d\n",
              world.gazetteer->FullName(loc_a).c_str(), at_a);
  std::printf("neighbors within 100mi of %s: %d\n",
              world.gazetteer->FullName(loc_b).c_str(), at_b);
  std::printf("neighbors elsewhere: %d (unlabeled: %d)\n\n", elsewhere,
              unlabeled);

  int venues_a = 0, venues_b = 0, venues_other = 0;
  for (graph::EdgeId k : world.graph->TweetEdges(best)) {
    graph::VenueId v = world.graph->tweeting(k).venue;
    char r = '-';
    for (geo::CityId ref : world.vocab->venue(v).referents) {
      char rr = region_of(ref);
      if (rr == 'A' || rr == 'B') {
        r = rr;
        break;
      }
    }
    if (r == 'A') ++venues_a;
    else if (r == 'B') ++venues_b;
    else ++venues_other;
  }
  std::printf("tweeted venues near %s: %d, near %s: %d, elsewhere: %d\n\n",
              world.gazetteer->FullName(loc_a).c_str(), venues_a,
              world.gazetteer->FullName(loc_b).c_str(), venues_b,
              venues_other);

  bool both_regions =
      (at_a + venues_a) > 0 && (at_b + venues_b) > 0;
  std::printf("shape check: relationships cluster at BOTH locations: %s\n",
              both_regions ? "HOLDS" : "VIOLATED");
  return 0;
}
