// Figure 4: accumulative accuracy at distance (AAD) curves. A point (X,Y)
// means Y of the test users are placed within X miles. Panels:
//   (a) MLP_U vs BaseU, (b) MLP_C vs BaseC, (c) all five methods.
// Paper: the MLP variants dominate their baselines at every distance;
// MLP places ~54% within 20 miles and 62% within 100.

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

#include "bench/bench_util.h"
#include "eval/metrics.h"
#include "io/table_printer.h"

int main() {
  using namespace mlp;
  bench::BenchContext context(bench::BenchWorldConfig());
  bench::PrintHeader("Figure 4: accumulative accuracy at distances",
                     "AAD curves, panels (a)/(b)/(c) (Sec. 5.1)", context);

  std::vector<double> miles;
  for (double m = 0.0; m <= 150.0; m += 10.0) miles.push_back(m);

  const int fold = 0;
  std::vector<graph::UserId> test_users = context.TestUsers(fold);
  auto curve = [&](const char* name) {
    const eval::MethodOutput& out = context.Run(name, fold);
    return eval::AccumulativeAccuracyCurve(out.home, context.registered(),
                                           test_users,
                                           *context.world().distances, miles);
  };

  const char* names[] = {"BaseU", "BaseC", "MLP_U", "MLP_C", "MLP"};
  std::vector<std::vector<double>> curves;
  for (const char* name : names) curves.push_back(curve(name));

  std::vector<std::string> header = {"miles"};
  for (const char* name : names) header.push_back(name);
  io::TablePrinter table(header);
  for (size_t i = 0; i < miles.size(); ++i) {
    std::vector<std::string> row = {StringPrintf("%.0f", miles[i])};
    for (const auto& c : curves) row.push_back(StringPrintf("%.3f", c[i]));
    table.AddRow(std::move(row));
  }
  std::printf("panel (c) — all methods (panels a/b are column subsets):\n");
  table.Print();

  // Dominance checks per panel.
  int dominate_b = 0, dominate_c = 0, points = 0;
  for (size_t i = 1; i < miles.size(); ++i) {
    ++points;
    if (curves[4][i] >= curves[0][i]) ++dominate_b;  // MLP vs BaseU
    if (curves[3][i] >= curves[1][i]) ++dominate_c;  // MLP_C vs BaseC
  }
  std::printf(
      "\nshape checks:\n"
      "  panel (b): MLP_C >= BaseC at all distances: %d/%d points\n"
      "  panel (c): MLP >= BaseU at all distances:   %d/%d points\n"
      "  curves monotone non-decreasing:             %s\n",
      dominate_c, points, dominate_b, points, [&] {
        for (const auto& c : curves) {
          for (size_t i = 1; i < c.size(); ++i) {
            if (c[i] + 1e-12 < c[i - 1]) return "VIOLATED";
          }
        }
        return "HOLDS";
      }());
  return 0;
}
