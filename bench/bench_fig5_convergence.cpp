// Figure 5: convergence of the Gibbs sampler. The paper plots the
// accuracy change per iteration and reports convergence in ~14 rounds —
// far fewer than typical LDA runs — crediting the candidacy-vector
// initialization (Sec. 5.1).

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

#include "bench/bench_util.h"
#include "core/model.h"
#include "io/table_printer.h"

int main() {
  using namespace mlp;
  bench::BenchContext context(bench::BenchWorldConfig());
  bench::PrintHeader("Figure 5: accuracy change across Gibbs iterations",
                     "converges in ~14 iterations (Sec. 5.1)", context);

  core::MlpConfig config = bench::BenchMlpConfig();
  config.burn_in_iterations = 20;  // long trace for the figure
  config.sampling_iterations = 5;
  core::MlpModel model(config);
  Result<core::MlpResult> result = model.Fit(context.MakeInput(0));
  if (!result.ok()) {
    std::printf("fit failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  const std::vector<double>& trace = result->home_change_per_sweep;
  io::TablePrinter table({"iteration", "home-estimate change", "log10"});
  for (size_t i = 0; i < trace.size(); ++i) {
    double change = std::max(trace[i], 1e-6);
    table.AddRow({std::to_string(i + 1), StringPrintf("%.4f", trace[i]),
                  StringPrintf("%.2f", std::log10(change))});
  }
  table.Print();

  // Convergence check: by iteration 14 the per-sweep change must be well
  // below the first sweeps', mirroring the paper's 1e-2..1e-4 drop.
  double early = trace.empty() ? 0.0 : trace[0];
  double at14 = trace.size() >= 14 ? trace[13] : trace.back();
  std::printf(
      "\nshape check: change at iteration 14 (%.4f) < 25%% of first "
      "iteration (%.4f): %s\n",
      at14, early, at14 < 0.25 * early ? "HOLDS" : "VIOLATED");
  return 0;
}
