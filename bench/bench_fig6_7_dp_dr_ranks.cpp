// Figures 6 and 7: DP@K and DR@K at ranks K = 1, 2, 3 for all methods.
// Paper observations: our methods beat the baselines at every K, and the
// baselines' recall barely grows with K (their extra predictions sit in
// one region), while MLP's recall climbs.

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

#include "bench/bench_util.h"
#include "eval/metrics.h"
#include "io/table_printer.h"

int main() {
  using namespace mlp;
  bench::BenchContext context(bench::BenchWorldConfig());
  bench::PrintHeader("Figures 6/7: DP and DR at ranks K=1..3",
                     "MLP dominates at every K; baseline recall is flat in K "
                     "(Sec. 5.2)",
                     context);

  const int fold = 0;
  std::vector<graph::UserId> users = context.ClearMultiLocationUsers();
  const int num_users = context.world().graph->num_users();
  std::vector<std::vector<geo::CityId>> truth(num_users);
  for (graph::UserId u : users) {
    truth[u] = context.world().truth.profiles[u].locations;
  }

  const char* names[] = {"BaseU", "BaseC", "MLP_U", "MLP_C", "MLP"};
  double dr_at[5][4];

  std::printf("Figure 6 — DP@K:\n");
  io::TablePrinter dp_table({"Method", "DP@1", "DP@2", "DP@3"});
  io::TablePrinter dr_table({"Method", "DR@1", "DR@2", "DR@3"});
  for (int m = 0; m < 5; ++m) {
    const eval::MethodOutput& out = context.Run(names[m], fold);
    std::vector<std::string> dp_row = {names[m]};
    std::vector<std::string> dr_row = {names[m]};
    for (int k = 1; k <= 3; ++k) {
      std::vector<std::vector<geo::CityId>> predicted(num_users);
      for (graph::UserId u : users) predicted[u] = out.profiles[u].TopK(k);
      eval::MultiLocationScores scores = eval::DistancePrecisionRecall(
          predicted, truth, users, *context.world().distances, 100.0);
      dp_row.push_back(StringPrintf("%.3f", scores.dp));
      dr_row.push_back(StringPrintf("%.3f", scores.dr));
      dr_at[m][k] = scores.dr;
    }
    dp_table.AddRow(std::move(dp_row));
    dr_table.AddRow(std::move(dr_row));
  }
  dp_table.Print();
  std::printf("\nFigure 7 — DR@K:\n");
  dr_table.Print();

  double mlp_gain = dr_at[4][3] - dr_at[4][1];
  double base_u_gain = dr_at[0][3] - dr_at[0][1];
  double base_c_gain = dr_at[1][3] - dr_at[1][1];
  std::printf(
      "\nshape checks:\n"
      "  MLP recall gain DR@3-DR@1 (%.3f) > BaseU gain (%.3f): %s\n"
      "  MLP recall gain (%.3f) > BaseC gain (%.3f): %s\n"
      "  MLP DR@K > both baselines at every K: %s\n",
      mlp_gain, base_u_gain, mlp_gain > base_u_gain ? "HOLDS" : "VIOLATED",
      mlp_gain, base_c_gain, mlp_gain > base_c_gain ? "HOLDS" : "VIOLATED",
      (dr_at[4][1] > std::max(dr_at[0][1], dr_at[1][1]) &&
       dr_at[4][2] > std::max(dr_at[0][2], dr_at[1][2]) &&
       dr_at[4][3] > std::max(dr_at[0][3], dr_at[1][3]))
          ? "HOLDS"
          : "VIOLATED");
  return 0;
}
