// Figure 8: relationship explanation accuracy at different distance
// thresholds. A relationship is correct iff BOTH users' location
// assignments land within m miles of the truth. Paper: MLP ≈57% at 100mi
// vs Base (home-location assignment) ≈40%; MLP's ACC@50 ≈ ACC@100.
//
// Eval set mirrors Sec. 5.3's labeling: location-based relationships of
// multi-location users whose true assignments share a region.

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

#include "bench/bench_util.h"
#include "baselines/home_explainer.h"
#include "core/model.h"
#include "eval/metrics.h"
#include "io/table_printer.h"

int main() {
  using namespace mlp;
  bench::BenchContext context(bench::BenchWorldConfig());
  bench::PrintHeader("Figure 8: relationship explanation (ACC@m)",
                     "MLP ~57% vs Base ~40% at 100mi; ACC@50 ~ ACC@100 "
                     "(Sec. 5.3)",
                     context);

  const auto& world = context.world();
  core::MlpModel model(bench::BenchMlpConfig());
  Result<core::MlpResult> result = model.Fit(context.MakeInput(0));
  if (!result.ok()) {
    std::printf("fit failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // Sec. 5.3 ground truth: relationships of multi-location users whose
  // assignments are identifiable by a shared region.
  std::vector<graph::EdgeId> eval_edges;
  std::vector<std::pair<geo::CityId, geo::CityId>> truth(
      world.truth.following.size(), {geo::kInvalidCity, geo::kInvalidCity});
  for (size_t s = 0; s < world.truth.following.size(); ++s) {
    const synth::FollowingTruth& t = world.truth.following[s];
    if (t.noisy) continue;
    truth[s] = {t.x, t.y};
    if (world.distances->raw_miles(t.x, t.y) > 50.0) continue;
    const graph::FollowingEdge& e =
        world.graph->following(static_cast<graph::EdgeId>(s));
    if (world.truth.profiles[e.follower].IsMultiLocation() ||
        world.truth.profiles[e.friend_user].IsMultiLocation()) {
      eval_edges.push_back(static_cast<graph::EdgeId>(s));
    }
  }
  std::printf("%zu labeled relationships (paper: 4,426)\n\n",
              eval_edges.size());

  // Base assigns each user's home location; homes are the registered ones
  // (known for labeled users), as in the paper's strong baseline.
  std::vector<core::FollowingExplanation> base =
      baselines::ExplainByHome(*world.graph, context.registered());

  io::TablePrinter table({"m (miles)", "MLP", "Base", "paper MLP", "paper Base"});
  const char* paper_mlp[] = {"~0.52", "~0.56", "~0.56", "~0.57", "~0.57", "~0.57"};
  const char* paper_base[] = {"~0.36", "~0.39", "~0.40", "~0.40", "~0.41", "~0.42"};
  double mlp100 = 0.0, base100 = 0.0, mlp50 = 0.0;
  int idx = 0;
  for (double m : {25.0, 50.0, 75.0, 100.0, 125.0, 150.0}) {
    double mlp_acc = eval::RelationshipAccuracy(result->following, truth,
                                                eval_edges, *world.distances,
                                                m);
    double base_acc = eval::RelationshipAccuracy(base, truth, eval_edges,
                                                 *world.distances, m);
    if (m == 100.0) {
      mlp100 = mlp_acc;
      base100 = base_acc;
    }
    if (m == 50.0) mlp50 = mlp_acc;
    table.AddRow({StringPrintf("%.0f", m), StringPrintf("%.3f", mlp_acc),
                  StringPrintf("%.3f", base_acc), paper_mlp[idx],
                  paper_base[idx]});
    ++idx;
  }
  table.Print();

  std::printf(
      "\nshape checks:\n"
      "  MLP > Base at 100mi: %s (+%.1f pts; paper +15)\n"
      "  MLP ACC@50 within 5 pts of ACC@100: %s (%.3f vs %.3f)\n",
      mlp100 > base100 ? "HOLDS" : "VIOLATED", (mlp100 - base100) * 100.0,
      mlp100 - mlp50 < 0.05 ? "HOLDS" : "VIOLATED", mlp50, mlp100);
  return 0;
}
