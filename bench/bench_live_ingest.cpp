// Live ingest+serve daemon (ISSUE 10 / ROADMAP "one-process ingest+serve
// daemon"): measures what a query client experiences while the
// stream::LiveIngestor applies spooled delta batches and swaps models
// under it, versus a quiet server:
//   - serve p50/p99 idle vs. DURING live ingest (the ≤2× acceptance gate),
//   - swap-visible staleness (now − batch spool mtime at swap),
//   - ingest throughput (mean apply time per batch).
// Queries run through ModelServer::Handle() — routing, rendering and the
// generation-keyed cache, no socket noise. The cache is disabled so every
// request pays the render path (the honest swap-interference shape).
// Results land in BENCH_live.json for the CI bench-regression gate.
//
// Env overrides: MLP_BENCH_LIVE_USERS (default 1500),
// MLP_BENCH_LIVE_THREADS (query threads, default 2),
// MLP_BENCH_LIVE_BATCHES (default 3), MLP_BENCH_LIVE_BATCH_USERS
// (default 10), MLP_BENCH_SEED, MLP_BENCH_JSON_DIR.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/model.h"
#include "eval/metrics.h"
#include "io/model_snapshot.h"
#include "obs/fit_profile.h"
#include "obs/metrics.h"
#include "serve/model_server.h"
#include "serve/read_model.h"
#include "stream/live_ingest.h"
#include "synth/world_generator.h"

namespace {

using namespace mlp;

namespace fs = std::filesystem;

// A localized burst delta written as spool CSVs: `count` new users (half
// labeled) with ids starting at `first_id`, following hub accounts in the
// base world, plus a few tweets each — the bench_streaming_ingest burst
// shape, expressed through the spool protocol.
void WriteBurstBatch(const fs::path& dir, int first_id, int count,
                     int base_users, int base_venues, uint64_t seed) {
  fs::create_directories(dir);
  Pcg32 rng(seed, 0x7fb5d329728ea185ULL);
  const int hubs = 4;
  std::vector<int> hub_ids;
  for (int h = 0; h < hubs; ++h) {
    hub_ids.push_back(
        static_cast<int>(rng.UniformU32(static_cast<uint32_t>(base_users))));
  }
  std::ofstream users(dir / "users.csv");
  std::ofstream following(dir / "following.csv");
  std::ofstream tweeting(dir / "tweeting.csv");
  users << "handle,profile_location,registered_city\n";
  following << "follower,friend\n";
  tweeting << "user,venue\n";
  for (int i = 0; i < count; ++i) {
    const int id = first_id + i;
    const int city = i % 2 == 0 ? static_cast<int>(rng.UniformU32(40)) : -1;
    users << "live_burst_" << id << ",," << city << "\n";
    for (int e = 0; e < 2; ++e) {
      following << id << ","
                << hub_ids[rng.UniformU32(static_cast<uint32_t>(hubs))]
                << "\n";
    }
    for (int t = 0; t < 3; ++t) {
      tweeting << id << ","
               << rng.UniformU32(static_cast<uint32_t>(base_venues)) << "\n";
    }
  }
}

struct LatencyStats {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double qps = 0.0;
  uint64_t requests = 0;
};

LatencyStats Summarize(std::vector<int64_t>& latencies_ns, double seconds) {
  LatencyStats stats;
  stats.requests = latencies_ns.size();
  if (latencies_ns.empty()) return stats;
  std::sort(latencies_ns.begin(), latencies_ns.end());
  // Nanosecond samples, microsecond reporting: Handle() renders in
  // fractional microseconds, so integer-µs buckets would quantize the 2×
  // ratio gate into noise.
  auto at = [&](double q) {
    const size_t i = static_cast<size_t>(
        q * static_cast<double>(latencies_ns.size() - 1));
    return static_cast<double>(latencies_ns[i]) / 1e3;
  };
  stats.p50_us = at(0.5);
  stats.p99_us = at(0.99);
  stats.qps =
      seconds > 0.0 ? static_cast<double>(latencies_ns.size()) / seconds : 0.0;
  return stats;
}

// Hammers Handle() from `threads` threads until `stop` flips, collecting
// per-request microseconds. Only base-world ids are queried, so every
// request is a 200 across all generations.
LatencyStats Hammer(serve::ModelServer& server, int threads, int base_users,
                    std::atomic<bool>& stop) {
  std::vector<std::vector<int64_t>> lanes(threads);
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Pcg32 rng(977 + t, 0x9e3779b97f4a7c15ULL);
      serve::HttpRequest request;
      request.method = "GET";
      std::vector<int64_t>& lane = lanes[t];
      while (!stop.load(std::memory_order_acquire)) {
        request.target =
            "/v1/user/" +
            std::to_string(rng.UniformU32(static_cast<uint32_t>(base_users)));
        const auto t0 = std::chrono::steady_clock::now();
        const serve::HttpResponse response = server.Handle(request);
        const auto t1 = std::chrono::steady_clock::now();
        if (response.status == 200) {
          lane.push_back(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count());
        }
      }
    });
  }
  // The caller decides when the phase ends by flipping `stop`; we just
  // wait for the lanes to drain.
  for (std::thread& worker : workers) worker.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::vector<int64_t> all;
  for (std::vector<int64_t>& lane : lanes) {
    all.insert(all.end(), lane.begin(), lane.end());
  }
  return Summarize(all, seconds);
}

}  // namespace

int main() {
  const int users =
      static_cast<int>(bench::EnvInt("MLP_BENCH_LIVE_USERS", 1500));
  const int threads =
      static_cast<int>(bench::EnvInt("MLP_BENCH_LIVE_THREADS", 2));
  const int batches =
      static_cast<int>(bench::EnvInt("MLP_BENCH_LIVE_BATCHES", 3));
  const int batch_users =
      static_cast<int>(bench::EnvInt("MLP_BENCH_LIVE_BATCH_USERS", 10));

  synth::WorldConfig world_config = bench::BenchWorldConfig();
  world_config.num_users = users;
  std::printf("generating %d-user power-law world...\n", users);
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(world_config);
  if (!world.ok()) {
    std::fprintf(stderr, "world generation failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<geo::CityId>> referents =
      world->vocab->ReferentTable();
  core::ModelInput input;
  input.gazetteer = world->gazetteer.get();
  input.graph = world->graph.get();
  input.distances = world->distances.get();
  input.venue_referents = &referents;
  input.observed_home = eval::RegisteredHomes(*world->graph);

  core::MlpConfig config = bench::BenchMlpConfig();
  std::printf("base fit (%d sweeps)...\n",
              config.burn_in_iterations + config.sampling_iterations);
  core::FitCheckpoint checkpoint;
  core::FitOptions fit_options;
  fit_options.checkpoint_out = &checkpoint;
  Result<core::MlpResult> result = core::MlpModel(config).Fit(input,
                                                              fit_options);
  if (!result.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  io::ModelSnapshot snapshot =
      io::MakeModelSnapshot(input, checkpoint, *result);
  Result<serve::ReadModel> model = serve::ReadModel::Build(
      snapshot, *world->graph, input.gazetteer);
  if (!model.ok()) {
    std::fprintf(stderr, "read model build failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  serve::ServeOptions serve_options;
  serve_options.cache_mb = 0;  // every request renders — no hit/miss modes
  serve::ModelServer server(std::move(*model), serve_options);

  // ---- idle phase: a quiet server, no watcher attached ----
  std::printf("idle phase: %d query threads...\n", threads);
  std::atomic<bool> idle_stop{false};
  LatencyStats idle;
  {
    std::thread timer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1500));
      idle_stop.store(true, std::memory_order_release);
    });
    idle = Hammer(server, threads, users, idle_stop);
    timer.join();
  }

  // ---- live phase: same hammer while the daemon applies `batches` ----
  const fs::path spool =
      fs::temp_directory_path() / "mlp_bench_live_spool";
  fs::remove_all(spool);
  fs::create_directories(spool);
  stream::LiveIngestOptions live_options;
  live_options.spool_dir = spool.string();
  live_options.poll_ms = 20;
  stream::LiveIngestor ingestor(&server, input, checkpoint, *result,
                                live_options);
  Status started = ingestor.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "live ingestor start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  obs::Registry& registry = obs::Registry::Global();
  const obs::Histogram::Snapshot apply_before =
      registry.GetHistogram(obs::kIngestApplyNs, obs::IngestApplyNsBounds())
          ->GetSnapshot();

  std::printf("live phase: %d batches x %d users under query load...\n",
              batches, batch_users);
  std::atomic<bool> live_stop{false};
  LatencyStats live;
  {
    std::thread writer([&] {
      for (int b = 0; b < batches; ++b) {
        const std::string name =
            "batch-" + std::to_string(1000 + b);  // lexicographic order
        WriteBurstBatch(spool / ("tmp." + name),
                        users + b * batch_users, batch_users, users,
                        world->graph->num_venues(), 31 + b);
        fs::rename(spool / ("tmp." + name), spool / name);
        // One in flight at a time: the spool depth stays honest and every
        // batch's staleness clock starts at its own rename.
        if (!ingestor.WaitForApplied(b + 1, 120000)) {
          std::fprintf(stderr, "batch %d never applied\n", b);
          break;
        }
      }
      live_stop.store(true, std::memory_order_release);
    });
    live = Hammer(server, threads, users, live_stop);
    writer.join();
  }
  const uint64_t applied = ingestor.batches_applied();
  ingestor.Stop();

  const obs::Histogram::Snapshot apply_after =
      registry.GetHistogram(obs::kIngestApplyNs, obs::IngestApplyNsBounds())
          ->GetSnapshot();
  const uint64_t apply_count = apply_after.count - apply_before.count;
  const double apply_total_s =
      static_cast<double>(apply_after.sum - apply_before.sum) / 1e9;
  const double mean_apply_ms =
      apply_count > 0 ? apply_total_s * 1e3 / static_cast<double>(apply_count)
                      : 0.0;
  const double apply_per_sec =
      apply_total_s > 0.0 ? static_cast<double>(apply_count) / apply_total_s
                          : 0.0;
  const double p99_ratio =
      idle.p99_us > 0.0 ? live.p99_us / idle.p99_us : 0.0;

  std::printf(
      "\nidle:  p50 %.2fus  p99 %.2fus  %.0f qps (%llu requests)\n"
      "live:  p50 %.2fus  p99 %.2fus  %.0f qps (%llu requests)\n"
      "p99 during/idle: %.2fx   batches applied: %llu\n"
      "mean apply: %.1fms (%.2f batches/s)   max swap staleness: %lldms\n",
      idle.p50_us, idle.p99_us, idle.qps,
      static_cast<unsigned long long>(idle.requests), live.p50_us,
      live.p99_us, live.qps, static_cast<unsigned long long>(live.requests),
      p99_ratio, static_cast<unsigned long long>(applied), mean_apply_ms,
      apply_per_sec,
      static_cast<long long>(ingestor.max_swap_staleness_ms()));

  bench::BenchJson json;
  json.Set("bench", std::string("live_ingest"));
  json.Set("users", static_cast<int64_t>(users));
  json.Set("query_threads", static_cast<int64_t>(threads));
  json.Set("batches", static_cast<int64_t>(batches));
  json.Set("batch_users", static_cast<int64_t>(batch_users));
  json.Set("hardware_threads",
           static_cast<int64_t>(std::thread::hardware_concurrency()));
  json.Set("idle_p50_us", idle.p50_us);
  json.Set("idle_p99_us", idle.p99_us);
  json.Set("idle_qps", idle.qps);
  json.Set("live_p50_us", live.p50_us);
  json.Set("live_p99_us", live.p99_us);
  json.Set("live_qps", live.qps);
  json.Set("p99_during_over_idle", p99_ratio);
  json.Set("batches_applied", static_cast<int64_t>(applied));
  json.Set("mean_apply_ms", mean_apply_ms);
  json.Set("apply_batches_per_sec", apply_per_sec);
  json.Set("max_swap_staleness_ms",
           static_cast<int64_t>(ingestor.max_swap_staleness_ms()));
  json.WriteTo(bench::BenchJsonPath("BENCH_live.json"));

  fs::remove_all(spool);
  return applied == static_cast<uint64_t>(batches) ? 0 : 1;
}
