// Micro-benchmarks (google-benchmark) for the hot paths: geo math, alias
// sampling, the d^alpha table, venue extraction, power-law fitting, and
// full Gibbs sweeps. After the benchmark suite, main() runs the
// observability overhead guard: instrumented (obs enabled) vs.
// short-circuited (obs disabled) sweeps must agree within 2% — the
// src/obs/ overhead budget, enforced here so a regression fails the bench
// job instead of silently taxing every fit.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/random.h"
#include "core/model.h"
#include "core/pair_distance.h"
#include "core/pow_table.h"
#include "core/priors.h"
#include "core/random_models.h"
#include "core/sampler.h"
#include "eval/cross_validation.h"
#include "geo/gazetteer.h"
#include "geo/grid_index.h"
#include "io/model_snapshot.h"
#include "obs/trace.h"
#include "serve/http_server.h"
#include "serve/model_server.h"
#include "serve/read_model.h"
#include "stats/alias_table.h"
#include "synth/world_generator.h"
#include "text/venue_extractor.h"

namespace {

using namespace mlp;

const geo::Gazetteer& Gaz() {
  static geo::Gazetteer gaz = geo::Gazetteer::FromEmbedded();
  return gaz;
}

const geo::CityDistanceMatrix& Distances() {
  static geo::CityDistanceMatrix dist(Gaz(), 1.0);
  return dist;
}

void BM_Haversine(benchmark::State& state) {
  geo::LatLon a{34.05, -118.24}, b{40.71, -74.01};
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::HaversineMiles(a, b));
    b.lat += 1e-9;  // defeat CSE
  }
}
BENCHMARK(BM_Haversine);

void BM_DistanceMatrixLookup(benchmark::State& state) {
  const geo::CityDistanceMatrix& dist = Distances();
  Pcg32 rng(1);
  int n = dist.size();
  for (auto _ : state) {
    geo::CityId a = static_cast<geo::CityId>(rng.UniformU32(n));
    geo::CityId b = static_cast<geo::CityId>(rng.UniformU32(n));
    benchmark::DoNotOptimize(dist.miles(a, b));
  }
}
BENCHMARK(BM_DistanceMatrixLookup);

void BM_PowTableBuild(benchmark::State& state) {
  for (auto _ : state) {
    core::PowTable table(&Distances(), -0.55);
    benchmark::DoNotOptimize(table.Get(0, 1));
  }
}
BENCHMARK(BM_PowTableBuild);

void BM_AliasTableSample(benchmark::State& state) {
  stats::AliasTable table(Gaz().PopulationWeights());
  Pcg32 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(&rng));
  }
}
BENCHMARK(BM_AliasTableSample);

void BM_GridIndexRadiusQuery(benchmark::State& state) {
  geo::CityGridIndex index(&Gaz());
  geo::LatLon center{34.05, -118.24};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.WithinMiles(center, state.range(0)));
  }
}
BENCHMARK(BM_GridIndexRadiusQuery)->Arg(50)->Arg(200);

void BM_VenueExtraction(benchmark::State& state) {
  static text::VenueVocabulary vocab = text::VenueVocabulary::Build(Gaz());
  text::VenueExtractor extractor(&vocab);
  std::string tweet =
      "flying from los angeles to austin for sxsw, then new york!";
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.ExtractIds(tweet));
  }
}
BENCHMARK(BM_VenueExtraction);

void BM_PowerLawFit(benchmark::State& state) {
  std::vector<stats::CurvePoint> points;
  stats::PowerLaw truth{-0.55, 0.0045};
  for (double d = 1.0; d < 3000.0; d *= 1.1) {
    points.push_back({d, truth(d), d});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::FitPowerLaw(points));
  }
}
BENCHMARK(BM_PowerLawFit);

void BM_WorldGeneration(benchmark::State& state) {
  for (auto _ : state) {
    synth::WorldConfig config;
    config.num_users = static_cast<int>(state.range(0));
    config.seed = 11;
    auto world = synth::GenerateWorld(config);
    benchmark::DoNotOptimize(world.ok());
  }
}
BENCHMARK(BM_WorldGeneration)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_PairDistanceHistogram(benchmark::State& state) {
  synth::WorldConfig config;
  config.num_users = 2000;
  config.seed = 13;
  static auto world = std::move(synth::GenerateWorld(config).ValueOrDie());
  static auto homes = eval::RegisteredHomes(*world.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::PairDistanceHistogram(homes, *world.distances, 1.0, 3000));
  }
}
BENCHMARK(BM_PairDistanceHistogram)->Unit(benchmark::kMillisecond);

/// One full Gibbs sweep over a 1000-user world (following + tweeting).
void BM_GibbsSweep(benchmark::State& state) {
  synth::WorldConfig config;
  config.num_users = 1000;
  config.seed = 17;
  static auto world = std::move(synth::GenerateWorld(config).ValueOrDie());
  static auto referents = world.vocab->ReferentTable();
  static core::ModelInput input = [] {
    core::ModelInput in;
    in.gazetteer = world.gazetteer.get();
    in.graph = world.graph.get();
    in.distances = world.distances.get();
    in.venue_referents = &referents;
    in.observed_home = eval::RegisteredHomes(*world.graph);
    return in;
  }();
  static core::MlpConfig model_config;
  static auto space = core::CandidateSpace::Build(input, model_config);
  static auto random_models = core::RandomModels::Learn(*world.graph);
  static core::PowTable pow_table(world.distances.get(), -0.55);
  core::GibbsSampler sampler(&input, &model_config, &space, &random_models,
                             &pow_table);
  Pcg32 rng(23);
  sampler.Initialize(&rng);
  for (auto _ : state) {
    sampler.RunSweep(&rng);
  }
  state.SetItemsProcessed(state.iterations() *
                          (world.graph->num_following() +
                           world.graph->num_tweeting()));
}
BENCHMARK(BM_GibbsSweep)->Unit(benchmark::kMillisecond);

// ---------------------------------------------- obs overhead guard (≤2%)

/// Measures sweep wall-clock with observability enabled vs. disabled
/// (obs::SetEnabled(false) short-circuits every span and clock read) and
/// fails hard when the instrumented sweeps are more than 2% slower.
/// Repetitions are interleaved and compared by their minima — the minimum
/// is the least noise-sensitive location statistic for "how fast can this
/// go", which is exactly what an overhead bound is about.
int RunObsOverheadGuard() {
  synth::WorldConfig config;
  config.num_users = 1000;
  config.seed = 29;
  auto world = std::move(synth::GenerateWorld(config).ValueOrDie());
  auto referents = world.vocab->ReferentTable();
  core::ModelInput input;
  input.gazetteer = world.gazetteer.get();
  input.graph = world.graph.get();
  input.distances = world.distances.get();
  input.venue_referents = &referents;
  input.observed_home = eval::RegisteredHomes(*world.graph);
  core::MlpConfig model_config;
  auto space = core::CandidateSpace::Build(input, model_config);
  auto random_models = core::RandomModels::Learn(*world.graph);
  core::PowTable pow_table(world.distances.get(), -0.55);
  core::GibbsSampler sampler(&input, &model_config, &space, &random_models,
                             &pow_table);
  Pcg32 rng(31);
  sampler.Initialize(&rng);

  constexpr int kRepetitions = 7;
  constexpr int kSweepsPerRep = 3;
  auto run_sweeps = [&](bool enabled) {
    obs::SetEnabled(enabled);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSweepsPerRep; ++i) sampler.RunSweep(&rng);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  run_sweeps(true);  // shared warmup (caches, branch predictors)
  double min_enabled = 1e30;
  double min_disabled = 1e30;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    min_enabled = std::min(min_enabled, run_sweeps(true));
    min_disabled = std::min(min_disabled, run_sweeps(false));
  }
  obs::SetEnabled(true);

  const double overhead =
      min_disabled > 0.0 ? (min_enabled / min_disabled - 1.0) * 100.0 : 0.0;
  std::printf(
      "obs_overhead_guard: instrumented %.3f ms vs short-circuited %.3f ms "
      "per %d sweeps -> %+.2f%% (budget +2%%)\n",
      min_enabled * 1000.0, min_disabled * 1000.0, kSweepsPerRep, overhead);
  if (overhead > 2.0) {
    std::fprintf(stderr,
                 "obs_overhead_guard FAILED: instrumentation overhead "
                 "%.2f%% exceeds the 2%% budget (src/obs/README.md)\n",
                 overhead);
    return 1;
  }
  std::printf("obs_overhead_guard OK\n");
  return 0;
}

// ------------------------- request-path overhead guard (≤2%, ISSUE 9)

/// Same contract for the per-request serving path: full HTTP round trips
/// (the unit the request-trace instrumentation taxes — socket read, parse,
/// route, cache, render, write) against a live ModelServer, with request
/// tracing enabled vs. obs::SetEnabled(false). Minima of interleaved
/// repetitions, ≤2% budget. Uses a keep-alive connection and a cycling
/// target set so most requests after the first pass are cache hits — the
/// fastest (worst-case relative overhead) request shape.
int RunRequestTraceOverheadGuard() {
  synth::WorldConfig config;
  config.num_users = 300;
  config.seed = 41;
  auto world = std::move(synth::GenerateWorld(config).ValueOrDie());
  auto referents = world.vocab->ReferentTable();
  core::ModelInput input;
  input.gazetteer = world.gazetteer.get();
  input.graph = world.graph.get();
  input.distances = world.distances.get();
  input.venue_referents = &referents;
  input.observed_home = eval::RegisteredHomes(*world.graph);
  core::MlpConfig fit_config;
  fit_config.burn_in_iterations = 2;
  fit_config.sampling_iterations = 2;
  fit_config.seed = 43;
  core::FitCheckpoint checkpoint;
  core::FitOptions fit_options;
  fit_options.checkpoint_out = &checkpoint;
  auto result = core::MlpModel(fit_config).Fit(input, fit_options);
  if (!result.ok()) {
    std::fprintf(stderr, "request_trace_guard: fit failed\n");
    return 1;
  }
  io::ModelSnapshot snapshot =
      io::MakeModelSnapshot(input, checkpoint, *result);
  auto model = serve::ReadModel::Build(snapshot, *world.graph,
                                       world.gazetteer.get());
  if (!model.ok()) {
    std::fprintf(stderr, "request_trace_guard: read model build failed\n");
    return 1;
  }
  serve::ServeOptions options;
  options.port = 0;  // ephemeral
  options.threads = 2;
  options.cache_mb = 8;
  serve::ModelServer server(std::move(*model), options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "request_trace_guard: server start failed\n");
    return 1;
  }
  auto client = serve::HttpClient::Connect("127.0.0.1", server.port());
  if (!client.ok()) {
    std::fprintf(stderr, "request_trace_guard: connect failed\n");
    return 1;
  }
  std::vector<std::string> targets;
  for (int u = 0; u < 64; ++u) {
    targets.push_back("/v1/user/" + std::to_string(u));
  }

  constexpr int kRepetitions = 7;
  constexpr int kRequestsPerRep = 400;
  bool failed = false;
  auto run_requests = [&](bool enabled) {
    obs::SetEnabled(enabled);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kRequestsPerRep; ++i) {
      auto response =
          client->RoundTrip("GET", targets[i % targets.size()]);
      if (!response.ok() || response->status != 200) failed = true;
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  run_requests(true);  // shared warmup (cache fill, connection, predictors)
  double min_enabled = 1e30;
  double min_disabled = 1e30;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    min_enabled = std::min(min_enabled, run_requests(true));
    min_disabled = std::min(min_disabled, run_requests(false));
  }
  obs::SetEnabled(true);
  server.Stop();
  if (failed) {
    std::fprintf(stderr, "request_trace_guard: request failed\n");
    return 1;
  }

  const double overhead =
      min_disabled > 0.0 ? (min_enabled / min_disabled - 1.0) * 100.0 : 0.0;
  std::printf(
      "request_trace_overhead_guard: traced %.3f ms vs short-circuited "
      "%.3f ms per %d requests -> %+.2f%% (budget +2%%)\n",
      min_enabled * 1000.0, min_disabled * 1000.0, kRequestsPerRep, overhead);
  if (overhead > 2.0) {
    std::fprintf(stderr,
                 "request_trace_overhead_guard FAILED: per-request tracing "
                 "overhead %.2f%% exceeds the 2%% budget "
                 "(src/obs/README.md)\n",
                 overhead);
    return 1;
  }
  std::printf("request_trace_overhead_guard OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  int rc = RunObsOverheadGuard();
  rc |= RunRequestTraceOverheadGuard();
  return rc;
}
