// Sweep-throughput scaling of the parallel sharded Gibbs engine
// (src/engine/): relationships resampled per second at 1/2/4/8 threads on
// a generated 50k-user world. The 1-thread row is the exact sequential
// sampler; multi-thread rows run the work-queue engine (alias-MH kernels,
// measured-cost scheduling, single-barrier merge+refresh), so the speedup
// measures the whole pipeline including the sync barrier.
//
// Besides throughput, each row reports:
//   - threads_N_shard_kernel_max_over_mean: per-sweep max/mean of worker
//     busy time (kernel + fold), averaged over the timed sweeps. 1.0 is a
//     perfectly balanced schedule; the gate watches this so the EWMA
//     scheduler cannot silently decay into one hot thread.
//   - threads_N_acc_100mi_pct (+ _delta vs the 1-thread row): Table-2-style
//     ACC@100mi of MAP homes against the synthetic ground truth, same
//     sweep budget per row. The fast alias-MH kernels sample a different
//     (equally valid) chain than the exact path, so the delta key is the
//     "unchanged accuracy" acceptance criterion in measurable form.
//   - hardware_threads: std::thread::hardware_concurrency() of the machine
//     that produced the JSON, so the compare gate can condition its
//     speedup floors on real cores being present.
//
// MLP_BENCH_SCALING_USERS overrides the world size (e.g. for quick runs
// on small machines); MLP_BENCH_SEED overrides the seed.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/pow_table.h"
#include "core/priors.h"
#include "core/random_models.h"
#include "core/sampler.h"
#include "engine/parallel_gibbs.h"
#include "eval/metrics.h"
#include "io/table_printer.h"
#include "common/string_util.h"
#include "obs/fit_profile.h"
#include "obs/metrics.h"
#include "synth/world_generator.h"

namespace {

using namespace mlp;

long long EnvOr(const char* name, long long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoll(value) : fallback;
}

// MAP home per user from the merged counts: argmax_l (ϕ_u(l) + γ_u(l)).
// Deliberately the same read for every thread count so the accuracy keys
// compare chains, not estimators.
std::vector<geo::CityId> MapHomes(const core::GibbsSampler& sampler,
                                  const core::CandidateSpace& space) {
  const core::SuffStatsArena& stats = sampler.stats();
  const core::SuffStatsLayout& layout = sampler.layout();
  std::vector<geo::CityId> homes(layout.num_users, geo::kInvalidCity);
  for (graph::UserId u = 0; u < layout.num_users; ++u) {
    const core::CandidateView& view = space.view(u);
    const double* phi_u = stats.phi_row(u);
    double best = -1.0;
    for (int l = 0; l < view.count; ++l) {
      const double score = phi_u[l] + view.gamma[l];
      if (score > best) {
        best = score;
        homes[u] = view.candidates[l];
      }
    }
  }
  return homes;
}

}  // namespace

int main() {
  synth::WorldConfig world_config;
  world_config.num_users =
      static_cast<int>(EnvOr("MLP_BENCH_SCALING_USERS", 50000));
  world_config.seed = static_cast<uint64_t>(EnvOr("MLP_BENCH_SEED", 20120827));

  std::printf("generating %d-user world...\n", world_config.num_users);
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(world_config);
  if (!world.ok()) {
    std::fprintf(stderr, "world generation failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }

  core::ModelInput input;
  input.gazetteer = world->gazetteer.get();
  input.graph = world->graph.get();
  input.distances = world->distances.get();
  std::vector<std::vector<geo::CityId>> referents =
      world->vocab->ReferentTable();
  input.venue_referents = &referents;
  input.observed_home.reserve(world->graph->num_users());
  for (graph::UserId u = 0; u < world->graph->num_users(); ++u) {
    input.observed_home.push_back(world->graph->user(u).registered_city);
  }

  std::vector<geo::CityId> true_homes;
  std::vector<graph::UserId> all_users;
  true_homes.reserve(world->truth.profiles.size());
  all_users.reserve(world->truth.profiles.size());
  for (graph::UserId u = 0; u < world->graph->num_users(); ++u) {
    true_homes.push_back(world->truth.profiles[u].home());
    all_users.push_back(u);
  }

  const long long relationships_per_sweep =
      static_cast<long long>(input.graph->num_following()) +
      input.graph->num_tweeting();
  std::printf("%d users, %d following, %d tweeting (%lld relationships/sweep)\n",
              input.graph->num_users(), input.graph->num_following(),
              input.graph->num_tweeting(), relationships_per_sweep);

  core::MlpConfig base_config;
  core::RandomModels random_models = core::RandomModels::Learn(*input.graph);
  core::PowTable pow_table(input.distances, base_config.alpha,
                           base_config.distance_floor_miles);

  const int warmup_sweeps = 2;
  const int timed_sweeps = 5;
  io::TablePrinter table({"threads", "sweep ms", "relationships/sec",
                          "speedup", "busy max/mean", "acc@100mi"});
  bench::BenchJson json;
  json.Set("bench", std::string("parallel_scaling"));
  json.Set("users", static_cast<int64_t>(input.graph->num_users()));
  json.Set("relationships_per_sweep",
           static_cast<int64_t>(relationships_per_sweep));
  json.Set("seed", static_cast<int64_t>(world_config.seed));
  json.Set("timed_sweeps", static_cast<int64_t>(timed_sweeps));
  json.Set("hardware_threads",
           static_cast<int64_t>(std::thread::hardware_concurrency()));
  double base_rate = 0.0;
  double base_acc = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    core::MlpConfig config = base_config;
    config.num_threads = threads;
    // Fresh candidate space per row: each config's chain starts from the
    // same priors and the MAP-home read below sees only its own counts.
    core::CandidateSpace space = core::CandidateSpace::Build(input, config);
    core::GibbsSampler sampler(&input, &config, &space, &random_models,
                               &pow_table);
    engine::ParallelGibbsEngine engine(&sampler, &input, &config);
    Pcg32 rng(config.seed, 0x5bd1e995u);
    engine.Initialize(&rng);
    for (int it = 0; it < warmup_sweeps; ++it) engine.RunSweep(&rng);

    // Snapshot the phase counters around the timed loop: all four thread
    // configs run in one process against the same global registry, so the
    // per-config breakdown must come from diffs, not absolute values.
    const std::map<std::string, uint64_t> before =
        obs::Registry::Global().CounterValues();
    double imbalance_sum = 0.0;
    int imbalance_sweeps = 0;
    auto start = std::chrono::steady_clock::now();
    for (int it = 0; it < timed_sweeps; ++it) {
      engine.RunSweep(&rng);
      const std::vector<int64_t>& busy = engine.LastSweepThreadBusyNs();
      if (!busy.empty()) {
        const int64_t max_busy = *std::max_element(busy.begin(), busy.end());
        const double mean_busy =
            static_cast<double>(
                std::accumulate(busy.begin(), busy.end(), int64_t{0})) /
            static_cast<double>(busy.size());
        if (mean_busy > 0.0) {
          imbalance_sum += static_cast<double>(max_busy) / mean_busy;
          ++imbalance_sweeps;
        }
      }
    }
    engine.Synchronize();
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    const obs::FitProfile profile = obs::ComputeFitProfile(
        before, obs::Registry::Global().CounterValues(), threads);

    double sweep_ms = elapsed / timed_sweeps * 1000.0;
    double rate = relationships_per_sweep * timed_sweeps / elapsed;
    if (threads == 1) base_rate = rate;
    // The sequential path has no per-worker busy vector; its schedule is
    // one thread by definition.
    const double imbalance =
        imbalance_sweeps > 0 ? imbalance_sum / imbalance_sweeps : 1.0;
    const double accuracy =
        100.0 * eval::AccuracyWithin(MapHomes(sampler, space), true_homes,
                                     all_users, *input.distances, 100.0);
    if (threads == 1) base_acc = accuracy;
    table.AddRow({std::to_string(threads), StringPrintf("%.1f", sweep_ms),
                  StringPrintf("%.0f", rate),
                  StringPrintf("%.2fx", base_rate > 0 ? rate / base_rate : 0),
                  StringPrintf("%.2f", imbalance),
                  StringPrintf("%.1f%%", accuracy)});
    const std::string prefix = "threads_" + std::to_string(threads);
    json.Set(prefix + "_sweep_ms", sweep_ms);
    json.Set(prefix + "_relationships_per_sec", rate);
    json.Set(prefix + "_speedup", base_rate > 0 ? rate / base_rate : 0.0);
    json.Set(prefix + "_shard_kernel_max_over_mean", imbalance);
    json.Set(prefix + "_acc_100mi_pct", accuracy);
    json.Set(prefix + "_acc_delta_100mi_pct", accuracy - base_acc);
    // Per-phase wall-clock-equivalent breakdown (the "why" behind the
    // speedup number): phase names from the profile, per timed sweep.
    for (const obs::PhaseRow& row : profile.rows) {
      if (row.counter == "-") continue;  // skip the unattributed remainder
      std::string key = row.counter;     // e.g. fit_shard_kernel_ns
      if (key.rfind("fit_", 0) == 0) key = key.substr(4);
      if (key.size() > 3 && key.compare(key.size() - 3, 3, "_ns") == 0) {
        key.resize(key.size() - 3);
      }
      json.Set(prefix + "_phase_" + key + "_ms", row.wall_ms / timed_sweeps);
    }
  }
  table.Print();
  std::printf("phase breakdown (wall-ms/sweep) written alongside the\n"
              "scaling rows in BENCH_parallel.json\n");
  json.WriteTo(bench::BenchJsonPath("BENCH_parallel.json"));
  std::printf(
      "note: speedup requires real cores; inside a 1-core container the\n"
      "multi-thread rows only measure sharding + barrier overhead.\n");
  return 0;
}
