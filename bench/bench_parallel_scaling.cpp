// Sweep-throughput scaling of the parallel sharded Gibbs engine
// (src/engine/): relationships resampled per second at 1/2/4/8 threads on
// a generated 50k-user world. The 1-thread row is the exact sequential
// sampler; multi-thread rows run AD-LDA-style delta-merge sweeps, so the
// speedup measures the whole pipeline including snapshot/merge barriers.
//
// MLP_BENCH_SCALING_USERS overrides the world size (e.g. for quick runs
// on small machines); MLP_BENCH_SEED overrides the seed.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/pow_table.h"
#include "core/priors.h"
#include "core/random_models.h"
#include "core/sampler.h"
#include "engine/parallel_gibbs.h"
#include "io/table_printer.h"
#include "common/string_util.h"
#include "obs/fit_profile.h"
#include "obs/metrics.h"
#include "synth/world_generator.h"

namespace {

using namespace mlp;

long long EnvOr(const char* name, long long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoll(value) : fallback;
}

}  // namespace

int main() {
  synth::WorldConfig world_config;
  world_config.num_users =
      static_cast<int>(EnvOr("MLP_BENCH_SCALING_USERS", 50000));
  world_config.seed = static_cast<uint64_t>(EnvOr("MLP_BENCH_SEED", 20120827));

  std::printf("generating %d-user world...\n", world_config.num_users);
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(world_config);
  if (!world.ok()) {
    std::fprintf(stderr, "world generation failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }

  core::ModelInput input;
  input.gazetteer = world->gazetteer.get();
  input.graph = world->graph.get();
  input.distances = world->distances.get();
  std::vector<std::vector<geo::CityId>> referents =
      world->vocab->ReferentTable();
  input.venue_referents = &referents;
  input.observed_home.reserve(world->graph->num_users());
  for (graph::UserId u = 0; u < world->graph->num_users(); ++u) {
    input.observed_home.push_back(world->graph->user(u).registered_city);
  }

  const long long relationships_per_sweep =
      static_cast<long long>(input.graph->num_following()) +
      input.graph->num_tweeting();
  std::printf("%d users, %d following, %d tweeting (%lld relationships/sweep)\n",
              input.graph->num_users(), input.graph->num_following(),
              input.graph->num_tweeting(), relationships_per_sweep);

  core::MlpConfig base_config;
  core::CandidateSpace space = core::CandidateSpace::Build(input, base_config);
  core::RandomModels random_models = core::RandomModels::Learn(*input.graph);
  core::PowTable pow_table(input.distances, base_config.alpha,
                           base_config.distance_floor_miles);

  const int warmup_sweeps = 2;
  const int timed_sweeps = 5;
  io::TablePrinter table(
      {"threads", "sweep ms", "relationships/sec", "speedup"});
  bench::BenchJson json;
  json.Set("bench", std::string("parallel_scaling"));
  json.Set("users", static_cast<int64_t>(input.graph->num_users()));
  json.Set("relationships_per_sweep",
           static_cast<int64_t>(relationships_per_sweep));
  json.Set("seed", static_cast<int64_t>(world_config.seed));
  json.Set("timed_sweeps", static_cast<int64_t>(timed_sweeps));
  double base_rate = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    core::MlpConfig config = base_config;
    config.num_threads = threads;
    core::GibbsSampler sampler(&input, &config, &space, &random_models,
                               &pow_table);
    engine::ParallelGibbsEngine engine(&sampler, &input, &config);
    Pcg32 rng(config.seed, 0x5bd1e995u);
    engine.Initialize(&rng);
    for (int it = 0; it < warmup_sweeps; ++it) engine.RunSweep(&rng);

    // Snapshot the phase counters around the timed loop: all four thread
    // configs run in one process against the same global registry, so the
    // per-config breakdown must come from diffs, not absolute values.
    const std::map<std::string, uint64_t> before =
        obs::Registry::Global().CounterValues();
    auto start = std::chrono::steady_clock::now();
    for (int it = 0; it < timed_sweeps; ++it) engine.RunSweep(&rng);
    engine.Synchronize();
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    const obs::FitProfile profile = obs::ComputeFitProfile(
        before, obs::Registry::Global().CounterValues(), threads);

    double sweep_ms = elapsed / timed_sweeps * 1000.0;
    double rate = relationships_per_sweep * timed_sweeps / elapsed;
    if (threads == 1) base_rate = rate;
    table.AddRow({std::to_string(threads), StringPrintf("%.1f", sweep_ms),
                  StringPrintf("%.0f", rate),
                  StringPrintf("%.2fx", base_rate > 0 ? rate / base_rate : 0)});
    const std::string prefix = "threads_" + std::to_string(threads);
    json.Set(prefix + "_sweep_ms", sweep_ms);
    json.Set(prefix + "_relationships_per_sec", rate);
    json.Set(prefix + "_speedup", base_rate > 0 ? rate / base_rate : 0.0);
    // Per-phase wall-clock-equivalent breakdown (the "why" behind the
    // speedup number): phase names from the profile, per timed sweep.
    for (const obs::PhaseRow& row : profile.rows) {
      if (row.counter == "-") continue;  // skip the unattributed remainder
      std::string key = row.counter;     // e.g. fit_shard_kernel_ns
      if (key.rfind("fit_", 0) == 0) key = key.substr(4);
      if (key.size() > 3 && key.compare(key.size() - 3, 3, "_ns") == 0) {
        key.resize(key.size() - 3);
      }
      json.Set(prefix + "_phase_" + key + "_ms", row.wall_ms / timed_sweeps);
    }
  }
  table.Print();
  std::printf("phase breakdown (wall-ms/sweep) written alongside the\n"
              "scaling rows in BENCH_parallel.json\n");
  json.WriteTo(bench::BenchJsonPath("BENCH_parallel.json"));
  std::printf(
      "note: speedup requires real cores; inside a 1-core container the\n"
      "multi-thread rows only measure sharding + barrier overhead.\n");
  return 0;
}
