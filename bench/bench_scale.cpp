// Million-user scale benchmark (ISSUE 8): streaming world generation,
// memory-budgeted fit, snapshot packing, and out-of-core (mmap) serving,
// measured per scale leg with honest per-phase peak RSS.
//
// Every phase runs in a re-exec'd child process (`bench_scale --worker
// <phase> ...`) so its VmHWM reflects that phase alone — a fit's peak
// cannot hide behind a generator's, and the serve legs demonstrate the
// out-of-core claim: the mmap worker never holds the model on its heap,
// so its RSS stays a small fraction of the snapshot it serves.
//
// Scale legs: 10k, 100k, 1M users (capped by MLP_SCALE_MAX_USERS so CI
// can stop at 100k). The per-user load is lighter than the paper-
// calibrated bench world (MLP_SCALE_AVG_FRIENDS / MLP_SCALE_AVG_VENUES,
// default 8 / 10) to keep the 1M leg's wall-clock bounded on one core.
//
// Emits BENCH_scale.json; tools/bench_compare.py gates the 10k/100k keys.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/model.h"
#include "eval/methods.h"
#include "geo/gazetteer.h"
#include "io/dataset_io.h"
#include "io/model_snapshot.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "serve/json.h"
#include "serve/read_model.h"
#include "synth/world_generator.h"
#include "text/venue_vocab.h"

namespace mlp {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double Mb(int64_t bytes) { return static_cast<double>(bytes) / 1048576.0; }

// ------------------------------------------------------------- worker side

/// One flat JSON object on stdout — the worker protocol. Everything else
/// the phases print goes to stderr, so the parent parses the last stdout
/// line unambiguously.
void EmitAndExit(BenchJson& json) {
  json.Set("peak_rss_mb", Mb(obs::ProcessPeakRssBytes()));
  json.Set("rss_mb", Mb(obs::ProcessRssBytes()));
  std::printf("%s\n", json.ToString().c_str());
  std::exit(0);
}

[[noreturn]] void WorkerDie(const char* what, const Status& status) {
  std::fprintf(stderr, "bench_scale worker: %s: %s\n", what,
               status.ToString().c_str());
  std::exit(1);
}

synth::WorldConfig ScaleWorldConfig(int users) {
  synth::WorldConfig config;
  config.num_users = users;
  config.seed = static_cast<uint64_t>(EnvInt("MLP_SCALE_SEED", 42));
  config.avg_friends =
      static_cast<double>(EnvInt("MLP_SCALE_AVG_FRIENDS", 8));
  config.avg_tweeted_venues =
      static_cast<double>(EnvInt("MLP_SCALE_AVG_VENUES", 10));
  return config;
}

int WorkerGen(int users, const std::string& dir) {
  Clock::time_point start = Clock::now();
  Result<synth::StreamWorldStats> stats =
      synth::StreamWorldToDataset(ScaleWorldConfig(users), dir);
  if (!stats.ok()) WorkerDie("stream generation", stats.status());
  BenchJson json;
  json.Set("ms", MsSince(start));
  json.Set("following", stats->num_following);
  json.Set("tweeting", stats->num_tweeting);
  json.Set("labeled", stats->num_labeled);
  json.Set("chunks", stats->chunks);
  EmitAndExit(json);
  return 0;
}

/// Shared dataset-loading prologue of the fit / pack / serve-mem phases.
struct LoadedWorld {
  geo::Gazetteer gazetteer = geo::Gazetteer::FromEmbedded();
  std::unique_ptr<geo::CityDistanceMatrix> distances;
  text::VenueVocabulary vocab = text::VenueVocabulary::Build(gazetteer);
  std::unique_ptr<io::LoadedDataset> data;
  std::vector<std::vector<geo::CityId>> referents;
};

LoadedWorld LoadWorldOrDie(const std::string& dir) {
  LoadedWorld world;
  world.distances =
      std::make_unique<geo::CityDistanceMatrix>(world.gazetteer, 1.0);
  Result<io::LoadedDataset> data = io::LoadDataset(dir, world.vocab.size());
  if (!data.ok()) WorkerDie("dataset load", data.status());
  world.data = std::make_unique<io::LoadedDataset>(std::move(*data));
  world.referents = world.vocab.ReferentTable();
  return world;
}

int WorkerFit(const std::string& dir, int budget_mb) {
  Clock::time_point start = Clock::now();
  LoadedWorld world = LoadWorldOrDie(dir);
  const double load_ms = MsSince(start);

  core::ModelInput input;
  input.gazetteer = &world.gazetteer;
  input.graph = &world.data->graph;
  input.distances = world.distances.get();
  input.venue_referents = &world.referents;
  input.observed_home = eval::RegisteredHomes(world.data->graph);

  core::MlpConfig config;
  config.burn_in_iterations = static_cast<int>(EnvInt("MLP_SCALE_BURN", 3));
  config.sampling_iterations =
      static_cast<int>(EnvInt("MLP_SCALE_SAMPLING", 2));
  config.num_threads = static_cast<int>(EnvInt("MLP_SCALE_THREADS", 2));
  config.seed = static_cast<uint64_t>(EnvInt("MLP_SCALE_SEED", 42));

  Clock::time_point fit_start = Clock::now();
  core::FitCheckpoint checkpoint;
  core::FitOptions opts;
  opts.checkpoint_out = &checkpoint;
  opts.mem_budget_mb = budget_mb;
  Result<core::MlpResult> result = core::MlpModel(config).Fit(input, opts);
  if (!result.ok()) WorkerDie("fit", result.status());
  const double fit_ms = MsSince(fit_start);

  const std::string snap = dir + "/model.snap";
  io::ModelSnapshot snapshot =
      io::MakeModelSnapshot(input, checkpoint, *result);
  Status saved = io::SaveModelSnapshot(snap, snapshot);
  if (!saved.ok()) WorkerDie("snapshot save", saved);

  obs::Registry& registry = obs::Registry::Global();
  BenchJson json;
  json.Set("ms", fit_ms);
  json.Set("load_ms", load_ms);
  json.Set("sweep_ms",
           fit_ms / (config.burn_in_iterations + config.sampling_iterations));
  json.Set("budget_mb", static_cast<int64_t>(budget_mb));
  json.Set("accounted_mb",
           Mb(registry.GetGauge(obs::kMemFitAccountedBytes)->Value()));
  json.Set("budget_tightens",
           static_cast<int64_t>(
               registry.GetCounter(obs::kFitBudgetTightenTotal)->Value()));
  EmitAndExit(json);
  return 0;
}

int WorkerPack(const std::string& dir) {
  Clock::time_point start = Clock::now();
  LoadedWorld world = LoadWorldOrDie(dir);
  const std::string snap = dir + "/model.snap";
  Result<io::ModelSnapshot> snapshot = io::LoadModelSnapshot(snap);
  if (!snapshot.ok()) WorkerDie("snapshot load", snapshot.status());
  Result<serve::ReadModel> model = serve::ReadModel::Build(
      *snapshot, world.data->graph, &world.gazetteer);
  if (!model.ok()) WorkerDie("read model build", model.status());
  std::error_code ec;
  const int64_t core_bytes =
      static_cast<int64_t>(std::filesystem::file_size(snap, ec));
  Status packed = model->AppendServeSection(snap);
  if (!packed.ok()) WorkerDie("pack", packed);
  const int64_t total_bytes =
      static_cast<int64_t>(std::filesystem::file_size(snap, ec));
  BenchJson json;
  json.Set("ms", MsSince(start));
  json.Set("snapshot_mb", Mb(total_bytes));
  json.Set("section_mb", Mb(total_bytes - core_bytes));
  EmitAndExit(json);
  return 0;
}

/// The shared query loop: identical operations against either backing, so
/// the p99 comparison is apples-to-apples. Mixed point lookups — the
/// user's rendered JSON plus an edge-index probe (and the edge's JSON when
/// the probe hits) — over a fixed pseudo-random id stream.
void RunQueries(const serve::ReadModel& model, int queries, BenchJson* json) {
  std::mt19937 rng(12345);
  std::uniform_int_distribution<int> pick(0, model.num_users() - 1);
  int64_t bytes_served = 0;
  std::vector<double> latency_us;
  latency_us.reserve(queries);
  for (int i = -100; i < queries; ++i) {  // 100 warm-up iterations
    const graph::UserId u = pick(rng);
    Clock::time_point t0 = Clock::now();
    bytes_served += static_cast<int64_t>(model.UserJson(u).size());
    const graph::EdgeId e = model.FindEdge(u, u + 1);
    if (e >= 0) bytes_served += static_cast<int64_t>(model.EdgeJson(e).size());
    if (i >= 0) {
      latency_us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count());
    }
  }
  std::sort(latency_us.begin(), latency_us.end());
  json->Set("p50_us", latency_us[latency_us.size() / 2]);
  json->Set("p99_us", latency_us[latency_us.size() * 99 / 100]);
  json->Set("bytes_served", bytes_served);
}

int WorkerServeMmap(const std::string& dir, int queries) {
  const std::string snap = dir + "/model.snap";
  Clock::time_point start = Clock::now();
  Result<serve::ReadModel> model =
      serve::ReadModel::MapServeSection(snap, nullptr);
  if (!model.ok()) WorkerDie("map serve section", model.status());
  BenchJson json;
  json.Set("map_ms", MsSince(start));
  RunQueries(*model, queries, &json);
  std::error_code ec;
  json.Set("snapshot_mb",
           Mb(static_cast<int64_t>(std::filesystem::file_size(snap, ec))));
  EmitAndExit(json);
  return 0;
}

int WorkerServeMem(const std::string& dir, int queries) {
  Clock::time_point start = Clock::now();
  LoadedWorld world = LoadWorldOrDie(dir);
  const std::string snap = dir + "/model.snap";
  Result<io::ModelSnapshot> snapshot = io::LoadModelSnapshot(snap);
  if (!snapshot.ok()) WorkerDie("snapshot load", snapshot.status());
  Result<serve::ReadModel> model = serve::ReadModel::Build(
      *snapshot, world.data->graph, &world.gazetteer);
  if (!model.ok()) WorkerDie("read model build", model.status());
  BenchJson json;
  json.Set("map_ms", MsSince(start));
  RunQueries(*model, queries, &json);
  EmitAndExit(json);
  return 0;
}

// ------------------------------------------------------------- parent side

/// Runs one worker phase as a child process and parses the JSON line it
/// prints. Aborts the bench on any child failure — a missing leg must not
/// silently produce a BENCH json that looks complete.
serve::JsonValue RunWorker(const std::string& exe, const std::string& phase,
                           int users, const std::string& dir, int budget_mb,
                           int queries) {
  std::string cmd = exe + " --worker " + phase + " --users " +
                    std::to_string(users) + " --dir " + dir + " --budget " +
                    std::to_string(budget_mb) + " --queries " +
                    std::to_string(queries);
  std::fprintf(stderr, "[bench_scale] %s\n", cmd.c_str());
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    std::fprintf(stderr, "bench_scale: popen failed for %s\n", cmd.c_str());
    std::exit(1);
  }
  std::string out;
  char buf[4096];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  const int rc = pclose(pipe);
  if (rc != 0) {
    std::fprintf(stderr, "bench_scale: worker '%s' exited %d\n",
                 phase.c_str(), rc);
    std::exit(1);
  }
  // The worker's stdout is exactly one (pretty-printed) JSON object.
  const size_t begin = out.find('{');
  if (begin == std::string::npos) {
    std::fprintf(stderr, "bench_scale: worker '%s' printed no JSON\n",
                 phase.c_str());
    std::exit(1);
  }
  Result<serve::JsonValue> parsed = serve::ParseJson(out.substr(begin));
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_scale: worker '%s' output unparsable: %s\n",
                 phase.c_str(), out.c_str());
    std::exit(1);
  }
  return std::move(*parsed);
}

struct ScaleLeg {
  const char* label;
  int users;
  int default_budget_mb;  // calibrated on the baseline box; env-overridable
  int queries;
};

double Num(const serve::JsonValue& json, const char* key) {
  const serve::JsonValue* v = json.Find(key);
  return v == nullptr ? 0.0 : v->AsDouble();
}

int ParentMain() {
  const int64_t max_users = EnvInt("MLP_SCALE_MAX_USERS", 1000000);
  // Budget defaults leave ~5-10% headroom over the measured fit peak on
  // the reference box, so enforcement is armed and the "peak RSS within
  // 10% of budget" acceptance band holds.
  const std::vector<ScaleLeg> legs = {
      {"10k", 10000, static_cast<int>(EnvInt("MLP_SCALE_BUDGET_MB_10K", 170)),
       20000},
      {"100k", 100000,
       static_cast<int>(EnvInt("MLP_SCALE_BUDGET_MB_100K", 1500)), 20000},
      {"1m", 1000000,
       static_cast<int>(EnvInt("MLP_SCALE_BUDGET_MB_1M", 14000)), 10000},
  };

  char exe[4096];
  const ssize_t n = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n <= 0) {
    std::fprintf(stderr, "bench_scale: cannot resolve own binary path\n");
    return 1;
  }
  exe[n] = '\0';

  BenchJson json;
  json.Set("avg_friends", EnvInt("MLP_SCALE_AVG_FRIENDS", 8));
  json.Set("avg_venues", EnvInt("MLP_SCALE_AVG_VENUES", 10));
  json.Set("threads", EnvInt("MLP_SCALE_THREADS", 2));
  json.Set("burn", EnvInt("MLP_SCALE_BURN", 3));
  json.Set("sampling", EnvInt("MLP_SCALE_SAMPLING", 2));

  for (const ScaleLeg& leg : legs) {
    if (leg.users > max_users) {
      std::fprintf(stderr, "[bench_scale] skipping %s leg (max_users=%" PRId64
                           ")\n", leg.label, max_users);
      continue;
    }
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         (std::string("mlp_scale_") + leg.label))
            .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string p = std::string(leg.label) + "_";

    serve::JsonValue gen = RunWorker(exe, "gen", leg.users, dir, 0, 0);
    json.Set(p + "users", static_cast<int64_t>(leg.users));
    json.Set(p + "gen_ms", Num(gen, "ms"));
    json.Set(p + "gen_peak_rss_mb", Num(gen, "peak_rss_mb"));
    json.Set(p + "gen_following", static_cast<int64_t>(Num(gen, "following")));
    json.Set(p + "gen_chunks", static_cast<int64_t>(Num(gen, "chunks")));

    serve::JsonValue fit =
        RunWorker(exe, "fit", leg.users, dir, leg.default_budget_mb, 0);
    json.Set(p + "fit_ms", Num(fit, "ms"));
    json.Set(p + "sweep_ms", Num(fit, "sweep_ms"));
    json.Set(p + "fit_peak_rss_mb", Num(fit, "peak_rss_mb"));
    json.Set(p + "fit_budget_mb", static_cast<int64_t>(leg.default_budget_mb));
    json.Set(p + "fit_accounted_mb", Num(fit, "accounted_mb"));
    json.Set(p + "fit_budget_tightens",
             static_cast<int64_t>(Num(fit, "budget_tightens")));

    serve::JsonValue pack = RunWorker(exe, "pack", leg.users, dir, 0, 0);
    json.Set(p + "pack_ms", Num(pack, "ms"));
    json.Set(p + "snapshot_mb", Num(pack, "snapshot_mb"));
    json.Set(p + "serve_section_mb", Num(pack, "section_mb"));

    serve::JsonValue mmap =
        RunWorker(exe, "serve-mmap", leg.users, dir, 0, leg.queries);
    json.Set(p + "mmap_p50_us", Num(mmap, "p50_us"));
    json.Set(p + "mmap_p99_us", Num(mmap, "p99_us"));
    json.Set(p + "mmap_serve_rss_mb", Num(mmap, "rss_mb"));
    if (Num(mmap, "snapshot_mb") > 0) {
      json.Set(p + "serve_rss_over_snapshot_pct",
               100.0 * Num(mmap, "rss_mb") / Num(mmap, "snapshot_mb"));
    }

    if (leg.users == 100000) {
      // The in-memory comparison leg: same queries, heap-resident model.
      serve::JsonValue mem =
          RunWorker(exe, "serve-mem", leg.users, dir, 0, leg.queries);
      json.Set(p + "mem_p50_us", Num(mem, "p50_us"));
      json.Set(p + "mem_p99_us", Num(mem, "p99_us"));
      json.Set(p + "mem_serve_rss_mb", Num(mem, "rss_mb"));
      const double mem_p99 = Num(mem, "p99_us");
      if (mem_p99 > 0) {
        json.Set("mmap_over_mem_p99",
                 Num(mmap, "p99_us") / mem_p99);
      }
    }
    if (EnvInt("MLP_SCALE_KEEP", 0) == 0) std::filesystem::remove_all(dir);
  }

  const std::string path = BenchJsonPath("BENCH_scale.json");
  std::printf("%s\n", json.ToString().c_str());
  if (!json.WriteTo(path)) {
    std::fprintf(stderr, "bench_scale: failed to write %s\n", path.c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  std::string phase, dir;
  int users = 0, budget_mb = 0, queries = 10000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--worker") phase = next();
    else if (arg == "--users") users = std::atoi(next());
    else if (arg == "--dir") dir = next();
    else if (arg == "--budget") budget_mb = std::atoi(next());
    else if (arg == "--queries") queries = std::atoi(next());
  }
  if (phase.empty()) return ParentMain();
  if (phase == "gen") return WorkerGen(users, dir);
  if (phase == "fit") return WorkerFit(dir, budget_mb);
  if (phase == "pack") return WorkerPack(dir);
  if (phase == "serve-mmap") return WorkerServeMmap(dir, queries);
  if (phase == "serve-mem") return WorkerServeMem(dir, queries);
  std::fprintf(stderr, "bench_scale: unknown worker phase '%s'\n",
               phase.c_str());
  return 1;
}

}  // namespace
}  // namespace bench
}  // namespace mlp

int main(int argc, char** argv) { return mlp::bench::Main(argc, argv); }
