// bench_serving_latency — latency and throughput of the online query
// subsystem (src/serve/, ISSUE 4): fits a model on a synthetic world,
// serves it through a real ModelServer on an ephemeral loopback port, and
// measures
//   - sequential point-query latency (p50/p99) and QPS over one
//     keep-alive connection,
//   - concurrent point-query QPS with one client connection per server
//     thread,
//   - batch-endpoint QPS (POST /v1/batch, 64 lookups per request), whose
//     coalescing is the serving layer's core throughput lever (acceptance:
//     >= 3x sequential point QPS at 8 threads),
//   - cache-hot point QPS (same target re-fetched, sharded LRU hit path),
// for server thread counts 1/2/4/8. Emits BENCH_serving.json for the CI
// perf-trajectory artifact next to BENCH_parallel.json / BENCH_pruning.json.
//
// Env: MLP_BENCH_SERVE_USERS (default 600), MLP_BENCH_SERVE_QUERIES
// (default 2000), MLP_BENCH_SEED, MLP_BENCH_JSON_DIR.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/model.h"
#include "io/model_snapshot.h"
#include "io/table_printer.h"
#include "serve/http_server.h"
#include "serve/model_server.h"
#include "serve/read_model.h"
#include "synth/world_generator.h"

namespace {

using namespace mlp;
using Clock = std::chrono::steady_clock;

using bench::EnvInt;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

double PercentileMs(std::vector<double>* micros, double p) {
  if (micros->empty()) return 0.0;
  std::sort(micros->begin(), micros->end());
  size_t idx = static_cast<size_t>(p * (micros->size() - 1));
  return (*micros)[idx] / 1000.0;
}

struct PointRun {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// `queries` sequential GETs over one keep-alive connection.
PointRun RunSequentialPoint(int port, const std::vector<std::string>& targets) {
  Result<serve::HttpClient> client = serve::HttpClient::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<double> micros;
  micros.reserve(targets.size());
  Clock::time_point begin = Clock::now();
  for (const std::string& target : targets) {
    Clock::time_point t0 = Clock::now();
    Result<serve::HttpResponse> response = client->RoundTrip("GET", target);
    Clock::time_point t1 = Clock::now();
    if (!response.ok() || response->status != 200) {
      std::fprintf(stderr, "query %s failed\n", target.c_str());
      std::exit(1);
    }
    micros.push_back(Seconds(t0, t1) * 1e6);
  }
  PointRun run;
  run.qps = targets.size() / Seconds(begin, Clock::now());
  run.p50_ms = PercentileMs(&micros, 0.50);
  run.p99_ms = PercentileMs(&micros, 0.99);
  return run;
}

/// The same queries spread over `clients` concurrent connections.
double RunConcurrentPoint(int port, const std::vector<std::string>& targets,
                          int clients) {
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  Clock::time_point begin = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&] {
      Result<serve::HttpClient> client =
          serve::HttpClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failed.store(true);
        return;
      }
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= targets.size()) return;
        Result<serve::HttpResponse> response =
            client->RoundTrip("GET", targets[i]);
        if (!response.ok() || response->status != 200) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (failed.load()) {
    std::fprintf(stderr, "concurrent point run failed\n");
    std::exit(1);
  }
  return targets.size() / Seconds(begin, Clock::now());
}

/// The same user lookups coalesced into POST /v1/batch bodies of
/// `batch_size`; returns lookups (not HTTP requests) per second.
double RunBatch(int port, const std::vector<graph::UserId>& users,
                int batch_size) {
  Result<serve::HttpClient> client = serve::HttpClient::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    std::exit(1);
  }
  Clock::time_point begin = Clock::now();
  size_t done = 0;
  while (done < users.size()) {
    size_t end = std::min(users.size(), done + batch_size);
    std::string body = "{\"users\":[";
    for (size_t i = done; i < end; ++i) {
      if (i > done) body += ',';
      body += std::to_string(users[i]);
    }
    body += "]}";
    Result<serve::HttpResponse> response =
        client->RoundTrip("POST", "/v1/batch", body);
    if (!response.ok() || response->status != 200) {
      std::fprintf(stderr, "batch failed\n");
      std::exit(1);
    }
    done = end;
  }
  return users.size() / Seconds(begin, Clock::now());
}

}  // namespace

int main() {
  const int num_users = static_cast<int>(EnvInt("MLP_BENCH_SERVE_USERS", 600));
  const int num_queries =
      static_cast<int>(EnvInt("MLP_BENCH_SERVE_QUERIES", 2000));
  const uint64_t seed = static_cast<uint64_t>(EnvInt("MLP_BENCH_SEED", 20120827));

  std::printf("bench_serving_latency: %d users, %d queries per mode\n",
              num_users, num_queries);
  synth::WorldConfig world_config;
  world_config.num_users = num_users;
  world_config.seed = seed;
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(world_config);
  if (!world.ok()) {
    std::fprintf(stderr, "world generation failed\n");
    return 1;
  }

  core::ModelInput input;
  input.gazetteer = world->gazetteer.get();
  input.graph = world->graph.get();
  input.distances = world->distances.get();
  auto referents = world->vocab->ReferentTable();
  input.venue_referents = &referents;
  for (graph::UserId u = 0; u < world->graph->num_users(); ++u) {
    input.observed_home.push_back(world->graph->user(u).registered_city);
  }

  core::MlpConfig fit_config;
  fit_config.burn_in_iterations = 4;
  fit_config.sampling_iterations = 4;
  fit_config.seed = seed;
  core::FitCheckpoint checkpoint;
  core::FitOptions fit_options;
  fit_options.checkpoint_out = &checkpoint;
  Clock::time_point fit_begin = Clock::now();
  Result<core::MlpResult> result =
      core::MlpModel(fit_config).Fit(input, fit_options);
  if (!result.ok()) {
    std::fprintf(stderr, "fit failed\n");
    return 1;
  }
  std::printf("fit done in %.1fs\n", Seconds(fit_begin, Clock::now()));
  io::ModelSnapshot snapshot = io::MakeModelSnapshot(input, checkpoint, *result);

  // Query mix: uniform random users (and the /v1/user targets derived
  // from them), identical across thread counts and modes.
  Pcg32 rng(seed);
  std::vector<graph::UserId> query_users(num_queries);
  std::vector<std::string> targets(num_queries);
  for (int i = 0; i < num_queries; ++i) {
    query_users[i] = static_cast<graph::UserId>(
        rng.UniformU32(world->graph->num_users()));
    targets[i] = "/v1/user/" + std::to_string(query_users[i]);
  }

  bench::BenchJson json;
  json.Set("bench", std::string("serving_latency"));
  json.Set("users", static_cast<int64_t>(num_users));
  json.Set("queries", static_cast<int64_t>(num_queries));
  json.Set("batch_size", static_cast<int64_t>(64));

  io::TablePrinter table({"threads", "point QPS", "p50 ms", "p99 ms",
                          "conc QPS", "batch QPS", "cached QPS",
                          "batch/point"});
  double point_qps_8 = 0.0, batch_qps_8 = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    Result<serve::ReadModel> model = serve::ReadModel::Build(
        snapshot, *world->graph, world->gazetteer.get());
    if (!model.ok()) {
      std::fprintf(stderr, "read model build failed\n");
      return 1;
    }
    serve::ServeOptions options;
    options.port = 0;  // ephemeral
    options.threads = threads;
    options.cache_mb = 0;  // measure the render path, not the cache
    serve::ModelServer server(std::move(*model), options);
    if (!server.Start().ok()) {
      std::fprintf(stderr, "server start failed\n");
      return 1;
    }
    const int port = server.port();

    PointRun point = RunSequentialPoint(port, targets);
    double concurrent_qps = RunConcurrentPoint(port, targets, threads);
    double batch_qps = RunBatch(port, query_users, 64);
    server.Stop();

    // Cache-hot path on a separate server so the cold measurements above
    // stay uncached.
    Result<serve::ReadModel> cached_model = serve::ReadModel::Build(
        snapshot, *world->graph, world->gazetteer.get());
    serve::ServeOptions cached_options = options;
    cached_options.cache_mb = 64;
    serve::ModelServer cached_server(std::move(*cached_model), cached_options);
    if (!cached_server.Start().ok()) {
      std::fprintf(stderr, "cached server start failed\n");
      return 1;
    }
    PointRun cached = RunSequentialPoint(cached_server.port(), targets);
    cached_server.Stop();

    double speedup = point.qps > 0.0 ? batch_qps / point.qps : 0.0;
    table.AddRow({std::to_string(threads),
                  StringPrintf("%.0f", point.qps),
                  StringPrintf("%.3f", point.p50_ms),
                  StringPrintf("%.3f", point.p99_ms),
                  StringPrintf("%.0f", concurrent_qps),
                  StringPrintf("%.0f", batch_qps),
                  StringPrintf("%.0f", cached.qps),
                  StringPrintf("%.1fx", speedup)});
    std::string prefix = "threads_" + std::to_string(threads) + "_";
    json.Set(prefix + "point_qps", point.qps);
    json.Set(prefix + "point_p50_ms", point.p50_ms);
    json.Set(prefix + "point_p99_ms", point.p99_ms);
    json.Set(prefix + "concurrent_qps", concurrent_qps);
    json.Set(prefix + "batch_qps", batch_qps);
    json.Set(prefix + "cached_qps", cached.qps);
    json.Set(prefix + "batch_speedup", speedup);
    if (threads == 8) {
      point_qps_8 = point.qps;
      batch_qps_8 = batch_qps;
    }
  }
  table.Print();

  const double speedup_8 =
      point_qps_8 > 0.0 ? batch_qps_8 / point_qps_8 : 0.0;
  json.Set("batch_speedup_at_8_threads", speedup_8);
  std::printf("batch endpoint speedup at 8 threads: %.1fx %s\n", speedup_8,
              speedup_8 >= 3.0 ? "(meets >=3x acceptance)"
                               : "(BELOW 3x acceptance)");
  json.WriteTo(bench::BenchJsonPath("BENCH_serving.json"));
  return speedup_8 >= 3.0 ? 0 : 1;
}
