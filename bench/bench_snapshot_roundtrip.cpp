// Snapshot subsystem benchmark (src/io/model_snapshot): save / load
// throughput of the arena-backed model snapshot, and the warm-start payoff
// — sweeps a resumed fit still has to run, versus a cold fit, to reach the
// same final quality (they reach the *identical* result by construction;
// the saving is every sweep already banked in the checkpoint).
//
// MLP_BENCH_SNAPSHOT_USERS overrides the world size; MLP_BENCH_SEED the
// seed.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/model.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "io/model_snapshot.h"
#include "io/table_printer.h"
#include "synth/world_generator.h"

namespace {

using namespace mlp;

long long EnvOr(const char* name, long long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoll(value) : fallback;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  synth::WorldConfig world_config;
  world_config.num_users =
      static_cast<int>(EnvOr("MLP_BENCH_SNAPSHOT_USERS", 20000));
  world_config.seed = static_cast<uint64_t>(EnvOr("MLP_BENCH_SEED", 20120827));

  std::printf("generating %d-user world...\n", world_config.num_users);
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(world_config);
  if (!world.ok()) {
    std::fprintf(stderr, "world generation failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }

  core::ModelInput input;
  input.gazetteer = world->gazetteer.get();
  input.graph = world->graph.get();
  input.distances = world->distances.get();
  std::vector<std::vector<geo::CityId>> referents =
      world->vocab->ReferentTable();
  input.venue_referents = &referents;
  input.observed_home.reserve(world->graph->num_users());
  for (graph::UserId u = 0; u < world->graph->num_users(); ++u) {
    input.observed_home.push_back(world->graph->user(u).registered_city);
  }

  core::MlpConfig config;
  config.burn_in_iterations = 6;
  config.sampling_iterations = 8;
  const int total_sweeps =
      config.burn_in_iterations + config.sampling_iterations;
  const int checkpoint_at = config.burn_in_iterations;  // end of burn-in

  // ---- cold fit to completion, checkpointing nothing ----
  auto start = std::chrono::steady_clock::now();
  core::FitCheckpoint full_checkpoint;
  core::FitOptions full_opts;
  full_opts.checkpoint_out = &full_checkpoint;
  Result<core::MlpResult> cold = core::MlpModel(config).Fit(input, full_opts);
  if (!cold.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", cold.status().ToString().c_str());
    return 1;
  }
  const double cold_seconds = Seconds(start);

  // ---- interrupted fit: stop at the checkpoint and persist it ----
  core::FitCheckpoint checkpoint;
  core::FitOptions cold_half;
  cold_half.max_total_sweeps = checkpoint_at;
  cold_half.checkpoint_out = &checkpoint;
  Result<core::MlpResult> partial =
      core::MlpModel(config).Fit(input, cold_half);
  if (!partial.ok()) {
    std::fprintf(stderr, "partial fit failed: %s\n",
                 partial.status().ToString().c_str());
    return 1;
  }

  const std::string path =
      (std::filesystem::temp_directory_path() / "mlp_bench_roundtrip.snap")
          .string();
  io::ModelSnapshot snapshot =
      io::MakeModelSnapshot(input, checkpoint, *partial);

  start = std::chrono::steady_clock::now();
  Status saved = io::SaveModelSnapshot(path, snapshot);
  const double save_seconds = Seconds(start);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  const double size_mb =
      static_cast<double>(std::filesystem::file_size(path)) / (1024.0 * 1024.0);

  start = std::chrono::steady_clock::now();
  Result<io::ModelSnapshot> loaded = io::LoadModelSnapshot(path);
  const double load_seconds = Seconds(start);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }

  // ---- warm-start resume from the loaded snapshot ----
  start = std::chrono::steady_clock::now();
  core::FitOptions warm;
  warm.warm_start = &loaded->checkpoint;
  Result<core::MlpResult> resumed = core::MlpModel(config).Fit(input, warm);
  const double resume_seconds = Seconds(start);
  if (!resumed.ok()) {
    std::fprintf(stderr, "resume failed: %s\n",
                 resumed.status().ToString().c_str());
    return 1;
  }

  // Quality check: identical homes is the warm-start contract.
  std::vector<geo::CityId> registered =
      eval::RegisteredHomes(*world->graph);
  std::vector<graph::UserId> all_users;
  for (graph::UserId u = 0; u < world->graph->num_users(); ++u) {
    all_users.push_back(u);
  }
  const double cold_acc = eval::AccuracyWithin(cold->home, registered,
                                               all_users, *world->distances,
                                               100.0);
  const double warm_acc = eval::AccuracyWithin(resumed->home, registered,
                                               all_users, *world->distances,
                                               100.0);
  const bool identical = cold->home == resumed->home;

  io::TablePrinter table({"metric", "value"});
  table.AddRow({"snapshot size", StringPrintf("%.1f MB", size_mb)});
  table.AddRow({"save throughput",
                StringPrintf("%.0f MB/s", size_mb / save_seconds)});
  table.AddRow({"load throughput",
                StringPrintf("%.0f MB/s", size_mb / load_seconds)});
  table.AddRow({"cold fit sweeps", std::to_string(total_sweeps)});
  table.AddRow({"warm resume sweeps",
                std::to_string(total_sweeps - checkpoint_at)});
  table.AddRow({"cold fit time", StringPrintf("%.2f s", cold_seconds)});
  table.AddRow({"warm resume time", StringPrintf("%.2f s", resume_seconds)});
  table.AddRow({"cold ACC@100", StringPrintf("%.2f%%", cold_acc * 100.0)});
  table.AddRow({"warm ACC@100", StringPrintf("%.2f%%", warm_acc * 100.0)});
  table.AddRow({"results identical", identical ? "yes" : "NO (bug!)"});
  table.Print();

  std::error_code ec;
  std::filesystem::remove(path, ec);
  return identical ? 0 : 1;
}
