// Streaming delta ingest vs full refit (ISSUE 5 / ROADMAP "streaming
// updates"): fits the paper-calibrated power-law world once, then absorbs
// a delta batch — a burst of new users following a handful of hub
// accounts, with fresh tweets — two ways:
//   - full refit: rerun the whole sweep program over the merged world
//     (what a batch system would do), and
//   - streaming ingest: stream::ApplyDeltaBatch — candidate migration plus
//     warm resampling of ONLY the delta-touched shards.
// Reports ingest latency, the touched-shard fraction, the speedup over the
// refit, and Table-2 home-prediction accuracy of both merged models on the
// same held-out fold (the <1% acceptance delta). Results land in
// BENCH_streaming.json for the CI bench-regression gate.
//
// Env overrides: MLP_BENCH_STREAM_USERS (default 4000),
// MLP_BENCH_STREAM_THREADS (default 8), MLP_BENCH_STREAM_NEW_USERS
// (default 12), MLP_BENCH_SEED, MLP_BENCH_JSON_DIR.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/model.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "io/table_printer.h"
#include "stream/delta_batch.h"
#include "stream/delta_ingest.h"
#include "synth/world_generator.h"

namespace {

using namespace mlp;

double Seconds(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// A localized burst: `count` new users (half labeled) who all follow a
// small set of hub accounts, plus a few tweets each. Locality is the
// realistic shape (new accounts cluster around popular ones) and what
// shard-scoped resampling exploits.
stream::DeltaBatch MakeBurstDelta(const graph::SocialGraph& base,
                                  int count, uint64_t seed) {
  stream::DeltaBatch delta;
  Pcg32 rng(seed, 0x7fb5d329728ea185ULL);
  const int hubs = 4;
  std::vector<graph::UserId> hub_ids;
  for (int h = 0; h < hubs; ++h) {
    hub_ids.push_back(static_cast<graph::UserId>(
        rng.UniformU32(static_cast<uint32_t>(base.num_users()))));
  }
  for (int i = 0; i < count; ++i) {
    graph::UserRecord record;
    record.handle = "stream_burst_" + std::to_string(i);
    if (i % 2 == 0) {
      // Labeled newcomers supervise their own row, like the fit workflow.
      record.registered_city = static_cast<geo::CityId>(rng.UniformU32(40));
    }
    const graph::UserId id =
        base.num_users() + static_cast<graph::UserId>(i);
    delta.users.push_back(std::move(record));
    for (int e = 0; e < 2; ++e) {
      delta.following.push_back(
          {id, hub_ids[rng.UniformU32(static_cast<uint32_t>(hubs))]});
    }
    for (int t = 0; t < 3; ++t) {
      delta.tweeting.push_back(
          {id, static_cast<graph::VenueId>(
                   rng.UniformU32(static_cast<uint32_t>(base.num_venues())))});
    }
  }
  return delta;
}

}  // namespace

int main() {
  synth::WorldConfig world_config = bench::BenchWorldConfig();
  world_config.num_users = static_cast<int>(
      bench::EnvInt("MLP_BENCH_STREAM_USERS", world_config.num_users));
  const int threads =
      static_cast<int>(bench::EnvInt("MLP_BENCH_STREAM_THREADS", 8));
  const int new_users =
      static_cast<int>(bench::EnvInt("MLP_BENCH_STREAM_NEW_USERS", 12));

  std::printf("generating %d-user power-law world...\n",
              world_config.num_users);
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(world_config);
  if (!world.ok()) {
    std::fprintf(stderr, "world generation failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<geo::CityId>> referents =
      world->vocab->ReferentTable();
  std::vector<geo::CityId> registered = eval::RegisteredHomes(*world->graph);
  eval::FoldAssignment folds = eval::MakeKFolds(registered, 5, 17);
  std::vector<graph::UserId> test_users = folds.TestUsers(0);

  core::ModelInput base_input;
  base_input.gazetteer = world->gazetteer.get();
  base_input.graph = world->graph.get();
  base_input.distances = world->distances.get();
  base_input.venue_referents = &referents;
  base_input.observed_home = folds.MaskedHomes(registered, 0);

  core::MlpConfig config = bench::BenchMlpConfig();
  config.num_threads = threads;

  // ---- base fit (the model the stream lands on) ----
  std::printf("base fit: %d users, %d following, %d tweeting, %d threads\n",
              base_input.graph->num_users(),
              base_input.graph->num_following(),
              base_input.graph->num_tweeting(), threads);
  core::FitCheckpoint base_checkpoint;
  core::FitOptions fit_opts;
  fit_opts.checkpoint_out = &base_checkpoint;
  auto t0 = std::chrono::steady_clock::now();
  Result<core::MlpResult> base_result =
      core::MlpModel(config).Fit(base_input, fit_opts);
  if (!base_result.ok()) {
    std::fprintf(stderr, "base fit failed: %s\n",
                 base_result.status().ToString().c_str());
    return 1;
  }
  const double base_fit_seconds = Seconds(t0);

  stream::DeltaBatch delta =
      MakeBurstDelta(*world->graph, new_users, world_config.seed);

  // ---- streaming ingest ----
  t0 = std::chrono::steady_clock::now();
  Result<stream::IngestOutput> ingested = stream::ApplyDeltaBatch(
      base_input, base_checkpoint, *base_result, delta);
  if (!ingested.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 ingested.status().ToString().c_str());
    return 1;
  }
  const double ingest_seconds = Seconds(t0);
  const core::DeltaReport& report = ingested->report;
  const double touched_fraction =
      report.shards_total > 0
          ? static_cast<double>(report.shards_touched) / report.shards_total
          : 1.0;

  core::ModelInput merged_input = base_input;
  merged_input.graph = ingested->merged_graph.get();
  merged_input.observed_home = ingested->merged_observed_home;

  // ---- full refit over the merged world (the batch alternative) ----
  t0 = std::chrono::steady_clock::now();
  Result<core::MlpResult> refit = core::MlpModel(config).Fit(merged_input);
  if (!refit.ok()) {
    std::fprintf(stderr, "full refit failed: %s\n",
                 refit.status().ToString().c_str());
    return 1;
  }
  const double refit_seconds = Seconds(t0);
  const double speedup =
      ingest_seconds > 0.0 ? refit_seconds / ingest_seconds : 0.0;

  // ---- Table-2 accuracy of both merged models, same held-out fold ----
  const double acc100_ingest = eval::AccuracyWithin(
      ingested->result.home, registered, test_users, *world->distances, 100.0);
  const double acc20_ingest = eval::AccuracyWithin(
      ingested->result.home, registered, test_users, *world->distances, 20.0);
  const double acc100_refit = eval::AccuracyWithin(
      refit->home, registered, test_users, *world->distances, 100.0);
  const double acc20_refit = eval::AccuracyWithin(
      refit->home, registered, test_users, *world->distances, 20.0);
  const double delta100 = (acc100_ingest - acc100_refit) * 100.0;
  const double delta20 = (acc20_ingest - acc20_refit) * 100.0;

  io::TablePrinter table({"path", "seconds", "ACC@100", "ACC@20"});
  table.AddRow({"full refit", StringPrintf("%.2f", refit_seconds),
                StringPrintf("%.2f%%", acc100_refit * 100.0),
                StringPrintf("%.2f%%", acc20_refit * 100.0)});
  table.AddRow({"streaming ingest", StringPrintf("%.2f", ingest_seconds),
                StringPrintf("%.2f%%", acc100_ingest * 100.0),
                StringPrintf("%.2f%%", acc20_ingest * 100.0)});
  table.Print();
  std::printf(
      "+%d users/+%d follows/+%d tweets: ingest %.3fs vs refit %.2fs -> "
      "%.1fx; %d/%d shards touched (%.2f), %d rows migrated; "
      "ACC delta %+.2f%% @100mi / %+.2f%% @20mi (base fit %.2fs)\n",
      report.new_users, report.new_following, report.new_tweeting,
      ingest_seconds, refit_seconds, speedup, report.shards_touched,
      report.shards_total, touched_fraction, report.migrated_rows, delta100,
      delta20, base_fit_seconds);
  if (speedup < 5.0) {
    std::printf("WARNING: ingest speedup %.1fx below the 5x acceptance\n",
                speedup);
  }
  if (delta100 < -1.0 || delta20 < -1.0) {
    std::printf("WARNING: ingest accuracy fell >1%% behind the full refit\n");
  }

  bench::BenchJson json;
  json.Set("bench", std::string("streaming_ingest"));
  json.Set("users", static_cast<int64_t>(base_input.graph->num_users()));
  json.Set("threads", static_cast<int64_t>(threads));
  json.Set("seed", static_cast<int64_t>(world_config.seed));
  json.Set("delta_users", static_cast<int64_t>(report.new_users));
  json.Set("delta_following", static_cast<int64_t>(report.new_following));
  json.Set("delta_tweeting", static_cast<int64_t>(report.new_tweeting));
  json.Set("base_fit_seconds", base_fit_seconds);
  json.Set("ingest_seconds", ingest_seconds);
  json.Set("refit_seconds", refit_seconds);
  json.Set("ingest_speedup", speedup);
  json.Set("shards_touched", static_cast<int64_t>(report.shards_touched));
  json.Set("shards_total", static_cast<int64_t>(report.shards_total));
  json.Set("touched_shard_fraction", touched_fraction);
  json.Set("migrated_rows", static_cast<int64_t>(report.migrated_rows));
  json.Set("acc100_refit_pct", acc100_refit * 100.0);
  json.Set("acc100_ingest_pct", acc100_ingest * 100.0);
  json.Set("acc20_refit_pct", acc20_refit * 100.0);
  json.Set("acc20_ingest_pct", acc20_ingest * 100.0);
  json.Set("acc_delta_100mi_pct", delta100);
  json.Set("acc_delta_20mi_pct", delta20);
  json.WriteTo(bench::BenchJsonPath("BENCH_streaming.json"));
  return 0;
}
