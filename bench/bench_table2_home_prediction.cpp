// Table 2: home location prediction, ACC@100, five-fold cross validation.
//
// Paper row:  BaseU 52.44%  BaseC 49.67%  MLP_U 58.8%  MLP_C 55.3%  MLP 62.3%
// Headline claims: MLP beats the best baseline by ~10 points; each source
// helps; integrating both is best.

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

#include "bench/bench_util.h"
#include "eval/metrics.h"
#include "io/table_printer.h"

int main() {
  using namespace mlp;
  bench::BenchContext context(bench::BenchWorldConfig());
  bench::PrintHeader("Table 2: home location prediction (ACC@100)",
                     "BaseU 52.44 / BaseC 49.67 / MLP_U 58.8 / MLP_C 55.3 / "
                     "MLP 62.3 (%)",
                     context);
  const int folds = bench::BenchFoldCount(5);
  std::printf("evaluating %d of 5 folds (MLP_BENCH_FOLDS to change)\n\n",
              folds);

  const char* names[] = {"BaseU", "BaseC", "MLP_U", "MLP_C", "MLP"};
  io::TablePrinter table({"Method", "ACC@100(measured)", "ACC@100(paper)"});
  const char* paper[] = {"52.44%", "49.67%", "58.8%", "55.3%", "62.3%"};
  double measured[5] = {0, 0, 0, 0, 0};
  for (int m = 0; m < 5; ++m) {
    double total = 0.0;
    for (int fold = 0; fold < folds; ++fold) {
      const eval::MethodOutput& out = context.Run(names[m], fold);
      total += eval::AccuracyWithin(out.home, context.registered(),
                                    context.TestUsers(fold),
                                    *context.world().distances, 100.0);
    }
    measured[m] = total / folds;
    table.AddRow({names[m], StringPrintf("%.2f%%", measured[m] * 100.0),
                  paper[m]});
  }
  table.Print();

  double best_base = std::max(measured[0], measured[1]);
  std::printf(
      "\nshape checks (paper Sec. 5.1):\n"
      "  MLP > BaseU:                 %s (+%.1f pts; paper +9.9)\n"
      "  MLP > BaseC:                 %s (+%.1f pts; paper +12.6)\n"
      "  MLP_C > BaseC:               %s (+%.1f pts; paper +5.6)\n"
      "  MLP >= max(MLP_U, MLP_C):    %s\n"
      "  MLP beats best baseline by ~10 pts: measured +%.1f\n",
      measured[4] > measured[0] ? "HOLDS" : "VIOLATED",
      (measured[4] - measured[0]) * 100.0,
      measured[4] > measured[1] ? "HOLDS" : "VIOLATED",
      (measured[4] - measured[1]) * 100.0,
      measured[3] > measured[1] ? "HOLDS" : "VIOLATED",
      (measured[3] - measured[1]) * 100.0,
      measured[4] + 0.02 >= std::max(measured[2], measured[3]) ? "HOLDS"
                                                               : "VIOLATED",
      (measured[4] - best_base) * 100.0);
  std::printf(
      "  MLP_U vs BaseU:              measured %+.1f pts (paper +6.4) — "
      "documented deviation, see DESIGN.md\n",
      (measured[2] - measured[0]) * 100.0);
  return 0;
}
