// Table 3: multiple location discovery — distance-based precision and
// recall of the top-2 predictions on users who clearly have multiple
// locations (the paper hand-labeled 585 such users, averaging 2 locations).
//
// Paper row (DP@2 / DR@2 %):
//   BaseU 33.8/27.2  BaseC 39.3/33.1  MLP_U 45.1/42.3  MLP_C 48.3/45.3
//   MLP 50.6/47.0

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

#include "bench/bench_util.h"
#include "eval/metrics.h"
#include "io/table_printer.h"

int main() {
  using namespace mlp;
  bench::BenchContext context(bench::BenchWorldConfig());
  bench::PrintHeader("Table 3: multiple location discovery (DP@2 / DR@2)",
                     "MLP 50.6/47.0 beats BaseU 33.8/27.2, BaseC 39.3/33.1 "
                     "(%); +11 DP / +14 DR over baselines",
                     context);

  const int fold = 0;
  std::vector<graph::UserId> users = context.ClearMultiLocationUsers();
  double avg_locations = 0.0;
  for (graph::UserId u : users) {
    avg_locations += static_cast<double>(
        context.world().truth.profiles[u].locations.size());
  }
  std::printf("%zu clear multi-location users, %.2f locations on average "
              "(paper: 585 users, 2.0)\n\n",
              users.size(), users.empty() ? 0.0 : avg_locations / users.size());

  const int num_users = context.world().graph->num_users();
  std::vector<std::vector<geo::CityId>> truth(num_users);
  for (graph::UserId u : users) {
    truth[u] = context.world().truth.profiles[u].locations;
  }

  const char* names[] = {"BaseU", "BaseC", "MLP_U", "MLP_C", "MLP"};
  const char* paper[] = {"33.8/27.2", "39.3/33.1", "45.1/42.3", "48.3/45.3",
                         "50.6/47.0"};
  io::TablePrinter table({"Method", "DP@2", "DR@2", "paper DP/DR"});
  double dp[5], dr[5];
  for (int m = 0; m < 5; ++m) {
    const eval::MethodOutput& out = context.Run(names[m], fold);
    std::vector<std::vector<geo::CityId>> predicted(num_users);
    for (graph::UserId u : users) predicted[u] = out.profiles[u].TopK(2);
    eval::MultiLocationScores scores = eval::DistancePrecisionRecall(
        predicted, truth, users, *context.world().distances, 100.0);
    dp[m] = scores.dp;
    dr[m] = scores.dr;
    table.AddRow({names[m], StringPrintf("%.1f%%", scores.dp * 100.0),
                  StringPrintf("%.1f%%", scores.dr * 100.0), paper[m]});
  }
  table.Print();

  std::printf(
      "\nshape checks (paper Sec. 5.2):\n"
      "  MLP DR@2 > BaseU DR@2: %s (+%.1f pts; paper +19.8)\n"
      "  MLP DR@2 > BaseC DR@2: %s (+%.1f pts; paper +13.9)\n"
      "  MLP DP@2 > BaseU DP@2: %s (+%.1f pts; paper +16.8)\n"
      "  MLP_C and MLP recall beat both baselines, MLP_U within 2 pts: %s\n",
      dr[4] > dr[0] ? "HOLDS" : "VIOLATED", (dr[4] - dr[0]) * 100.0,
      dr[4] > dr[1] ? "HOLDS" : "VIOLATED", (dr[4] - dr[1]) * 100.0,
      dp[4] > dp[0] ? "HOLDS" : "VIOLATED", (dp[4] - dp[0]) * 100.0,
      (dr[3] > std::max(dr[0], dr[1]) && dr[4] > std::max(dr[0], dr[1]) &&
       dr[2] > std::max(dr[0], dr[1]) - 0.02)
          ? "HOLDS"
          : "VIOLATED");
  return 0;
}
