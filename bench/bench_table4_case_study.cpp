// Table 4: case studies on multiple location discovery. The paper shows
// three users where MLP finds both true locations while BaseU returns one
// true region plus a nearby or unrelated city.

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

#include "bench/bench_util.h"
#include "eval/metrics.h"
#include "io/table_printer.h"

int main() {
  using namespace mlp;
  bench::BenchContext context(bench::BenchWorldConfig());
  bench::PrintHeader("Table 4: case studies on multiple location discovery",
                     "MLP finds both true locations; BaseU finds one + "
                     "nearby (Sec. 5.2)",
                     context);

  const auto& world = context.world();
  const int fold = 0;
  const eval::MethodOutput& mlp = context.Run("MLP", fold);
  const eval::MethodOutput& base_u = context.Run("BaseU", fold);

  auto join = [&](const std::vector<geo::CityId>& cities) {
    std::string out;
    for (geo::CityId c : cities) {
      if (!out.empty()) out += " + ";
      out += world.gazetteer->FullName(c);
    }
    return out;
  };

  // Pick users where MLP's top-2 covers both true locations — the paper's
  // table is exactly such showcase rows — preferring hidden-fold users.
  io::TablePrinter table({"UID", "True locations", "MLP top-2", "BaseU top-2"});
  int shown = 0;
  for (graph::UserId u : context.ClearMultiLocationUsers(300.0)) {
    if (shown >= 3) break;
    const synth::TrueProfile& p = world.truth.profiles[u];
    if (p.locations.size() != 2) continue;
    std::vector<geo::CityId> mlp_top = mlp.profiles[u].TopK(2);
    std::vector<std::vector<geo::CityId>> pred(world.graph->num_users());
    std::vector<std::vector<geo::CityId>> truth(world.graph->num_users());
    pred[u] = mlp_top;
    truth[u] = p.locations;
    eval::MultiLocationScores scores = eval::DistancePrecisionRecall(
        pred, truth, {u}, *world.distances, 100.0);
    if (scores.dr < 0.99) continue;  // MLP covers both regions
    ++shown;
    table.AddRow({world.graph->user(u).handle, join(p.locations),
                  join(mlp_top), join(base_u.profiles[u].TopK(2))});
  }
  table.Print();
  if (shown == 0) {
    std::printf("no showcase users found in this world/seed\n");
    return 0;
  }

  // Aggregate version of the table's claim over ALL clear 2-location
  // users: how often does each method's top-2 cover both true regions?
  std::vector<graph::UserId> users;
  for (graph::UserId u : context.ClearMultiLocationUsers()) {
    if (world.truth.profiles[u].locations.size() == 2) users.push_back(u);
  }
  auto coverage = [&](const eval::MethodOutput& out) {
    std::vector<std::vector<geo::CityId>> pred(world.graph->num_users());
    std::vector<std::vector<geo::CityId>> truth(world.graph->num_users());
    for (graph::UserId u : users) {
      pred[u] = out.profiles[u].TopK(2);
      truth[u] = world.truth.profiles[u].locations;
    }
    return eval::DistancePrecisionRecall(pred, truth, users,
                                         *world.distances, 100.0)
        .dr;
  };
  double mlp_cov = coverage(mlp);
  double base_cov = coverage(base_u);
  std::printf(
      "\nboth-location coverage over %zu two-location users:\n"
      "  MLP %.3f vs BaseU %.3f — shape check (MLP higher): %s\n",
      users.size(), mlp_cov, base_cov,
      mlp_cov > base_cov ? "HOLDS" : "VIOLATED");
  return 0;
}
