// Table 5: case studies on relationship explanation. The paper lists
// followers of the two-location user 13069282 with the location
// assignments MLP inferred for each following relationship, showing the
// relationships split into geo groups (Austin vs Los Angeles).

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

#include "bench/bench_util.h"
#include "core/model.h"
#include "io/table_printer.h"

int main() {
  using namespace mlp;
  bench::BenchContext context(bench::BenchWorldConfig());
  bench::PrintHeader("Table 5: case studies on relationship explanation",
                     "follower assignments split into geo groups (Sec. 5.3)",
                     context);

  const auto& world = context.world();
  core::MlpModel model(bench::BenchMlpConfig());
  Result<core::MlpResult> result = model.Fit(context.MakeInput(0));
  if (!result.ok()) {
    std::printf("fit failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // The showcase user: two far-apart locations, many followers.
  graph::UserId star = -1;
  int best_in = -1;
  for (graph::UserId u : context.ClearMultiLocationUsers(300.0)) {
    if (world.truth.profiles[u].locations.size() != 2) continue;
    int in_degree = static_cast<int>(world.graph->InEdges(u).size());
    if (in_degree > best_in) {
      best_in = in_degree;
      star = u;
    }
  }
  if (star < 0) {
    std::printf("no suitable user in this world\n");
    return 0;
  }
  const synth::TrueProfile& profile = world.truth.profiles[star];
  std::printf("User %s, true locations: %s and %s\n\n",
              world.graph->user(star).handle.c_str(),
              world.gazetteer->FullName(profile.locations[0]).c_str(),
              world.gazetteer->FullName(profile.locations[1]).c_str());

  io::TablePrinter table({"Follower", "Follower location", "Assign(user)",
                          "Assign(follower)", "true(user)", "noiseP"});
  int shown = 0;
  int group_a = 0, group_b = 0;
  for (graph::EdgeId s : world.graph->InEdges(star)) {
    const graph::FollowingEdge& e = world.graph->following(s);
    const core::FollowingExplanation& ex = result->following[s];
    const synth::FollowingTruth& t = world.truth.following[s];
    // Geo-group tally over location-based edges (paper: "group a user's
    // followers into geo groups").
    if (!t.noisy && ex.y != geo::kInvalidCity) {
      double da = world.distances->raw_miles(ex.y, profile.locations[0]);
      double db = world.distances->raw_miles(ex.y, profile.locations[1]);
      if (da <= 100.0) ++group_a;
      else if (db <= 100.0) ++group_b;
    }
    if (shown < 8) {
      ++shown;
      geo::CityId follower_home = context.registered()[e.follower];
      table.AddRow(
          {world.graph->user(e.follower).handle,
           follower_home == geo::kInvalidCity
               ? "(unlabeled)"
               : world.gazetteer->FullName(follower_home),
           world.gazetteer->FullName(ex.y),
           world.gazetteer->FullName(ex.x),
           t.noisy ? "(noisy)" : world.gazetteer->FullName(t.y),
           StringPrintf("%.2f", ex.noise_prob)});
    }
  }
  table.Print();

  std::printf(
      "\ngeo groups over the user's %zu followers: %d assigned to the %s "
      "group, %d to the %s group\n"
      "shape check (both geo groups non-empty, as in Tab. 5): %s\n",
      world.graph->InEdges(star).size(), group_a,
      world.gazetteer->FullName(profile.locations[0]).c_str(), group_b,
      world.gazetteer->FullName(profile.locations[1]).c_str(),
      (group_a > 0 && group_b > 0) ? "HOLDS" : "VIOLATED");
  return 0;
}
