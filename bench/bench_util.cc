#include "bench/bench_util.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "graph/graph_stats.h"

namespace mlp {
namespace bench {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  return std::atoll(raw);
}

synth::WorldConfig BenchWorldConfig() {
  synth::WorldConfig config;
  config.num_users = static_cast<int>(EnvInt("MLP_BENCH_USERS", 4000));
  config.seed = static_cast<uint64_t>(EnvInt("MLP_BENCH_SEED", 20120827));
  config.following_noise_fraction = 0.25;
  config.tweeting_noise_fraction = 0.25;
  config.multi_location_fraction = 0.40;
  return config;
}

core::MlpConfig BenchMlpConfig() {
  core::MlpConfig config;
  config.burn_in_iterations = 10;
  config.sampling_iterations = 14;
  config.rho_f = 0.2;
  config.rho_t = 0.2;
  return config;
}

int BenchFoldCount(int default_folds) {
  int folds = static_cast<int>(EnvInt("MLP_BENCH_FOLDS", default_folds));
  if (folds < 1) folds = 1;
  if (folds > 5) folds = 5;
  return folds;
}

BenchContext::BenchContext(const synth::WorldConfig& config)
    : world_(std::move(synth::GenerateWorld(config).ValueOrDie())),
      referents_(world_.vocab->ReferentTable()),
      registered_(eval::RegisteredHomes(*world_.graph)),
      folds_(eval::MakeKFolds(registered_, 5, config.seed ^ 0x5eed)),
      lineup_(eval::StandardLineup(BenchMlpConfig())) {}

core::ModelInput BenchContext::MakeInput(int fold) const {
  core::ModelInput input;
  input.gazetteer = world_.gazetteer.get();
  input.graph = world_.graph.get();
  input.distances = world_.distances.get();
  input.venue_referents = &referents_;
  input.observed_home = folds_.MaskedHomes(registered_, fold);
  return input;
}

const eval::MethodOutput& BenchContext::Run(const std::string& name,
                                            int fold) {
  std::string key = name + "#" + std::to_string(fold);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  for (const eval::NamedMethod& nm : lineup_) {
    if (nm.name == name) {
      Result<eval::MethodOutput> out = nm.method(MakeInput(fold));
      MLP_CHECK_MSG(out.ok(), "bench method failed");
      return cache_.emplace(key, std::move(out).ValueOrDie()).first->second;
    }
  }
  MLP_CHECK_MSG(false, "unknown bench method");
  __builtin_unreachable();
}

std::vector<graph::UserId> BenchContext::ClearMultiLocationUsers(
    double min_separation_miles) const {
  std::vector<graph::UserId> users;
  for (graph::UserId u = 0; u < world_.graph->num_users(); ++u) {
    if (registered_[u] == geo::kInvalidCity) continue;
    // Celebrities' neighborhoods are mostly noise follows — they are not
    // representative profiling subjects (the paper's 585 hand-labeled
    // users are ordinary accounts).
    if (world_.truth.is_celebrity[u]) continue;
    const synth::TrueProfile& p = world_.truth.profiles[u];
    if (!p.IsMultiLocation()) continue;
    bool clear = true;
    for (size_t i = 0; i < p.locations.size() && clear; ++i) {
      for (size_t j = i + 1; j < p.locations.size(); ++j) {
        if (world_.distances->raw_miles(p.locations[i], p.locations[j]) <
            min_separation_miles) {
          clear = false;
          break;
        }
      }
    }
    if (clear) users.push_back(u);
  }
  return users;
}

void PrintHeader(const std::string& experiment, const std::string& paper_ref,
                 const BenchContext& context) {
  graph::GraphStats stats = graph::ComputeGraphStats(*context.world().graph);
  std::printf("=== %s ===\n", experiment.c_str());
  std::printf("paper: %s\n", paper_ref.c_str());
  std::printf(
      "world: %d users (%d labeled), %d following, %d tweeting; seed %llu\n\n",
      stats.num_users, stats.num_labeled, stats.num_following,
      stats.num_tweeting,
      static_cast<unsigned long long>(context.world().config.seed));
}

void BenchJson::Set(const std::string& key, double value) {
  if (!std::isfinite(value)) {
    // Bare nan/inf tokens are not JSON; null keeps the artifact parseable.
    entries_.emplace_back(key, "null");
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  entries_.emplace_back(key, buffer);
}

void BenchJson::Set(const std::string& key, int64_t value) {
  entries_.emplace_back(key, std::to_string(value));
}

void BenchJson::Set(const std::string& key, const std::string& value) {
  // Keys/values are bench-controlled identifiers and numbers; escape the
  // two characters that could break the quoting anyway.
  std::string escaped;
  for (char c : value) {
    if (c == '"' || c == '\\') escaped.push_back('\\');
    escaped.push_back(c);
  }
  entries_.emplace_back(key, "\"" + escaped + "\"");
}

std::string BenchJson::ToString() const {
  std::string out = "{\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    out += "  \"" + entries_[i].first + "\": " + entries_[i].second;
    if (i + 1 < entries_.size()) out += ",";
    out += "\n";
  }
  out += "}\n";
  return out;
}

std::string BenchJsonPath(const std::string& filename) {
  const char* dir = std::getenv("MLP_BENCH_JSON_DIR");
  return std::string(dir != nullptr && dir[0] != '\0' ? dir : ".") + "/" +
         filename;
}

bool BenchJson::WriteTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string body = ToString();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (ok) std::printf("wrote %s\n", path.c_str());
  return ok;
}

}  // namespace bench
}  // namespace mlp
