#ifndef MLP_BENCH_BENCH_UTIL_H_
#define MLP_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/input.h"
#include "core/model_config.h"
#include "eval/cross_validation.h"
#include "eval/methods.h"
#include "synth/world.h"
#include "synth/world_generator.h"

namespace mlp {
namespace bench {

/// The paper-calibrated benchmark world: Sec-5 degree statistics, 25%
/// noisy relationships, 40% multi-location users. Size and seed honor the
/// MLP_BENCH_USERS / MLP_BENCH_SEED environment overrides so the whole
/// suite can be scaled up on bigger machines.
synth::WorldConfig BenchWorldConfig();

/// Gibbs settings every bench uses (Fig. 5: ~14 sweeps to converge).
core::MlpConfig BenchMlpConfig();

/// Number of CV folds to actually evaluate (MLP_BENCH_FOLDS, default
/// `default_folds`); the split itself is always 5-fold like the paper.
int BenchFoldCount(int default_folds);

/// Integer environment override with a fallback — the one parser behind
/// every MLP_BENCH_* size/seed knob. Empty or unset returns `fallback`.
int64_t EnvInt(const char* name, int64_t fallback);

/// One generated world plus everything the experiments share: referent
/// table, registered homes, the 5-fold split, and cached method outputs.
class BenchContext {
 public:
  explicit BenchContext(const synth::WorldConfig& config);

  const synth::SyntheticWorld& world() const { return world_; }
  const std::vector<geo::CityId>& registered() const { return registered_; }
  const eval::FoldAssignment& folds() const { return folds_; }

  /// Model input with fold `fold`'s labels hidden.
  core::ModelInput MakeInput(int fold) const;

  /// Runs (and caches) a method on a fold.
  const eval::MethodOutput& Run(const std::string& name, int fold);

  /// The five Table-2 methods in paper order.
  const std::vector<eval::NamedMethod>& lineup() const { return lineup_; }

  /// Labeled users with ≥2 true locations mutually ≥ `min_separation_miles`
  /// apart — the "clearly have multiple locations" subset of Sec. 5.2.
  std::vector<graph::UserId> ClearMultiLocationUsers(
      double min_separation_miles = 150.0) const;

  /// Test users of `fold`.
  std::vector<graph::UserId> TestUsers(int fold) const {
    return folds_.TestUsers(fold);
  }

 private:
  synth::SyntheticWorld world_;
  std::vector<std::vector<geo::CityId>> referents_;
  std::vector<geo::CityId> registered_;
  eval::FoldAssignment folds_;
  std::vector<eval::NamedMethod> lineup_;
  std::map<std::string, eval::MethodOutput> cache_;
};

/// Prints the standard bench header (world size, seed, paper reference).
void PrintHeader(const std::string& experiment, const std::string& paper_ref,
                 const BenchContext& context);

/// Minimal flat-object JSON emitter for machine-readable bench artifacts
/// (the BENCH_*.json files CI uploads so the perf trajectory is tracked
/// PR-over-PR). Insertion order is preserved; numbers are emitted with
/// enough precision to round-trip.
class BenchJson {
 public:
  void Set(const std::string& key, double value);
  void Set(const std::string& key, int64_t value);
  void Set(const std::string& key, const std::string& value);

  std::string ToString() const;
  /// Writes the object to `path` (and logs the path). Returns false on I/O
  /// failure — benches report it but don't abort, so a read-only CWD never
  /// kills a perf run.
  bool WriteTo(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;  // key, literal
};

/// Resolves the artifact path for a BENCH_*.json file: MLP_BENCH_JSON_DIR
/// when set, the current directory otherwise. One place for the CI
/// artifact-dir convention, shared by every JSON-emitting bench.
std::string BenchJsonPath(const std::string& filename);

}  // namespace bench
}  // namespace mlp

#endif  // MLP_BENCH_BENCH_UTIL_H_
