# Exit-code and usage-message contract of the mlpctl CLI (registered as
# the `mlpctl_cli_usage` ctest): 2 for a missing/unknown subcommand (global
# usage printed), 3 for a known subcommand with missing required flags
# (that subcommand's usage printed) — so wrapper scripts can tell a typo
# from a bad invocation from a real failure.
#
# Usage: cmake -DMLPCTL=<path> -P cli_usage.cmake

if(NOT DEFINED MLPCTL)
  message(FATAL_ERROR "pass -DMLPCTL=<mlpctl binary>")
endif()

function(expect_exit code)
  execute_process(COMMAND ${MLPCTL} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${code})
    message(FATAL_ERROR
            "mlpctl ${ARGN}: expected exit ${code}, got ${rc}\n${err}")
  endif()
  if(NOT err MATCHES "usage:")
    message(FATAL_ERROR "mlpctl ${ARGN}: no usage message on stderr:\n${err}")
  endif()
  set(last_stderr "${err}" PARENT_SCOPE)
endfunction()

# No subcommand / unknown subcommand -> 2, global usage.
expect_exit(2)
expect_exit(2 frobnicate)
if(NOT last_stderr MATCHES "unknown subcommand 'frobnicate'")
  message(FATAL_ERROR "unknown subcommand not named in:\n${last_stderr}")
endif()

# Known subcommand, missing required flags -> 3, per-subcommand usage only.
expect_exit(3 fit)
if(NOT last_stderr MATCHES "mlpctl fit" OR last_stderr MATCHES "mlpctl serve")
  message(FATAL_ERROR "fit usage should show only fit:\n${last_stderr}")
endif()
expect_exit(3 serve --port 80)
if(NOT last_stderr MATCHES "mlpctl serve" OR last_stderr MATCHES "mlpctl fit")
  message(FATAL_ERROR "serve usage should show only serve:\n${last_stderr}")
endif()
expect_exit(3 generate --users 10)
expect_exit(3 stats)
expect_exit(3 eval)
expect_exit(3 resume --data somewhere)

# ingest shares the same contract: all four required flags or exit 3 with
# ingest's own usage.
expect_exit(3 ingest)
expect_exit(3 ingest --data somewhere --load model.snap --delta d)
if(NOT last_stderr MATCHES "mlpctl ingest" OR last_stderr MATCHES "mlpctl serve")
  message(FATAL_ERROR "ingest usage should show only ingest:\n${last_stderr}")
endif()

# The scale subcommands follow the same required-flag contract.
expect_exit(3 genworld --users 1000)
expect_exit(3 pack --data somewhere)

# Numeric flags must be fully numeric: a non-numeric value is a usage
# error (exit 3, flag named, subcommand usage printed) — never atoi's
# silent zero. Validation happens before any dataset/snapshot I/O, so
# these run without fixtures.
expect_exit(3 genworld --users 10k --out d)
if(NOT last_stderr MATCHES "invalid value '10k' for --users")
  message(FATAL_ERROR "bad --users value not named in:\n${last_stderr}")
endif()
expect_exit(3 serve --load m.snap --mmap --port xyz)
if(NOT last_stderr MATCHES "invalid value 'xyz' for --port")
  message(FATAL_ERROR "bad --port value not named in:\n${last_stderr}")
endif()
expect_exit(3 fit --data d --save m.snap --mem_budget_mb 2GB)
if(NOT last_stderr MATCHES "invalid value '2GB' for --mem_budget_mb")
  message(FATAL_ERROR "bad --mem_budget_mb value not named in:\n${last_stderr}")
endif()
expect_exit(3 fit --data d --save m.snap --prune_floor 0.1.2)
expect_exit(3 generate --users -3x --out d)
expect_exit(3 eval --data d --folds five)

# Live ingest daemon flags (ISSUE 10): the --spool* knobs share the same
# usage contract — a bad value or an incoherent combination exits 3 with
# serve's usage, before any dataset/snapshot I/O.
expect_exit(3 serve --data d --load m.snap --spool s --spool_poll_ms xyz)
if(NOT last_stderr MATCHES "invalid value 'xyz' for --spool_poll_ms")
  message(FATAL_ERROR "bad --spool_poll_ms value not named in:\n${last_stderr}")
endif()
expect_exit(3 serve --data d --load m.snap --spool s --spool_poll_ms 0)
expect_exit(3 serve --load m.snap --mmap --spool s)
if(NOT last_stderr MATCHES "mlpctl serve")
  message(FATAL_ERROR "spool+mmap rejection should print serve usage:\n${last_stderr}")
endif()
expect_exit(3 serve --data d --load m.snap --spool_poll_ms 100)
expect_exit(3 serve --data d --load m.snap --save out.snap)
expect_exit(3 serve --data d --load m.snap --spool s --checkpoint_every 2)

# probe: --port is required and must be numeric.
expect_exit(3 probe)
if(NOT last_stderr MATCHES "mlpctl probe" OR last_stderr MATCHES "mlpctl serve")
  message(FATAL_ERROR "probe usage should show only probe:\n${last_stderr}")
endif()
expect_exit(3 probe --port xyz)
if(NOT last_stderr MATCHES "invalid value 'xyz' for --port")
  message(FATAL_ERROR "bad probe --port value not named in:\n${last_stderr}")
endif()
