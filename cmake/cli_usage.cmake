# Exit-code and usage-message contract of the mlpctl CLI (registered as
# the `mlpctl_cli_usage` ctest): 2 for a missing/unknown subcommand (global
# usage printed), 3 for a known subcommand with missing required flags
# (that subcommand's usage printed) — so wrapper scripts can tell a typo
# from a bad invocation from a real failure.
#
# Usage: cmake -DMLPCTL=<path> -P cli_usage.cmake

if(NOT DEFINED MLPCTL)
  message(FATAL_ERROR "pass -DMLPCTL=<mlpctl binary>")
endif()

function(expect_exit code)
  execute_process(COMMAND ${MLPCTL} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${code})
    message(FATAL_ERROR
            "mlpctl ${ARGN}: expected exit ${code}, got ${rc}\n${err}")
  endif()
  if(NOT err MATCHES "usage:")
    message(FATAL_ERROR "mlpctl ${ARGN}: no usage message on stderr:\n${err}")
  endif()
  set(last_stderr "${err}" PARENT_SCOPE)
endfunction()

# No subcommand / unknown subcommand -> 2, global usage.
expect_exit(2)
expect_exit(2 frobnicate)
if(NOT last_stderr MATCHES "unknown subcommand 'frobnicate'")
  message(FATAL_ERROR "unknown subcommand not named in:\n${last_stderr}")
endif()

# Known subcommand, missing required flags -> 3, per-subcommand usage only.
expect_exit(3 fit)
if(NOT last_stderr MATCHES "mlpctl fit" OR last_stderr MATCHES "mlpctl serve")
  message(FATAL_ERROR "fit usage should show only fit:\n${last_stderr}")
endif()
expect_exit(3 serve --port 80)
if(NOT last_stderr MATCHES "mlpctl serve" OR last_stderr MATCHES "mlpctl fit")
  message(FATAL_ERROR "serve usage should show only serve:\n${last_stderr}")
endif()
expect_exit(3 generate --users 10)
expect_exit(3 stats)
expect_exit(3 eval)
expect_exit(3 resume --data somewhere)

# ingest shares the same contract: all four required flags or exit 3 with
# ingest's own usage.
expect_exit(3 ingest)
expect_exit(3 ingest --data somewhere --load model.snap --delta d)
if(NOT last_stderr MATCHES "mlpctl ingest" OR last_stderr MATCHES "mlpctl serve")
  message(FATAL_ERROR "ingest usage should show only ingest:\n${last_stderr}")
endif()
