# End-to-end smoke of the serving subsystem through the real mlpctl
# binary: generate a tiny world, fit and persist a model, then run
# `mlpctl serve --selfcheck`, which starts the HTTP server on an ephemeral
# port and round-trips /healthz, /v1/user, /v1/edge, /v1/batch, /statsz,
# /metricsz, /statusz and /debug/slowz through the built-in socket client
# (no curl), asserting 200s, valid JSON and home parity against the
# snapshot. Runs with --access_log and a 1µs slow-request threshold so the
# selfcheck can correlate slow-ring request ids against the structured
# access log; the log itself is re-checked below and uploaded as a CI
# artifact. Registered as the `mlpctl_serve_smoke` ctest in CMakeLists.txt.
#
# Usage: cmake -DMLPCTL=<path> -DWORK_DIR=<dir> -P serve_smoke.cmake

if(NOT DEFINED MLPCTL OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "pass -DMLPCTL=<mlpctl binary> -DWORK_DIR=<scratch dir>")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "serve smoke step failed (exit ${rc}): ${ARGV}")
  endif()
endfunction()

run_step(${MLPCTL} generate --users 300 --seed 11 --out ${WORK_DIR}/data)
run_step(${MLPCTL} fit --data ${WORK_DIR}/data --save ${WORK_DIR}/model.snap
         --burn 2 --sampling 2)
run_step(${MLPCTL} serve --data ${WORK_DIR}/data
         --load ${WORK_DIR}/model.snap --threads 2 --selfcheck
         --access_log=${WORK_DIR}/access.log --slow_request_us 1)

# The access log must exist, hold one JSON object per line, and carry the
# request-trace fields the dashboard and slow-ring report.
if(NOT EXISTS ${WORK_DIR}/access.log)
  message(FATAL_ERROR "serve smoke produced no access log")
endif()
file(STRINGS ${WORK_DIR}/access.log access_lines)
list(LENGTH access_lines access_line_count)
if(access_line_count LESS 5)
  message(FATAL_ERROR
          "access log has only ${access_line_count} lines; expected one per "
          "selfcheck request")
endif()
foreach(line IN LISTS access_lines)
  if(NOT line MATCHES "^\\{.*\"id\":.*\"total_us\":.*\"render_us\":.*\\}$")
    message(FATAL_ERROR "malformed access log line: ${line}")
  endif()
endforeach()

# A fingerprint-mismatched pairing must be rejected, not served.
run_step(${MLPCTL} generate --users 200 --seed 12 --out ${WORK_DIR}/other)
execute_process(COMMAND ${MLPCTL} serve --data ${WORK_DIR}/other
                --load ${WORK_DIR}/model.snap --selfcheck
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "serve accepted a snapshot from a different dataset")
endif()
