# End-to-end smoke of the serving subsystem through the real mlpctl
# binary: generate a tiny world, fit and persist a model, then run
# `mlpctl serve --selfcheck`, which starts the HTTP server on an ephemeral
# port and round-trips /healthz, /v1/user, /v1/edge, /v1/batch and /statsz
# through the built-in socket client (no curl), asserting 200s, valid JSON
# and home parity against the snapshot. Registered as the
# `mlpctl_serve_smoke` ctest in CMakeLists.txt.
#
# Usage: cmake -DMLPCTL=<path> -DWORK_DIR=<dir> -P serve_smoke.cmake

if(NOT DEFINED MLPCTL OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "pass -DMLPCTL=<mlpctl binary> -DWORK_DIR=<scratch dir>")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "serve smoke step failed (exit ${rc}): ${ARGV}")
  endif()
endfunction()

run_step(${MLPCTL} generate --users 300 --seed 11 --out ${WORK_DIR}/data)
run_step(${MLPCTL} fit --data ${WORK_DIR}/data --save ${WORK_DIR}/model.snap
         --burn 2 --sampling 2)
run_step(${MLPCTL} serve --data ${WORK_DIR}/data
         --load ${WORK_DIR}/model.snap --threads 2 --selfcheck)

# A fingerprint-mismatched pairing must be rejected, not served.
run_step(${MLPCTL} generate --users 200 --seed 12 --out ${WORK_DIR}/other)
execute_process(COMMAND ${MLPCTL} serve --data ${WORK_DIR}/other
                --load ${WORK_DIR}/model.snap --selfcheck
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "serve accepted a snapshot from a different dataset")
endif()
