# Drives the real mlpctl binary through the full snapshot workflow:
# generate a tiny world, fit with an early checkpoint, resume the fit to
# completion from the saved file, and evaluate the persisted model. Runs
# as a ctest (registered in CMakeLists.txt), so any drift in the on-disk
# model-snapshot format breaks the build even without GTest installed.
#
# Usage: cmake -DMLPCTL=<path> -DWORK_DIR=<dir> -P snapshot_smoke.cmake

if(NOT DEFINED MLPCTL OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "pass -DMLPCTL=<mlpctl binary> -DWORK_DIR=<scratch dir>")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "snapshot smoke step failed (exit ${rc}): ${ARGV}")
  endif()
endfunction()

run_step(${MLPCTL} generate --users 300 --seed 7 --out ${WORK_DIR}/data)
# Checkpoint mid-fit so resume actually has sweeps left to run.
run_step(${MLPCTL} fit --data ${WORK_DIR}/data --save ${WORK_DIR}/model.snap
         --burn 2 --sampling 2 --max-sweeps 2)
run_step(${MLPCTL} resume --data ${WORK_DIR}/data
         --load ${WORK_DIR}/model.snap --save ${WORK_DIR}/final.snap)
run_step(${MLPCTL} eval --data ${WORK_DIR}/data --load ${WORK_DIR}/final.snap)

# The resumed snapshot must be complete and loadable; a second resume of a
# finished model is a no-op fit that must still succeed (serving reload).
run_step(${MLPCTL} resume --data ${WORK_DIR}/data --load ${WORK_DIR}/final.snap)
