// Persisting and reloading a dataset: generate a world, save it as CSV,
// reload it, and verify a model fit on the reloaded graph matches the
// original — the workflow for sharing a benchmark dataset.
//
//   ./build/examples/dataset_roundtrip [directory]

#include <cstdio>
#include <filesystem>

#include "core/model.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "io/dataset_io.h"
#include "synth/world_generator.h"

int main(int argc, char** argv) {
  using namespace mlp;

  std::string dir = argc > 1 ? argv[1]
                             : (std::filesystem::temp_directory_path() /
                                "mlp_example_dataset")
                                   .string();
  std::filesystem::create_directories(dir);

  synth::WorldConfig config;
  config.num_users = 1200;
  config.seed = 2012;
  synth::SyntheticWorld world =
      std::move(synth::GenerateWorld(config).ValueOrDie());

  Status saved = io::SaveDataset(dir, *world.graph, &world.truth);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("saved %d users / %d follows / %d tweets to %s\n",
              world.graph->num_users(), world.graph->num_following(),
              world.graph->num_tweeting(), dir.c_str());

  Result<io::LoadedDataset> loaded = io::LoadDataset(dir, world.vocab->size());
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("reloaded: %d users, truth columns: %s\n",
              loaded->graph.num_users(), loaded->has_truth ? "yes" : "no");

  // Fit on both copies and compare home predictions.
  auto referents = world.vocab->ReferentTable();
  std::vector<geo::CityId> registered = eval::RegisteredHomes(*world.graph);
  eval::FoldAssignment folds = eval::MakeKFolds(registered, 5, 3);

  core::ModelInput original;
  original.gazetteer = world.gazetteer.get();
  original.graph = world.graph.get();
  original.distances = world.distances.get();
  original.venue_referents = &referents;
  original.observed_home = folds.MaskedHomes(registered, 0);

  core::ModelInput reloaded = original;
  reloaded.graph = &loaded->graph;

  core::MlpConfig model_config;
  model_config.burn_in_iterations = 8;
  model_config.sampling_iterations = 10;
  core::MlpResult a =
      std::move(core::MlpModel(model_config).Fit(original)).ValueOrDie();
  core::MlpResult b =
      std::move(core::MlpModel(model_config).Fit(reloaded)).ValueOrDie();

  int agree = 0;
  for (graph::UserId u = 0; u < world.graph->num_users(); ++u) {
    if (a.home[u] == b.home[u]) ++agree;
  }
  std::printf("home predictions identical on %d/%d users (%s)\n", agree,
              world.graph->num_users(),
              agree == world.graph->num_users() ? "exact roundtrip"
                                                : "MISMATCH");

  double acc = eval::AccuracyWithin(b.home, registered, folds.TestUsers(0),
                                    *world.distances, 100.0);
  std::printf("reloaded-model ACC@100 on hidden users: %.1f%%\n",
              acc * 100.0);
  return agree == world.graph->num_users() ? 0 : 1;
}
