// Relationship explanation and geo groups — the paper's Sec. 5.3
// application: once MLP assigns every following relationship a pair of
// location assignments, a user's followers can be grouped by the region
// the relationship is rooted in ("Carol is in Lucy's Austin group").
//
//   ./build/examples/geo_groups

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/model.h"
#include "eval/cross_validation.h"
#include "synth/world_generator.h"

int main() {
  using namespace mlp;

  synth::WorldConfig world_config;
  world_config.num_users = 2500;
  world_config.seed = 13069282;  // the paper's case-study user id
  world_config.multi_location_fraction = 0.45;
  synth::SyntheticWorld world =
      std::move(synth::GenerateWorld(world_config).ValueOrDie());

  std::vector<geo::CityId> registered = eval::RegisteredHomes(*world.graph);
  auto referents = world.vocab->ReferentTable();
  core::ModelInput input;
  input.gazetteer = world.gazetteer.get();
  input.graph = world.graph.get();
  input.distances = world.distances.get();
  input.venue_referents = &referents;
  input.observed_home = registered;  // profile everyone; no hidden fold

  core::MlpConfig config;
  config.burn_in_iterations = 10;
  config.sampling_iterations = 14;
  core::MlpResult result =
      std::move(core::MlpModel(config).Fit(input)).ValueOrDie();

  // Pick a two-location user with many followers (the paper's 13069282).
  graph::UserId star = -1;
  int best_in = -1;
  for (graph::UserId u = 0; u < world.graph->num_users(); ++u) {
    const synth::TrueProfile& p = world.truth.profiles[u];
    if (p.locations.size() != 2) continue;
    if (world.distances->raw_miles(p.locations[0], p.locations[1]) < 500.0) {
      continue;
    }
    int in_degree = static_cast<int>(world.graph->InEdges(u).size());
    if (in_degree > best_in) {
      best_in = in_degree;
      star = u;
    }
  }
  const synth::TrueProfile& profile = world.truth.profiles[star];
  std::printf("user %s — locations %s and %s, %d followers\n\n",
              world.graph->user(star).handle.c_str(),
              world.gazetteer->FullName(profile.locations[0]).c_str(),
              world.gazetteer->FullName(profile.locations[1]).c_str(),
              best_in);

  // Group followers by the star-side assignment of their relationship.
  std::map<geo::CityId, std::vector<graph::UserId>> groups;
  int flagged_noise = 0;
  for (graph::EdgeId s : world.graph->InEdges(star)) {
    const core::FollowingExplanation& ex = result.following[s];
    if (ex.noise_prob > 0.5) {
      ++flagged_noise;
      continue;
    }
    groups[ex.y].push_back(world.graph->following(s).follower);
  }

  std::printf("geo groups (star-side assignment -> followers):\n");
  std::vector<std::pair<size_t, geo::CityId>> ordered;
  for (const auto& [city, members] : groups) {
    ordered.emplace_back(members.size(), city);
  }
  std::sort(ordered.rbegin(), ordered.rend());
  for (const auto& [count, city] : ordered) {
    std::printf("  %-22s %zu followers:", world.gazetteer->FullName(city).c_str(),
                count);
    int shown = 0;
    for (graph::UserId f : groups[city]) {
      if (shown++ >= 4) {
        std::printf(" ...");
        break;
      }
      std::printf(" %s", world.graph->user(f).handle.c_str());
    }
    std::printf("\n");
  }
  std::printf("\n%d relationships flagged as noise (not location-based)\n",
              flagged_noise);

  // Accuracy of the grouping against the generator's ground truth.
  int correct = 0, total = 0;
  for (graph::EdgeId s : world.graph->InEdges(star)) {
    const synth::FollowingTruth& t = world.truth.following[s];
    if (t.noisy) continue;
    ++total;
    if (world.distances->raw_miles(result.following[s].y, t.y) <= 100.0) {
      ++correct;
    }
  }
  if (total > 0) {
    std::printf("star-side assignment accuracy@100mi: %.2f (%d/%d)\n",
                static_cast<double>(correct) / total, correct, total);
  }
  return 0;
}
