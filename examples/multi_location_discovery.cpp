// Multi-location discovery — the paper's Sec. 5.2 scenario as a library
// walkthrough: find users who live in more than one place and compare
// MLP's top-2 profile against the single-location baseline BaseU.
//
//   ./build/examples/multi_location_discovery

#include <cstdio>

#include "baselines/base_u.h"
#include "core/model.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "synth/world_generator.h"

int main() {
  using namespace mlp;

  synth::WorldConfig world_config;
  world_config.num_users = 2500;
  world_config.seed = 585;  // the paper labeled 585 multi-location users
  world_config.multi_location_fraction = 0.4;
  synth::SyntheticWorld world =
      std::move(synth::GenerateWorld(world_config).ValueOrDie());

  std::vector<geo::CityId> registered = eval::RegisteredHomes(*world.graph);
  eval::FoldAssignment folds = eval::MakeKFolds(registered, 5, 1);
  auto referents = world.vocab->ReferentTable();

  core::ModelInput input;
  input.gazetteer = world.gazetteer.get();
  input.graph = world.graph.get();
  input.distances = world.distances.get();
  input.venue_referents = &referents;
  input.observed_home = folds.MaskedHomes(registered, 0);

  core::MlpConfig config;
  config.burn_in_iterations = 10;
  config.sampling_iterations = 14;
  core::MlpModel model(config);
  core::MlpResult mlp = std::move(model.Fit(input)).ValueOrDie();
  baselines::BaselineResult base_u =
      std::move(baselines::BaseU().Fit(input)).ValueOrDie();

  // The evaluation subset: labeled users whose true locations are mutually
  // >= 150 miles apart ("clearly have multiple locations").
  std::vector<graph::UserId> subjects;
  for (graph::UserId u = 0; u < world.graph->num_users(); ++u) {
    const synth::TrueProfile& p = world.truth.profiles[u];
    if (!p.IsMultiLocation() || registered[u] == geo::kInvalidCity) continue;
    bool clear = true;
    for (size_t i = 0; i < p.locations.size() && clear; ++i) {
      for (size_t j = i + 1; j < p.locations.size(); ++j) {
        if (world.distances->raw_miles(p.locations[i], p.locations[j]) <
            150.0) {
          clear = false;
        }
      }
    }
    if (clear) subjects.push_back(u);
  }
  std::printf("%zu clearly-multi-location users\n\n", subjects.size());

  // DP@2 / DR@2 for both methods.
  const int n = world.graph->num_users();
  std::vector<std::vector<geo::CityId>> truth(n), mlp_pred(n), base_pred(n);
  for (graph::UserId u : subjects) {
    truth[u] = world.truth.profiles[u].locations;
    mlp_pred[u] = mlp.profiles[u].TopK(2);
    base_pred[u] = base_u.profiles[u].TopK(2);
  }
  eval::MultiLocationScores mlp_scores = eval::DistancePrecisionRecall(
      mlp_pred, truth, subjects, *world.distances, 100.0);
  eval::MultiLocationScores base_scores = eval::DistancePrecisionRecall(
      base_pred, truth, subjects, *world.distances, 100.0);
  std::printf("DP@2/DR@2:  MLP %.3f/%.3f   BaseU %.3f/%.3f\n\n",
              mlp_scores.dp, mlp_scores.dr, base_scores.dp, base_scores.dr);

  // Show a few concrete discoveries.
  int shown = 0;
  for (graph::UserId u : subjects) {
    if (shown >= 4) break;
    const synth::TrueProfile& p = world.truth.profiles[u];
    if (p.locations.size() != 2) continue;
    ++shown;
    std::printf("%s\n  true: %s + %s\n  MLP:  ",
                world.graph->user(u).handle.c_str(),
                world.gazetteer->FullName(p.locations[0]).c_str(),
                world.gazetteer->FullName(p.locations[1]).c_str());
    for (geo::CityId c : mlp.profiles[u].TopK(2)) {
      std::printf("%s (p=%.2f)  ", world.gazetteer->FullName(c).c_str(),
                  mlp.profiles[u].ProbabilityOf(c));
    }
    std::printf("\n  BaseU: ");
    for (geo::CityId c : base_u.profiles[u].TopK(2)) {
      std::printf("%s  ", world.gazetteer->FullName(c).c_str());
    }
    std::printf("\n\n");
  }
  return 0;
}
