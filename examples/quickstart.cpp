// Quickstart: generate a synthetic Twitter world, hide 20% of the labels,
// run the full MLP model, and inspect what it recovered.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/model.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "synth/world_generator.h"

int main() {
  using namespace mlp;

  // 1. A synthetic world calibrated to the paper's dataset statistics.
  synth::WorldConfig world_config;
  world_config.num_users = 2000;
  world_config.seed = 7;
  Result<synth::SyntheticWorld> world_or = synth::GenerateWorld(world_config);
  if (!world_or.ok()) {
    std::fprintf(stderr, "world generation failed: %s\n",
                 world_or.status().ToString().c_str());
    return 1;
  }
  synth::SyntheticWorld world = std::move(world_or).ValueOrDie();
  std::printf("world: %d users, %d following, %d tweeting relationships\n",
              world.graph->num_users(), world.graph->num_following(),
              world.graph->num_tweeting());

  // 2. Hide fold 0 of a 5-fold split — those users become the test set.
  std::vector<geo::CityId> registered =
      eval::RegisteredHomes(*world.graph);
  eval::FoldAssignment folds = eval::MakeKFolds(registered, 5, /*seed=*/1);
  std::vector<graph::UserId> test_users = folds.TestUsers(0);

  core::ModelInput input;
  input.gazetteer = world.gazetteer.get();
  input.graph = world.graph.get();
  input.distances = world.distances.get();
  auto referents = world.vocab->ReferentTable();
  input.venue_referents = &referents;
  input.observed_home = folds.MaskedHomes(registered, 0);

  // 3. Fit MLP (following + tweeting observations).
  core::MlpConfig config;
  config.burn_in_iterations = 10;
  config.sampling_iterations = 15;
  core::MlpModel model(config);
  Result<core::MlpResult> result_or = model.Fit(input);
  if (!result_or.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  core::MlpResult result = std::move(result_or).ValueOrDie();

  // 4. Home-prediction accuracy on the hidden users (ACC@100).
  double acc100 = eval::AccuracyWithin(result.home, registered, test_users,
                                       *world.distances, 100.0);
  std::printf("fitted power law: alpha=%.3f beta=%.5f\n", result.alpha,
              result.beta);
  std::printf("ACC@100 on %zu hidden users: %.1f%%\n", test_users.size(),
              acc100 * 100.0);

  // 5. Look at one hidden multi-location user's recovered profile.
  for (graph::UserId u : test_users) {
    const synth::TrueProfile& truth = world.truth.profiles[u];
    if (!truth.IsMultiLocation()) continue;
    std::printf("\nuser %s — true locations:", world.graph->user(u).handle.c_str());
    for (geo::CityId c : truth.locations) {
      std::printf(" [%s]", world.gazetteer->FullName(c).c_str());
    }
    std::printf("\n  recovered profile:");
    for (const auto& [city, prob] : result.profiles[u].entries()) {
      if (prob < 0.05) break;
      std::printf(" %s(%.2f)", world.gazetteer->FullName(city).c_str(), prob);
    }
    std::printf("\n");
    break;
  }
  return 0;
}
