// The raw-text ingestion path: start from profile strings and tweet TEXT
// (not pre-extracted venues), run the [8]-style profile parser and the
// gazetteer venue extractor, build the observation graph from what the
// text pipeline recovers, and profile a user — the workflow a downstream
// adopter with their own crawl would use.
//
//   ./build/examples/text_pipeline

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/model.h"
#include "eval/cross_validation.h"
#include "geo/distance_matrix.h"
#include "geo/gazetteer.h"
#include "synth/tweet_text.h"
#include "synth/world_generator.h"
#include "text/profile_parser.h"
#include "text/venue_extractor.h"

int main() {
  using namespace mlp;

  // A hand-written micro-crawl: Fig. 1's cast. Carol lives in LA but
  // studied in Austin; Lucy is in Austin; Bob in San Diego; Mike in LA;
  // "Gaga" is a celebrity in New York; Jean left her profile blank.
  struct RawUser {
    const char* handle;
    const char* profile;
    std::vector<const char*> tweets;
  };
  std::vector<RawUser> crawl = {
      {"carol",
       "Los Angeles, CA",
       {"Want to go to Honolulu for Spring vacation!",
        "See Gaga in Hollywood.", "missing sixth street and Austin nights",
        "traffic on the 405 again, classic Los Angeles",
        "zilker park picnic was the best"}},
      {"lucy", "Austin, TX",
       {"sxsw lineup just dropped!", "barton springs all weekend",
        "Austin breakfast tacos forever"}},
      {"bob", "san diego, california",
       {"sunset at balboa park", "gaslamp quarter tonight anyone?"}},
      {"mike", "Los Angeles, CA",
       {"venice beach run", "dodger stadium with the crew"}},
      {"gaga", "my home",
       {"new album out now!!", "times square billboard!!",
        "broadway tonight"}},
      {"jean", "", {"coffee", "rainy day"}},
  };

  geo::Gazetteer gazetteer = geo::Gazetteer::FromEmbedded();
  geo::CityDistanceMatrix distances(gazetteer, 1.0);
  text::VenueVocabulary vocab = text::VenueVocabulary::Build(gazetteer);
  text::VenueExtractor extractor(&vocab);

  graph::SocialGraph graph(vocab.size());
  std::printf("-- text ingestion --\n");
  for (const RawUser& raw : crawl) {
    graph::UserRecord record;
    record.handle = raw.handle;
    record.profile_location = raw.profile;
    auto parsed = text::ParseRegisteredLocation(raw.profile, gazetteer);
    record.registered_city = parsed.value_or(geo::kInvalidCity);
    graph::UserId id = graph.AddUser(record);
    std::printf("  @%-6s profile \"%s\" -> %s\n", raw.handle, raw.profile,
                parsed ? gazetteer.FullName(*parsed).c_str() : "(unlabeled)");
    (void)id;
  }

  // Following network from Fig. 1 (follower -> friend).
  auto follow = [&](int a, int b) { MLP_CHECK(graph.AddFollowing(a, b).ok()); };
  follow(0, 1);  // carol -> lucy   (Austin tie)
  follow(0, 3);  // carol -> mike   (LA tie)
  follow(0, 4);  // carol -> gaga   (noise)
  follow(1, 0);  // lucy -> carol
  follow(2, 3);  // bob -> mike
  follow(3, 0);  // mike -> carol
  follow(3, 2);  // mike -> bob
  follow(5, 4);  // jean -> gaga
  follow(2, 4);  // bob -> gaga

  // Tweeting relationships from extracted venue mentions.
  for (graph::UserId u = 0; u < graph.num_users(); ++u) {
    for (const char* tweet : crawl[u].tweets) {
      for (text::VenueId v : extractor.ExtractIds(tweet)) {
        MLP_CHECK(graph.AddTweeting(u, v).ok());
        std::printf("  @%-6s tweeted venue \"%s\"\n",
                    crawl[u].handle, vocab.venue(v).name.c_str());
      }
    }
  }
  graph.Finalize();

  // Profile Carol with her label hidden — can the model recover LA (home)
  // and surface Austin (college) from network + text alone?
  auto referents = vocab.ReferentTable();
  core::ModelInput input;
  input.gazetteer = &gazetteer;
  input.graph = &graph;
  input.distances = &distances;
  input.venue_referents = &referents;
  input.observed_home = eval::RegisteredHomes(graph);
  input.observed_home[0] = geo::kInvalidCity;  // hide Carol

  core::MlpConfig config;
  config.burn_in_iterations = 20;
  config.sampling_iterations = 30;
  config.rho_f = 0.2;
  config.rho_t = 0.2;
  core::MlpResult result =
      std::move(core::MlpModel(config).Fit(input)).ValueOrDie();

  std::printf("\n-- Carol's recovered location profile --\n");
  for (const auto& [city, prob] : result.profiles[0].entries()) {
    if (prob < 0.02) continue;
    std::printf("  %-20s %.2f\n", gazetteer.FullName(city).c_str(), prob);
  }
  std::printf("\n-- relationship explanations for Carol's follows --\n");
  for (graph::EdgeId s : graph.OutEdges(0)) {
    const core::FollowingExplanation& ex = result.following[s];
    std::printf("  carol -> %-6s assignments (%s ; %s), P(noise)=%.2f\n",
                graph.user(graph.following(s).friend_user).handle.c_str(),
                gazetteer.FullName(ex.x).c_str(),
                gazetteer.FullName(ex.y).c_str(), ex.noise_prob);
  }
  return 0;
}
