#include "baselines/base_c.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mlp {
namespace baselines {

namespace {
using geo::CityId;
using graph::UserId;
using graph::VenueId;

/// Per-city venue mention counts from labeled users.
struct TrainingCounts {
  std::vector<std::vector<double>> city_venue;  // [city][venue]
  std::vector<double> city_total;               // mentions per city
  std::vector<double> venue_total;              // mentions per venue
  std::vector<double> city_users;               // labeled users per city
  double total_users = 0.0;
};

TrainingCounts CountTraining(const core::ModelInput& input) {
  const graph::SocialGraph& graph = *input.graph;
  const int num_cities = input.num_locations();
  const int num_venues = graph.num_venues();
  TrainingCounts counts;
  counts.city_venue.assign(num_cities, std::vector<double>(num_venues, 0.0));
  counts.city_total.assign(num_cities, 0.0);
  counts.venue_total.assign(num_venues, 0.0);
  counts.city_users.assign(num_cities, 0.0);
  for (UserId u = 0; u < graph.num_users(); ++u) {
    CityId home = input.observed_home[u];
    if (home == geo::kInvalidCity) continue;
    counts.city_users[home] += 1.0;
    counts.total_users += 1.0;
    for (graph::EdgeId k : graph.TweetEdges(u)) {
      VenueId v = graph.tweeting(k).venue;
      counts.city_venue[home][v] += 1.0;
      counts.city_total[home] += 1.0;
      counts.venue_total[v] += 1.0;
    }
  }
  return counts;
}
}  // namespace

std::vector<VenueId> BaseC::SelectLocalVenues(
    const core::ModelInput& input) const {
  TrainingCounts counts = CountTraining(input);
  const int num_venues = input.graph->num_venues();
  const int num_cities = input.num_locations();
  std::vector<VenueId> local;
  for (VenueId v = 0; v < num_venues; ++v) {
    if (counts.venue_total[v] < config_.min_mentions) continue;
    double max_share = 0.0;
    for (CityId c = 0; c < num_cities; ++c) {
      double share = counts.city_venue[c][v] / counts.venue_total[v];
      max_share = std::max(max_share, share);
    }
    if (max_share >= config_.focus_threshold) local.push_back(v);
  }
  return local;
}

Result<BaselineResult> BaseC::Fit(const core::ModelInput& input) const {
  if (input.graph == nullptr || input.distances == nullptr ||
      input.gazetteer == nullptr) {
    return Status::InvalidArgument("BaseC input has null components");
  }
  if (!input.graph->finalized()) {
    return Status::FailedPrecondition("graph must be finalized");
  }
  const graph::SocialGraph& graph = *input.graph;
  const geo::CityDistanceMatrix& dist = *input.distances;
  const int num_cities = input.num_locations();
  const int num_venues = graph.num_venues();

  TrainingCounts counts = CountTraining(input);
  std::vector<VenueId> local_list = SelectLocalVenues(input);
  std::vector<uint8_t> is_local(num_venues, 0);
  for (VenueId v : local_list) is_local[v] = 1;

  // Base distributions p̂(v | l) with Laplace smoothing.
  const double laplace = config_.laplace;
  auto base_prob = [&](CityId l, VenueId v) {
    return (counts.city_venue[l][v] + laplace) /
           (counts.city_total[l] + laplace * num_venues);
  };

  // Lattice smoothing: precompute each city's neighborhood and blend.
  std::vector<std::vector<std::pair<CityId, double>>> neighborhoods(
      num_cities);
  for (CityId l = 0; l < num_cities; ++l) {
    double kernel_total = 0.0;
    for (CityId c = 0; c < num_cities; ++c) {
      if (c == l) continue;
      double d = dist.raw_miles(l, c);
      if (d > config_.smoothing_radius_miles) continue;
      double k = std::exp(-(d * d) / (2.0 * config_.smoothing_sigma_miles *
                                      config_.smoothing_sigma_miles));
      neighborhoods[l].emplace_back(c, k);
      kernel_total += k;
    }
    if (kernel_total > 0.0) {
      for (auto& [c, k] : neighborhoods[l]) {
        k *= (1.0 - config_.self_weight) / kernel_total;
      }
    }
  }

  // log p_smooth(v | l) for local venues only (the classifier ignores the
  // rest), flattened for cache friendliness.
  std::vector<double> log_prob(static_cast<size_t>(num_cities) *
                               num_venues);
  for (CityId l = 0; l < num_cities; ++l) {
    bool has_neighbors = !neighborhoods[l].empty();
    for (VenueId v = 0; v < num_venues; ++v) {
      if (!is_local[v]) continue;
      double p = has_neighbors ? config_.self_weight * base_prob(l, v)
                               : base_prob(l, v);
      for (const auto& [c, w] : neighborhoods[l]) {
        p += w * base_prob(c, v);
      }
      log_prob[static_cast<size_t>(l) * num_venues + v] = std::log(p);
    }
  }

  // log prior(l) from the training users' city distribution.
  std::vector<double> log_prior(num_cities);
  for (CityId l = 0; l < num_cities; ++l) {
    log_prior[l] = std::log((counts.city_users[l] + 1.0) /
                            (counts.total_users + num_cities));
  }

  CityId prior_argmax = static_cast<CityId>(
      std::max_element(log_prior.begin(), log_prior.end()) -
      log_prior.begin());

  BaselineResult result;
  const int num_users = input.num_users();
  result.profiles.resize(num_users);
  result.home.assign(num_users, prior_argmax);

  std::vector<double> scores(num_cities);
  for (UserId u = 0; u < num_users; ++u) {
    // The user's local-venue mention counts.
    std::vector<std::pair<VenueId, double>> mentions;
    for (graph::EdgeId k : graph.TweetEdges(u)) {
      VenueId v = graph.tweeting(k).venue;
      if (!is_local[v]) continue;
      bool found = false;
      for (auto& [mv, mc] : mentions) {
        if (mv == v) {
          mc += 1.0;
          found = true;
          break;
        }
      }
      if (!found) mentions.emplace_back(v, 1.0);
    }
    if (mentions.empty()) continue;

    for (CityId l = 0; l < num_cities; ++l) {
      double score = log_prior[l];
      for (const auto& [v, c] : mentions) {
        score += c * log_prob[static_cast<size_t>(l) * num_venues + v];
      }
      scores[l] = score;
    }

    double max_score = *std::max_element(scores.begin(), scores.end());
    std::vector<std::pair<CityId, double>> entries;
    double z = 0.0;
    for (CityId l = 0; l < num_cities; ++l) {
      double w = std::exp(scores[l] - max_score);
      if (w < 1e-12) continue;  // keep profiles sparse
      z += w;
      entries.emplace_back(l, w);
    }
    for (auto& [c, w] : entries) w /= z;
    result.profiles[u] = core::LocationProfile(std::move(entries));
    result.home[u] = result.profiles[u].Home();
  }
  return result;
}

}  // namespace baselines
}  // namespace mlp
