#ifndef MLP_BASELINES_BASE_C_H_
#define MLP_BASELINES_BASE_C_H_

#include <vector>

#include "common/result.h"
#include "baselines/base_u.h"
#include "core/input.h"

namespace mlp {
namespace baselines {

struct BaseCConfig {
  /// A venue participates as a "local word" only with at least this many
  /// training mentions.
  int min_mentions = 10;
  /// Spatial-focus threshold: a venue is local when its most likely city
  /// holds at least this share of its mentions ([8] selects local words via
  /// a supervised classifier; this score is the non-subjective analogue —
  /// the paper itself reports BaseC's accuracy swings 36–50% with the word
  /// set chosen).
  double focus_threshold = 0.30;
  /// Laplace smoothing for p(v | l).
  double laplace = 0.02;
  /// Lattice neighborhood smoothing ([8] Sec. 5.2): p(v|l) is blended with
  /// nearby cities' distributions, Gaussian-kernel weighted.
  double smoothing_radius_miles = 100.0;
  double smoothing_sigma_miles = 50.0;
  /// Weight of the city's own distribution in the blend.
  double self_weight = 0.7;
};

/// BaseC — Cheng, Caverlee, Lee, "You are where you tweet" (CIKM 2010), the
/// paper's content-only baseline. Estimates per-city venue distributions
/// from labeled users' tweets, filters to spatially focused ("local")
/// venues, smooths across the city lattice, and classifies each user to
/// the city maximizing Σ log p(v|l) + log prior(l) over their local-venue
/// mentions. Single-location by construction.
class BaseC {
 public:
  explicit BaseC(BaseCConfig config = {}) : config_(config) {}

  Result<BaselineResult> Fit(const core::ModelInput& input) const;

  /// The venue ids selected as local words on the given input (exposed for
  /// tests and the word-set-sensitivity ablation).
  std::vector<graph::VenueId> SelectLocalVenues(
      const core::ModelInput& input) const;

 private:
  BaseCConfig config_;
};

}  // namespace baselines
}  // namespace mlp

#endif  // MLP_BASELINES_BASE_C_H_
