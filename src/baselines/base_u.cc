#include "baselines/base_u.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/pair_distance.h"
#include "stats/power_law.h"

namespace mlp {
namespace baselines {

namespace {
using geo::CityId;
using graph::UserId;
}  // namespace

Result<BaselineResult> BaseU::Fit(const core::ModelInput& input) const {
  if (input.graph == nullptr || input.distances == nullptr ||
      input.gazetteer == nullptr) {
    return Status::InvalidArgument("BaseU input has null components");
  }
  if (!input.graph->finalized()) {
    return Status::FailedPrecondition("graph must be finalized");
  }
  const graph::SocialGraph& graph = *input.graph;
  const geo::CityDistanceMatrix& dist = *input.distances;
  const int num_users = input.num_users();
  const int num_cities = input.num_locations();

  // Step 1: learn p(edge | d) from the training labels (Sec. 2 of [5]).
  stats::PowerLaw law{config_.fallback_alpha, config_.fallback_beta};
  Result<stats::PowerLaw> fit = core::FitFollowingPowerLaw(
      graph, input.observed_home, dist);
  if (fit.ok()) law = *fit;

  auto edge_prob = [&](double d) {
    return std::min(law(d), config_.max_edge_prob);
  };

  // Step 2: the non-edge correction term, grouped by city:
  // G(l) = Σ_c n_c · log(1 − p(d(l, c))), n_c = labeled users homed at c.
  std::vector<double> city_count(num_cities, 0.0);
  for (UserId u = 0; u < num_users; ++u) {
    CityId home = input.observed_home[u];
    if (home != geo::kInvalidCity) city_count[home] += 1.0;
  }
  std::vector<double> non_edge_term(num_cities, 0.0);
  for (CityId l = 0; l < num_cities; ++l) {
    double total = 0.0;
    for (CityId c = 0; c < num_cities; ++c) {
      if (city_count[c] <= 0.0) continue;
      total += city_count[c] * std::log1p(-edge_prob(dist.miles(l, c)));
    }
    non_edge_term[l] = total;
  }

  // Fallback for users with no labeled neighbors: the most populous city.
  CityId top_city = 0;
  for (CityId c = 1; c < num_cities; ++c) {
    if (input.gazetteer->city(c).population >
        input.gazetteer->city(top_city).population) {
      top_city = c;
    }
  }

  BaselineResult result;
  result.profiles.resize(num_users);
  result.home.assign(num_users, top_city);

  std::vector<CityId> neighbor_cities;
  for (UserId u = 0; u < num_users; ++u) {
    // Gather labeled neighbor homes (both directions, as in [5]'s
    // undirected friendship setting).
    neighbor_cities.clear();
    auto add_neighbor = [&](UserId other) {
      CityId c = input.observed_home[other];
      if (c != geo::kInvalidCity) neighbor_cities.push_back(c);
    };
    for (graph::EdgeId s : graph.OutEdges(u)) {
      add_neighbor(graph.following(s).friend_user);
    }
    for (graph::EdgeId s : graph.InEdges(u)) {
      add_neighbor(graph.following(s).follower);
    }
    if (neighbor_cities.empty()) continue;

    // Candidate set: distinct neighbor cities.
    std::vector<CityId> candidates = neighbor_cities;
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    std::vector<double> scores(candidates.size(), 0.0);
    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      CityId l = candidates[ci];
      double score = non_edge_term[l];
      for (CityId lv : neighbor_cities) {
        double p = edge_prob(dist.miles(l, lv));
        score += std::log(p) - std::log1p(-p);
      }
      scores[ci] = score;
    }

    // Scores → profile via softmax (shifted for stability).
    double max_score = *std::max_element(scores.begin(), scores.end());
    std::vector<std::pair<CityId, double>> entries;
    double z = 0.0;
    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      double w = std::exp(scores[ci] - max_score);
      z += w;
      entries.emplace_back(candidates[ci], w);
    }
    for (auto& [c, w] : entries) w /= z;
    result.profiles[u] = core::LocationProfile(std::move(entries));
    result.home[u] = result.profiles[u].Home();
  }
  return result;
}

}  // namespace baselines
}  // namespace mlp
