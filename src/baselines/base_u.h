#ifndef MLP_BASELINES_BASE_U_H_
#define MLP_BASELINES_BASE_U_H_

#include <vector>

#include "common/result.h"
#include "core/input.h"
#include "core/location_profile.h"

namespace mlp {
namespace baselines {

/// Shared output shape of the single-location baselines: a score-derived
/// profile (for the top-K multi-location protocol of Sec. 5.2) and the
/// argmax home estimate.
struct BaselineResult {
  std::vector<core::LocationProfile> profiles;
  std::vector<geo::CityId> home;
};

struct BaseUConfig {
  /// Cap on p(d) when computing log(1-p); keeps the non-edge term finite
  /// for very short distances where the fitted power law exceeds 1.
  double max_edge_prob = 0.25;
  /// Power-law fit fallback when the data cannot be fit (paper's values).
  double fallback_alpha = -0.55;
  double fallback_beta = 0.0045;
};

/// BaseU — Backstrom, Sun, Marlow, "Find me if you can" (WWW 2010), the
/// paper's social-network baseline. Learns P(edge | distance) as a power
/// law over labeled pairs, then places each user at the maximum-likelihood
/// city:
///
///   score(l) = Σ_{v ∈ neighbors} [log p(d(l, l_v)) − log(1 − p(d(l, l_v)))]
///              + Σ_{w ∈ labeled} log(1 − p(d(l, l_w)))
///
/// The second sum — Backstrom's correction for non-edges — is precomputed
/// per city pair in O(|L|²). Candidates are the cities of the user's
/// labeled neighbors (followers and friends), exactly the "one location"
/// assumption the paper criticizes: a user's multiple regions compete for
/// a single argmax.
class BaseU {
 public:
  explicit BaseU(BaseUConfig config = {}) : config_(config) {}

  Result<BaselineResult> Fit(const core::ModelInput& input) const;

 private:
  BaseUConfig config_;
};

}  // namespace baselines
}  // namespace mlp

#endif  // MLP_BASELINES_BASE_U_H_
