#include "baselines/home_explainer.h"

#include "common/logging.h"

namespace mlp {
namespace baselines {

std::vector<core::FollowingExplanation> ExplainByHome(
    const graph::SocialGraph& graph, const std::vector<geo::CityId>& homes) {
  MLP_CHECK(static_cast<int>(homes.size()) == graph.num_users());
  std::vector<core::FollowingExplanation> out(graph.num_following());
  for (graph::EdgeId s = 0; s < graph.num_following(); ++s) {
    const graph::FollowingEdge& edge = graph.following(s);
    out[s].x = homes[edge.follower];
    out[s].y = homes[edge.friend_user];
    out[s].noise_prob = 0.0;
  }
  return out;
}

}  // namespace baselines
}  // namespace mlp
