#ifndef MLP_BASELINES_HOME_EXPLAINER_H_
#define MLP_BASELINES_HOME_EXPLAINER_H_

#include <vector>

#include "core/sampler.h"
#include "graph/social_graph.h"

namespace mlp {
namespace baselines {

/// "Base" of Sec. 5.3: explains every following relationship by assigning
/// both users their home locations. The paper calls it a strong baseline —
/// it is right whenever a relationship really is home-to-home — but it
/// cannot explain relationships rooted in users' other locations.
/// `homes[u]` may be ground truth or a prediction; edges touching a user
/// with kInvalidCity get an invalid assignment (counted as wrong by eval).
std::vector<core::FollowingExplanation> ExplainByHome(
    const graph::SocialGraph& graph, const std::vector<geo::CityId>& homes);

}  // namespace baselines
}  // namespace mlp

#endif  // MLP_BASELINES_HOME_EXPLAINER_H_
