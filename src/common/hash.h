#ifndef MLP_COMMON_HASH_H_
#define MLP_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace mlp {

/// Incremental FNV-1a 64. Used both for the model-fit fingerprint
/// (core/model.cc) and the snapshot payload checksum (io/model_snapshot.cc)
/// — one implementation so the constants can never drift apart. Feed it
/// field by field, never whole structs (padding bytes are indeterminate).
struct Fnv1a64 {
  uint64_t hash = 1469598103934665603ULL;

  void Bytes(const void* data, size_t size) {
    const uint8_t* bytes = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash = (hash ^ bytes[i]) * 1099511628211ULL;
    }
  }
  template <typename T>
  void Value(T v) {
    static_assert(std::is_trivially_copyable<T>::value, "POD only");
    Bytes(&v, sizeof(v));
  }
  template <typename T>
  void Span(const std::vector<T>& v) {
    static_assert(std::is_arithmetic<T>::value, "no padding allowed");
    Value<uint64_t>(v.size());
    if (!v.empty()) Bytes(v.data(), v.size() * sizeof(T));
  }
};

/// One-shot convenience over a contiguous buffer.
inline uint64_t HashFnv1a64(const void* data, size_t size) {
  Fnv1a64 h;
  h.Bytes(data, size);
  return h.hash;
}

}  // namespace mlp

#endif  // MLP_COMMON_HASH_H_
