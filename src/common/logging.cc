#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace mlp {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

int InitialLevel() {
  const char* env = std::getenv("MLP_LOG_LEVEL");
  LogLevel level = LogLevel::kInfo;
  if (env != nullptr) ParseLogLevel(env, &level);
  return static_cast<int>(level);
}

std::atomic<int> g_min_level{InitialLevel()};

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& name, LogLevel* level) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                         : c);
  }
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *level = LogLevel::kWarning;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

int CurrentThreadOrdinal() {
  static std::atomic<int> next{0};
  thread_local const int ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

int64_t MonotonicMicros() {
  // The epoch is the first call (in practice: very early, from the first
  // log line or span), so timestamps stay small and human-readable.
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Monotonic seconds + thread ordinal make multi-threaded fit logs
  // attributable and ordering-legible: [INFO 12.345678 T03 file:42].
  const int64_t us = MonotonicMicros();
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[%s %lld.%06lld T%02d ",
                LevelName(level), static_cast<long long>(us / 1000000),
                static_cast<long long>(us % 1000000), CurrentThreadOrdinal());
  stream_ << prefix << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace mlp
