#ifndef MLP_COMMON_LOGGING_H_
#define MLP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mlp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line: emits on destruction. Used via the MLP_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Aborts with a message when `condition` is false, in all build types.
/// Reserved for programmer errors (invariant violations), not data errors.
#define MLP_CHECK(condition)                                              \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::mlp::internal::CheckFailed(#condition, __FILE__, __LINE__);       \
    }                                                                     \
  } while (0)

#define MLP_CHECK_MSG(condition, msg)                                     \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::mlp::internal::CheckFailed(msg, __FILE__, __LINE__);              \
    }                                                                     \
  } while (0)

#define MLP_LOG(level) \
  ::mlp::internal::LogMessage(::mlp::LogLevel::level, __FILE__, __LINE__)

namespace internal {
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);
}  // namespace internal

}  // namespace mlp

#endif  // MLP_COMMON_LOGGING_H_
