#ifndef MLP_COMMON_LOGGING_H_
#define MLP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mlp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. The initial
/// level honors the MLP_LOG_LEVEL environment variable (debug / info /
/// warning / error, case-insensitive), defaulting to info.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a level name ("debug", "INFO", "warn", ...). Returns false (and
/// leaves `*level` untouched) on anything unrecognized — callers surface
/// the error instead of silently logging at the wrong level.
bool ParseLogLevel(const std::string& name, LogLevel* level);

/// Small, stable per-thread ordinal (0 for the first thread to ask, 1 for
/// the next, ...). Used to attribute log lines and trace events to threads
/// without dragging platform thread-id formatting around.
int CurrentThreadOrdinal();

/// Microseconds on the monotonic clock since the process first asked —
/// the timestamp base shared by log prefixes and trace events, so a log
/// line can be located inside a trace by eye.
int64_t MonotonicMicros();

namespace internal {

/// Stream-style log line: emits on destruction. Used via the MLP_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Aborts with a message when `condition` is false, in all build types.
/// Reserved for programmer errors (invariant violations), not data errors.
#define MLP_CHECK(condition)                                              \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::mlp::internal::CheckFailed(#condition, __FILE__, __LINE__);       \
    }                                                                     \
  } while (0)

#define MLP_CHECK_MSG(condition, msg)                                     \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::mlp::internal::CheckFailed(msg, __FILE__, __LINE__);              \
    }                                                                     \
  } while (0)

#define MLP_LOG(level) \
  ::mlp::internal::LogMessage(::mlp::LogLevel::level, __FILE__, __LINE__)

namespace internal {
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);
}  // namespace internal

}  // namespace mlp

#endif  // MLP_COMMON_LOGGING_H_
