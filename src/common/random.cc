#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace mlp {

Pcg32::Pcg32(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Pcg32::NextU32() {
  uint64_t oldstate = state_;
  state_ = oldstate * 6364136223846793005ULL + inc_;
  uint32_t xorshifted =
      static_cast<uint32_t>(((oldstate >> 18u) ^ oldstate) >> 27u);
  uint32_t rot = static_cast<uint32_t>(oldstate >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
}

uint64_t Pcg32::NextU64() {
  uint64_t hi = NextU32();
  return (hi << 32) | NextU32();
}

double Pcg32::NextDouble() {
  // 53 random bits into the mantissa for a uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint32_t Pcg32::UniformU32(uint32_t bound) {
  MLP_CHECK(bound > 0);
  // Lemire's unbiased rejection method.
  uint32_t threshold = (-bound) % bound;
  for (;;) {
    uint32_t r = NextU32();
    if (r >= threshold) return r % bound;
  }
}

int Pcg32::UniformInt(int lo, int hi) {
  MLP_CHECK(lo <= hi);
  uint32_t span = static_cast<uint32_t>(hi - lo) + 1u;
  if (span == 0) return static_cast<int>(NextU32());  // full range
  return lo + static_cast<int>(UniformU32(span));
}

double Pcg32::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Pcg32::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Pcg32::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Pcg32::Exponential(double lambda) {
  MLP_CHECK(lambda > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

double Pcg32::Gamma(double shape) {
  MLP_CHECK(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia–Tsang note).
    double u;
    do {
      u = NextDouble();
    } while (u <= 1e-300);
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  double d = shape - 1.0 / 3.0;
  double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 1e-300 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

int Pcg32::Poisson(double mean) {
  MLP_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    double limit = std::exp(-mean);
    double product = NextDouble();
    int count = 0;
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for the
  // workload-generation use cases in this library.
  double draw = Normal(mean, std::sqrt(mean));
  return draw < 0.0 ? 0 : static_cast<int>(draw + 0.5);
}

int Pcg32::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0 || weights.empty()) return -1;
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<double> Pcg32::Dirichlet(const std::vector<double>& alpha) {
  std::vector<double> out(alpha.size());
  double total = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    MLP_CHECK(alpha[i] > 0.0);
    out[i] = Gamma(alpha[i]);
    total += out[i];
  }
  if (total <= 0.0) {
    // Degenerate draw (all gammas underflowed); fall back to uniform.
    double uniform = 1.0 / static_cast<double>(alpha.size());
    for (double& x : out) x = uniform;
    return out;
  }
  for (double& x : out) x /= total;
  return out;
}

Pcg32 Pcg32::Fork() {
  uint64_t seed = NextU64();
  uint64_t stream = NextU64();
  return Pcg32(seed, stream);
}

Pcg32State Pcg32::SaveState() const {
  Pcg32State s;
  s.state = state_;
  s.inc = inc_;
  s.has_cached_normal = has_cached_normal_ ? 1 : 0;
  s.cached_normal = cached_normal_;
  return s;
}

void Pcg32::RestoreState(const Pcg32State& state) {
  state_ = state.state;
  inc_ = state.inc;
  has_cached_normal_ = state.has_cached_normal != 0;
  cached_normal_ = state.cached_normal;
}

}  // namespace mlp
