#ifndef MLP_COMMON_RANDOM_H_
#define MLP_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mlp {

/// Complete serializable state of a Pcg32 — the generator resumed from a
/// saved state continues its stream exactly (io/model_snapshot.{h,cc}
/// persists these for warm-started fits). The Box–Muller cache is part of
/// the state: Normal() alternates between drawing two uniforms and
/// replaying the cached second deviate.
struct Pcg32State {
  uint64_t state = 0;
  uint64_t inc = 0;
  uint8_t has_cached_normal = 0;
  double cached_normal = 0.0;
};

/// PCG-XSH-RR 64/32 pseudo-random generator (O'Neill 2014).
///
/// Deterministic given a seed, fast, and with a tiny state — every sampler,
/// generator and test in the library takes one of these so runs are exactly
/// reproducible. Satisfies UniformRandomBitGenerator.
class Pcg32 {
 public:
  using result_type = uint32_t;

  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  /// Next raw 32-bit draw.
  uint32_t operator()() { return NextU32(); }
  uint32_t NextU32();
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  uint32_t UniformU32(uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi);

  /// Uniform real in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box–Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with rate lambda (> 0).
  double Exponential(double lambda);

  /// Gamma(shape, 1.0) via Marsaglia–Tsang; shape > 0.
  double Gamma(double shape);

  /// Poisson with given mean (Knuth for small mean, PTRS-like rejection
  /// through normal approximation threshold for large mean).
  int Poisson(double mean);

  /// Index draw from unnormalized non-negative weights. Linear scan;
  /// for repeated sampling from the same weights use stats::AliasTable.
  /// Returns weights.size()-1 on numeric fallthrough; -1 when all weights
  /// are zero or the vector is empty.
  int Categorical(const std::vector<double>& weights);

  /// Dirichlet draw with concentration `alpha` (all entries > 0).
  std::vector<double> Dirichlet(const std::vector<double>& alpha);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = UniformU32(static_cast<uint32_t>(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Child generator with a decorrelated stream; use to give each component
  /// its own RNG derived from one master seed.
  Pcg32 Fork();

  /// Snapshot / resume of the exact generator position.
  Pcg32State SaveState() const;
  void RestoreState(const Pcg32State& state);

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace mlp

#endif  // MLP_COMMON_RANDOM_H_
