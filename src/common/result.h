#ifndef MLP_COMMON_RESULT_H_
#define MLP_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mlp {

/// Either a value of type `T` or a non-OK `Status` (Arrow's `Result<T>`).
///
/// Usage:
///   Result<Gazetteer> r = Gazetteer::FromCsv(path);
///   if (!r.ok()) return r.status();
///   Gazetteer gaz = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must be non-OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; undefined if `!ok()` (asserts in debug).
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when in the error state.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace mlp

/// Assigns the value of a `Result<T>` expression to `lhs`, or returns its
/// status on error.
#define MLP_CONCAT_IMPL(a, b) a##b
#define MLP_CONCAT(a, b) MLP_CONCAT_IMPL(a, b)
#define MLP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie();
#define MLP_ASSIGN_OR_RETURN(lhs, rexpr) \
  MLP_ASSIGN_OR_RETURN_IMPL(MLP_CONCAT(_res_, __LINE__), lhs, rexpr)

#endif  // MLP_COMMON_RESULT_H_
