#ifndef MLP_COMMON_STATUS_H_
#define MLP_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace mlp {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of a small closed set of codes plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
};

/// Operation outcome. The library does not throw exceptions; fallible
/// functions return `Status` (or `Result<T>`, see result.h) instead.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }

  /// Human-readable "<CODE>: <message>" string, "OK" for success.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Returns the canonical name for a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

}  // namespace mlp

/// Propagates a non-OK status to the caller (RocksDB idiom).
#define MLP_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::mlp::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

#endif  // MLP_COMMON_STATUS_H_
