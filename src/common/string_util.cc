#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace mlp {

namespace {
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view TrimView(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && IsSpace(s[begin])) ++begin;
  while (end > begin && IsSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsSpace(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsSpace(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsAlpha(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalpha(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace mlp
