#ifndef MLP_COMMON_STRING_UTIL_H_
#define MLP_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mlp {

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view s);

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True when every character is an ASCII letter.
bool IsAlpha(std::string_view s);

/// printf-style formatting into std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace mlp

#endif  // MLP_COMMON_STRING_UTIL_H_
