#include "core/candidate_space.h"

#include <algorithm>

#include "common/logging.h"

namespace mlp {
namespace core {

CandidateSpace CandidateSpace::Build(const ModelInput& input,
                                     const MlpConfig& config) {
  std::vector<UserPrior> priors = BuildPriors(input, config);

  CandidateSpace space;
  const int num_users = static_cast<int>(priors.size());
  space.num_locations_ = input.num_locations();
  space.num_venues_ = config.source == ObservationSource::kFollowingOnly
                          ? 0
                          : input.num_venues();

  space.full_offset_.resize(num_users + 1);
  int64_t offset = 0;
  for (int u = 0; u < num_users; ++u) {
    space.full_offset_[u] = offset;
    offset += priors[u].size();
  }
  space.full_offset_[num_users] = offset;

  space.full_candidates_.reserve(offset);
  space.full_gamma_.reserve(offset);
  space.full_gamma_sum_.reserve(num_users);
  for (const UserPrior& prior : priors) {
    space.full_candidates_.insert(space.full_candidates_.end(),
                                  prior.candidates.begin(),
                                  prior.candidates.end());
    space.full_gamma_.insert(space.full_gamma_.end(), prior.gamma.begin(),
                             prior.gamma.end());
    space.full_gamma_sum_.push_back(prior.gamma_sum);
  }

  space.active_.assign(offset, 1);
  space.cold_streak_.assign(offset, 0);
  space.RebuildActiveView();
  return space;
}

double CandidateSpace::ActiveFraction() const {
  return full_size() == 0
             ? 1.0
             : static_cast<double>(active_size()) /
                   static_cast<double>(full_size());
}

void CandidateSpace::RebuildActiveView() {
  const int num_users = this->num_users();
  layout_.num_users = num_users;
  layout_.num_locations = num_locations_;
  layout_.num_venues = num_venues_;
  layout_.phi_offset.resize(num_users + 1);

  candidates_.clear();
  gamma_.clear();
  gamma_sum_.resize(num_users);
  active_full_idx_.clear();

  int64_t offset = 0;
  for (int u = 0; u < num_users; ++u) {
    layout_.phi_offset[u] = offset;
    const int64_t begin = full_offset_[u];
    const int64_t end = full_offset_[u + 1];
    int kept = 0;
    double kept_gamma = 0.0;
    for (int64_t f = begin; f < end; ++f) {
      if (!active_[f]) continue;
      candidates_.push_back(full_candidates_[f]);
      gamma_.push_back(full_gamma_[f]);
      kept_gamma += full_gamma_[f];
      active_full_idx_.push_back(f);
      ++kept;
    }
    MLP_CHECK(kept > 0 || begin == end);
    if (kept == static_cast<int>(end - begin)) {
      // Row fully active: γ survives untouched, bit-identical to the
      // BuildPriors output (the --no_prune / pre-pruning contract).
      gamma_sum_[u] = full_gamma_sum_[u];
    } else {
      // γ renormalized over the survivors so the row's prior mass (and the
      // θ̃ denominator scale) is preserved through pruning.
      const double scale =
          kept_gamma > 0.0 ? full_gamma_sum_[u] / kept_gamma : 1.0;
      for (int64_t a = offset; a < offset + kept; ++a) gamma_[a] *= scale;
      gamma_sum_[u] = full_gamma_sum_[u];
    }
    offset += kept;
  }
  layout_.phi_offset[num_users] = offset;

  views_.resize(num_users);
  for (int u = 0; u < num_users; ++u) {
    CandidateView& view = views_[u];
    view.candidates = candidates_.data() + layout_.phi_offset[u];
    view.gamma = gamma_.data() + layout_.phi_offset[u];
    view.count = layout_.candidate_count(u);
    view.gamma_sum = gamma_sum_[u];
  }
}

bool CandidateSpace::PruneStep(const SuffStatsArena& stats,
                               const MlpConfig& config, int32_t sweep,
                               CompactionPlan* plan) {
  if (config.prune_floor <= 0.0) return false;
  MLP_CHECK(plan != nullptr);
  MLP_CHECK(stats.layout == &layout_);
  const double floor = config.prune_floor;
  const int patience = std::max(1, config.prune_patience);

  int64_t deactivated = 0;
  const int num_users = this->num_users();
  for (graph::UserId u = 0; u < num_users; ++u) {
    const int64_t off = layout_.phi_offset[u];
    const int n = layout_.candidate_count(u);
    if (n <= 1) continue;
    const double denom = stats.phi_total[u] + gamma_sum_[u];
    if (denom <= 0.0) continue;

    // The current posterior-argmax slot is immune: a user always keeps at
    // least its best-supported candidate.
    int keep = 0;
    double best = -1.0;
    for (int l = 0; l < n; ++l) {
      const double w = stats.phi[off + l] + gamma_[off + l];
      if (w > best) {
        best = w;
        keep = l;
      }
    }

    int alive = n;
    for (int l = 0; l < n; ++l) {
      const int64_t full = active_full_idx_[off + l];
      const double mass = (stats.phi[off + l] + gamma_[off + l]) / denom;
      if (mass >= floor) {
        cold_streak_[full] = 0;
        continue;
      }
      if (++cold_streak_[full] < patience) continue;
      if (l == keep) continue;
      // Never prune a slot with live assignments (so the chain state and
      // the arena never reference a dead slot) or a supervision-boosted
      // slot (an observed home stays a candidate for the whole fit).
      if (stats.phi[off + l] != 0.0) continue;
      if (full_gamma_[full] > config.tau) continue;
      if (alive <= 1) continue;
      active_[full] = 0;
      --alive;
      ++deactivated;
    }
  }
  if (deactivated == 0) return false;

  // Remap over the OLD active layout, computed before the rebuild while
  // active_full_idx_ still describes it.
  plan->old_offset = layout_.phi_offset;
  plan->remap.resize(active_full_idx_.size());
  for (graph::UserId u = 0; u < num_users; ++u) {
    const int64_t off = layout_.phi_offset[u];
    const int n = layout_.candidate_count(u);
    int32_t next = 0;
    for (int l = 0; l < n; ++l) {
      plan->remap[off + l] =
          active_[active_full_idx_[off + l]] ? next++ : -1;
    }
  }

  RebuildActiveView();
  ++version_;
  history_.push_back({sweep, static_cast<int32_t>(deactivated)});
  return true;
}

CandidateActivation CandidateSpace::SaveActivation() const {
  CandidateActivation activation;
  activation.layout_version = version_;
  activation.history = history_;
  // A space that never pruned and carries no live streak counters saves as
  // the canonical "fully active" empty mask — byte-identical semantics to
  // a v1 snapshot, and what keeps unpruned v2 checkpoints v1-expressible.
  const bool pristine =
      version_ == 0 &&
      std::all_of(cold_streak_.begin(), cold_streak_.end(),
                  [](int32_t c) { return c == 0; });
  if (!pristine) {
    activation.active = active_;
    activation.cold_streak = cold_streak_;
  }
  return activation;
}

Status CandidateSpace::RestoreActivation(
    const CandidateActivation& activation) {
  const int64_t full = full_size();
  if (activation.active.empty()) {
    // Fully active — the v1-snapshot interpretation and the state of any
    // fit that never pruned.
    active_.assign(full, 1);
    cold_streak_.assign(full, 0);
  } else {
    if (static_cast<int64_t>(activation.active.size()) != full) {
      return Status::InvalidArgument(
          "candidate activation mask does not match the candidate universe");
    }
    if (!activation.cold_streak.empty() &&
        static_cast<int64_t>(activation.cold_streak.size()) != full) {
      return Status::InvalidArgument(
          "candidate prune counters do not match the candidate universe");
    }
    for (graph::UserId u = 0; u < num_users(); ++u) {
      bool any = full_offset_[u] == full_offset_[u + 1];
      for (int64_t f = full_offset_[u]; f < full_offset_[u + 1] && !any; ++f) {
        any = activation.active[f] != 0;
      }
      if (!any) {
        return Status::InvalidArgument(
            "candidate activation mask leaves a user with no candidates");
      }
    }
    active_.assign(full, 0);
    for (int64_t f = 0; f < full; ++f) active_[f] = activation.active[f] ? 1 : 0;
    if (activation.cold_streak.empty()) {
      cold_streak_.assign(full, 0);
    } else {
      cold_streak_ = activation.cold_streak;
    }
  }
  version_ = activation.layout_version;
  history_ = activation.history;
  RebuildActiveView();
  return Status::OK();
}

void ProposalTables::Bind(const CandidateSpace* space) {
  space_ = space;
  layout_version_ = space->layout_version();
  const size_t size = static_cast<size_t>(space->layout().phi_size());
  prob_.resize(size);
  alias_.resize(size);
  w_.resize(size);
}

void ProposalTables::RebuildRange(const SuffStatsArena& arena,
                                  graph::UserId u_begin, graph::UserId u_end,
                                  stats::AliasBuildScratch* scratch) {
  const SuffStatsLayout& layout = space_->layout();
  for (graph::UserId u = u_begin; u < u_end; ++u) {
    const CandidateView& view = space_->view(u);
    const int64_t off = layout.phi_offset[u];
    const int n = view.count;
    const double* phi_u = arena.phi.data() + off;
    double* w_u = w_.data() + off;
    for (int l = 0; l < n; ++l) {
      const double w = phi_u[l] + view.gamma[l];
      w_u[l] = w > 0.0 ? w : 0.0;
    }
    stats::AliasTable::BuildInto(w_u, n, prob_.data() + off,
                                 alias_.data() + off, scratch);
  }
}

}  // namespace core
}  // namespace mlp
