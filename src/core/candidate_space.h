#ifndef MLP_CORE_CANDIDATE_SPACE_H_
#define MLP_CORE_CANDIDATE_SPACE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/input.h"
#include "core/model_config.h"
#include "core/priors.h"
#include "core/suff_stats.h"
#include "stats/alias_table.h"

namespace mlp {
namespace core {

/// Read-only view of one user's ACTIVE candidate row inside a
/// CandidateSpace: sorted candidate cities, their (renormalized) γ prior
/// and its sum. The pointers alias the space's flat buffers and are
/// refreshed by every compaction — hold the space, not the view, across
/// sync barriers.
struct CandidateView {
  const geo::CityId* candidates = nullptr;
  const double* gamma = nullptr;
  int count = 0;
  double gamma_sum = 0.0;

  int size() const { return count; }
  /// Active slot of `city`, or -1. Same binary search as every other
  /// candidate→slot lookup (FindCandidateSlot).
  int IndexOf(geo::CityId city) const {
    return FindCandidateSlot(candidates, count, city);
  }
};

/// One sweep-time pruning compaction, kept for observability and persisted
/// in snapshot v2 so a resumed fit knows the full deactivation lineage.
struct PruneEvent {
  int32_t sweep = 0;        // global sweep index the barrier fired at
  int32_t deactivated = 0;  // slots deactivated at that barrier
};

/// The persistable activation state of a CandidateSpace, relative to the
/// FULL universe (which is a pure function of (input, config) and is never
/// stored). An empty `active` mask means "fully active" — exactly how
/// snapshot v1 files, which predate pruning, are interpreted.
struct CandidateActivation {
  std::vector<uint8_t> active;       // per full slot; empty = all active
  std::vector<int32_t> cold_streak;  // per full slot; empty = all zero
  uint64_t layout_version = 0;
  std::vector<PruneEvent> history;
};

/// Slot remapping produced by one PruneStep compaction, expressed over the
/// PREVIOUS active layout so the sampler can move its arena values and
/// chain indices into the new one.
struct CompactionPlan {
  std::vector<int64_t> old_offset;  // active CSR prefix before compaction
  std::vector<int32_t> remap;       // old active slot -> new local index, -1
};

/// Single owner of the candidate universe (ISSUE 3 / ROADMAP "candidate-set
/// pruning"). Holds, for every user:
///   - the FULL candidate row built once from the Sec-4.3 candidacy rules
///     (BuildPriors) — immutable, rebuildable from (input, config), and the
///     thing FitFingerprint binds a checkpoint to;
///   - a per-slot ACTIVE mask plus the derived compacted CSR (sorted
///     cities, renormalized γ, per-user γ sums) that the sampler, the
///     SuffStatsArena layout, the engine's shard costs and the snapshot's
///     candidate section are all views of;
///   - a monotonically increasing `layout_version` bumped by every
///     compaction, so downstream consumers (engine replicas today,
///     streaming updates and the serving layer per ROADMAP) can detect a
///     stale layout instead of desynchronizing.
///
/// Ownership rule: nothing else copies the candidate lists. UserPrior is
/// the construction-time artifact consumed by Build; GibbsSampler,
/// SuffStatsArena (through layout()), ParallelGibbsEngine and
/// io::MakeModelSnapshot all read through this class.
class CandidateSpace {
 public:
  /// Builds the full universe via BuildPriors(input, config) and starts
  /// fully active (layout_version 0). The active view is then bit-identical
  /// to the priors BuildPriors returned.
  static CandidateSpace Build(const ModelInput& input, const MlpConfig& config);

  CandidateSpace() = default;
  /// Move-only: views_ holds raw pointers into the flat buffers, which
  /// vector moves preserve but copies would leave aliasing the source.
  CandidateSpace(CandidateSpace&&) = default;
  CandidateSpace& operator=(CandidateSpace&&) = default;
  CandidateSpace(const CandidateSpace&) = delete;
  CandidateSpace& operator=(const CandidateSpace&) = delete;

  // ---- full (immutable) universe ----
  int num_users() const { return static_cast<int>(full_offset_.size()) - 1; }
  int64_t full_size() const { return full_offset_.back(); }
  int full_count(graph::UserId u) const {
    return static_cast<int>(full_offset_[u + 1] - full_offset_[u]);
  }
  const geo::CityId* full_row(graph::UserId u) const {
    return full_candidates_.data() + full_offset_[u];
  }
  const double* full_gamma_row(graph::UserId u) const {
    return full_gamma_.data() + full_offset_[u];
  }
  double full_gamma_sum(graph::UserId u) const { return full_gamma_sum_[u]; }

  // ---- active view ----
  /// Arena shape over the active slots. The object lives inside the space,
  /// so arenas bound to &layout() stay bound across compactions (the
  /// offsets mutate in place; value buffers are rebuilt by the sampler).
  const SuffStatsLayout& layout() const { return layout_; }
  const CandidateView& view(graph::UserId u) const { return views_[u]; }
  uint64_t layout_version() const { return version_; }
  int64_t active_size() const { return layout_.phi_size(); }
  /// Fraction of the full universe still active (1.0 before any prune).
  double ActiveFraction() const;
  const std::vector<PruneEvent>& history() const { return history_; }

  /// Active slot of `city` for user `u`, or -1. THE candidate→slot lookup:
  /// all callers route through here (or the view's IndexOf) so there is a
  /// single binary-search implementation in the codebase.
  int SlotOf(graph::UserId u, geo::CityId city) const {
    return views_[u].IndexOf(city);
  }

  // ---- adaptive pruning ----
  /// One sync-barrier pruning pass against the merged global counts:
  /// updates every active slot's below-floor streak ((ϕ+γ)/(ϕ_tot+Σγ)
  /// against config.prune_floor) and deactivates slots cold for
  /// config.prune_patience consecutive barriers. A slot survives
  /// unconditionally while it holds live assignments (ϕ > 0), is the
  /// user's current posterior argmax, or carries a supervision-boosted γ.
  /// Returns true iff anything was deactivated, in which case the active
  /// view has been compacted, γ renormalized over the survivors (per-user
  /// Σγ preserved), `layout_version` bumped, and `plan` filled so the
  /// sampler can follow (GibbsSampler::ApplyCompaction).
  bool PruneStep(const SuffStatsArena& stats, const MlpConfig& config,
                 int32_t sweep, CompactionPlan* plan);

  /// Exact allocated bytes of the space: full universe, activation state
  /// and the derived active view (offsets, candidates, γ, per-user views).
  int64_t AccountedBytes() const {
    return VectorBytes(full_offset_) + VectorBytes(full_candidates_) +
           VectorBytes(full_gamma_) + VectorBytes(full_gamma_sum_) +
           VectorBytes(active_) + VectorBytes(cold_streak_) +
           VectorBytes(history_) + VectorBytes(layout_.phi_offset) +
           VectorBytes(candidates_) + VectorBytes(gamma_) +
           VectorBytes(gamma_sum_) + VectorBytes(active_full_idx_) +
           VectorBytes(views_);
  }

  // ---- persistence (snapshot v2) ----
  CandidateActivation SaveActivation() const;
  /// Restores a persisted activation state onto a freshly built space:
  /// validates the mask against the full universe, then rebuilds the
  /// compacted view. An empty mask (v1 snapshots) restores fully active.
  Status RestoreActivation(const CandidateActivation& activation);

 private:
  /// Rebuilds the active CSR, γ (renormalized when a row lost slots) and
  /// the per-user views from the mask.
  void RebuildActiveView();

  // Full universe (set once by Build).
  std::vector<int64_t> full_offset_;
  std::vector<geo::CityId> full_candidates_;
  std::vector<double> full_gamma_;
  std::vector<double> full_gamma_sum_;
  int32_t num_locations_ = 0;
  int32_t num_venues_ = 0;

  // Activation state.
  std::vector<uint8_t> active_;       // per full slot
  std::vector<int32_t> cold_streak_;  // per full slot
  uint64_t version_ = 0;
  std::vector<PruneEvent> history_;

  // Derived active view.
  SuffStatsLayout layout_;
  std::vector<geo::CityId> candidates_;    // flat, active slots
  std::vector<double> gamma_;              // flat, active slots
  std::vector<double> gamma_sum_;          // per user
  std::vector<int64_t> active_full_idx_;   // active slot -> full slot
  std::vector<CandidateView> views_;
};

/// Per-user O(1) proposal draws for the parallel engine's alias-MH fast
/// kernels (GibbsSampler::Sample*EdgeFast): one Walker alias table per
/// ACTIVE candidate row, all stored flat over the space's layout, built
/// from epoch-stale θ̃ weights (ϕ + γ at the last merged sync barrier).
///
/// The stored per-slot weight `Weight(u, slot)` is exposed alongside the
/// draw so the Metropolis–Hastings acceptance ratio can correct the
/// staleness exactly: proposals are drawn from the stale distribution, the
/// target uses live replica counts, and α = min(1, t(l')·ŵ(l) /
/// (t(l)·ŵ(l'))) keeps the chain's stationary distribution exact for the
/// current counts. γ > 0 on every active slot (BuildPriors floors it at
/// config.tau), so the stale proposal's support always covers the target's.
///
/// Epoch-rebuild invariants (see src/engine/README.md): the engine rebuilds
/// every row at each merged sync barrier, after every compaction (the
/// layout changed — Bind first), and after a warm-start restore. Rebuilds
/// of disjoint user ranges are thread-safe; draws are safe concurrently
/// with no writer.
class ProposalTables {
 public:
  /// (Re)binds to the space's current active layout and sizes the flat
  /// buffers. Rows hold garbage until RebuildRange covers them.
  void Bind(const CandidateSpace* space);

  bool bound() const { return space_ != nullptr; }
  uint64_t layout_version() const { return layout_version_; }

  /// Rebuilds users [u_begin, u_end) from the merged counts in `arena`.
  /// Weights are ϕ + γ clamped at zero (deferred-sync folds can leave a
  /// replica transiently below a stale global row; see the engine README).
  void RebuildRange(const SuffStatsArena& arena, graph::UserId u_begin,
                    graph::UserId u_end, stats::AliasBuildScratch* scratch);

  /// One O(1) draw of an active slot of user `u` from the stale θ̃ row.
  int Sample(graph::UserId u, Pcg32* rng) const {
    const int64_t off = space_->layout().phi_offset[u];
    const int n = space_->layout().candidate_count(u);
    if (n <= 1) return 0;
    return stats::AliasTable::SampleFrom(prob_.data() + off,
                                         alias_.data() + off, n, rng);
  }

  /// The stale weight the row was built from (unnormalized within the row).
  double Weight(graph::UserId u, int slot) const {
    return w_[space_->layout().phi_offset[u] + slot];
  }

  int64_t AccountedBytes() const {
    return VectorBytes(prob_) + VectorBytes(alias_) + VectorBytes(w_);
  }

 private:
  const CandidateSpace* space_ = nullptr;
  uint64_t layout_version_ = 0;
  std::vector<double> prob_;     // flat, layout.phi_size()
  std::vector<int32_t> alias_;   // flat, layout.phi_size()
  std::vector<double> w_;        // flat: the stale weights themselves
};

}  // namespace core
}  // namespace mlp

#endif  // MLP_CORE_CANDIDATE_SPACE_H_
