#ifndef MLP_CORE_INPUT_H_
#define MLP_CORE_INPUT_H_

#include <vector>

#include "geo/distance_matrix.h"
#include "geo/gazetteer.h"
#include "graph/social_graph.h"

namespace mlp {
namespace core {

/// Everything MLP (and the baselines) observe. The caller controls which
/// home locations are visible via `observed_home` — evaluation hides test
/// users' labels here while the graph keeps its raw records.
struct ModelInput {
  /// Candidate locations L. Not owned.
  const geo::Gazetteer* gazetteer = nullptr;
  /// Finalized observation graph (f 1:S, t 1:K). Not owned.
  const graph::SocialGraph* graph = nullptr;
  /// |L|×|L| city distances, floored at the power law's distance floor.
  /// Not owned.
  const geo::CityDistanceMatrix* distances = nullptr;
  /// Referent cities per venue id (for candidacy vectors). Not owned.
  const std::vector<std::vector<geo::CityId>>* venue_referents = nullptr;
  /// Per-user observed home location; geo::kInvalidCity marks unlabeled
  /// users U_N. Size must equal graph->num_users().
  std::vector<geo::CityId> observed_home;

  int num_users() const { return graph->num_users(); }
  int num_locations() const { return distances->size(); }
  int num_venues() const { return graph->num_venues(); }

  bool IsLabeled(graph::UserId u) const {
    return observed_home[u] != geo::kInvalidCity;
  }
};

}  // namespace core
}  // namespace mlp

#endif  // MLP_CORE_INPUT_H_
