#include "core/location_profile.h"

#include <algorithm>

namespace mlp {
namespace core {

LocationProfile::LocationProfile(
    std::vector<std::pair<geo::CityId, double>> entries)
    : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
}

geo::CityId LocationProfile::Home() const {
  return entries_.empty() ? geo::kInvalidCity : entries_.front().first;
}

std::vector<geo::CityId> LocationProfile::TopK(int k) const {
  std::vector<geo::CityId> out;
  for (int i = 0; i < size() && i < k; ++i) out.push_back(entries_[i].first);
  return out;
}

std::vector<geo::CityId> LocationProfile::AboveThreshold(
    double threshold) const {
  std::vector<geo::CityId> out;
  for (const auto& [city, prob] : entries_) {
    if (prob >= threshold) out.push_back(city);
  }
  return out;
}

double LocationProfile::ProbabilityOf(geo::CityId city) const {
  for (const auto& [c, prob] : entries_) {
    if (c == city) return prob;
  }
  return 0.0;
}

}  // namespace core
}  // namespace mlp
