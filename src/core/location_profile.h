#ifndef MLP_CORE_LOCATION_PROFILE_H_
#define MLP_CORE_LOCATION_PROFILE_H_

#include <utility>
#include <vector>

#include "geo/gazetteer.h"

namespace mlp {
namespace core {

/// A user's estimated location profile θ̂_i: (city, probability) pairs
/// sorted by probability descending. Probabilities sum to 1 over the user's
/// candidate set (locations outside it have probability 0).
class LocationProfile {
 public:
  LocationProfile() = default;
  /// `entries` need not be sorted; normalization is the caller's job.
  explicit LocationProfile(
      std::vector<std::pair<geo::CityId, double>> entries);

  bool empty() const { return entries_.empty(); }
  int size() const { return static_cast<int>(entries_.size()); }

  const std::vector<std::pair<geo::CityId, double>>& entries() const {
    return entries_;
  }

  /// The home-location estimate: the most probable location (Sec. 4.5:
  /// "predict the home location as the one with the largest probability").
  geo::CityId Home() const;

  /// Top-k locations (k ≥ size() returns all).
  std::vector<geo::CityId> TopK(int k) const;

  /// Locations with probability ≥ threshold.
  std::vector<geo::CityId> AboveThreshold(double threshold) const;

  /// Probability of `city` (0 when absent).
  double ProbabilityOf(geo::CityId city) const;

 private:
  std::vector<std::pair<geo::CityId, double>> entries_;
};

}  // namespace core
}  // namespace mlp

#endif  // MLP_CORE_LOCATION_PROFILE_H_
