#include "core/model.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/logging.h"
#include "core/candidate_space.h"
#include "core/pair_distance.h"
#include "core/pow_table.h"
#include "core/random_models.h"
#include "engine/parallel_gibbs.h"
#include "obs/fit_profile.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "obs/trace.h"

namespace mlp {
namespace core {

namespace {
constexpr int kEmHistogramBuckets = 3000;  // 1-mile buckets
constexpr double kEmMinPairs = 50.0;
constexpr double kAlphaMin = -2.0;
constexpr double kAlphaMax = -0.05;

// Memory-budget pruning escalation (FitOptions::mem_budget_mb): the first
// over-budget barrier turns pruning on at kBudgetInitialFloor; every
// further over-budget barrier multiplies the floor, capped where pruning
// would start eating clearly-supported slots.
constexpr double kBudgetInitialFloor = 0.02;
constexpr double kBudgetFloorGrowth = 1.5;
constexpr double kBudgetMaxFloor = 0.5;
}  // namespace

uint64_t FitFingerprint(const ModelInput& input, const MlpConfig& config,
                        const CandidateSpace& space) {
  Fnv1a64 f;
  // Config — every pre-pruning field, so a checkpoint can only resume the
  // exact same sweep program (thread count and seed included). The pruning
  // knobs stay out: they are sweep-time policy over this same universe,
  // and the byte stream below must stay identical to the pre-pruning
  // format so v1 snapshots keep verifying.
  f.Value<int32_t>(static_cast<int32_t>(config.source));
  f.Value(config.alpha);
  f.Value(config.beta);
  f.Value<uint8_t>(config.fit_power_law_from_data);
  f.Value(config.rho_f);
  f.Value(config.rho_t);
  f.Value<uint8_t>(config.model_noise);
  f.Value(config.tau);
  f.Value(config.supervision_boost);
  f.Value(config.delta);
  f.Value<uint8_t>(config.use_candidacy);
  f.Value<uint8_t>(config.use_supervision);
  f.Value<int32_t>(config.fallback_top_cities);
  f.Value<int32_t>(config.max_candidates);
  f.Value<int32_t>(config.burn_in_iterations);
  f.Value<int32_t>(config.sampling_iterations);
  f.Value<int32_t>(config.gibbs_em_rounds);
  f.Value(config.em_damping);
  f.Value(config.seed);
  f.Value(config.distance_floor_miles);
  f.Value<int32_t>(config.num_threads);
  f.Value<int32_t>(config.sync_every_sweeps);

  // Observations.
  const graph::SocialGraph& graph = *input.graph;
  f.Value<int32_t>(graph.num_users());
  f.Value<int32_t>(input.num_locations());
  f.Value<int32_t>(graph.num_venues());
  f.Value<int32_t>(graph.num_following());
  f.Value<int32_t>(graph.num_tweeting());
  for (graph::EdgeId s = 0; s < graph.num_following(); ++s) {
    f.Value(graph.following(s).follower);
    f.Value(graph.following(s).friend_user);
  }
  for (graph::EdgeId k = 0; k < graph.num_tweeting(); ++k) {
    f.Value(graph.tweeting(k).user);
    f.Value(graph.tweeting(k).venue);
  }
  f.Span(input.observed_home);

  // Derived candidate universe — the FULL per-user rows (never the pruned
  // view), hashed with the same per-row length prefixes Fnv1a64::Span
  // emitted when these lived in per-user vectors.
  f.Value<uint64_t>(static_cast<uint64_t>(space.num_users()));
  for (graph::UserId u = 0; u < space.num_users(); ++u) {
    const uint64_t count = static_cast<uint64_t>(space.full_count(u));
    f.Value<uint64_t>(count);
    if (count > 0) {
      f.Bytes(space.full_row(u), count * sizeof(geo::CityId));
    }
    f.Value<uint64_t>(count);
    if (count > 0) {
      f.Bytes(space.full_gamma_row(u), count * sizeof(double));
    }
  }
  return f.hash;
}

Status MlpModel::ValidateInput(const ModelInput& input) const {
  if (input.gazetteer == nullptr || input.graph == nullptr ||
      input.distances == nullptr) {
    return Status::InvalidArgument("ModelInput has null components");
  }
  if (!input.graph->finalized()) {
    return Status::FailedPrecondition("graph must be finalized before Fit");
  }
  if (static_cast<int>(input.observed_home.size()) !=
      input.graph->num_users()) {
    return Status::InvalidArgument("observed_home size != num_users");
  }
  for (geo::CityId c : input.observed_home) {
    if (c != geo::kInvalidCity && (c < 0 || c >= input.num_locations())) {
      return Status::InvalidArgument("observed home out of gazetteer range");
    }
  }
  if (config_.source != ObservationSource::kFollowingOnly) {
    if (input.venue_referents == nullptr) {
      return Status::InvalidArgument(
          "venue_referents required when tweeting observations are used");
    }
    if (static_cast<int>(input.venue_referents->size()) <
        input.graph->num_venues()) {
      return Status::InvalidArgument("venue_referents smaller than vocabulary");
    }
  }
  if (config_.burn_in_iterations < 0 || config_.sampling_iterations < 1) {
    return Status::InvalidArgument("need >=0 burn-in and >=1 sampling sweeps");
  }
  if (config_.rho_f < 0.0 || config_.rho_f >= 1.0 || config_.rho_t < 0.0 ||
      config_.rho_t >= 1.0) {
    return Status::InvalidArgument("rho_f/rho_t must be in [0, 1)");
  }
  if (config_.num_threads < 1 || config_.sync_every_sweeps < 1) {
    return Status::InvalidArgument(
        "num_threads and sync_every_sweeps must be >= 1");
  }
  if (config_.prune_floor < 0.0 || config_.prune_floor >= 1.0) {
    return Status::InvalidArgument("prune_floor must be in [0, 1)");
  }
  if (config_.prune_floor > 0.0 && config_.prune_patience < 1) {
    return Status::InvalidArgument("prune_patience must be >= 1");
  }
  return Status::OK();
}

Result<MlpResult> MlpModel::Fit(const ModelInput& input) {
  return Fit(input, FitOptions());
}

Result<MlpResult> MlpModel::Fit(const ModelInput& input,
                                const FitOptions& opts) {
  MLP_RETURN_NOT_OK(ValidateInput(input));
  MlpConfig config = config_;  // mutable: (α, β) evolve during Gibbs-EM

  // The single owner of the candidate universe for this fit: the sampler,
  // the arena layout, the engine's shard costs and the snapshot all read
  // through it (see src/core/README.md).
  CandidateSpace space = CandidateSpace::Build(input, config);
  // The fingerprint pass walks every edge and candidate row; skip it for
  // plain fits that neither resume nor export a checkpoint.
  const bool needs_fingerprint =
      opts.warm_start != nullptr || opts.checkpoint_out != nullptr;
  const uint64_t fingerprint =
      needs_fingerprint ? FitFingerprint(input, config_, space) : 0;

  FitProgress progress;
  if (opts.warm_start != nullptr) {
    if (opts.warm_start->fingerprint != fingerprint) {
      return Status::InvalidArgument(
          "warm-start checkpoint does not match this input/config "
          "(fingerprint mismatch)");
    }
    progress = opts.warm_start->progress;
    // Resume the evolved (α, β) instead of re-fitting from labeled pairs —
    // the initial fit is deterministic from the input, so the restored
    // values already embed it.
    config.alpha = progress.alpha;
    config.beta = progress.beta;
  } else {
    // Sec. 4.1: learn the location-based following model from labeled
    // pairs.
    if (config.fit_power_law_from_data &&
        config.source != ObservationSource::kTweetingOnly) {
      Result<stats::PowerLaw> fit = FitFollowingPowerLaw(
          *input.graph, input.observed_home, *input.distances);
      if (fit.ok()) {
        config.alpha = std::clamp(fit->alpha, kAlphaMin, kAlphaMax);
        config.beta = std::clamp(fit->beta, 1e-9, 1.0);
      }
      // Too little supervision to fit: keep the paper's defaults.
    }
    progress.alpha = config.alpha;
    progress.beta = config.beta;
  }

  RandomModels random_models = RandomModels::Learn(*input.graph);
  PowTable pow_table(input.distances, config.alpha,
                     config.distance_floor_miles);

  Pcg32 rng(config.seed, 0x5bd1e995u);
  GibbsSampler sampler(&input, &config, &space, &random_models, &pow_table);
  // Sweep driver: sequential passthrough at num_threads == 1 (bit-identical
  // to running the sampler directly), sharded delta-merge sweeps otherwise.
  // The engine also owns the sweep-time pruning barrier (MaybePrune).
  engine::ParallelGibbsEngine engine(&sampler, &input, &config, &space);
  if (opts.warm_start != nullptr) {
    // The activation state must land before the sampler state: RestoreState
    // validates every buffer against the space's (possibly compacted)
    // active layout.
    MLP_RETURN_NOT_OK(space.RestoreActivation(opts.warm_start->activation));
    MLP_RETURN_NOT_OK(sampler.RestoreState(opts.warm_start->sampler));
    rng.RestoreState(opts.warm_start->master_rng);
    MLP_RETURN_NOT_OK(
        engine.RestoreShardRngStates(opts.warm_start->shard_rngs));
    // A pruned fit resharded by candidate-product cost after each
    // compaction; re-deriving the shards from the restored space replays
    // the exact partition the uninterrupted run was using at the cut.
    engine.OnActivationRestored();
  } else {
    engine.Initialize(&rng);
  }

  const int rounds = std::max(0, config.gibbs_em_rounds) + 1;
  const int burn = config.burn_in_iterations;
  const int sampling = config.sampling_iterations;
  const int per_round = burn + sampling;
  // Budget accounting is global over the program, so a resumed fit counts
  // the checkpointed sweeps as already spent.
  auto sweeps_done = [&]() {
    return progress.round * per_round + progress.burn_in_done +
           progress.sampling_done;
  };
  auto budget_exhausted = [&]() {
    return opts.max_total_sweeps >= 0 &&
           sweeps_done() >= opts.max_total_sweeps;
  };

  // ---- memory accounting + budget enforcement (mem_budget_mb) ----
  // Exact AccountedBytes() walks, published as gauges so /statsz and
  // `mlpctl fit --profile` can watch the budget hold. The walk is
  // O(edges), so it runs at merged barriers only.
  obs::Registry& registry = obs::Registry::Global();
  obs::Gauge* const arena_bytes_gauge =
      registry.GetGauge(obs::kMemArenaBytes);
  obs::Gauge* const candidate_bytes_gauge =
      registry.GetGauge(obs::kMemCandidateBytes);
  obs::Gauge* const accounted_bytes_gauge =
      registry.GetGauge(obs::kMemFitAccountedBytes);
  obs::Gauge* const budget_bytes_gauge =
      registry.GetGauge(obs::kMemFitBudgetBytes);
  obs::Counter* const budget_tighten_total =
      registry.GetCounter(obs::kFitBudgetTightenTotal);
  const int64_t mem_budget_bytes =
      static_cast<int64_t>(std::max(0, opts.mem_budget_mb)) * 1024 * 1024;
  budget_bytes_gauge->Set(mem_budget_bytes);
  auto publish_accounting = [&]() {
    const int64_t candidate = space.AccountedBytes();
    const int64_t arena = sampler.AccountedBytes() + engine.AccountedBytes();
    candidate_bytes_gauge->Set(candidate);
    arena_bytes_gauge->Set(arena);
    accounted_bytes_gauge->Set(candidate + arena);
    obs::UpdateProcessRssGauges();
    return candidate + arena;
  };
  // Over budget at a merged burn-in barrier: ratchet the pruning schedule
  // (shared with the engine through `config`) so the following
  // MaybePrune barriers deactivate more slots. Enforcement never fires
  // during sampling — the accumulators need one fixed support — so the
  // footprint must be argued down during burn-in.
  auto maybe_tighten_budget = [&]() {
    if (mem_budget_bytes <= 0 || !engine.IsSynchronized()) return;
    if (publish_accounting() <= mem_budget_bytes) return;
    budget_tighten_total->Add(1);
    config.prune_floor =
        config.prune_floor <= 0.0
            ? kBudgetInitialFloor
            : std::min(kBudgetMaxFloor,
                       config.prune_floor * kBudgetFloorGrowth);
    config.prune_patience = 1;
    MLP_LOG(kInfo) << "fit over memory budget ("
                   << accounted_bytes_gauge->Value() / (1024 * 1024)
                   << " MB accounted > " << opts.mem_budget_mb
                   << " MB): prune_floor -> " << config.prune_floor;
  };

  bool budget_hit = false;
  while (progress.round < rounds && !budget_hit) {
    while (progress.burn_in_done < burn) {
      // Checkpoints are only cut at merged barriers: with
      // sync_every_sweeps > 1 the stop rolls forward to the next merge, so
      // the saved state is exactly the state an uninterrupted run has at
      // that barrier.
      if (budget_exhausted() && engine.IsSynchronized()) {
        budget_hit = true;
        break;
      }
      engine.RunSweep(&rng);
      ++progress.burn_in_done;
      maybe_tighten_budget();
      // Adaptive candidate pruning fires only at merged burn-in barriers,
      // so the sampled posterior (and the accumulators) always run over one
      // fixed support. No-op unless config.prune_floor > 0.
      engine.MaybePrune(sweeps_done());
    }
    if (budget_hit) break;
    engine.Synchronize();
    if (progress.sampling_done == 0) sampler.ResetAccumulators();
    while (progress.sampling_done < sampling) {
      if (budget_exhausted()) {  // always synchronized in this phase
        budget_hit = true;
        break;
      }
      engine.RunSweep(&rng);
      // Accumulation reads the global counts, so any pending replica
      // deltas must land first (no-op at sync_every_sweeps == 1).
      engine.Synchronize();
      sampler.AccumulateSample();
      ++progress.sampling_done;
    }
    if (budget_hit) break;

    if (progress.round + 1 < rounds &&
        config.source != ObservationSource::kTweetingOnly) {
      // Gibbs-EM M-step (Sec. 4.5): rebuild the Fig-3a curve with the
      // expected assignment distances as the numerator and the OBSERVED
      // labeled pair distances as the denominator. Both sides are
      // restricted to labeled users so the ratio compares consistent
      // populations (estimated homes of unlabeled users would bias the
      // denominator toward wherever the model currently errs).
      std::vector<double> edge_hist =
          sampler.AssignmentDistanceHistogram(kEmHistogramBuckets);
      std::vector<double> pair_hist = PairDistanceHistogram(
          input.observed_home, *input.distances, 1.0, kEmHistogramBuckets);
      Result<stats::PowerLaw> fit = stats::FitPowerLaw(
          stats::RatioCurve(edge_hist, pair_hist, kEmMinPairs));
      if (fit.ok()) {
        // Damped move on the slope α; see MlpConfig::em_damping.
        double damping = std::clamp(config.em_damping, 0.0, 1.0);
        double target_alpha = std::clamp(fit->alpha, kAlphaMin, kAlphaMax);
        config.alpha += damping * (target_alpha - config.alpha);
        // β by moment matching rather than the regression intercept: pick
        // the scale that preserves the observed location-edge mass,
        // Σ_d pairs(d)·β·d^α = Σ_d edges(d). The intercept-based β drifts
        // upward round over round (the assignment histogram concentrates
        // near the floor), which unbalances the μ update's noise branch.
        double edge_mass = 0.0, kernel_mass = 0.0;
        for (size_t d = 0; d < edge_hist.size(); ++d) {
          edge_mass += edge_hist[d];
          kernel_mass += pair_hist[d] * std::pow(static_cast<double>(d) + 0.5,
                                                 config.alpha);
        }
        if (edge_mass > 0.0 && kernel_mass > 0.0) {
          config.beta = std::clamp(edge_mass / kernel_mass, 1e-9, 1.0);
        }
        pow_table.Rebuild(config.alpha);
      }
    }
    ++progress.round;
    progress.burn_in_done = 0;
    progress.sampling_done = 0;
  }

  publish_accounting();
  progress.alpha = config.alpha;
  progress.beta = config.beta;
  if (opts.checkpoint_out != nullptr) {
    FitCheckpoint* ck = opts.checkpoint_out;
    ck->config = config_;
    ck->fingerprint = fingerprint;
    ck->complete = progress.round >= rounds;
    ck->progress = progress;
    sampler.SaveState(&ck->sampler);
    ck->master_rng = rng.SaveState();
    ck->shard_rngs = engine.ShardRngStates();
    ck->activation = space.SaveActivation();
  }

  MlpResult result = sampler.BuildResult();
  result.alpha = config.alpha;
  result.beta = config.beta;
  return result;
}

Result<MlpResult> MlpModel::ApplyDelta(const ModelInput& base_input,
                                       const ModelInput& merged_input,
                                       const MlpResult& base_result,
                                       const FitOptions& opts,
                                       DeltaReport* report_out) {
  MLP_RETURN_NOT_OK(ValidateInput(merged_input));
  if (opts.warm_start == nullptr) {
    return Status::InvalidArgument(
        "ApplyDelta requires options.warm_start (the base checkpoint)");
  }
  if (opts.delta_burn_sweeps < 0 || opts.delta_sampling_sweeps < 1) {
    return Status::InvalidArgument(
        "need >= 0 delta burn and >= 1 delta sampling sweeps");
  }
  const FitCheckpoint& base = *opts.warm_start;
  const graph::SocialGraph& old_graph = *base_input.graph;
  const graph::SocialGraph& new_graph = *merged_input.graph;
  const int old_users = old_graph.num_users();
  const int merged_users = new_graph.num_users();
  const int s_old = old_graph.num_following();
  const int s_new = new_graph.num_following();
  const int k_old = old_graph.num_tweeting();
  const int k_new = new_graph.num_tweeting();
  const bool use_following = config_.source != ObservationSource::kTweetingOnly;
  const bool use_tweeting = config_.source != ObservationSource::kFollowingOnly;
  if (merged_users < old_users || s_new < s_old || k_new < k_old) {
    return Status::InvalidArgument(
        "merged input does not extend the base input");
  }
  if (static_cast<int>(base_result.home.size()) != old_users ||
      (use_following &&
       static_cast<int>(base_result.following.size()) != s_old) ||
      (use_tweeting &&
       static_cast<int>(base_result.tweeting.size()) != k_old)) {
    return Status::InvalidArgument(
        "base result does not match the base input's shape");
  }
  if ((use_following && static_cast<int>(base.sampler.mu.size()) != s_old) ||
      (use_tweeting && static_cast<int>(base.sampler.nu.size()) != k_old)) {
    return Status::InvalidArgument(
        "base checkpoint sampler state does not match the base input");
  }
  // Counts extending is not enough: the chain is remapped edge index by
  // edge index, so the merged graph must carry the base edges as an
  // UNCHANGED prefix (stream::MergeDelta's contract). An interleaved or
  // reordered merge would silently pair assignments with the wrong edges.
  for (graph::EdgeId s = 0; s < s_old; ++s) {
    const graph::FollowingEdge& a = old_graph.following(s);
    const graph::FollowingEdge& b = new_graph.following(s);
    if (a.follower != b.follower || a.friend_user != b.friend_user) {
      return Status::InvalidArgument(
          "merged input does not carry the base following edges as an "
          "unchanged prefix");
    }
  }
  for (graph::EdgeId k = 0; k < k_old; ++k) {
    const graph::TweetingEdge& a = old_graph.tweeting(k);
    const graph::TweetingEdge& b = new_graph.tweeting(k);
    if (a.user != b.user || a.venue != b.venue) {
      return Status::InvalidArgument(
          "merged input does not carry the base tweeting edges as an "
          "unchanged prefix");
    }
  }
  for (graph::UserId u = 0; u < old_users; ++u) {
    if (merged_input.observed_home[u] != base_input.observed_home[u]) {
      return Status::InvalidArgument(
          "merged input changes an existing user's observed home — a delta "
          "may only append");
    }
  }

  // Migration phase (space rebuild, activation carry, chain remap) ends at
  // AdoptMigratedChain; error paths just drop the span.
  const int64_t migrate_start_ns = obs::NowNs();

  // The base checkpoint must genuinely belong to `base_input` — the same
  // guard Fit's warm start applies, against the BASE universe.
  CandidateSpace old_space = CandidateSpace::Build(base_input, config_);
  if (FitFingerprint(base_input, config_, old_space) != base.fingerprint) {
    return Status::InvalidArgument(
        "base checkpoint does not match the base input/config "
        "(fingerprint mismatch)");
  }
  MLP_RETURN_NOT_OK(old_space.RestoreActivation(base.activation));

  // Rebuild the candidate universe over the merged world, then migrate the
  // base activation onto it: BuildPriors is per-user, so only users
  // adjacent to delta evidence grow/reshape their rows — everyone else's
  // row is carried verbatim (pruned slots stay pruned, streaks continue).
  CandidateSpace space = CandidateSpace::Build(merged_input, config_);

  // Expanded (per-full-slot) base activation; an empty mask means fully
  // active, exactly as RestoreActivation interprets it.
  std::vector<uint8_t> old_active = base.activation.active;
  std::vector<int32_t> old_streak = base.activation.cold_streak;
  if (old_active.empty()) old_active.assign(old_space.full_size(), 1);
  if (old_streak.empty()) old_streak.assign(old_space.full_size(), 0);

  std::vector<int64_t> old_full_off(old_users + 1, 0);
  for (graph::UserId u = 0; u < old_users; ++u) {
    old_full_off[u + 1] = old_full_off[u] + old_space.full_count(u);
  }

  CandidateActivation activation;
  activation.active.assign(space.full_size(), 1);
  activation.cold_streak.assign(space.full_size(), 0);
  // One ingest = one layout generation: consumers keyed on layout_version
  // (engine replicas, serve::ReadModel, /statsz) see the bump.
  activation.layout_version = base.activation.layout_version + 1;
  activation.history = base.activation.history;

  DeltaReport report;
  report.new_users = merged_users - old_users;
  report.new_following = s_new - s_old;
  report.new_tweeting = k_new - k_old;

  std::vector<uint8_t> touched(merged_users, 0);
  for (graph::UserId u = old_users; u < merged_users; ++u) touched[u] = 1;

  int64_t new_off = 0;
  for (graph::UserId u = 0; u < merged_users; ++u) {
    const int n_new = space.full_count(u);
    if (u < old_users) {
      const int n_old = old_space.full_count(u);
      const geo::CityId* row_new = space.full_row(u);
      const geo::CityId* row_old = old_space.full_row(u);
      const double* g_new = space.full_gamma_row(u);
      const double* g_old = old_space.full_gamma_row(u);
      const bool identical = n_new == n_old &&
                             std::equal(row_new, row_new + n_new, row_old) &&
                             std::equal(g_new, g_new + n_new, g_old);
      if (identical) {
        std::copy(old_active.begin() + old_full_off[u],
                  old_active.begin() + old_full_off[u + 1],
                  activation.active.begin() + new_off);
        std::copy(old_streak.begin() + old_full_off[u],
                  old_streak.begin() + old_full_off[u + 1],
                  activation.cold_streak.begin() + new_off);
      } else {
        // Stale row: carry each surviving city's activation by value; new
        // cities start active. The user's γ changed, so it must resample.
        touched[u] = 1;
        ++report.migrated_rows;
        bool any_active = n_new == 0;
        for (int l = 0; l < n_new; ++l) {
          const int ol = FindCandidateSlot(row_old, n_old, row_new[l]);
          if (ol >= 0) {
            activation.active[new_off + l] = old_active[old_full_off[u] + ol];
            activation.cold_streak[new_off + l] =
                old_streak[old_full_off[u] + ol];
          }
          any_active = any_active || activation.active[new_off + l] != 0;
        }
        if (!any_active) {
          // Every carried slot was pruned and nothing new arrived active —
          // reopen the whole row rather than strand the user.
          for (int l = 0; l < n_new; ++l) {
            activation.active[new_off + l] = 1;
            activation.cold_streak[new_off + l] = 0;
          }
        }
      }
    }
    new_off += n_new;
  }
  MLP_RETURN_NOT_OK(space.RestoreActivation(activation));

  // Migrate the chain: every carried assignment's slot is re-found by city
  // in the merged active row; a vanished slot (the row lost that city, or
  // carried it pruned) redirects to the user's best prior slot — that user
  // is then stale by definition and resamples immediately.
  auto redirect_slot = [&](graph::UserId u) -> int32_t {
    const CandidateView& view = space.view(u);
    int best = 0;
    double best_gamma = -1.0;
    for (int l = 0; l < view.size(); ++l) {
      if (view.gamma[l] > best_gamma) {
        best_gamma = view.gamma[l];
        best = l;
      }
    }
    return best;
  };
  MigratedChain chain;
  chain.home_change_per_sweep = base.sampler.home_change_per_sweep;
  auto remap = [&](graph::UserId u, int32_t old_slot,
                   int32_t* out) -> Status {
    const CandidateView& old_view = old_space.view(u);
    if (old_slot < 0 || old_slot >= old_view.size()) {
      return Status::InvalidArgument(
          "base checkpoint assignment index out of candidate range");
    }
    const int nl = space.SlotOf(u, old_view.candidates[old_slot]);
    if (nl >= 0) {
      *out = nl;
    } else {
      *out = redirect_slot(u);
      touched[u] = 1;
      ++report.redirected_assignments;
    }
    return Status::OK();
  };
  if (use_following) {
    chain.mu = base.sampler.mu;
    chain.x_idx.resize(s_old);
    chain.y_idx.resize(s_old);
    for (graph::EdgeId s = 0; s < s_old; ++s) {
      const graph::FollowingEdge& edge = old_graph.following(s);
      MLP_RETURN_NOT_OK(
          remap(edge.follower, base.sampler.x_idx[s], &chain.x_idx[s]));
      MLP_RETURN_NOT_OK(
          remap(edge.friend_user, base.sampler.y_idx[s], &chain.y_idx[s]));
    }
    for (graph::EdgeId s = s_old; s < s_new; ++s) {
      const graph::FollowingEdge& edge = new_graph.following(s);
      touched[edge.follower] = 1;
      touched[edge.friend_user] = 1;
    }
  }
  if (use_tweeting) {
    chain.nu = base.sampler.nu;
    chain.z_idx.resize(k_old);
    for (graph::EdgeId k = 0; k < k_old; ++k) {
      MLP_RETURN_NOT_OK(remap(old_graph.tweeting(k).user,
                              base.sampler.z_idx[k], &chain.z_idx[k]));
    }
    for (graph::EdgeId k = k_old; k < k_new; ++k) {
      touched[new_graph.tweeting(k).user] = 1;
    }
  }
  for (uint8_t t : touched) report.touched_users += t;

  // A genuinely empty delta is a strict no-op: base result and checkpoint
  // come back unchanged, so re-snapshotting is bit-identical.
  if (report.touched_users == 0) {
    report.user_resampled.assign(merged_users, 0);
    report.following_resampled.assign(use_following ? s_new : 0, 0);
    report.tweeting_resampled.assign(use_tweeting ? k_new : 0, 0);
    report.shards_total =
        config_.num_threads <= 1 ? 1 : config_.num_threads;
    if (opts.checkpoint_out != nullptr) *opts.checkpoint_out = base;
    if (report_out != nullptr) *report_out = std::move(report);
    return base_result;
  }

  // Warm machinery over the merged world. (α, β) resume from the base
  // fit's evolved values, exactly like Fit's warm-start path.
  MlpConfig config = config_;
  config.alpha = base.progress.alpha;
  config.beta = base.progress.beta;
  RandomModels random_models = RandomModels::Learn(*merged_input.graph);
  PowTable pow_table(merged_input.distances, config.alpha,
                     config.distance_floor_miles);
  GibbsSampler sampler(&merged_input, &config, &space, &random_models,
                       &pow_table);
  engine::ParallelGibbsEngine engine(&sampler, &merged_input, &config, &space);

  // Appended edges draw their seed assignments from a stream derived from
  // (seed, delta shape) — a pure function of the inputs, so ingesting a
  // loaded snapshot replays byte-for-byte the same chain as ingesting the
  // in-memory checkpoint.
  Pcg32 init_rng(
      config.seed ^ (0x9e3779b97f4a7c15ULL *
                     (static_cast<uint64_t>(s_new - s_old) + 1)),
      0x94d049bb133111ebULL + 2 * (static_cast<uint64_t>(k_new - k_old) + 1));
  MLP_RETURN_NOT_OK(sampler.AdoptMigratedChain(chain, &init_rng));
  obs::EndSpan(obs::Registry::Global().GetCounter(obs::kIngestMigrateNs),
               "ingest_migrate", migrate_start_ns);

  Pcg32 rng(config.seed, 0x5bd1e995u);
  rng.RestoreState(base.master_rng);
  MLP_RETURN_NOT_OK(engine.RestoreShardRngStates(base.shard_rngs));
  // Ownership for the resample pass: the cost-weighted partition over the
  // merged graph's ACTIVE candidate products, with the touched users
  // packed into the fewest shards their cost warrants
  // (GraphSharder::PartitionGrouped). Touched work still spreads across
  // those dedicated shards' threads, while the rest of the world stays in
  // shards the resample never selects — the partition is a
  // parallelization artifact, so concentrating the hot set changes
  // nothing about the chain's validity, only how little of it reruns.
  if (engine.num_threads() > 1) {
    std::vector<double> cost(merged_users, 0.0);
    if (use_following) {
      for (graph::EdgeId s = 0; s < s_new; ++s) {
        const graph::FollowingEdge& edge = new_graph.following(s);
        cost[edge.follower] +=
            static_cast<double>(space.view(edge.follower).size()) *
            static_cast<double>(space.view(edge.friend_user).size());
      }
    }
    if (use_tweeting) {
      for (graph::EdgeId t = 0; t < k_new; ++t) {
        const graph::TweetingEdge& edge = new_graph.tweeting(t);
        cost[edge.user] += static_cast<double>(space.view(edge.user).size());
      }
    }
    double total_cost = 0.0;
    double touched_cost = 0.0;
    for (graph::UserId u = 0; u < merged_users; ++u) {
      total_cost += cost[u];
      if (touched[u]) touched_cost += cost[u];
    }
    const int threads = engine.num_threads();
    const int touched_shards =
        total_cost > 0.0
            ? std::clamp(static_cast<int>(std::ceil(
                             touched_cost / total_cost * threads)),
                         1, threads)
            : 1;
    MLP_RETURN_NOT_OK(engine.SetPartition(engine::GraphSharder::PartitionGrouped(
        new_graph, threads, touched_shards, cost, touched)));
  }

  const std::vector<int> owner = engine.UserShards();
  const int num_shards =
      engine.num_threads() <= 1 ? 1 : static_cast<int>(engine.shards().size());
  std::vector<uint8_t> shard_touched(num_shards, 0);
  for (graph::UserId u = 0; u < merged_users; ++u) {
    if (touched[u]) shard_touched[owner[u]] = 1;
  }
  std::vector<int> shard_set;
  for (int k = 0; k < num_shards; ++k) {
    if (shard_touched[k]) shard_set.push_back(k);
  }
  report.shards_total = num_shards;
  report.shards_touched = static_cast<int32_t>(shard_set.size());
  MLP_RETURN_NOT_OK(engine.BeginShardResample(shard_set));

  {
    obs::ScopedSpan span(
        obs::Registry::Global().GetCounter(obs::kIngestResampleNs),
        "ingest_resample");
    for (int it = 0; it < opts.delta_burn_sweeps; ++it) {
      engine.ResampleShards(&rng);
    }
    sampler.ResetAccumulators();
    for (int it = 0; it < opts.delta_sampling_sweeps; ++it) {
      engine.ResampleShards(&rng);
      sampler.AccumulateSample();
    }
  }
  report.user_resampled = engine.resample_user_mask();
  report.following_resampled = engine.resample_following_mask();
  report.tweeting_resampled = engine.resample_tweeting_mask();
  engine.EndShardResample();

  if (opts.checkpoint_out != nullptr) {
    FitCheckpoint* ck = opts.checkpoint_out;
    ck->config = config_;
    ck->fingerprint = FitFingerprint(merged_input, config_, space);
    ck->complete = base.complete;
    ck->progress = base.progress;
    sampler.SaveState(&ck->sampler);
    ck->master_rng = rng.SaveState();
    ck->shard_rngs = engine.ShardRngStates();
    ck->activation = space.SaveActivation();
  }

  // Merge: resampled users/edges take the refreshed posterior; everything
  // else keeps the base fit's rows verbatim (their counts never moved).
  MlpResult result = sampler.BuildResult();
  for (graph::UserId u = 0; u < old_users; ++u) {
    if (report.user_resampled[u]) continue;
    result.profiles[u] = base_result.profiles[u];
    result.home[u] = base_result.home[u];
  }
  for (graph::EdgeId s = 0; use_following && s < s_old; ++s) {
    if (!report.following_resampled[s]) {
      result.following[s] = base_result.following[s];
    }
  }
  for (graph::EdgeId k = 0; use_tweeting && k < k_old; ++k) {
    if (!report.tweeting_resampled[k]) {
      result.tweeting[k] = base_result.tweeting[k];
    }
  }
  if (report_out != nullptr) *report_out = std::move(report);
  return result;
}

}  // namespace core
}  // namespace mlp
