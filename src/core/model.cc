#include "core/model.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/logging.h"
#include "core/candidate_space.h"
#include "core/pair_distance.h"
#include "core/pow_table.h"
#include "core/random_models.h"
#include "engine/parallel_gibbs.h"

namespace mlp {
namespace core {

namespace {
constexpr int kEmHistogramBuckets = 3000;  // 1-mile buckets
constexpr double kEmMinPairs = 50.0;
constexpr double kAlphaMin = -2.0;
constexpr double kAlphaMax = -0.05;
}  // namespace

uint64_t FitFingerprint(const ModelInput& input, const MlpConfig& config,
                        const CandidateSpace& space) {
  Fnv1a64 f;
  // Config — every pre-pruning field, so a checkpoint can only resume the
  // exact same sweep program (thread count and seed included). The pruning
  // knobs stay out: they are sweep-time policy over this same universe,
  // and the byte stream below must stay identical to the pre-pruning
  // format so v1 snapshots keep verifying.
  f.Value<int32_t>(static_cast<int32_t>(config.source));
  f.Value(config.alpha);
  f.Value(config.beta);
  f.Value<uint8_t>(config.fit_power_law_from_data);
  f.Value(config.rho_f);
  f.Value(config.rho_t);
  f.Value<uint8_t>(config.model_noise);
  f.Value(config.tau);
  f.Value(config.supervision_boost);
  f.Value(config.delta);
  f.Value<uint8_t>(config.use_candidacy);
  f.Value<uint8_t>(config.use_supervision);
  f.Value<int32_t>(config.fallback_top_cities);
  f.Value<int32_t>(config.max_candidates);
  f.Value<int32_t>(config.burn_in_iterations);
  f.Value<int32_t>(config.sampling_iterations);
  f.Value<int32_t>(config.gibbs_em_rounds);
  f.Value(config.em_damping);
  f.Value(config.seed);
  f.Value(config.distance_floor_miles);
  f.Value<int32_t>(config.num_threads);
  f.Value<int32_t>(config.sync_every_sweeps);

  // Observations.
  const graph::SocialGraph& graph = *input.graph;
  f.Value<int32_t>(graph.num_users());
  f.Value<int32_t>(input.num_locations());
  f.Value<int32_t>(graph.num_venues());
  f.Value<int32_t>(graph.num_following());
  f.Value<int32_t>(graph.num_tweeting());
  for (graph::EdgeId s = 0; s < graph.num_following(); ++s) {
    f.Value(graph.following(s).follower);
    f.Value(graph.following(s).friend_user);
  }
  for (graph::EdgeId k = 0; k < graph.num_tweeting(); ++k) {
    f.Value(graph.tweeting(k).user);
    f.Value(graph.tweeting(k).venue);
  }
  f.Span(input.observed_home);

  // Derived candidate universe — the FULL per-user rows (never the pruned
  // view), hashed with the same per-row length prefixes Fnv1a64::Span
  // emitted when these lived in per-user vectors.
  f.Value<uint64_t>(static_cast<uint64_t>(space.num_users()));
  for (graph::UserId u = 0; u < space.num_users(); ++u) {
    const uint64_t count = static_cast<uint64_t>(space.full_count(u));
    f.Value<uint64_t>(count);
    if (count > 0) {
      f.Bytes(space.full_row(u), count * sizeof(geo::CityId));
    }
    f.Value<uint64_t>(count);
    if (count > 0) {
      f.Bytes(space.full_gamma_row(u), count * sizeof(double));
    }
  }
  return f.hash;
}

Status MlpModel::ValidateInput(const ModelInput& input) const {
  if (input.gazetteer == nullptr || input.graph == nullptr ||
      input.distances == nullptr) {
    return Status::InvalidArgument("ModelInput has null components");
  }
  if (!input.graph->finalized()) {
    return Status::FailedPrecondition("graph must be finalized before Fit");
  }
  if (static_cast<int>(input.observed_home.size()) !=
      input.graph->num_users()) {
    return Status::InvalidArgument("observed_home size != num_users");
  }
  for (geo::CityId c : input.observed_home) {
    if (c != geo::kInvalidCity && (c < 0 || c >= input.num_locations())) {
      return Status::InvalidArgument("observed home out of gazetteer range");
    }
  }
  if (config_.source != ObservationSource::kFollowingOnly) {
    if (input.venue_referents == nullptr) {
      return Status::InvalidArgument(
          "venue_referents required when tweeting observations are used");
    }
    if (static_cast<int>(input.venue_referents->size()) <
        input.graph->num_venues()) {
      return Status::InvalidArgument("venue_referents smaller than vocabulary");
    }
  }
  if (config_.burn_in_iterations < 0 || config_.sampling_iterations < 1) {
    return Status::InvalidArgument("need >=0 burn-in and >=1 sampling sweeps");
  }
  if (config_.rho_f < 0.0 || config_.rho_f >= 1.0 || config_.rho_t < 0.0 ||
      config_.rho_t >= 1.0) {
    return Status::InvalidArgument("rho_f/rho_t must be in [0, 1)");
  }
  if (config_.num_threads < 1 || config_.sync_every_sweeps < 1) {
    return Status::InvalidArgument(
        "num_threads and sync_every_sweeps must be >= 1");
  }
  if (config_.prune_floor < 0.0 || config_.prune_floor >= 1.0) {
    return Status::InvalidArgument("prune_floor must be in [0, 1)");
  }
  if (config_.prune_floor > 0.0 && config_.prune_patience < 1) {
    return Status::InvalidArgument("prune_patience must be >= 1");
  }
  return Status::OK();
}

Result<MlpResult> MlpModel::Fit(const ModelInput& input) {
  return Fit(input, FitOptions());
}

Result<MlpResult> MlpModel::Fit(const ModelInput& input,
                                const FitOptions& opts) {
  MLP_RETURN_NOT_OK(ValidateInput(input));
  MlpConfig config = config_;  // mutable: (α, β) evolve during Gibbs-EM

  // The single owner of the candidate universe for this fit: the sampler,
  // the arena layout, the engine's shard costs and the snapshot all read
  // through it (see src/core/README.md).
  CandidateSpace space = CandidateSpace::Build(input, config);
  // The fingerprint pass walks every edge and candidate row; skip it for
  // plain fits that neither resume nor export a checkpoint.
  const bool needs_fingerprint =
      opts.warm_start != nullptr || opts.checkpoint_out != nullptr;
  const uint64_t fingerprint =
      needs_fingerprint ? FitFingerprint(input, config_, space) : 0;

  FitProgress progress;
  if (opts.warm_start != nullptr) {
    if (opts.warm_start->fingerprint != fingerprint) {
      return Status::InvalidArgument(
          "warm-start checkpoint does not match this input/config "
          "(fingerprint mismatch)");
    }
    progress = opts.warm_start->progress;
    // Resume the evolved (α, β) instead of re-fitting from labeled pairs —
    // the initial fit is deterministic from the input, so the restored
    // values already embed it.
    config.alpha = progress.alpha;
    config.beta = progress.beta;
  } else {
    // Sec. 4.1: learn the location-based following model from labeled
    // pairs.
    if (config.fit_power_law_from_data &&
        config.source != ObservationSource::kTweetingOnly) {
      Result<stats::PowerLaw> fit = FitFollowingPowerLaw(
          *input.graph, input.observed_home, *input.distances);
      if (fit.ok()) {
        config.alpha = std::clamp(fit->alpha, kAlphaMin, kAlphaMax);
        config.beta = std::clamp(fit->beta, 1e-9, 1.0);
      }
      // Too little supervision to fit: keep the paper's defaults.
    }
    progress.alpha = config.alpha;
    progress.beta = config.beta;
  }

  RandomModels random_models = RandomModels::Learn(*input.graph);
  PowTable pow_table(input.distances, config.alpha,
                     config.distance_floor_miles);

  Pcg32 rng(config.seed, 0x5bd1e995u);
  GibbsSampler sampler(&input, &config, &space, &random_models, &pow_table);
  // Sweep driver: sequential passthrough at num_threads == 1 (bit-identical
  // to running the sampler directly), sharded delta-merge sweeps otherwise.
  // The engine also owns the sweep-time pruning barrier (MaybePrune).
  engine::ParallelGibbsEngine engine(&sampler, &input, &config, &space);
  if (opts.warm_start != nullptr) {
    // The activation state must land before the sampler state: RestoreState
    // validates every buffer against the space's (possibly compacted)
    // active layout.
    MLP_RETURN_NOT_OK(space.RestoreActivation(opts.warm_start->activation));
    MLP_RETURN_NOT_OK(sampler.RestoreState(opts.warm_start->sampler));
    rng.RestoreState(opts.warm_start->master_rng);
    MLP_RETURN_NOT_OK(
        engine.RestoreShardRngStates(opts.warm_start->shard_rngs));
    // A pruned fit resharded by candidate-product cost after each
    // compaction; re-deriving the shards from the restored space replays
    // the exact partition the uninterrupted run was using at the cut.
    engine.OnActivationRestored();
  } else {
    engine.Initialize(&rng);
  }

  const int rounds = std::max(0, config.gibbs_em_rounds) + 1;
  const int burn = config.burn_in_iterations;
  const int sampling = config.sampling_iterations;
  const int per_round = burn + sampling;
  // Budget accounting is global over the program, so a resumed fit counts
  // the checkpointed sweeps as already spent.
  auto sweeps_done = [&]() {
    return progress.round * per_round + progress.burn_in_done +
           progress.sampling_done;
  };
  auto budget_exhausted = [&]() {
    return opts.max_total_sweeps >= 0 &&
           sweeps_done() >= opts.max_total_sweeps;
  };

  bool budget_hit = false;
  while (progress.round < rounds && !budget_hit) {
    while (progress.burn_in_done < burn) {
      // Checkpoints are only cut at merged barriers: with
      // sync_every_sweeps > 1 the stop rolls forward to the next merge, so
      // the saved state is exactly the state an uninterrupted run has at
      // that barrier.
      if (budget_exhausted() && engine.IsSynchronized()) {
        budget_hit = true;
        break;
      }
      engine.RunSweep(&rng);
      ++progress.burn_in_done;
      // Adaptive candidate pruning fires only at merged burn-in barriers,
      // so the sampled posterior (and the accumulators) always run over one
      // fixed support. No-op unless config.prune_floor > 0.
      engine.MaybePrune(sweeps_done());
    }
    if (budget_hit) break;
    engine.Synchronize();
    if (progress.sampling_done == 0) sampler.ResetAccumulators();
    while (progress.sampling_done < sampling) {
      if (budget_exhausted()) {  // always synchronized in this phase
        budget_hit = true;
        break;
      }
      engine.RunSweep(&rng);
      // Accumulation reads the global counts, so any pending replica
      // deltas must land first (no-op at sync_every_sweeps == 1).
      engine.Synchronize();
      sampler.AccumulateSample();
      ++progress.sampling_done;
    }
    if (budget_hit) break;

    if (progress.round + 1 < rounds &&
        config.source != ObservationSource::kTweetingOnly) {
      // Gibbs-EM M-step (Sec. 4.5): rebuild the Fig-3a curve with the
      // expected assignment distances as the numerator and the OBSERVED
      // labeled pair distances as the denominator. Both sides are
      // restricted to labeled users so the ratio compares consistent
      // populations (estimated homes of unlabeled users would bias the
      // denominator toward wherever the model currently errs).
      std::vector<double> edge_hist =
          sampler.AssignmentDistanceHistogram(kEmHistogramBuckets);
      std::vector<double> pair_hist = PairDistanceHistogram(
          input.observed_home, *input.distances, 1.0, kEmHistogramBuckets);
      Result<stats::PowerLaw> fit = stats::FitPowerLaw(
          stats::RatioCurve(edge_hist, pair_hist, kEmMinPairs));
      if (fit.ok()) {
        // Damped move on the slope α; see MlpConfig::em_damping.
        double damping = std::clamp(config.em_damping, 0.0, 1.0);
        double target_alpha = std::clamp(fit->alpha, kAlphaMin, kAlphaMax);
        config.alpha += damping * (target_alpha - config.alpha);
        // β by moment matching rather than the regression intercept: pick
        // the scale that preserves the observed location-edge mass,
        // Σ_d pairs(d)·β·d^α = Σ_d edges(d). The intercept-based β drifts
        // upward round over round (the assignment histogram concentrates
        // near the floor), which unbalances the μ update's noise branch.
        double edge_mass = 0.0, kernel_mass = 0.0;
        for (size_t d = 0; d < edge_hist.size(); ++d) {
          edge_mass += edge_hist[d];
          kernel_mass += pair_hist[d] * std::pow(static_cast<double>(d) + 0.5,
                                                 config.alpha);
        }
        if (edge_mass > 0.0 && kernel_mass > 0.0) {
          config.beta = std::clamp(edge_mass / kernel_mass, 1e-9, 1.0);
        }
        pow_table.Rebuild(config.alpha);
      }
    }
    ++progress.round;
    progress.burn_in_done = 0;
    progress.sampling_done = 0;
  }

  progress.alpha = config.alpha;
  progress.beta = config.beta;
  if (opts.checkpoint_out != nullptr) {
    FitCheckpoint* ck = opts.checkpoint_out;
    ck->config = config_;
    ck->fingerprint = fingerprint;
    ck->complete = progress.round >= rounds;
    ck->progress = progress;
    sampler.SaveState(&ck->sampler);
    ck->master_rng = rng.SaveState();
    ck->shard_rngs = engine.ShardRngStates();
    ck->activation = space.SaveActivation();
  }

  MlpResult result = sampler.BuildResult();
  result.alpha = config.alpha;
  result.beta = config.beta;
  return result;
}

}  // namespace core
}  // namespace mlp
