#include "core/model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/pair_distance.h"
#include "core/priors.h"
#include "core/pow_table.h"
#include "core/random_models.h"
#include "engine/parallel_gibbs.h"

namespace mlp {
namespace core {

namespace {
constexpr int kEmHistogramBuckets = 3000;  // 1-mile buckets
constexpr double kEmMinPairs = 50.0;
constexpr double kAlphaMin = -2.0;
constexpr double kAlphaMax = -0.05;
}  // namespace

Status MlpModel::ValidateInput(const ModelInput& input) const {
  if (input.gazetteer == nullptr || input.graph == nullptr ||
      input.distances == nullptr) {
    return Status::InvalidArgument("ModelInput has null components");
  }
  if (!input.graph->finalized()) {
    return Status::FailedPrecondition("graph must be finalized before Fit");
  }
  if (static_cast<int>(input.observed_home.size()) !=
      input.graph->num_users()) {
    return Status::InvalidArgument("observed_home size != num_users");
  }
  for (geo::CityId c : input.observed_home) {
    if (c != geo::kInvalidCity && (c < 0 || c >= input.num_locations())) {
      return Status::InvalidArgument("observed home out of gazetteer range");
    }
  }
  if (config_.source != ObservationSource::kFollowingOnly) {
    if (input.venue_referents == nullptr) {
      return Status::InvalidArgument(
          "venue_referents required when tweeting observations are used");
    }
    if (static_cast<int>(input.venue_referents->size()) <
        input.graph->num_venues()) {
      return Status::InvalidArgument("venue_referents smaller than vocabulary");
    }
  }
  if (config_.burn_in_iterations < 0 || config_.sampling_iterations < 1) {
    return Status::InvalidArgument("need >=0 burn-in and >=1 sampling sweeps");
  }
  if (config_.rho_f < 0.0 || config_.rho_f >= 1.0 || config_.rho_t < 0.0 ||
      config_.rho_t >= 1.0) {
    return Status::InvalidArgument("rho_f/rho_t must be in [0, 1)");
  }
  if (config_.num_threads < 1 || config_.sync_every_sweeps < 1) {
    return Status::InvalidArgument(
        "num_threads and sync_every_sweeps must be >= 1");
  }
  return Status::OK();
}

Result<MlpResult> MlpModel::Fit(const ModelInput& input) {
  MLP_RETURN_NOT_OK(ValidateInput(input));
  MlpConfig config = config_;  // mutable: (α, β) evolve during Gibbs-EM

  // Sec. 4.1: learn the location-based following model from labeled pairs.
  if (config.fit_power_law_from_data &&
      config.source != ObservationSource::kTweetingOnly) {
    Result<stats::PowerLaw> fit = FitFollowingPowerLaw(
        *input.graph, input.observed_home, *input.distances);
    if (fit.ok()) {
      config.alpha = std::clamp(fit->alpha, kAlphaMin, kAlphaMax);
      config.beta = std::clamp(fit->beta, 1e-9, 1.0);
    }
    // Too little supervision to fit: keep the paper's defaults.
  }

  std::vector<UserPrior> priors = BuildPriors(input, config);
  RandomModels random_models = RandomModels::Learn(*input.graph);
  PowTable pow_table(input.distances, config.alpha,
                     config.distance_floor_miles);

  Pcg32 rng(config.seed, 0x5bd1e995u);
  GibbsSampler sampler(&input, &config, &priors, &random_models, &pow_table);
  // Sweep driver: sequential passthrough at num_threads == 1 (bit-identical
  // to running the sampler directly), sharded delta-merge sweeps otherwise.
  engine::ParallelGibbsEngine engine(&sampler, &input, &config);
  engine.Initialize(&rng);

  const int rounds = std::max(0, config.gibbs_em_rounds) + 1;
  for (int round = 0; round < rounds; ++round) {
    for (int it = 0; it < config.burn_in_iterations; ++it) {
      engine.RunSweep(&rng);
    }
    engine.Synchronize();
    sampler.ResetAccumulators();
    for (int it = 0; it < config.sampling_iterations; ++it) {
      engine.RunSweep(&rng);
      // Accumulation reads the global counts, so any pending replica
      // deltas must land first (no-op at sync_every_sweeps == 1).
      engine.Synchronize();
      sampler.AccumulateSample();
    }

    if (round + 1 < rounds &&
        config.source != ObservationSource::kTweetingOnly) {
      // Gibbs-EM M-step (Sec. 4.5): rebuild the Fig-3a curve with the
      // expected assignment distances as the numerator and the OBSERVED
      // labeled pair distances as the denominator. Both sides are
      // restricted to labeled users so the ratio compares consistent
      // populations (estimated homes of unlabeled users would bias the
      // denominator toward wherever the model currently errs).
      std::vector<double> edge_hist =
          sampler.AssignmentDistanceHistogram(kEmHistogramBuckets);
      std::vector<double> pair_hist = PairDistanceHistogram(
          input.observed_home, *input.distances, 1.0, kEmHistogramBuckets);
      Result<stats::PowerLaw> fit = stats::FitPowerLaw(
          stats::RatioCurve(edge_hist, pair_hist, kEmMinPairs));
      if (fit.ok()) {
        // Damped move on the slope α; see MlpConfig::em_damping.
        double damping = std::clamp(config.em_damping, 0.0, 1.0);
        double target_alpha = std::clamp(fit->alpha, kAlphaMin, kAlphaMax);
        config.alpha += damping * (target_alpha - config.alpha);
        // β by moment matching rather than the regression intercept: pick
        // the scale that preserves the observed location-edge mass,
        // Σ_d pairs(d)·β·d^α = Σ_d edges(d). The intercept-based β drifts
        // upward round over round (the assignment histogram concentrates
        // near the floor), which unbalances the μ update's noise branch.
        double edge_mass = 0.0, kernel_mass = 0.0;
        for (size_t d = 0; d < edge_hist.size(); ++d) {
          edge_mass += edge_hist[d];
          kernel_mass += pair_hist[d] * std::pow(static_cast<double>(d) + 0.5,
                                                 config.alpha);
        }
        if (edge_mass > 0.0 && kernel_mass > 0.0) {
          config.beta = std::clamp(edge_mass / kernel_mass, 1e-9, 1.0);
        }
        pow_table.Rebuild(config.alpha);
      }
    }
  }

  MlpResult result = sampler.BuildResult();
  result.alpha = config.alpha;
  result.beta = config.beta;
  return result;
}

}  // namespace core
}  // namespace mlp
