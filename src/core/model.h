#ifndef MLP_CORE_MODEL_H_
#define MLP_CORE_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/candidate_space.h"
#include "core/input.h"
#include "core/model_config.h"
#include "core/sampler.h"

namespace mlp {
namespace core {

/// Position inside Fit's sweep program (rounds × (burn-in + sampling))
/// plus the evolved (α, β). A checkpoint cut at progress P resumed on the
/// same (input, config) replays the exact chain an uninterrupted fit runs.
struct FitProgress {
  int32_t round = 0;          // Gibbs-EM round currently in (0-based)
  int32_t burn_in_done = 0;   // burn-in sweeps finished in this round
  int32_t sampling_done = 0;  // sampling sweeps finished in this round
  double alpha = 0.0;         // evolved power-law slope at the cut
  double beta = 0.0;
};

/// Everything needed to resume a fit exactly where it stopped: the sampler
/// state, the program position, and every RNG stream's exact position.
/// `fingerprint` binds the checkpoint to its (input, config, priors) — Fit
/// refuses to warm-start from a checkpoint taken over different data, a
/// different config (including num_threads) or a different seed.
/// io/model_snapshot.{h,cc} serializes this as the on-disk format.
struct FitCheckpoint {
  MlpConfig config;           // the config the fit was started with
  uint64_t fingerprint = 0;
  bool complete = false;      // the whole sweep program finished
  FitProgress progress;
  SamplerState sampler;
  Pcg32State master_rng;
  std::vector<Pcg32State> shard_rngs;  // one per thread; empty sequential
  /// Candidate-space activation at the cut (sweep-time pruning state). An
  /// empty mask means fully active — the state of every fit that never
  /// pruned, and of every snapshot-v1 checkpoint.
  CandidateActivation activation;
};

/// Optional controls for Fit.
struct FitOptions {
  /// Global sweep budget over the whole program (burn-in + sampling,
  /// summed across Gibbs-EM rounds and across warm-started continuations).
  /// Negative means run to completion. Fit stops at the first merged sweep
  /// barrier at or after the budget, fills `checkpoint_out` (if given)
  /// with `complete == false`, and still returns a best-effort result.
  int max_total_sweeps = -1;
  /// Resume from this checkpoint instead of initializing from the priors.
  /// Must match the model's (input, config); validated by fingerprint.
  const FitCheckpoint* warm_start = nullptr;
  /// When non-null, filled with the end-of-run state — complete or not —
  /// so the caller can persist it (io::SaveModelSnapshot) or resume later.
  FitCheckpoint* checkpoint_out = nullptr;
  /// ApplyDelta only: warm resampling sweeps run over the touched shards
  /// after a delta lands — a short burn to absorb the new evidence, then
  /// accumulation sweeps that average the refreshed posteriors. Both are
  /// tiny compared to a full sweep program; that gap (times the touched-
  /// shard fraction) is the streaming-ingest speedup.
  int delta_burn_sweeps = 3;
  int delta_sampling_sweeps = 5;
  /// Memory budget for the fit in MB; 0 (default) disables enforcement.
  /// At every merged burn-in barrier Fit publishes the exact accounted
  /// footprint (candidate space + sampler + engine arenas; the mem_*
  /// gauges in obs), and while it exceeds the budget the pruning schedule
  /// is tightened — the floor ratchets up and patience drops to 1 — so
  /// the next pruning barriers deactivate more candidate slots. Pruning
  /// is the only lever (the model never spills mid-fit), so a budget far
  /// below the working set is settled by pruning's own immunity rules:
  /// the footprint converges to whatever the argmax/support-holding slots
  /// cost. Runtime policy, like max_total_sweeps: not fingerprinted, and
  /// a resumed fit applies whatever budget ITS options carry.
  int mem_budget_mb = 0;
};

/// What one ApplyDelta call did — sizes of the delta, the touched set, and
/// exactly which users/edges were resampled (everything else is carried
/// bit-identically from the base fit). The masks drive the result merge
/// and the untouched-shard identity assertions in tests/stream_test.cpp.
struct DeltaReport {
  int32_t new_users = 0;
  int32_t new_following = 0;
  int32_t new_tweeting = 0;
  /// Existing users whose FULL candidate row changed under the merged
  /// graph (new neighbor evidence → new candidates / reweighted γ).
  int32_t migrated_rows = 0;
  /// Carried assignments whose slot vanished from the merged active row
  /// (redirected to the user's best prior slot before resampling).
  int32_t redirected_assignments = 0;
  int32_t touched_users = 0;    // delta-adjacent users before shard closure
  int32_t shards_touched = 0;
  int32_t shards_total = 0;
  std::vector<uint8_t> user_resampled;       // per merged user
  std::vector<uint8_t> following_resampled;  // per merged following edge
  std::vector<uint8_t> tweeting_resampled;   // per merged tweeting edge
};

/// Identity hash binding a fit to its inputs: every pre-pruning MlpConfig
/// field, the graph's users/edges, the observed-home mask and the derived
/// FULL candidate universe (candidates + γ). Two calls agree iff a
/// checkpoint from one fit can be resumed by the other. The sweep-time
/// pruning knobs are deliberately excluded (see MlpConfig) — the byte
/// stream is unchanged from the pre-CandidateSpace implementation, so v1
/// snapshots keep verifying.
uint64_t FitFingerprint(const ModelInput& input, const MlpConfig& config,
                        const CandidateSpace& space);

/// The multiple location profiling model — the paper's contribution.
///
/// Usage:
///   core::MlpConfig config;                  // MLP (both sources)
///   core::MlpModel model(config);
///   core::ModelInput input = ...;            // graph + observed homes
///   Result<core::MlpResult> result = model.Fit(input);
///
/// Fit() performs the full Sec. 4.5 procedure: learn (α, β) from labeled
/// pairs, build candidacy vectors and priors γ_i, learn the random models
/// F_R/T_R, run collapsed Gibbs (burn-in + averaged sampling sweeps), and
/// optionally alternate with Gibbs-EM rounds that refit (α, β) from the
/// expected assignment distances.
///
/// The FitOptions overload adds checkpoint/warm-start: a fit stopped by
/// `max_total_sweeps` hands back a FitCheckpoint, and a later Fit with
/// `warm_start` pointing at it resumes the chain exactly — the
/// concatenation reproduces the uninterrupted fit bit for bit (same seed,
/// same thread count; see src/io/README.md).
class MlpModel {
 public:
  explicit MlpModel(MlpConfig config) : config_(config) {}

  const MlpConfig& config() const { return config_; }

  Result<MlpResult> Fit(const ModelInput& input);
  Result<MlpResult> Fit(const ModelInput& input, const FitOptions& options);

  /// Streaming delta ingest (ROADMAP "streaming updates"; driven by
  /// src/stream/): absorbs a batch of appended users/relationships into a
  /// fitted model WITHOUT rerunning full inference.
  ///
  /// `base_input` is the world the checkpoint was fitted on;
  /// `merged_input` extends it — same users/edges as a strict prefix, the
  /// delta appended (stream::MergeDelta builds exactly this). The call
  ///   1. validates `options.warm_start` (required) against `base_input`
  ///      by fingerprint,
  ///   2. rebuilds the candidate space over the merged world and migrates
  ///      the base activation onto it — unchanged rows keep their slots
  ///      (and pruned slots stay pruned), stale rows are remapped by city,
  ///      and `layout_version` is bumped so downstream consumers see one
  ///      ingest generation,
  ///   3. adopts the migrated chain (GibbsSampler::AdoptMigratedChain) and
  ///      resamples ONLY the shards touched by the delta
  ///      (ParallelGibbsEngine::ResampleShards) for
  ///      `options.delta_burn_sweeps + delta_sampling_sweeps` sweeps from
  ///      the warm state,
  ///   4. merges: untouched users/edges keep `base_result`'s rows verbatim
  ///      and their counts bit-identical; touched ones get the refreshed
  ///      posterior.
  /// `options.checkpoint_out` receives a checkpoint bound to the MERGED
  /// input — it round-trips through io::SaveModelSnapshot as an ordinary
  /// v2 snapshot and can be resumed, re-ingested, or served.
  /// An empty delta (merged == base, no row changes) is a strict no-op:
  /// `base_result` and the warm-start checkpoint come back unchanged.
  Result<MlpResult> ApplyDelta(const ModelInput& base_input,
                               const ModelInput& merged_input,
                               const MlpResult& base_result,
                               const FitOptions& options,
                               DeltaReport* report = nullptr);

 private:
  Status ValidateInput(const ModelInput& input) const;

  MlpConfig config_;
};

}  // namespace core
}  // namespace mlp

#endif  // MLP_CORE_MODEL_H_
