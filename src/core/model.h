#ifndef MLP_CORE_MODEL_H_
#define MLP_CORE_MODEL_H_

#include "common/result.h"
#include "core/input.h"
#include "core/model_config.h"
#include "core/sampler.h"

namespace mlp {
namespace core {

/// The multiple location profiling model — the paper's contribution.
///
/// Usage:
///   core::MlpConfig config;                  // MLP (both sources)
///   core::MlpModel model(config);
///   core::ModelInput input = ...;            // graph + observed homes
///   Result<core::MlpResult> result = model.Fit(input);
///
/// Fit() performs the full Sec. 4.5 procedure: learn (α, β) from labeled
/// pairs, build candidacy vectors and priors γ_i, learn the random models
/// F_R/T_R, run collapsed Gibbs (burn-in + averaged sampling sweeps), and
/// optionally alternate with Gibbs-EM rounds that refit (α, β) from the
/// expected assignment distances.
class MlpModel {
 public:
  explicit MlpModel(MlpConfig config) : config_(config) {}

  const MlpConfig& config() const { return config_; }

  Result<MlpResult> Fit(const ModelInput& input);

 private:
  Status ValidateInput(const ModelInput& input) const;

  MlpConfig config_;
};

}  // namespace core
}  // namespace mlp

#endif  // MLP_CORE_MODEL_H_
