#ifndef MLP_CORE_MODEL_H_
#define MLP_CORE_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/candidate_space.h"
#include "core/input.h"
#include "core/model_config.h"
#include "core/sampler.h"

namespace mlp {
namespace core {

/// Position inside Fit's sweep program (rounds × (burn-in + sampling))
/// plus the evolved (α, β). A checkpoint cut at progress P resumed on the
/// same (input, config) replays the exact chain an uninterrupted fit runs.
struct FitProgress {
  int32_t round = 0;          // Gibbs-EM round currently in (0-based)
  int32_t burn_in_done = 0;   // burn-in sweeps finished in this round
  int32_t sampling_done = 0;  // sampling sweeps finished in this round
  double alpha = 0.0;         // evolved power-law slope at the cut
  double beta = 0.0;
};

/// Everything needed to resume a fit exactly where it stopped: the sampler
/// state, the program position, and every RNG stream's exact position.
/// `fingerprint` binds the checkpoint to its (input, config, priors) — Fit
/// refuses to warm-start from a checkpoint taken over different data, a
/// different config (including num_threads) or a different seed.
/// io/model_snapshot.{h,cc} serializes this as the on-disk format.
struct FitCheckpoint {
  MlpConfig config;           // the config the fit was started with
  uint64_t fingerprint = 0;
  bool complete = false;      // the whole sweep program finished
  FitProgress progress;
  SamplerState sampler;
  Pcg32State master_rng;
  std::vector<Pcg32State> shard_rngs;  // one per thread; empty sequential
  /// Candidate-space activation at the cut (sweep-time pruning state). An
  /// empty mask means fully active — the state of every fit that never
  /// pruned, and of every snapshot-v1 checkpoint.
  CandidateActivation activation;
};

/// Optional controls for Fit.
struct FitOptions {
  /// Global sweep budget over the whole program (burn-in + sampling,
  /// summed across Gibbs-EM rounds and across warm-started continuations).
  /// Negative means run to completion. Fit stops at the first merged sweep
  /// barrier at or after the budget, fills `checkpoint_out` (if given)
  /// with `complete == false`, and still returns a best-effort result.
  int max_total_sweeps = -1;
  /// Resume from this checkpoint instead of initializing from the priors.
  /// Must match the model's (input, config); validated by fingerprint.
  const FitCheckpoint* warm_start = nullptr;
  /// When non-null, filled with the end-of-run state — complete or not —
  /// so the caller can persist it (io::SaveModelSnapshot) or resume later.
  FitCheckpoint* checkpoint_out = nullptr;
};

/// Identity hash binding a fit to its inputs: every pre-pruning MlpConfig
/// field, the graph's users/edges, the observed-home mask and the derived
/// FULL candidate universe (candidates + γ). Two calls agree iff a
/// checkpoint from one fit can be resumed by the other. The sweep-time
/// pruning knobs are deliberately excluded (see MlpConfig) — the byte
/// stream is unchanged from the pre-CandidateSpace implementation, so v1
/// snapshots keep verifying.
uint64_t FitFingerprint(const ModelInput& input, const MlpConfig& config,
                        const CandidateSpace& space);

/// The multiple location profiling model — the paper's contribution.
///
/// Usage:
///   core::MlpConfig config;                  // MLP (both sources)
///   core::MlpModel model(config);
///   core::ModelInput input = ...;            // graph + observed homes
///   Result<core::MlpResult> result = model.Fit(input);
///
/// Fit() performs the full Sec. 4.5 procedure: learn (α, β) from labeled
/// pairs, build candidacy vectors and priors γ_i, learn the random models
/// F_R/T_R, run collapsed Gibbs (burn-in + averaged sampling sweeps), and
/// optionally alternate with Gibbs-EM rounds that refit (α, β) from the
/// expected assignment distances.
///
/// The FitOptions overload adds checkpoint/warm-start: a fit stopped by
/// `max_total_sweeps` hands back a FitCheckpoint, and a later Fit with
/// `warm_start` pointing at it resumes the chain exactly — the
/// concatenation reproduces the uninterrupted fit bit for bit (same seed,
/// same thread count; see src/io/README.md).
class MlpModel {
 public:
  explicit MlpModel(MlpConfig config) : config_(config) {}

  const MlpConfig& config() const { return config_; }

  Result<MlpResult> Fit(const ModelInput& input);
  Result<MlpResult> Fit(const ModelInput& input, const FitOptions& options);

 private:
  Status ValidateInput(const ModelInput& input) const;

  MlpConfig config_;
};

}  // namespace core
}  // namespace mlp

#endif  // MLP_CORE_MODEL_H_
