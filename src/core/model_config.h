#ifndef MLP_CORE_MODEL_CONFIG_H_
#define MLP_CORE_MODEL_CONFIG_H_

#include <cstdint>

namespace mlp {
namespace core {

/// Which observations the model consumes. The paper's MLP_U uses following
/// relationships only, MLP_C tweeting relationships only, MLP both.
enum class ObservationSource {
  kFollowingOnly,
  kTweetingOnly,
  kBoth,
};

/// All model parameters Ω plus inference knobs. Defaults follow the paper:
/// α=-0.55, β=0.0045 learned in Sec. 4.1; τ=0.1 ("previous studies show
/// hyper parameters below 1 prefer sparse distributions"); Gibbs converges
/// in ~14 iterations (Fig. 5).
///
/// Snapshot contract: every field below is (a) serialized verbatim by
/// io/model_snapshot.{h,cc} and (b) mixed into core::FitFingerprint, which
/// gates warm-starting a checkpoint. Adding a field means bumping
/// io::kModelSnapshotVersion and extending both functions — a field left
/// out of the fingerprint would let a checkpoint silently resume under a
/// different sweep program. Deliberate exception: the sweep-time pruning
/// knobs (prune_floor, prune_patience) are serialized but NOT
/// fingerprinted — they are a runtime policy over the same candidate
/// universe, and excluding them is what lets v1 (pre-pruning) snapshots
/// resume and lets a resume turn pruning on/off mid-program
/// (mlpctl resume --prune_floor / --no_prune).
struct MlpConfig {
  ObservationSource source = ObservationSource::kBoth;

  // ---- location-based following model F_L (Eq. 1) ----
  double alpha = -0.55;
  double beta = 0.0045;
  /// Re-learn (α, β) from the observed labeled pairs before inference,
  /// exactly as Sec. 4.1 learns them from the crawl. The hardcoded defaults
  /// above are the paper's values and only apply when this is off.
  bool fit_power_law_from_data = true;

  // ---- noise mixture (Sec. 4.2) ----
  /// P(model selector = random) for following / tweeting relationships.
  double rho_f = 0.10;
  double rho_t = 0.10;
  /// Ablation: disable the random-model mixture entirely (every
  /// relationship is forced location-based, as in the baselines).
  bool model_noise = true;

  // ---- priors (Sec. 4.3) ----
  /// τ: prior mass for each candidate location in the candidacy vector.
  double tau = 0.1;
  /// Λ's diagonal: how much an observed home location boosts its prior
  /// (γ_i = η_i × Λ × γ + τ·λ_i). Expressed directly as added pseudocounts.
  double supervision_boost = 50.0;
  /// δ: symmetric Dirichlet prior on the per-location tweeting models ψ_l.
  double delta = 0.05;
  /// Ablation: when false, every user's candidate set is all of L.
  bool use_candidacy = true;
  /// Ablation: when false, observed home locations do not boost priors
  /// (the model runs "unsupervised" like LDA/MMSB; Sec. 4.3 predicts the
  /// clusters then float).
  bool use_supervision = true;
  /// Candidate-set fallback for users with no observed neighbor locations:
  /// the top-k most populous cities (statistical prior, not supervision).
  int fallback_top_cities = 10;
  /// Cap on a user's candidate set. High-degree accounts (celebrities) can
  /// observe hundreds of distinct neighbor locations; keeping the most
  /// frequently observed ones bounds the blocked Gibbs update's cost. The
  /// user's own observed home always survives the cap.
  int max_candidates = 60;

  // ---- Gibbs / Gibbs-EM (Sec. 4.5) ----
  int burn_in_iterations = 10;
  /// Post-burn-in sweeps whose samples are averaged into θ and the
  /// per-relationship explanations.
  int sampling_iterations = 20;
  /// Outer Gibbs-EM rounds that refit (α, β) from expected assignment
  /// distances; 0 keeps the initial fit.
  int gibbs_em_rounds = 0;
  /// M-step damping in (0, 1]: the refit moves (α, log β) this fraction of
  /// the way toward the new fit. Undamped refits are self-reinforcing —
  /// a steeper α concentrates the very assignments the next fit is made
  /// from — so 1.0 diverges within a few rounds.
  double em_damping = 0.3;
  uint64_t seed = 1234;

  /// Distance floor in miles for the power law (the paper buckets at
  /// 1-mile granularity; β·d^α diverges at 0).
  double distance_floor_miles = 1.0;

  // ---- parallel inference (src/engine/) ----
  /// Gibbs worker threads. 1 runs the exact sequential sampler; N > 1
  /// shards users across N workers with AD-LDA-style delta merging
  /// (approximate but deterministic for fixed N; see src/engine/README.md).
  int num_threads = 1;
  /// Sweeps between replica merges when num_threads > 1. 1 (the default)
  /// merges at every sweep barrier; larger values trade statistical
  /// freshness of the thread-local counts for fewer barriers during
  /// burn-in. Ignored in the sequential path.
  int sync_every_sweeps = 1;

  // ---- adaptive candidate pruning (core/candidate_space.h) ----
  /// Posterior-mass floor for sweep-time candidate pruning: at every merged
  /// sync barrier during burn-in, an active candidate whose posterior mass
  /// (ϕ+γ)/(ϕ_total+Σγ) has stayed below this floor for `prune_patience`
  /// consecutive barriers is deactivated and the arena compacted, shrinking
  /// the blocked update's O(|cand_i|·|cand_j|) inner loop. 0 (the default)
  /// disables pruning entirely — the fit is then bit-identical to the
  /// pre-pruning code path.
  double prune_floor = 0.0;
  /// Consecutive below-floor barriers before a candidate is deactivated.
  int prune_patience = 3;
};

}  // namespace core
}  // namespace mlp

#endif  // MLP_CORE_MODEL_CONFIG_H_
