#include "core/pair_distance.h"

#include <cmath>

#include "common/logging.h"

namespace mlp {
namespace core {

namespace {
int BucketOf(double miles, double bucket_miles, int num_buckets) {
  int b = static_cast<int>(std::floor(miles / bucket_miles));
  if (b < 0) b = 0;
  if (b >= num_buckets) return -1;  // out of range; caller drops
  return b;
}
}  // namespace

std::vector<double> PairDistanceHistogram(
    const std::vector<geo::CityId>& homes,
    const geo::CityDistanceMatrix& distances, double bucket_miles,
    int num_buckets) {
  MLP_CHECK(bucket_miles > 0.0 && num_buckets > 0);
  // Group users by home city.
  std::vector<double> city_count(distances.size(), 0.0);
  for (geo::CityId home : homes) {
    if (home != geo::kInvalidCity) city_count[home] += 1.0;
  }
  std::vector<double> hist(num_buckets, 0.0);
  const int num_cities = distances.size();
  for (geo::CityId a = 0; a < num_cities; ++a) {
    if (city_count[a] <= 0.0) continue;
    // Same-city ordered pairs sit at the distance floor.
    int b0 = BucketOf(distances.miles(a, a), bucket_miles, num_buckets);
    if (b0 >= 0) hist[b0] += city_count[a] * (city_count[a] - 1.0);
    for (geo::CityId b = a + 1; b < num_cities; ++b) {
      if (city_count[b] <= 0.0) continue;
      int bucket = BucketOf(distances.miles(a, b), bucket_miles, num_buckets);
      if (bucket >= 0) {
        // Ordered pairs in both directions.
        hist[bucket] += 2.0 * city_count[a] * city_count[b];
      }
    }
  }
  return hist;
}

std::vector<double> EdgeDistanceHistogram(
    const graph::SocialGraph& graph, const std::vector<geo::CityId>& homes,
    const geo::CityDistanceMatrix& distances, double bucket_miles,
    int num_buckets) {
  MLP_CHECK(bucket_miles > 0.0 && num_buckets > 0);
  MLP_CHECK(static_cast<int>(homes.size()) == graph.num_users());
  std::vector<double> hist(num_buckets, 0.0);
  for (graph::EdgeId s = 0; s < graph.num_following(); ++s) {
    const graph::FollowingEdge& edge = graph.following(s);
    geo::CityId a = homes[edge.follower];
    geo::CityId b = homes[edge.friend_user];
    if (a == geo::kInvalidCity || b == geo::kInvalidCity) continue;
    int bucket = BucketOf(distances.miles(a, b), bucket_miles, num_buckets);
    if (bucket >= 0) hist[bucket] += 1.0;
  }
  return hist;
}

Result<stats::PowerLaw> FitFollowingPowerLaw(
    const graph::SocialGraph& graph, const std::vector<geo::CityId>& homes,
    const geo::CityDistanceMatrix& distances, double bucket_miles,
    int num_buckets, double min_pairs) {
  std::vector<double> pairs =
      PairDistanceHistogram(homes, distances, bucket_miles, num_buckets);
  std::vector<double> edges =
      EdgeDistanceHistogram(graph, homes, distances, bucket_miles, num_buckets);
  std::vector<stats::CurvePoint> curve =
      stats::RatioCurve(edges, pairs, min_pairs);
  return stats::FitPowerLaw(curve);
}

}  // namespace core
}  // namespace mlp
