#ifndef MLP_CORE_PAIR_DISTANCE_H_
#define MLP_CORE_PAIR_DISTANCE_H_

#include <vector>

#include "common/result.h"
#include "geo/distance_matrix.h"
#include "graph/social_graph.h"
#include "stats/power_law.h"

namespace mlp {
namespace core {

/// Histogram (1 bucket = `bucket_miles`) of pairwise distances between
/// users with known homes. The paper forms all ~2.5·10^10 labeled pairs and
/// buckets them (Sec. 4.1); grouping users by home city makes this exact in
/// O(|L|²): a city pair (a,b) contributes n_a·n_b pairs at d(a,b), and a
/// city with n_a users contributes n_a·(n_a-1) same-city pairs at the
/// distance floor. Ordered pairs, matching directed following edges.
std::vector<double> PairDistanceHistogram(
    const std::vector<geo::CityId>& homes,
    const geo::CityDistanceMatrix& distances, double bucket_miles,
    int num_buckets);

/// Histogram of following-edge distances over edges whose two endpoints
/// both have known homes.
std::vector<double> EdgeDistanceHistogram(
    const graph::SocialGraph& graph, const std::vector<geo::CityId>& homes,
    const geo::CityDistanceMatrix& distances, double bucket_miles,
    int num_buckets);

/// The Sec-4.1 procedure end to end: bucket labeled pairs and labeled
/// edges, take the per-bucket ratio (Fig. 3a's dots), and fit the power law
/// (its line). Buckets with < `min_pairs` pairs are dropped.
Result<stats::PowerLaw> FitFollowingPowerLaw(
    const graph::SocialGraph& graph, const std::vector<geo::CityId>& homes,
    const geo::CityDistanceMatrix& distances, double bucket_miles = 1.0,
    int num_buckets = 3000, double min_pairs = 100.0);

}  // namespace core
}  // namespace mlp

#endif  // MLP_CORE_PAIR_DISTANCE_H_
