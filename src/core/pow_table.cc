#include "core/pow_table.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mlp {
namespace core {

PowTable::PowTable(const geo::CityDistanceMatrix* distances, double alpha,
                   double floor_miles)
    : distances_(distances),
      n_(distances->size()),
      floor_miles_(std::max(floor_miles, distances->floor_miles())) {
  MLP_CHECK(distances_ != nullptr);
  MLP_CHECK(floor_miles_ > 0.0);
  Rebuild(alpha);
}

void PowTable::Rebuild(double alpha) {
  alpha_ = alpha;
  data_.assign(static_cast<size_t>(n_) * n_, 0.0f);
  for (geo::CityId a = 0; a < n_; ++a) {
    for (geo::CityId b = a; b < n_; ++b) {
      double d = std::max(distances_->raw_miles(a, b), floor_miles_);
      float value = static_cast<float>(std::pow(d, alpha));
      data_[static_cast<size_t>(a) * n_ + b] = value;
      data_[static_cast<size_t>(b) * n_ + a] = value;
    }
  }
}

}  // namespace core
}  // namespace mlp
