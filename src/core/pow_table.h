#ifndef MLP_CORE_POW_TABLE_H_
#define MLP_CORE_POW_TABLE_H_

#include <vector>

#include "geo/distance_matrix.h"

namespace mlp {
namespace core {

/// Precomputed d(a,b)^α over all city pairs. d^α appears in every Gibbs
/// update of every following relationship (Eqs. 5, 7, 8); precomputing the
/// |L|² table (~0.5 MB) once per α turns millions of pow() calls per sweep
/// into array loads. Rebuild() is called when Gibbs-EM refits α.
class PowTable {
 public:
  /// `floor_miles` clamps distances from below before exponentiation; it
  /// may exceed the matrix's own floor (e.g. a metro-scale floor for
  /// city-level inference).
  PowTable(const geo::CityDistanceMatrix* distances, double alpha,
           double floor_miles = 1.0);

  /// max(d(a,b), floor)^α.
  double Get(geo::CityId a, geo::CityId b) const {
    return data_[static_cast<size_t>(a) * n_ + b];
  }

  double alpha() const { return alpha_; }
  double floor_miles() const { return floor_miles_; }
  void Rebuild(double alpha);

 private:
  const geo::CityDistanceMatrix* distances_;
  int n_;
  double alpha_;
  double floor_miles_;
  std::vector<float> data_;
};

}  // namespace core
}  // namespace mlp

#endif  // MLP_CORE_POW_TABLE_H_
