#include "core/priors.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "stats/discrete.h"

namespace mlp {
namespace core {

std::vector<UserPrior> BuildPriors(const ModelInput& input,
                                   const MlpConfig& config) {
  const graph::SocialGraph& graph = *input.graph;
  const int num_users = input.num_users();
  const int num_locations = input.num_locations();
  MLP_CHECK(static_cast<int>(input.observed_home.size()) == num_users);

  const bool use_following =
      config.source != ObservationSource::kTweetingOnly;
  const bool use_tweeting =
      config.source != ObservationSource::kFollowingOnly;

  // Fallback candidates: the most populous cities.
  std::vector<double> population_weights = input.gazetteer->PopulationWeights();
  std::vector<int> top_cities =
      stats::TopK(population_weights, config.fallback_top_cities);

  std::vector<UserPrior> priors(num_users);
  std::vector<geo::CityId> scratch;
  for (graph::UserId u = 0; u < num_users; ++u) {
    UserPrior& prior = priors[u];
    scratch.clear();

    if (!config.use_candidacy) {
      scratch.reserve(num_locations);
      for (geo::CityId c = 0; c < num_locations; ++c) scratch.push_back(c);
    } else {
      if (input.IsLabeled(u)) scratch.push_back(input.observed_home[u]);
      if (use_following) {
        for (graph::EdgeId s : graph.OutEdges(u)) {
          graph::UserId other = graph.following(s).friend_user;
          if (input.IsLabeled(other)) {
            scratch.push_back(input.observed_home[other]);
          }
        }
        for (graph::EdgeId s : graph.InEdges(u)) {
          graph::UserId other = graph.following(s).follower;
          if (input.IsLabeled(other)) {
            scratch.push_back(input.observed_home[other]);
          }
        }
      }
      if (use_tweeting && input.venue_referents != nullptr) {
        for (graph::EdgeId k : graph.TweetEdges(u)) {
          graph::VenueId v = graph.tweeting(k).venue;
          for (geo::CityId c : (*input.venue_referents)[v]) {
            scratch.push_back(c);
          }
        }
      }
      if (scratch.empty()) {
        for (int c : top_cities) scratch.push_back(c);
      }
    }

    std::sort(scratch.begin(), scratch.end());
    if (config.use_candidacy && config.max_candidates > 0 &&
        static_cast<int>(scratch.size()) > config.max_candidates) {
      // Keep the most frequently observed candidates (scratch holds one
      // entry per observation, so run lengths are the frequencies).
      std::vector<std::pair<double, geo::CityId>> freq;
      for (size_t a = 0; a < scratch.size();) {
        size_t b = a;
        while (b < scratch.size() && scratch[b] == scratch[a]) ++b;
        freq.emplace_back(static_cast<double>(b - a), scratch[a]);
        a = b;
      }
      std::sort(freq.begin(), freq.end(), [](const auto& x, const auto& y) {
        if (x.first != y.first) return x.first > y.first;
        return x.second < y.second;
      });
      std::vector<geo::CityId> kept;
      kept.reserve(config.max_candidates);
      for (const auto& [count, city] : freq) {
        if (static_cast<int>(kept.size()) >= config.max_candidates) break;
        kept.push_back(city);
      }
      if (input.IsLabeled(u) &&
          std::find(kept.begin(), kept.end(), input.observed_home[u]) ==
              kept.end()) {
        kept.back() = input.observed_home[u];
      }
      std::sort(kept.begin(), kept.end());
      scratch = std::move(kept);
    } else {
      scratch.erase(std::unique(scratch.begin(), scratch.end()),
                    scratch.end());
    }
    prior.candidates = scratch;

    prior.gamma.assign(prior.candidates.size(), config.tau);
    if (config.use_supervision && input.IsLabeled(u)) {
      int idx = prior.IndexOf(input.observed_home[u]);
      // The observed home is in the candidate set by construction when
      // candidacy is on; with candidacy off it is trivially present.
      MLP_CHECK(idx >= 0);
      prior.gamma[idx] += config.supervision_boost;
    }
    prior.gamma_sum = 0.0;
    for (double g : prior.gamma) prior.gamma_sum += g;
  }
  return priors;
}

}  // namespace core
}  // namespace mlp
