#ifndef MLP_CORE_PRIORS_H_
#define MLP_CORE_PRIORS_H_

#include <algorithm>
#include <vector>

#include "core/input.h"
#include "core/model_config.h"

namespace mlp {
namespace core {

/// THE candidate→slot lookup: binary search over one sorted candidate row.
/// Every caller — UserPrior::IndexOf, CandidateSpace::SlotOf and the view
/// accessors — delegates here, so there is exactly one implementation to
/// keep correct (no per-file linear probes or re-rolled searches).
inline int FindCandidateSlot(const geo::CityId* sorted, int count,
                             geo::CityId city) {
  const geo::CityId* end = sorted + count;
  const geo::CityId* it = std::lower_bound(sorted, end, city);
  if (it == end || *it != city) return -1;
  return static_cast<int>(it - sorted);
}

/// Per-user prior derived in Sec. 4.3: the candidacy vector λ_i (which
/// locations are candidates at all) and the Dirichlet parameter
/// γ_i = η_i × Λ × γ + τ·λ_i restricted to those candidates.
///
/// This is the CONSTRUCTION-TIME artifact of BuildPriors. During a fit the
/// single owner of the candidate universe is core::CandidateSpace
/// (candidate_space.h), which flattens these rows into its CSR and hands
/// out views; the sampler, arena and engine never touch UserPrior again.
struct UserPrior {
  /// Candidate locations, sorted ascending by CityId.
  std::vector<geo::CityId> candidates;
  /// γ_{i,l} for each candidate (parallel to `candidates`).
  std::vector<double> gamma;
  double gamma_sum = 0.0;

  int size() const { return static_cast<int>(candidates.size()); }

  /// Index of `city` in `candidates`, or -1. Delegates to FindCandidateSlot.
  int IndexOf(geo::CityId city) const {
    return FindCandidateSlot(candidates.data(), size(), city);
  }
};

/// Builds candidacy vectors and priors for every user.
///
/// A location is a candidate for u_i iff it is "observed from u_i's
/// following and tweeting relationships" (Sec. 4.3): a neighbor's observed
/// home, a referent of a tweeted venue, or u_i's own observed home. Sources
/// are filtered by `config.source` so MLP_U and MLP_C see only their own
/// evidence. Users with no observed candidate fall back to the
/// `fallback_top_cities` most populous locations (by total candidate
/// frequency over labeled users). With `config.use_candidacy == false`
/// every location is a candidate (the ablation the paper argues against on
/// efficiency grounds).
std::vector<UserPrior> BuildPriors(const ModelInput& input,
                                   const MlpConfig& config);

}  // namespace core
}  // namespace mlp

#endif  // MLP_CORE_PRIORS_H_
