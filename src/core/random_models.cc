#include "core/random_models.h"

namespace mlp {
namespace core {

RandomModels RandomModels::Learn(const graph::SocialGraph& graph) {
  RandomModels models;
  double n = static_cast<double>(graph.num_users());
  if (n > 0.0) {
    models.following_prob = static_cast<double>(graph.num_following()) /
                            (n * n);
  }
  models.venue_prob.assign(graph.num_venues(), 0.0);
  const double k = static_cast<double>(graph.num_tweeting());
  if (k > 0.0) {
    for (graph::EdgeId e = 0; e < graph.num_tweeting(); ++e) {
      models.venue_prob[graph.tweeting(e).venue] += 1.0;
    }
    for (double& p : models.venue_prob) p /= k;
  }
  return models;
}

}  // namespace core
}  // namespace mlp
