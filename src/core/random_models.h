#ifndef MLP_CORE_RANDOM_MODELS_H_
#define MLP_CORE_RANDOM_MODELS_H_

#include <vector>

#include "graph/social_graph.h"

namespace mlp {
namespace core {

/// The empirical random ("noise") generative models of Sec. 4.2, learned
/// from the observations exactly as the paper specifies:
///   F_R: p(f⟨i,j⟩ = 1) = S / N²
///   T_R: p(t⟨i,j⟩ to venue v) = count(v) / K
struct RandomModels {
  double following_prob = 0.0;          // F_R
  std::vector<double> venue_prob;       // T_R, indexed by venue id

  static RandomModels Learn(const graph::SocialGraph& graph);
};

}  // namespace core
}  // namespace mlp

#endif  // MLP_CORE_RANDOM_MODELS_H_
