#include "core/sampler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "obs/fit_profile.h"
#include "obs/trace.h"

namespace mlp {
namespace core {

namespace {
constexpr int kEdgeDistanceBuckets = 4000;  // 1-mile buckets, CONUS scale

// Independence-MH rounds per assignment draw in the fast kernels. Each
// round is one O(1) alias proposal + one acceptance test; with proposals
// one sync epoch stale, 3 rounds keep per-sweep movement statistically
// indistinguishable from the exact blocked draw on the bench worlds
// (Table-2 accuracy tracked within ±1% by BENCH_parallel's accuracy keys,
// and ingest-vs-refit within ±1% by BENCH_streaming's).
constexpr int kMhRounds = 3;
}

GibbsSampler::GibbsSampler(const ModelInput* input, const MlpConfig* config,
                           const CandidateSpace* space,
                           const RandomModels* random_models,
                           const PowTable* pow_table)
    : input_(input),
      config_(config),
      space_(space),
      random_models_(random_models),
      pow_table_(pow_table) {
  MLP_CHECK(input_ != nullptr && config_ != nullptr && space_ != nullptr);
  MLP_CHECK(random_models_ != nullptr && pow_table_ != nullptr);
  MLP_CHECK(space_->num_users() == input_->num_users());
}

double GibbsSampler::VenueProb(geo::CityId location, graph::VenueId venue,
                               const SuffStatsArena& stats) const {
  const double delta = config_->delta;
  const double v_total = static_cast<double>(input_->num_venues());
  return (stats.venue_row(location)[venue] + delta) /
         (stats.venue_counts_total[location] + delta * v_total);
}

int GibbsSampler::SampleCandidate(const double* weights, int count,
                                  Pcg32* rng) const {
  double total = 0.0;
  for (int i = 0; i < count; ++i) total += weights[i];
  if (total <= 0.0) {
    // All weights underflowed; fall back to uniform.
    return static_cast<int>(rng->UniformU32(static_cast<uint32_t>(count)));
  }
  double target = rng->NextDouble() * total;
  double acc = 0.0;
  for (int i = 0; i < count; ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return count - 1;
}

void GibbsSampler::PrepareBuffers() {
  const graph::SocialGraph& graph = *input_->graph;
  stats_.Reset(&space_->layout());
  if (UseFollowing()) {
    const int s_total = graph.num_following();
    edge_both_labeled_.assign(s_total, 0);
    for (graph::EdgeId s = 0; s < s_total; ++s) {
      const graph::FollowingEdge& edge = graph.following(s);
      edge_both_labeled_[s] =
          input_->IsLabeled(edge.follower) && input_->IsLabeled(edge.friend_user)
              ? 1
              : 0;
    }
  } else {
    edge_both_labeled_.clear();
  }
}

void GibbsSampler::Initialize(Pcg32* rng) {
  const graph::SocialGraph& graph = *input_->graph;
  PrepareBuffers();

  // Seed assignments from the priors (supervised users start mostly at
  // their observed home because of the γ boost), all location-based.
  auto draw_from_prior = [&](graph::UserId u) -> int {
    const CandidateView& view = space_->view(u);
    return SampleCandidate(view.gamma, view.count, rng);
  };

  if (UseFollowing()) {
    const int s_total = graph.num_following();
    mu_.assign(s_total, 0);
    x_idx_.assign(s_total, 0);
    y_idx_.assign(s_total, 0);
    for (graph::EdgeId s = 0; s < s_total; ++s) {
      const graph::FollowingEdge& edge = graph.following(s);
      x_idx_[s] = draw_from_prior(edge.follower);
      y_idx_[s] = draw_from_prior(edge.friend_user);
      stats_.phi_row(edge.follower)[x_idx_[s]] += 1.0;
      stats_.phi_total[edge.follower] += 1.0;
      stats_.phi_row(edge.friend_user)[y_idx_[s]] += 1.0;
      stats_.phi_total[edge.friend_user] += 1.0;
    }
  }
  if (UseTweeting()) {
    const int k_total = graph.num_tweeting();
    nu_.assign(k_total, 0);
    z_idx_.assign(k_total, 0);
    for (graph::EdgeId k = 0; k < k_total; ++k) {
      const graph::TweetingEdge& edge = graph.tweeting(k);
      z_idx_[k] = draw_from_prior(edge.user);
      geo::CityId z = space_->view(edge.user).candidates[z_idx_[k]];
      stats_.phi_row(edge.user)[z_idx_[k]] += 1.0;
      stats_.phi_total[edge.user] += 1.0;
      stats_.venue_row(z)[edge.venue] += 1.0;
      stats_.venue_counts_total[z] += 1.0;
    }
  }

  ResetAccumulators();
  last_homes_ = CurrentHomes();
  home_change_per_sweep_.clear();
}

void GibbsSampler::SampleFollowingEdge(graph::EdgeId s, SuffStatsArena* stats,
                                       GibbsScratch* scratch, Pcg32* rng) {
  const graph::FollowingEdge& edge = input_->graph->following(s);
  const graph::UserId i = edge.follower;
  const graph::UserId j = edge.friend_user;
  const CandidateView& prior_i = space_->view(i);
  const CandidateView& prior_j = space_->view(j);
  const int ni = prior_i.size();
  const int nj = prior_j.size();
  double* phi_i = stats->phi_row(i);
  double* phi_j = stats->phi_row(j);

  // --- remove this relationship's contribution ---
  if (mu_[s] == 0) {
    phi_i[x_idx_[s]] -= 1.0;
    stats->phi_total[i] -= 1.0;
    phi_j[y_idx_[s]] -= 1.0;
    stats->phi_total[j] -= 1.0;
  }

  // Blocked update for (μ_s, x_s, y_s): the μ branch weights marginalize
  // the location model over ALL candidate pairs, which is the collapsed
  // probability of generating the edge from locations (Eqs. 4–5); the
  // conditional form printed in the paper has the same stationary
  // distribution but mixes poorly (the location branch is penalized by the
  // current pair's prior mass while the random branch carries no matching
  // factor). See DESIGN.md.
  //
  // The collapsed P(x = l | rest) weight is (ϕ_{i,l} + γ_{i,l}) up to the
  // constant denominator (ϕ_i + Σγ), which cancels inside a categorical
  // draw but is needed for the μ update — divided out below.
  scratch->a.resize(ni);
  for (int l = 0; l < ni; ++l) scratch->a[l] = phi_i[l] + prior_i.gamma[l];
  scratch->b.resize(nj);
  for (int l = 0; l < nj; ++l) scratch->b[l] = phi_j[l] + prior_j.gamma[l];

  // row[l1] = Σ_{l2} θ̃_j(l2) · d(c_i[l1], c_j[l2])^α.
  scratch->row.assign(ni, 0.0);
  for (int l1 = 0; l1 < ni; ++l1) {
    geo::CityId c1 = prior_i.candidates[l1];
    double acc = 0.0;
    for (int l2 = 0; l2 < nj; ++l2) {
      acc += scratch->b[l2] * pow_table_->Get(c1, prior_j.candidates[l2]);
    }
    scratch->row[l1] = acc;
  }

  // --- sample μ_s ---
  if (config_->model_noise && config_->rho_f > 0.0) {
    double pair_mass = 0.0;  // Σ θ̃_i(l1)·row[l1] = (Σθθd^α)·A_i·A_j
    for (int l1 = 0; l1 < ni; ++l1) {
      pair_mass += scratch->a[l1] * scratch->row[l1];
    }
    double norm = (stats->phi_total[i] + prior_i.gamma_sum) *
                  (stats->phi_total[j] + prior_j.gamma_sum);
    double w_random = config_->rho_f * random_models_->following_prob;
    double w_location =
        (1.0 - config_->rho_f) * config_->beta * pair_mass / norm;
    double denom = w_random + w_location;
    mu_[s] = (denom > 0.0 && rng->Bernoulli(w_random / denom)) ? 1 : 0;
  } else {
    mu_[s] = 0;
  }

  // --- sample (x_s, y_s) ---
  if (mu_[s] == 0) {
    // Joint draw from the grid: x ∝ θ̃_i(l1)·row[l1], then y | x.
    scratch->w.resize(ni);
    for (int l1 = 0; l1 < ni; ++l1) {
      scratch->w[l1] = scratch->a[l1] * scratch->row[l1];
    }
    x_idx_[s] = SampleCandidate(scratch->w.data(), ni, rng);
    geo::CityId cx = prior_i.candidates[x_idx_[s]];
    scratch->w.resize(nj);
    for (int l2 = 0; l2 < nj; ++l2) {
      scratch->w[l2] =
          scratch->b[l2] * pow_table_->Get(cx, prior_j.candidates[l2]);
    }
    y_idx_[s] = SampleCandidate(scratch->w.data(), nj, rng);
    phi_i[x_idx_[s]] += 1.0;
    stats->phi_total[i] += 1.0;
    phi_j[y_idx_[s]] += 1.0;
    stats->phi_total[j] += 1.0;
  } else {
    // Noise branch: assignments stay latent, drawn from the count-prior
    // posterior alone (distance term inactive — Eqs. 7–8 with μ=1).
    x_idx_[s] = SampleCandidate(scratch->a.data(), ni, rng);
    y_idx_[s] = SampleCandidate(scratch->b.data(), nj, rng);
  }
}

void GibbsSampler::SampleTweetingEdge(graph::EdgeId k, SuffStatsArena* stats,
                                      GibbsScratch* scratch, Pcg32* rng) {
  const graph::TweetingEdge& edge = input_->graph->tweeting(k);
  const graph::UserId i = edge.user;
  const graph::VenueId v = edge.venue;
  const CandidateView& prior_i = space_->view(i);
  double* phi_i = stats->phi_row(i);

  // --- remove ---
  if (nu_[k] == 0) {
    geo::CityId z = prior_i.candidates[z_idx_[k]];
    phi_i[z_idx_[k]] -= 1.0;
    stats->phi_total[i] -= 1.0;
    stats->venue_row(z)[v] -= 1.0;
    stats->venue_counts_total[z] -= 1.0;
  }

  const int ni = prior_i.size();
  scratch->a.resize(ni);
  for (int l = 0; l < ni; ++l) scratch->a[l] = phi_i[l] + prior_i.gamma[l];
  // Location-branch weights per candidate: θ̃_i(l)·ψ_l(v).
  scratch->w.resize(ni);
  for (int l = 0; l < ni; ++l) {
    scratch->w[l] =
        scratch->a[l] * VenueProb(prior_i.candidates[l], v, *stats);
  }

  // --- sample ν_k (blocked over z, mirroring the following update) ---
  if (config_->model_noise && config_->rho_t > 0.0) {
    double mass = 0.0;
    for (int l = 0; l < ni; ++l) mass += scratch->w[l];
    double norm = stats->phi_total[i] + prior_i.gamma_sum;
    double w_random = config_->rho_t * random_models_->venue_prob[v];
    double w_location = (1.0 - config_->rho_t) * mass / norm;
    double denom = w_random + w_location;
    nu_[k] = (denom > 0.0 && rng->Bernoulli(w_random / denom)) ? 1 : 0;
  } else {
    nu_[k] = 0;
  }

  // --- sample z_{k,i} (Eq. 9) ---
  if (nu_[k] == 0) {
    z_idx_[k] = SampleCandidate(scratch->w.data(), ni, rng);
    geo::CityId z = prior_i.candidates[z_idx_[k]];
    phi_i[z_idx_[k]] += 1.0;
    stats->phi_total[i] += 1.0;
    stats->venue_row(z)[v] += 1.0;
    stats->venue_counts_total[z] += 1.0;
  } else {
    z_idx_[k] = SampleCandidate(scratch->a.data(), ni, rng);
  }
}

int GibbsSampler::MhResampleSlot(graph::UserId u, const CandidateView& view,
                                 const double* phi_u, int cur,
                                 geo::CityId anchor,
                                 const ProposalTables& proposals,
                                 Pcg32* rng, GibbsScratch* scratch) const {
  const int n = view.count;
  if (n <= 1) return 0;
  auto target = [&](int l) {
    double t = phi_u[l] + view.gamma[l];
    if (t < 0.0) t = 0.0;  // deferred-sync transient; see engine README
    if (anchor != geo::kInvalidCity) {
      t *= pow_table_->Get(view.candidates[l], anchor);
    }
    return t;
  };
  double t_cur = target(cur);
  for (int round = 0; round < kMhRounds; ++round) {
    const int prop = proposals.Sample(u, rng);
    if (prop == cur) continue;
    const double t_prop = target(prop);
    const double num = t_prop * proposals.Weight(u, cur);
    const double den = t_cur * proposals.Weight(u, prop);
    // Accept with min(1, num/den); a zero-mass current state always moves
    // to any positive-mass proposal.
    const bool accept =
        den > 0.0 ? rng->NextDouble() * den < num : num > 0.0;
    // Mixing tallies (plain ints, no RNG impact): acceptance rate per
    // sweep is a fit-health gauge on /metricsz.
    if (scratch != nullptr) {
      ++scratch->mh_proposed;
      scratch->mh_accepted += accept ? 1 : 0;
    }
    if (accept) {
      cur = prop;
      t_cur = t_prop;
    }
  }
  return cur;
}

int GibbsSampler::MhResampleSlotVenue(graph::UserId u,
                                      const CandidateView& view,
                                      const double* phi_u, int cur,
                                      graph::VenueId v,
                                      const SuffStatsArena& stats,
                                      const ProposalTables& proposals,
                                      Pcg32* rng,
                                      GibbsScratch* scratch) const {
  const int n = view.count;
  if (n <= 1) return 0;
  auto target = [&](int l) {
    double t = phi_u[l] + view.gamma[l];
    if (t < 0.0) t = 0.0;
    return t * VenueProb(view.candidates[l], v, stats);
  };
  double t_cur = target(cur);
  for (int round = 0; round < kMhRounds; ++round) {
    const int prop = proposals.Sample(u, rng);
    if (prop == cur) continue;
    const double t_prop = target(prop);
    const double num = t_prop * proposals.Weight(u, cur);
    const double den = t_cur * proposals.Weight(u, prop);
    const bool accept =
        den > 0.0 ? rng->NextDouble() * den < num : num > 0.0;
    if (scratch != nullptr) {
      ++scratch->mh_proposed;
      scratch->mh_accepted += accept ? 1 : 0;
    }
    if (accept) {
      cur = prop;
      t_cur = t_prop;
    }
  }
  return cur;
}

void GibbsSampler::SampleFollowingEdgeFast(graph::EdgeId s,
                                           SuffStatsArena* stats,
                                           GibbsScratch* scratch, Pcg32* rng,
                                           const ProposalTables& proposals) {
  const graph::FollowingEdge& edge = input_->graph->following(s);
  const graph::UserId i = edge.follower;
  const graph::UserId j = edge.friend_user;
  const CandidateView& prior_i = space_->view(i);
  const CandidateView& prior_j = space_->view(j);
  double* phi_i = stats->phi_row(i);
  double* phi_j = stats->phi_row(j);

  // --- remove this relationship's contribution ---
  if (mu_[s] == 0) {
    phi_i[x_idx_[s]] -= 1.0;
    stats->phi_total[i] -= 1.0;
    phi_j[y_idx_[s]] -= 1.0;
    stats->phi_total[j] -= 1.0;
  }

  // --- μ | x, y: O(1) ---
  // With latent assignments treated as auxiliary draws from θ̃ (matching
  // the blocked kernel's noise branch), every θ̃ factor cancels between
  // the branches and only the edge-generation terms remain.
  geo::CityId cx = prior_i.candidates[x_idx_[s]];
  geo::CityId cy = prior_j.candidates[y_idx_[s]];
  if (config_->model_noise && config_->rho_f > 0.0) {
    const double w_random = config_->rho_f * random_models_->following_prob;
    const double w_location =
        (1.0 - config_->rho_f) * config_->beta * pow_table_->Get(cx, cy);
    const double denom = w_random + w_location;
    mu_[s] = (denom > 0.0 && rng->Bernoulli(w_random / denom)) ? 1 : 0;
  } else {
    mu_[s] = 0;
  }

  // --- x | μ, y then y | μ, x via alias-MH rounds ---
  const bool located = mu_[s] == 0;
  x_idx_[s] = MhResampleSlot(i, prior_i, phi_i, x_idx_[s],
                             located ? cy : geo::kInvalidCity, proposals, rng,
                             scratch);
  cx = prior_i.candidates[x_idx_[s]];
  y_idx_[s] = MhResampleSlot(j, prior_j, phi_j, y_idx_[s],
                             located ? cx : geo::kInvalidCity, proposals, rng,
                             scratch);

  if (located) {
    phi_i[x_idx_[s]] += 1.0;
    stats->phi_total[i] += 1.0;
    phi_j[y_idx_[s]] += 1.0;
    stats->phi_total[j] += 1.0;
  }
}

void GibbsSampler::SampleTweetingEdgeFast(graph::EdgeId k,
                                          SuffStatsArena* stats,
                                          GibbsScratch* scratch, Pcg32* rng,
                                          const ProposalTables& proposals) {
  const graph::TweetingEdge& edge = input_->graph->tweeting(k);
  const graph::UserId i = edge.user;
  const graph::VenueId v = edge.venue;
  const CandidateView& prior_i = space_->view(i);
  const int64_t num_venues = space_->layout().num_venues;
  double* phi_i = stats->phi_row(i);

  // --- remove ---
  if (nu_[k] == 0) {
    const geo::CityId z = prior_i.candidates[z_idx_[k]];
    phi_i[z_idx_[k]] -= 1.0;
    stats->phi_total[i] -= 1.0;
    stats->venue_row(z)[v] -= 1.0;
    stats->venue_counts_total[z] -= 1.0;
    scratch->venue_cells.push_back(static_cast<int64_t>(z) * num_venues + v);
  }

  // --- ν | z: O(1), same auxiliary-variable cancellation as μ ---
  const geo::CityId cz = prior_i.candidates[z_idx_[k]];
  if (config_->model_noise && config_->rho_t > 0.0) {
    const double w_random = config_->rho_t * random_models_->venue_prob[v];
    const double w_location =
        (1.0 - config_->rho_t) * VenueProb(cz, v, *stats);
    const double denom = w_random + w_location;
    nu_[k] = (denom > 0.0 && rng->Bernoulli(w_random / denom)) ? 1 : 0;
  } else {
    nu_[k] = 0;
  }

  // --- z | ν via alias-MH rounds ---
  if (nu_[k] == 0) {
    z_idx_[k] = MhResampleSlotVenue(i, prior_i, phi_i, z_idx_[k], v, *stats,
                                    proposals, rng, scratch);
    const geo::CityId z = prior_i.candidates[z_idx_[k]];
    phi_i[z_idx_[k]] += 1.0;
    stats->phi_total[i] += 1.0;
    stats->venue_row(z)[v] += 1.0;
    stats->venue_counts_total[z] += 1.0;
    scratch->venue_cells.push_back(static_cast<int64_t>(z) * num_venues + v);
  } else {
    z_idx_[k] = MhResampleSlot(i, prior_i, phi_i, z_idx_[k],
                               geo::kInvalidCity, proposals, rng, scratch);
  }
}

void GibbsSampler::RunSweep(Pcg32* rng) {
  if (UseFollowing()) {
    obs::ScopedSpan span(
        obs::Registry::Global().GetCounter(obs::kFitSeqFollowingNs),
        "seq_following");
    for (graph::EdgeId s = 0; s < input_->graph->num_following(); ++s) {
      SampleFollowingEdge(s, &stats_, &scratch_, rng);
    }
  }
  if (UseTweeting()) {
    obs::ScopedSpan span(
        obs::Registry::Global().GetCounter(obs::kFitSeqTweetingNs),
        "seq_tweeting");
    for (graph::EdgeId k = 0; k < input_->graph->num_tweeting(); ++k) {
      SampleTweetingEdge(k, &stats_, &scratch_, rng);
    }
  }
  RecordSweepTrace();
}

void GibbsSampler::RecordSweepTrace() {
  // Main-thread and O(users × candidates) per sweep — timed under its own
  // counter because it competes with the parallel engine's merge barrier.
  static obs::Counter* const trace_ns =
      obs::Registry::Global().GetCounter(obs::kFitTraceRecordNs);
  obs::ScopedSpan span(trace_ns, "sweep_trace_record");
  // Convergence trace: fraction of users whose current home flipped.
  std::vector<geo::CityId> homes = CurrentHomes();
  int changed = 0;
  for (size_t u = 0; u < homes.size(); ++u) {
    if (homes[u] != last_homes_[u]) ++changed;
  }
  const double flip_rate =
      homes.empty() ? 0.0
                    : static_cast<double>(changed) /
                          static_cast<double>(homes.size());
  home_change_per_sweep_.push_back(flip_rate);
  last_homes_ = std::move(homes);
  // Fit-health gauges (ISSUE 9): last-sweep home flip rate (ppm, so the
  // integer gauge keeps 6 digits of precision) and live candidate-space
  // occupancy — visible on /metricsz while a fit or ingest-refit runs.
  if (obs::Enabled()) {
    static obs::Gauge* const flip_ppm =
        obs::Registry::Global().GetGauge(obs::kFitHomeFlipPpm);
    static obs::Gauge* const active_slots =
        obs::Registry::Global().GetGauge(obs::kFitActiveCandidateSlots);
    flip_ppm->Set(static_cast<int64_t>(flip_rate * 1e6));
    active_slots->Set(space_->active_size());
  }
}

int64_t GibbsSampler::AccountedBytes() const {
  auto ragged_bytes = [](const std::vector<std::vector<float>>& rows) {
    int64_t total = VectorBytes(rows);
    for (const auto& row : rows) total += VectorBytes(row);
    return total;
  };
  return VectorBytes(mu_) + VectorBytes(x_idx_) + VectorBytes(y_idx_) +
         VectorBytes(nu_) + VectorBytes(z_idx_) + stats_.AccountedBytes() +
         VectorBytes(acc_phi_) + ragged_bytes(acc_x_) + ragged_bytes(acc_y_) +
         VectorBytes(acc_mu_) + ragged_bytes(acc_z_) + VectorBytes(acc_nu_) +
         VectorBytes(acc_edge_distance_) + VectorBytes(edge_both_labeled_) +
         VectorBytes(last_homes_) + VectorBytes(home_change_per_sweep_);
}

void GibbsSampler::ResetAccumulators() {
  accumulated_samples_ = 0;
  acc_phi_.assign(space_->layout().phi_size(), 0.0);
  acc_x_.assign(x_idx_.size(), {});
  acc_y_.assign(y_idx_.size(), {});
  acc_mu_.assign(mu_.size(), 0.0);
  acc_z_.assign(z_idx_.size(), {});
  acc_nu_.assign(nu_.size(), 0.0);
  acc_edge_distance_.assign(kEdgeDistanceBuckets, 0.0);
}

void GibbsSampler::AccumulateSample() {
  ++accumulated_samples_;
  // Both buffers share the arena layout: one flat fused pass.
  const double* phi = stats_.phi.data();
  double* acc = acc_phi_.data();
  const int64_t n = space_->layout().phi_size();
  for (int64_t idx = 0; idx < n; ++idx) acc[idx] += phi[idx];

  const graph::SocialGraph& graph = *input_->graph;
  for (size_t s = 0; s < mu_.size(); ++s) {
    const graph::FollowingEdge& edge =
        graph.following(static_cast<graph::EdgeId>(s));
    if (acc_x_[s].empty()) {
      acc_x_[s].assign(space_->view(edge.follower).size(), 0.0f);
      acc_y_[s].assign(space_->view(edge.friend_user).size(), 0.0f);
    }
    acc_x_[s][x_idx_[s]] += 1.0f;
    acc_y_[s][y_idx_[s]] += 1.0f;
    acc_mu_[s] += mu_[s];
    if (mu_[s] == 0 && edge_both_labeled_[s]) {
      geo::CityId cx = space_->view(edge.follower).candidates[x_idx_[s]];
      geo::CityId cy = space_->view(edge.friend_user).candidates[y_idx_[s]];
      double d = input_->distances->miles(cx, cy);
      int bucket = static_cast<int>(d);
      if (bucket >= 0 && bucket < kEdgeDistanceBuckets) {
        acc_edge_distance_[bucket] += 1.0;
      }
    }
  }
  for (size_t k = 0; k < nu_.size(); ++k) {
    const graph::TweetingEdge& edge =
        graph.tweeting(static_cast<graph::EdgeId>(k));
    if (acc_z_[k].empty()) {
      acc_z_[k].assign(space_->view(edge.user).size(), 0.0f);
    }
    acc_z_[k][z_idx_[k]] += 1.0f;
    acc_nu_[k] += nu_[k];
  }
}

std::vector<geo::CityId> GibbsSampler::CurrentHomes() const {
  std::vector<geo::CityId> homes(input_->num_users(), geo::kInvalidCity);
  for (graph::UserId u = 0; u < input_->num_users(); ++u) {
    const CandidateView& prior = space_->view(u);
    const double* phi_u = stats_.phi_row(u);
    double best = -1.0;
    for (int l = 0; l < prior.size(); ++l) {
      double w = phi_u[l] + prior.gamma[l];
      if (w > best) {
        best = w;
        homes[u] = prior.candidates[l];
      }
    }
  }
  return homes;
}

std::vector<double> GibbsSampler::AssignmentDistanceHistogram(
    int num_buckets) const {
  std::vector<double> hist(num_buckets, 0.0);
  if (accumulated_samples_ == 0) return hist;
  double scale = 1.0 / static_cast<double>(accumulated_samples_);
  int n = std::min(num_buckets, kEdgeDistanceBuckets);
  for (int b = 0; b < n; ++b) {
    hist[b] = acc_edge_distance_[b] * scale;
  }
  return hist;
}

MlpResult GibbsSampler::BuildResult() const {
  MlpResult result;
  const int num_users = input_->num_users();
  const double samples =
      accumulated_samples_ > 0 ? static_cast<double>(accumulated_samples_)
                               : 1.0;

  result.profiles.reserve(num_users);
  result.home.resize(num_users);
  for (graph::UserId u = 0; u < num_users; ++u) {
    const CandidateView& prior = space_->view(u);
    const double* phi_u = stats_.phi_row(u);
    const double* acc_u = acc_phi_.data() + space_->layout().phi_offset[u];
    std::vector<std::pair<geo::CityId, double>> entries;
    entries.reserve(prior.size());
    double denom = 0.0;
    for (int l = 0; l < prior.size(); ++l) {
      double phi_avg =
          accumulated_samples_ > 0 ? acc_u[l] / samples : phi_u[l];
      denom += phi_avg + prior.gamma[l];
    }
    for (int l = 0; l < prior.size(); ++l) {
      double phi_avg =
          accumulated_samples_ > 0 ? acc_u[l] / samples : phi_u[l];
      // Eq. 10: p(l|θ_i) = (ϕ_{i,l} + γ_{i,l}) / (ϕ_i + Σ_l γ_{i,l}).
      entries.emplace_back(prior.candidates[l],
                           (phi_avg + prior.gamma[l]) / denom);
    }
    LocationProfile profile(std::move(entries));
    result.home[u] = profile.Home();
    result.profiles.push_back(std::move(profile));
  }

  const graph::SocialGraph& graph = *input_->graph;
  result.following.resize(mu_.size());
  for (size_t s = 0; s < mu_.size(); ++s) {
    const graph::FollowingEdge& edge =
        graph.following(static_cast<graph::EdgeId>(s));
    FollowingExplanation& ex = result.following[s];
    const CandidateView& prior_i = space_->view(edge.follower);
    const CandidateView& prior_j = space_->view(edge.friend_user);
    if (accumulated_samples_ > 0 && !acc_x_[s].empty()) {
      int bx = static_cast<int>(std::max_element(acc_x_[s].begin(),
                                                 acc_x_[s].end()) -
                                acc_x_[s].begin());
      int by = static_cast<int>(std::max_element(acc_y_[s].begin(),
                                                 acc_y_[s].end()) -
                                acc_y_[s].begin());
      ex.x = prior_i.candidates[bx];
      ex.y = prior_j.candidates[by];
      ex.noise_prob = acc_mu_[s] / samples;
    } else {
      ex.x = prior_i.candidates[x_idx_[s]];
      ex.y = prior_j.candidates[y_idx_[s]];
      ex.noise_prob = mu_[s];
    }
  }

  result.tweeting.resize(nu_.size());
  for (size_t k = 0; k < nu_.size(); ++k) {
    const graph::TweetingEdge& edge =
        graph.tweeting(static_cast<graph::EdgeId>(k));
    TweetExplanation& ex = result.tweeting[k];
    const CandidateView& prior_i = space_->view(edge.user);
    if (accumulated_samples_ > 0 && !acc_z_[k].empty()) {
      int bz = static_cast<int>(std::max_element(acc_z_[k].begin(),
                                                 acc_z_[k].end()) -
                                acc_z_[k].begin());
      ex.z = prior_i.candidates[bz];
      ex.noise_prob = acc_nu_[k] / samples;
    } else {
      ex.z = prior_i.candidates[z_idx_[k]];
      ex.noise_prob = nu_[k];
    }
  }

  result.alpha = pow_table_->alpha();
  result.beta = config_->beta;
  result.home_change_per_sweep = home_change_per_sweep_;
  return result;
}

void GibbsSampler::ApplyCompaction(const CompactionPlan& plan) {
  const SuffStatsLayout& layout = space_->layout();  // already compacted
  const int num_users = input_->num_users();
  MLP_CHECK(static_cast<int>(plan.old_offset.size()) == num_users + 1);
  MLP_CHECK(plan.remap.size() == stats_.phi.size());

  // Move ϕ into the compacted layout. Pruned slots are guaranteed empty by
  // CandidateSpace::PruneStep, so no mass is lost and phi_total stands.
  std::vector<double> new_phi(layout.phi_size(), 0.0);
  for (graph::UserId u = 0; u < num_users; ++u) {
    const int64_t old_off = plan.old_offset[u];
    const int old_n = static_cast<int>(plan.old_offset[u + 1] - old_off);
    const int64_t new_off = layout.phi_offset[u];
    for (int l = 0; l < old_n; ++l) {
      const int32_t nl = plan.remap[old_off + l];
      if (nl >= 0) {
        new_phi[new_off + nl] = stats_.phi[old_off + l];
      } else {
        MLP_CHECK(stats_.phi[old_off + l] == 0.0);
      }
    }
  }
  stats_.phi = std::move(new_phi);
  // phi_total and the venue buffers are slot-independent: untouched.

  // Latent (noise-flagged) assignments may reference a pruned slot; they
  // carry no counts, so redirect them to the user's best surviving slot.
  // Deterministic: argmax of (ϕ+γ) over the new row, lowest slot on ties.
  std::vector<int32_t> fallback(num_users, -1);
  auto fallback_slot = [&](graph::UserId u) -> int32_t {
    if (fallback[u] >= 0) return fallback[u];
    const CandidateView& view = space_->view(u);
    const double* phi_u = stats_.phi_row(u);
    int best_l = 0;
    double best = -1.0;
    for (int l = 0; l < view.size(); ++l) {
      const double w = phi_u[l] + view.gamma[l];
      if (w > best) {
        best = w;
        best_l = l;
      }
    }
    fallback[u] = best_l;
    return best_l;
  };
  auto remap_idx = [&](graph::UserId u, int32_t old_local) -> int32_t {
    const int32_t nl = plan.remap[plan.old_offset[u] + old_local];
    return nl >= 0 ? nl : fallback_slot(u);
  };

  const graph::SocialGraph& graph = *input_->graph;
  for (size_t s = 0; s < mu_.size(); ++s) {
    const graph::FollowingEdge& edge =
        graph.following(static_cast<graph::EdgeId>(s));
    x_idx_[s] = remap_idx(edge.follower, x_idx_[s]);
    y_idx_[s] = remap_idx(edge.friend_user, y_idx_[s]);
  }
  for (size_t k = 0; k < nu_.size(); ++k) {
    const graph::TweetingEdge& edge =
        graph.tweeting(static_cast<graph::EdgeId>(k));
    z_idx_[k] = remap_idx(edge.user, z_idx_[k]);
  }

  // The averaged posterior must be over one fixed support: compaction
  // happens at burn-in barriers, and any partially filled accumulators
  // (possible only for a Gibbs-EM round already consumed by the M-step)
  // are re-zeroed onto the new layout.
  ResetAccumulators();
}

void GibbsSampler::SaveState(SamplerState* state) const {
  state->mu = mu_;
  state->x_idx = x_idx_;
  state->y_idx = y_idx_;
  state->nu = nu_;
  state->z_idx = z_idx_;
  state->phi = stats_.phi;
  state->phi_total = stats_.phi_total;
  state->venue_counts = stats_.venue_counts;
  state->venue_counts_total = stats_.venue_counts_total;
  state->accumulated_samples = accumulated_samples_;
  state->acc_phi = acc_phi_;
  state->acc_x = acc_x_;
  state->acc_y = acc_y_;
  state->acc_mu = acc_mu_;
  state->acc_z = acc_z_;
  state->acc_nu = acc_nu_;
  state->acc_edge_distance = acc_edge_distance_;
  state->last_homes = last_homes_;
  state->home_change_per_sweep = home_change_per_sweep_;
}

Status GibbsSampler::RestoreState(const SamplerState& state) {
  const graph::SocialGraph& graph = *input_->graph;
  const size_t s_total = UseFollowing() ? graph.num_following() : 0;
  const size_t k_total = UseTweeting() ? graph.num_tweeting() : 0;

  // Validate against the space's active layout before mutating anything —
  // the caller restores the space's activation state first, so this is the
  // exact layout the saved arena was laid out over.
  const SuffStatsLayout& layout = space_->layout();
  if (state.mu.size() != s_total || state.x_idx.size() != s_total ||
      state.y_idx.size() != s_total || state.nu.size() != k_total ||
      state.z_idx.size() != k_total) {
    return Status::InvalidArgument(
        "sampler state does not match the graph's relationship counts");
  }
  if (static_cast<int64_t>(state.phi.size()) != layout.phi_size() ||
      state.phi_total.size() != static_cast<size_t>(layout.num_users) ||
      static_cast<int64_t>(state.venue_counts.size()) != layout.venue_size() ||
      state.venue_counts_total.size() !=
          static_cast<size_t>(layout.num_venues > 0 ? layout.num_locations
                                                    : 0)) {
    return Status::InvalidArgument(
        "sampler state does not match the candidate space's active layout");
  }
  if (state.acc_edge_distance.size() !=
      static_cast<size_t>(kEdgeDistanceBuckets)) {
    return Status::InvalidArgument("sampler state histogram malformed");
  }
  if (state.acc_phi.size() != state.phi.size() ||
      state.acc_x.size() != s_total || state.acc_y.size() != s_total ||
      state.acc_mu.size() != s_total || state.acc_z.size() != k_total ||
      state.acc_nu.size() != k_total ||
      state.last_homes.size() != static_cast<size_t>(layout.num_users)) {
    return Status::InvalidArgument("sampler state accumulators malformed");
  }
  for (size_t s = 0; s < s_total; ++s) {
    const graph::FollowingEdge& edge =
        graph.following(static_cast<graph::EdgeId>(s));
    if (state.x_idx[s] < 0 ||
        state.x_idx[s] >= space_->view(edge.follower).size() ||
        state.y_idx[s] < 0 ||
        state.y_idx[s] >= space_->view(edge.friend_user).size()) {
      return Status::InvalidArgument("assignment index out of candidate range");
    }
  }
  for (size_t k = 0; k < k_total; ++k) {
    const graph::TweetingEdge& edge =
        graph.tweeting(static_cast<graph::EdgeId>(k));
    if (state.z_idx[k] < 0 ||
        state.z_idx[k] >= space_->view(edge.user).size()) {
      return Status::InvalidArgument("assignment index out of candidate range");
    }
  }

  PrepareBuffers();
  mu_ = state.mu;
  x_idx_ = state.x_idx;
  y_idx_ = state.y_idx;
  nu_ = state.nu;
  z_idx_ = state.z_idx;
  stats_.phi = state.phi;
  stats_.phi_total = state.phi_total;
  stats_.venue_counts = state.venue_counts;
  stats_.venue_counts_total = state.venue_counts_total;
  accumulated_samples_ = state.accumulated_samples;
  acc_phi_ = state.acc_phi;
  acc_x_ = state.acc_x;
  acc_y_ = state.acc_y;
  acc_mu_ = state.acc_mu;
  acc_z_ = state.acc_z;
  acc_nu_ = state.acc_nu;
  acc_edge_distance_ = state.acc_edge_distance;
  last_homes_ = state.last_homes;
  home_change_per_sweep_ = state.home_change_per_sweep;
  return Status::OK();
}

Status GibbsSampler::AdoptMigratedChain(const MigratedChain& chain,
                                        Pcg32* rng) {
  const graph::SocialGraph& graph = *input_->graph;
  const size_t s_total = UseFollowing() ? graph.num_following() : 0;
  const size_t k_total = UseTweeting() ? graph.num_tweeting() : 0;
  const size_t s_old = chain.mu.size();
  const size_t k_old = chain.nu.size();

  if (chain.x_idx.size() != s_old || chain.y_idx.size() != s_old ||
      chain.z_idx.size() != k_old || s_old > s_total || k_old > k_total) {
    return Status::InvalidArgument(
        "migrated chain does not cover a prefix of the merged graph");
  }
  // Every carried assignment must be a valid slot of the merged space's
  // active row — the migration remapped (or redirected) them already, so a
  // violation here means the caller paired the chain with a foreign space.
  for (size_t s = 0; s < s_old; ++s) {
    const graph::FollowingEdge& edge =
        graph.following(static_cast<graph::EdgeId>(s));
    if (chain.x_idx[s] < 0 ||
        chain.x_idx[s] >= space_->view(edge.follower).size() ||
        chain.y_idx[s] < 0 ||
        chain.y_idx[s] >= space_->view(edge.friend_user).size()) {
      return Status::InvalidArgument(
          "migrated assignment index out of candidate range");
    }
  }
  for (size_t k = 0; k < k_old; ++k) {
    const graph::TweetingEdge& edge =
        graph.tweeting(static_cast<graph::EdgeId>(k));
    if (chain.z_idx[k] < 0 ||
        chain.z_idx[k] >= space_->view(edge.user).size()) {
      return Status::InvalidArgument(
          "migrated assignment index out of candidate range");
    }
  }

  PrepareBuffers();  // zeroes the arena onto the (merged) active layout

  auto draw_from_prior = [&](graph::UserId u) -> int {
    const CandidateView& view = space_->view(u);
    return SampleCandidate(view.gamma, view.count, rng);
  };

  if (UseFollowing()) {
    mu_ = chain.mu;
    x_idx_ = chain.x_idx;
    y_idx_ = chain.y_idx;
    mu_.resize(s_total, 0);
    x_idx_.resize(s_total, 0);
    y_idx_.resize(s_total, 0);
    // Appended edges start location-based from the priors, exactly like
    // Initialize — they land in touched shards, so the resample pass
    // re-draws them against the warm counts immediately.
    for (size_t s = s_old; s < s_total; ++s) {
      const graph::FollowingEdge& edge =
          graph.following(static_cast<graph::EdgeId>(s));
      x_idx_[s] = draw_from_prior(edge.follower);
      y_idx_[s] = draw_from_prior(edge.friend_user);
    }
    // Rebuild ϕ from the full chain. Counts are integer-valued doubles, so
    // users whose edges and assignments the delta left alone get rows bit-
    // identical to the base fit's arena.
    for (size_t s = 0; s < s_total; ++s) {
      if (mu_[s] != 0) continue;
      const graph::FollowingEdge& edge =
          graph.following(static_cast<graph::EdgeId>(s));
      stats_.phi_row(edge.follower)[x_idx_[s]] += 1.0;
      stats_.phi_total[edge.follower] += 1.0;
      stats_.phi_row(edge.friend_user)[y_idx_[s]] += 1.0;
      stats_.phi_total[edge.friend_user] += 1.0;
    }
  }
  if (UseTweeting()) {
    nu_ = chain.nu;
    z_idx_ = chain.z_idx;
    nu_.resize(k_total, 0);
    z_idx_.resize(k_total, 0);
    for (size_t k = k_old; k < k_total; ++k) {
      const graph::TweetingEdge& edge =
          graph.tweeting(static_cast<graph::EdgeId>(k));
      z_idx_[k] = draw_from_prior(edge.user);
    }
    for (size_t k = 0; k < k_total; ++k) {
      if (nu_[k] != 0) continue;
      const graph::TweetingEdge& edge =
          graph.tweeting(static_cast<graph::EdgeId>(k));
      geo::CityId z = space_->view(edge.user).candidates[z_idx_[k]];
      stats_.phi_row(edge.user)[z_idx_[k]] += 1.0;
      stats_.phi_total[edge.user] += 1.0;
      stats_.venue_row(z)[edge.venue] += 1.0;
      stats_.venue_counts_total[z] += 1.0;
    }
  }

  ResetAccumulators();
  last_homes_ = CurrentHomes();
  home_change_per_sweep_ = chain.home_change_per_sweep;
  return Status::OK();
}

}  // namespace core
}  // namespace mlp
