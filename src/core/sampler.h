#ifndef MLP_CORE_SAMPLER_H_
#define MLP_CORE_SAMPLER_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/candidate_space.h"
#include "core/input.h"
#include "core/location_profile.h"
#include "core/model_config.h"
#include "core/pow_table.h"
#include "core/random_models.h"
#include "core/suff_stats.h"

namespace mlp {
namespace core {

/// Estimated explanation of one following relationship: the posterior-mode
/// location assignments (x̂, ŷ) and the posterior probability that the
/// relationship is noise (μ=1).
struct FollowingExplanation {
  geo::CityId x = geo::kInvalidCity;
  geo::CityId y = geo::kInvalidCity;
  double noise_prob = 0.0;
};

/// Estimated explanation of one tweeting relationship.
struct TweetExplanation {
  geo::CityId z = geo::kInvalidCity;
  double noise_prob = 0.0;
};

/// Full inference output.
struct MlpResult {
  std::vector<LocationProfile> profiles;         // θ̂_i per user (Eq. 10)
  std::vector<geo::CityId> home;                 // argmax of θ̂_i
  std::vector<FollowingExplanation> following;   // per following edge
  std::vector<TweetExplanation> tweeting;        // per tweeting edge
  double alpha = 0.0;                            // final power-law exponent
  double beta = 0.0;
  /// Per-sweep fraction of users whose home estimate changed (the
  /// convergence trace behind Fig. 5). When the parallel engine runs with
  /// sync_every_sweeps = n > 1 there is one entry per merge barrier (every
  /// n sweeps), each aggregating that interval's movement.
  std::vector<double> home_change_per_sweep;
};

/// Reusable buffers for the per-edge sampling kernels. Each caller (the
/// sequential sweep, or one engine worker per shard) owns one, which makes
/// the kernels re-entrant without per-edge allocation — every categorical
/// draw samples straight out of these buffers (SampleCandidate takes a raw
/// span), so the hot path never constructs a weights vector.
struct GibbsScratch {
  std::vector<double> w;    // categorical weights under construction
  std::vector<double> a;    // θ̃ weights of the follower / tweeter
  std::vector<double> b;    // θ̃ weights of the friend
  std::vector<double> row;  // distance-marginalized row sums
  /// Flat venue_counts cells written by the FAST tweeting kernel since the
  /// caller last cleared it. The engine's sub-shard delta fold walks
  /// exactly this dirty set (plus the owned users' ϕ rows) instead of the
  /// whole location×venue rectangle.
  std::vector<int64_t> venue_cells;
  /// Alias-MH mixing tallies for this worker since the engine last folded
  /// them (ISSUE 9): proposals that differed from the current assignment,
  /// and how many of those were accepted. Plain ints — the owner is
  /// single-threaded; the engine folds them into fit_mh_*_total at the
  /// merge barrier.
  int64_t mh_proposed = 0;
  int64_t mh_accepted = 0;
};

/// The sampler's complete restorable state: chain assignments, arena
/// values, post-burn-in accumulators and the convergence trace. Everything
/// here plus (input, config, candidate space incl. its activation state)
/// reproduces the chain exactly — io/model_snapshot.{h,cc} serializes it
/// for checkpoint / warm-start. Buffers derivable from the input
/// (edge_both_labeled_, scratch, the layout prefix itself) are rebuilt by
/// RestoreState instead of stored.
struct SamplerState {
  // Chain state.
  std::vector<uint8_t> mu;
  std::vector<int32_t> x_idx;
  std::vector<int32_t> y_idx;
  std::vector<uint8_t> nu;
  std::vector<int32_t> z_idx;
  // Arena values (flat, in layout order).
  std::vector<double> phi;
  std::vector<double> phi_total;
  std::vector<double> venue_counts;
  std::vector<double> venue_counts_total;
  // Post-burn-in accumulators.
  int32_t accumulated_samples = 0;
  std::vector<double> acc_phi;  // flat, layout order
  std::vector<std::vector<float>> acc_x;
  std::vector<std::vector<float>> acc_y;
  std::vector<double> acc_mu;
  std::vector<std::vector<float>> acc_z;
  std::vector<double> acc_nu;
  std::vector<double> acc_edge_distance;
  // Convergence trace.
  std::vector<geo::CityId> last_homes;
  std::vector<double> home_change_per_sweep;
};

/// Chain state of a BASE fit remapped onto a merged (delta-ingested)
/// candidate space: per-edge vectors sized to the OLD graph's edge counts
/// (the merged graph's edge prefix), with every assignment index already a
/// local slot of the merged space's ACTIVE row for that user. Consumed by
/// GibbsSampler::AdoptMigratedChain during streaming ingest (src/stream/).
struct MigratedChain {
  std::vector<uint8_t> mu;
  std::vector<int32_t> x_idx;
  std::vector<int32_t> y_idx;
  std::vector<uint8_t> nu;
  std::vector<int32_t> z_idx;
  /// Convergence trace carried over from the base fit, so an ingested
  /// snapshot keeps the full Fig-5 history.
  std::vector<double> home_change_per_sweep;
};

/// Collapsed Gibbs sampler for MLP (Sec. 4.5). θ and ψ are integrated out;
/// the chain state is the model selectors (μ, ν) and location assignments
/// (x, y, z) of every relationship, with sufficient statistics
/// ϕ_{i,l} (per-user assignment counts over candidates, location-based
/// relationships only) and φ_{l,v} (per-location venue counts), both held
/// in a flat SuffStatsArena.
///
/// The candidate universe (which locations a user can be assigned to, and
/// their γ priors) is owned by core::CandidateSpace; the sampler holds
/// views into its ACTIVE layout and follows compactions via
/// ApplyCompaction. Assignment indices (x/y/z) are always local slots of
/// the active row of their user.
///
/// One sweep resamples, for each following relationship, μ_s (Eq. 5) then
/// x_{s,i} (Eq. 7) then y_{s,j} (Eq. 8), and for each tweeting relationship
/// ν_k (Eq. 6) then z_{k,i} (Eq. 9). Assignments of noise-flagged
/// relationships stay latent but are excluded from ϕ/φ, per the joint
/// (Eq. 4) where their generation terms carry exponent (1-μ).
class GibbsSampler {
 public:
  /// All pointers must outlive the sampler. `space` must be built over the
  /// same (input, config).
  GibbsSampler(const ModelInput* input, const MlpConfig* config,
               const CandidateSpace* space, const RandomModels* random_models,
               const PowTable* pow_table);

  /// Draws initial assignments from the priors and builds the counts.
  void Initialize(Pcg32* rng);

  /// One full Gibbs sweep. Appends to the convergence trace.
  void RunSweep(Pcg32* rng);

  /// Clears the post-burn-in accumulators (call between Gibbs-EM rounds).
  void ResetAccumulators();

  /// Adds the current state into the θ/explanation/EM accumulators.
  void AccumulateSample();

  /// Home estimate per user from the *current* counts (used for the
  /// convergence trace and by callers that probe mid-run state).
  std::vector<geo::CityId> CurrentHomes() const;

  /// Averaged 1-mile histogram of assignment distances d(x̂_s, ŷ_s) of
  /// location-based following relationships — the Gibbs-EM E-step quantity.
  /// Only edges between two LABELED users accumulate, so the ratio against
  /// the labeled pair histogram compares consistent populations.
  std::vector<double> AssignmentDistanceHistogram(int num_buckets) const;

  /// Builds the final result from the accumulators (falls back to the
  /// current state when nothing was accumulated).
  MlpResult BuildResult() const;

  int accumulated_samples() const { return accumulated_samples_; }

  // ---- checkpoint / warm-start API (used by core::MlpModel and io/) ----

  /// Copies the complete restorable state out of the sampler.
  void SaveState(SamplerState* state) const;

  /// Restores a state captured by SaveState on a sampler built over the
  /// same (input, config, candidate space) — the space's activation state
  /// must already be restored, since every size below is validated against
  /// its active layout. Replaces Initialize — no RNG draws. Fails (without
  /// touching *this) when any piece of the state disagrees with the current
  /// layout or graph shape.
  Status RestoreState(const SamplerState& state);

  // ---- streaming delta ingest (used by core::MlpModel::ApplyDelta) ----

  /// Adopts a migrated chain over a merged graph: `chain` covers the old
  /// graph's edge prefix (indices already remapped onto this sampler's
  /// space), the appended edges draw initial assignments from the priors
  /// using `rng` exactly as Initialize does, and ϕ/φ are rebuilt from the
  /// full chain. Counts are integer-valued, so edges the delta never
  /// touches reproduce their users' arena rows bit for bit. Accumulators
  /// reset; the convergence trace continues from the carried history.
  /// Replaces Initialize/RestoreState for the ingest path.
  Status AdoptMigratedChain(const MigratedChain& chain, Pcg32* rng);

  // ---- candidate-space compaction (used by engine::ParallelGibbsEngine) --

  /// Follows a CandidateSpace::PruneStep compaction: moves the arena's ϕ
  /// values into the compacted layout (pruned slots are guaranteed to hold
  /// zero counts), remaps every assignment index, redirects latent
  /// (noise-flagged) assignments whose slot was pruned to the user's best
  /// surviving slot, and resets the post-burn-in accumulators to the new
  /// layout. Only call at a merged sync barrier.
  void ApplyCompaction(const CompactionPlan& plan);

  // ---- engine API (used by engine::ParallelGibbsEngine) ----
  //
  // The per-edge kernels resample one relationship against the given
  // statistics replica. They write the edge's chain state (μ/ν and the
  // assignment indices) directly — edges are partitioned across shards, so
  // concurrent callers never touch the same slot — while all count updates
  // go to `stats`, which may be a thread-local replica. Passing
  // `&this->stats()`'s owner (via mutable_stats()) and one scratch
  // reproduces the sequential sweep exactly.

  /// Resamples (μ_s, x_s, y_s) for one following relationship.
  void SampleFollowingEdge(graph::EdgeId s, SuffStatsArena* stats,
                           GibbsScratch* scratch, Pcg32* rng);

  /// Resamples (ν_k, z_k) for one tweeting relationship.
  void SampleTweetingEdge(graph::EdgeId k, SuffStatsArena* stats,
                          GibbsScratch* scratch, Pcg32* rng);

  // ---- alias-MH fast kernels (parallel engine hot path) ----
  //
  // Same per-edge conditionals, restructured so the work per edge is O(1)
  // plus a constant number of Metropolis–Hastings rounds, instead of the
  // blocked update's O(n_i · n_j) grid marginalization:
  //
  //   1. μ (resp. ν) is resampled CONDITIONED on the current assignments.
  //     Treating the latent assignments of noise-flagged edges as auxiliary
  //     variables drawn from θ̃ (exactly what the blocked kernels do), the
  //     θ̃ factors cancel between the branches and the odds collapse to
  //     p(μ=1)/p(μ=0) = ρ_f·R_f / ((1−ρ_f)·β·d^α(c_x, c_y)) — one PowTable
  //     read, no marginalization. Integrating the auxiliary draws back out
  //     recovers the blocked kernel's stationary distribution.
  //   2. x | μ, y (then y | μ, x, and z | ν) are resampled by a few
  //     independence-MH rounds: proposals come from the epoch-stale
  //     per-user alias tables (O(1) each), and the acceptance ratio
  //     α = min(1, t(l')·ŵ(l) / (t(l)·ŵ(l'))) corrects the staleness
  //     against the live target t(l) = (ϕ+γ)(l) · [d^α / ψ_l(v) factor].
  //
  // The chain they produce is a different (but equally valid) Markov chain
  // over the same posterior — the sequential path keeps the exact blocked
  // kernels, which is what keeps 1-thread mode bit-identical. The fast
  // tweeting kernel also logs every venue cell it touches into
  // scratch->venue_cells (callers clear it per batch).

  /// Fast (μ_s, x_s, y_s) resample. `proposals` must be built over this
  /// sampler's space at the current layout.
  void SampleFollowingEdgeFast(graph::EdgeId s, SuffStatsArena* stats,
                               GibbsScratch* scratch, Pcg32* rng,
                               const ProposalTables& proposals);

  /// Fast (ν_k, z_k) resample; appends touched cells to
  /// scratch->venue_cells.
  void SampleTweetingEdgeFast(graph::EdgeId k, SuffStatsArena* stats,
                              GibbsScratch* scratch, Pcg32* rng,
                              const ProposalTables& proposals);

  /// The shared arena shape — a reference into the candidate space, which
  /// owns it (stable address across compactions).
  const SuffStatsLayout& layout() const { return space_->layout(); }

  /// The candidate space this sampler reads through.
  const CandidateSpace& space() const { return *space_; }

  /// The global sufficient statistics.
  const SuffStatsArena& stats() const { return stats_; }
  SuffStatsArena* mutable_stats() { return &stats_; }

  /// Appends one entry to the convergence trace from the current global
  /// counts. RunSweep calls this itself; the parallel engine calls it after
  /// each delta merge.
  void RecordSweepTrace();

  /// Exact allocated bytes of the sampler: chain state, the global arena,
  /// and the post-burn-in accumulators (including the ragged per-edge
  /// rows — an O(edges) walk, so call at barriers, not per edge).
  int64_t AccountedBytes() const;

  bool UseFollowing() const {
    return config_->source != ObservationSource::kTweetingOnly;
  }
  bool UseTweeting() const {
    return config_->source != ObservationSource::kFollowingOnly;
  }

 private:
  /// Builds the arena binding and the input-derived per-edge buffers —
  /// everything Initialize sets up that does not consume randomness.
  void PrepareBuffers();

  double VenueProb(geo::CityId location, graph::VenueId venue,
                   const SuffStatsArena& stats) const;

  /// Categorical draw over `weights[0..count)`. Raw span so the hot path
  /// (and prior rows living inside CandidateSpace) sample without building
  /// a vector per draw; callers reuse GibbsScratch buffers.
  int SampleCandidate(const double* weights, int count, Pcg32* rng) const;

  /// Independence-MH rounds for one assignment slot of user `u`. Target
  /// t(l) = max(0, ϕ_u[l]+γ[l]) · d^α(c_l, anchor) — pass
  /// geo::kInvalidCity to drop the distance factor (latent / noise-branch
  /// draws). Proposals and their stale weights come from `proposals`.
  /// `scratch` (may be null) tallies proposed/accepted moves for the
  /// mixing gauges; the RNG stream is untouched by the tallies.
  int MhResampleSlot(graph::UserId u, const CandidateView& view,
                     const double* phi_u, int cur, geo::CityId anchor,
                     const ProposalTables& proposals, Pcg32* rng,
                     GibbsScratch* scratch) const;

  /// Same, with the tweeting target t(l) = max(0, ϕ_u[l]+γ[l]) · ψ_l(v).
  int MhResampleSlotVenue(graph::UserId u, const CandidateView& view,
                          const double* phi_u, int cur, graph::VenueId v,
                          const SuffStatsArena& stats,
                          const ProposalTables& proposals, Pcg32* rng,
                          GibbsScratch* scratch) const;

  const ModelInput* input_;
  const MlpConfig* config_;
  const CandidateSpace* space_;
  const RandomModels* random_models_;
  const PowTable* pow_table_;

  // Chain state.
  std::vector<uint8_t> mu_;      // per following edge
  std::vector<int32_t> x_idx_;   // active slot in follower's candidate row
  std::vector<int32_t> y_idx_;   // active slot in friend's candidate row
  std::vector<uint8_t> nu_;      // per tweeting edge
  std::vector<int32_t> z_idx_;   // active slot in tweeter's candidate row

  // Global sufficient statistics (bound to space_->layout()).
  SuffStatsArena stats_;

  // Post-burn-in accumulators. acc_phi_ shares the arena layout.
  int accumulated_samples_ = 0;
  std::vector<double> acc_phi_;
  std::vector<std::vector<float>> acc_x_;   // [edge][candidate of follower]
  std::vector<std::vector<float>> acc_y_;
  std::vector<double> acc_mu_;
  std::vector<std::vector<float>> acc_z_;
  std::vector<double> acc_nu_;
  std::vector<double> acc_edge_distance_;   // 1-mile histogram
  std::vector<uint8_t> edge_both_labeled_;  // per following edge

  // Convergence trace.
  std::vector<geo::CityId> last_homes_;
  std::vector<double> home_change_per_sweep_;

  GibbsScratch scratch_;
};

}  // namespace core
}  // namespace mlp

#endif  // MLP_CORE_SAMPLER_H_
