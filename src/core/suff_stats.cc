#include "core/suff_stats.h"

#include <algorithm>

#include "common/logging.h"

namespace mlp {
namespace core {

SuffStatsLayout SuffStatsLayout::Build(const std::vector<UserPrior>& priors,
                                       int num_locations, int num_venues) {
  SuffStatsLayout layout;
  layout.num_users = static_cast<int32_t>(priors.size());
  layout.num_locations = num_locations;
  layout.num_venues = num_venues;
  layout.phi_offset.resize(priors.size() + 1);
  int64_t offset = 0;
  for (size_t u = 0; u < priors.size(); ++u) {
    layout.phi_offset[u] = offset;
    offset += priors[u].size();
  }
  layout.phi_offset[priors.size()] = offset;
  return layout;
}

void SuffStatsArena::Reset(const SuffStatsLayout* new_layout) {
  MLP_CHECK(new_layout != nullptr);
  layout = new_layout;
  phi.assign(layout->phi_size(), 0.0);
  phi_total.assign(layout->num_users, 0.0);
  venue_counts.assign(layout->venue_size(), 0.0);
  venue_counts_total.assign(layout->num_venues > 0 ? layout->num_locations : 0,
                            0.0);
}

void SuffStatsArena::CopyValuesFrom(const SuffStatsArena& other) {
  MLP_CHECK(other.layout != nullptr);
  if (layout != other.layout) Reset(other.layout);
  // assign() into vectors of identical size copies in place — no
  // reallocation after the first bind, which is what keeps the engine's
  // per-sync replica refresh allocation-free.
  phi.assign(other.phi.begin(), other.phi.end());
  phi_total.assign(other.phi_total.begin(), other.phi_total.end());
  venue_counts.assign(other.venue_counts.begin(), other.venue_counts.end());
  venue_counts_total.assign(other.venue_counts_total.begin(),
                            other.venue_counts_total.end());
}

namespace {
/// dst[i] += a[i] − b[i] over one flat buffer. The whole merge is three or
/// four of these over contiguous memory — trivially vectorizable.
inline void AddDeltaFlat(std::vector<double>* dst,
                         const std::vector<double>& a,
                         const std::vector<double>& b) {
  double* d = dst->data();
  const double* pa = a.data();
  const double* pb = b.data();
  const size_t n = dst->size();
  for (size_t i = 0; i < n; ++i) d[i] += pa[i] - pb[i];
}
}  // namespace

void SuffStatsArena::AccumulateDelta(const SuffStatsArena& a,
                                     const SuffStatsArena& b) {
  MLP_CHECK(layout != nullptr && a.layout == layout && b.layout == layout);
  AddDeltaFlat(&phi, a.phi, b.phi);
  AddDeltaFlat(&phi_total, a.phi_total, b.phi_total);
  AddDeltaFlat(&venue_counts, a.venue_counts, b.venue_counts);
  AddDeltaFlat(&venue_counts_total, a.venue_counts_total,
               b.venue_counts_total);
}

}  // namespace core
}  // namespace mlp
