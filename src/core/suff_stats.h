#ifndef MLP_CORE_SUFF_STATS_H_
#define MLP_CORE_SUFF_STATS_H_

#include <cstdint>
#include <vector>

#include "core/priors.h"

namespace mlp {
namespace core {

/// Allocated footprint of one vector (capacity, not size — what the
/// process actually holds). The unit behind every AccountedBytes() in the
/// memory-budget accounting (FitOptions::mem_budget_mb).
template <typename T>
int64_t VectorBytes(const std::vector<T>& v) {
  return static_cast<int64_t>(v.capacity()) * static_cast<int64_t>(sizeof(T));
}

/// Shape of the sufficient-statistics arena: a CSR-style prefix over every
/// user's ACTIVE candidate list plus the dense venue-count rectangle.
/// Owned by core::CandidateSpace (the single owner of the candidate
/// universe) and shared by pointer between the sampler's global counts,
/// the engine's per-shard replicas and its snapshot. Sweep-time pruning
/// compacts the offsets IN PLACE at sync barriers — the object's address
/// is stable for the whole fit, so bound arenas stay bound; their value
/// buffers are rebuilt by GibbsSampler::ApplyCompaction /
/// SuffStatsArena::CopyValuesFrom. Consumers that cache derived sizes
/// should key them on CandidateSpace::layout_version().
struct SuffStatsLayout {
  /// phi_offset[u] .. phi_offset[u+1] is user u's slice of the flat ϕ
  /// buffer, one slot per candidate location (size num_users + 1).
  std::vector<int64_t> phi_offset;
  int32_t num_users = 0;
  int32_t num_locations = 0;
  /// 0 when tweeting observations are unused (no venue buffers at all).
  int32_t num_venues = 0;

  int64_t phi_size() const {
    return phi_offset.empty() ? 0 : phi_offset.back();
  }
  int64_t venue_size() const {
    return static_cast<int64_t>(num_locations) * num_venues;
  }
  int candidate_count(int32_t u) const {
    return static_cast<int>(phi_offset[u + 1] - phi_offset[u]);
  }

  /// Builds the prefix from the per-user candidate lists. Pass
  /// num_venues = 0 to omit the venue rectangle (following-only runs).
  static SuffStatsLayout Build(const std::vector<UserPrior>& priors,
                               int num_locations, int num_venues);

  bool SameShape(const SuffStatsLayout& other) const {
    return phi_offset == other.phi_offset &&
           num_locations == other.num_locations &&
           num_venues == other.num_venues;
  }
};

/// Sufficient statistics of the collapsed chain in one contiguous arena:
/// ϕ_{i,l} (per-user assignment counts over candidates, location-based
/// relationships only) flattened over the layout's prefix, and φ_{l,v}
/// (per-location venue counts) as a dense row-major rectangle. All entries
/// are integer-valued counts stored as doubles, so replica deltas merge
/// exactly. A plain copyable value: the parallel engine
/// (engine/parallel_gibbs.h) keeps one replica per shard and snapshots /
/// delta-merges them with flat std::copy / fused loops instead of the
/// per-row walks the old vector-of-vectors layout forced.
struct SuffStatsArena {
  /// Not owned; outlives the arena (the sampler holds it for the fit).
  const SuffStatsLayout* layout = nullptr;

  std::vector<double> phi;                 // flat, layout->phi_size()
  std::vector<double> phi_total;           // [num_users]
  std::vector<double> venue_counts;        // flat, layout->venue_size()
  std::vector<double> venue_counts_total;  // [num_locations]

  /// Binds to `layout` and zeroes every buffer (allocating on first use,
  /// reusing capacity afterwards).
  void Reset(const SuffStatsLayout* new_layout);

  /// Value copy that never reallocates once shapes match — the engine's
  /// per-sync replica refresh. Rebinds (and allocates) only when this arena
  /// is unbound or bound to a different layout.
  void CopyValuesFrom(const SuffStatsArena& other);

  /// this += a − b over every buffer, fused flat loops. All three arenas
  /// must share a layout. Counts are integer-valued doubles, so the
  /// arithmetic is exact.
  void AccumulateDelta(const SuffStatsArena& a, const SuffStatsArena& b);

  /// Exact allocated bytes of this arena's value buffers (the layout is
  /// owned by the CandidateSpace and accounted there).
  int64_t AccountedBytes() const {
    return VectorBytes(phi) + VectorBytes(phi_total) +
           VectorBytes(venue_counts) + VectorBytes(venue_counts_total);
  }

  // ---- hot-path row access ----
  double* phi_row(int32_t u) { return phi.data() + layout->phi_offset[u]; }
  const double* phi_row(int32_t u) const {
    return phi.data() + layout->phi_offset[u];
  }
  double* venue_row(int32_t l) {
    return venue_counts.data() + static_cast<int64_t>(l) * layout->num_venues;
  }
  const double* venue_row(int32_t l) const {
    return venue_counts.data() + static_cast<int64_t>(l) * layout->num_venues;
  }
};

}  // namespace core
}  // namespace mlp

#endif  // MLP_CORE_SUFF_STATS_H_
