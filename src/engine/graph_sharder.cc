#include "engine/graph_sharder.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace mlp {
namespace engine {

namespace {

/// Shared deterministic greedy LPT over per-user costs. Unit costs are
/// small integers, and double sums of small integers are exact, so routing
/// the legacy overload through here reproduces its historical partitions
/// bit for bit. A non-empty `group` restricts group members to shards
/// [0, group_begin_end.first) — i.e. [0, group_shards) — and the rest to
/// [group_shards, k); see GraphSharder::PartitionGrouped.
std::vector<Shard> LptPartition(const graph::SocialGraph& graph, int num_shards,
                                const std::vector<double>& cost,
                                const std::vector<uint8_t>& group = {},
                                int group_shards = 0) {
  const int k = std::max(1, num_shards);
  const int num_users = graph.num_users();

  // Greedy LPT: costliest user first, into the lightest shard.
  std::vector<graph::UserId> order(num_users);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&cost](graph::UserId a, graph::UserId b) {
                     return cost[a] > cost[b];
                   });

  std::vector<Shard> shards(k);
  std::vector<double> load(k, 0.0);
  std::vector<int> shard_of_user(num_users, 0);
  for (graph::UserId u : order) {
    int begin = 0;
    int end = k;
    if (!group.empty()) {
      if (group[u]) {
        end = group_shards;
      } else {
        begin = group_shards < k ? group_shards : 0;
      }
    }
    int lightest = begin;
    for (int i = begin + 1; i < end; ++i) {
      if (load[i] < load[lightest]) lightest = i;
    }
    shard_of_user[u] = lightest;
    shards[lightest].users.push_back(u);
    load[lightest] += cost[u];
  }
  for (Shard& shard : shards) {
    std::sort(shard.users.begin(), shard.users.end());
  }

  // Edge lists follow their owner; iterating edges in id order keeps each
  // shard's list ascending, which fixes the within-shard sweep order.
  for (graph::EdgeId s = 0; s < graph.num_following(); ++s) {
    shards[shard_of_user[graph.following(s).follower]].following.push_back(s);
  }
  for (graph::EdgeId t = 0; t < graph.num_tweeting(); ++t) {
    shards[shard_of_user[graph.tweeting(t).user]].tweeting.push_back(t);
  }
  return shards;
}

}  // namespace

std::vector<Shard> GraphSharder::Partition(const graph::SocialGraph& graph,
                                           int num_shards) {
  // Owned-edge count per user, straight off the edge lists (no adjacency
  // index needed, so unfinalized graphs shard too).
  std::vector<double> owned(graph.num_users(), 0.0);
  for (graph::EdgeId s = 0; s < graph.num_following(); ++s) {
    owned[graph.following(s).follower] += 1.0;
  }
  for (graph::EdgeId t = 0; t < graph.num_tweeting(); ++t) {
    owned[graph.tweeting(t).user] += 1.0;
  }
  return LptPartition(graph, num_shards, owned);
}

std::vector<Shard> GraphSharder::Partition(
    const graph::SocialGraph& graph, int num_shards,
    const std::vector<double>& user_cost) {
  MLP_CHECK(static_cast<int>(user_cost.size()) == graph.num_users());
  return LptPartition(graph, num_shards, user_cost);
}

std::vector<Shard> GraphSharder::PartitionGrouped(
    const graph::SocialGraph& graph, int num_shards, int group_shards,
    const std::vector<double>& user_cost, const std::vector<uint8_t>& group) {
  MLP_CHECK(static_cast<int>(user_cost.size()) == graph.num_users());
  MLP_CHECK(static_cast<int>(group.size()) == graph.num_users());
  const int k = std::max(1, num_shards);
  return LptPartition(graph, k, user_cost, group,
                      std::clamp(group_shards, 1, k));
}

}  // namespace engine
}  // namespace mlp
