#include "engine/graph_sharder.h"

#include <algorithm>
#include <numeric>

namespace mlp {
namespace engine {

std::vector<Shard> GraphSharder::Partition(const graph::SocialGraph& graph,
                                           int num_shards) {
  const int k = std::max(1, num_shards);
  const int num_users = graph.num_users();

  // Owned-edge count per user, straight off the edge lists (no adjacency
  // index needed, so unfinalized graphs shard too).
  std::vector<std::size_t> owned(num_users, 0);
  for (graph::EdgeId s = 0; s < graph.num_following(); ++s) {
    ++owned[graph.following(s).follower];
  }
  for (graph::EdgeId t = 0; t < graph.num_tweeting(); ++t) {
    ++owned[graph.tweeting(t).user];
  }

  // Greedy LPT: heaviest user first, into the lightest shard.
  std::vector<graph::UserId> order(num_users);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&owned](graph::UserId a, graph::UserId b) {
                     return owned[a] > owned[b];
                   });

  std::vector<Shard> shards(k);
  std::vector<std::size_t> load(k, 0);
  std::vector<int> shard_of_user(num_users, 0);
  for (graph::UserId u : order) {
    int lightest = 0;
    for (int i = 1; i < k; ++i) {
      if (load[i] < load[lightest]) lightest = i;
    }
    shard_of_user[u] = lightest;
    shards[lightest].users.push_back(u);
    load[lightest] += owned[u];
  }
  for (Shard& shard : shards) {
    std::sort(shard.users.begin(), shard.users.end());
  }

  // Edge lists follow their owner; iterating edges in id order keeps each
  // shard's list ascending, which fixes the within-shard sweep order.
  for (graph::EdgeId s = 0; s < graph.num_following(); ++s) {
    shards[shard_of_user[graph.following(s).follower]].following.push_back(s);
  }
  for (graph::EdgeId t = 0; t < graph.num_tweeting(); ++t) {
    shards[shard_of_user[graph.tweeting(t).user]].tweeting.push_back(t);
  }
  return shards;
}

}  // namespace engine
}  // namespace mlp
