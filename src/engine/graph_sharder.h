#ifndef MLP_ENGINE_GRAPH_SHARDER_H_
#define MLP_ENGINE_GRAPH_SHARDER_H_

#include <cstddef>
#include <vector>

#include "graph/social_graph.h"

namespace mlp {
namespace engine {

/// One partition of the observation graph: a set of users plus the
/// relationships they *own*. A following relationship is owned by its
/// follower; a tweeting relationship by its tweeter. Ownership decides
/// which worker resamples an edge — the resampled assignments touch the
/// counts of BOTH endpoints, but those updates land in the worker's
/// thread-local statistics replica and merge at the sweep barrier, so
/// cross-shard endpoints need no locking.
struct Shard {
  std::vector<graph::UserId> users;       // ascending
  std::vector<graph::EdgeId> following;   // owned following edges, ascending
  std::vector<graph::EdgeId> tweeting;    // owned tweeting edges, ascending
  /// Sampling work this shard carries per sweep (edge count; see the
  /// cost-weighted Partition overload for the candidate-product measure).
  std::size_t Weight() const { return following.size() + tweeting.size(); }
};

/// Partitions users (and thereby their owned relationships) into
/// `num_shards` shards with near-equal per-sweep work.
///
/// Deterministic greedy LPT: users sorted by per-user cost descending
/// (ties by id ascending) are assigned one at a time to the currently
/// lightest shard (ties by shard index). LPT guarantees the heaviest shard
/// carries at most 4/3 of the optimal makespan, so shard weights stay well
/// within 2x of perfectly balanced whenever any balanced split exists.
class GraphSharder {
 public:
  /// Every user appears in exactly one shard and every relationship in
  /// exactly one shard's edge list. `num_shards` is clamped to >= 1; with
  /// fewer users than shards the tail shards are empty. Cost measure:
  /// owned-edge count per user (every edge weighs 1).
  static std::vector<Shard> Partition(const graph::SocialGraph& graph,
                                      int num_shards);

  /// Cost-weighted variant: `user_cost[u]` is user u's total per-sweep
  /// sampling cost (e.g. Σ over owned following edges of
  /// |cand_follower|·|cand_friend| plus Σ over owned tweets of |cand| —
  /// the blocked update's real inner-loop work). Used by
  /// ParallelGibbsEngine to re-estimate the LPT balance after candidate
  /// pruning shrinks some users' inner loops much more than others'.
  /// Same determinism guarantees as the unit-cost overload.
  static std::vector<Shard> Partition(const graph::SocialGraph& graph,
                                      int num_shards,
                                      const std::vector<double>& user_cost);

  /// Two-group variant for streaming ingest: users with `group[u] != 0`
  /// are LPT-packed into shards [0, group_shards) and everyone else into
  /// [group_shards, num_shards), each side balanced by `user_cost` with
  /// the same determinism guarantees. Concentrating the delta-touched set
  /// into the fewest shards its cost warrants is what makes shard-scoped
  /// resampling (ParallelGibbsEngine::ResampleShards) skip the rest of
  /// the world. `group_shards` is clamped to [1, num_shards]; with
  /// group_shards == num_shards the group constraint disappears.
  static std::vector<Shard> PartitionGrouped(
      const graph::SocialGraph& graph, int num_shards, int group_shards,
      const std::vector<double>& user_cost,
      const std::vector<uint8_t>& group);
};

}  // namespace engine
}  // namespace mlp

#endif  // MLP_ENGINE_GRAPH_SHARDER_H_
