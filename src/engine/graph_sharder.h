#ifndef MLP_ENGINE_GRAPH_SHARDER_H_
#define MLP_ENGINE_GRAPH_SHARDER_H_

#include <cstddef>
#include <vector>

#include "graph/social_graph.h"

namespace mlp {
namespace engine {

/// One partition of the observation graph: a set of users plus the
/// relationships they *own*. A following relationship is owned by its
/// follower; a tweeting relationship by its tweeter. Ownership decides
/// which worker resamples an edge — the resampled assignments touch the
/// counts of BOTH endpoints, but those updates land in the worker's
/// thread-local statistics replica and merge at the sweep barrier, so
/// cross-shard endpoints need no locking.
struct Shard {
  std::vector<graph::UserId> users;       // ascending
  std::vector<graph::EdgeId> following;   // owned following edges, ascending
  std::vector<graph::EdgeId> tweeting;    // owned tweeting edges, ascending
  /// Sampling work this shard carries per sweep.
  std::size_t Weight() const { return following.size() + tweeting.size(); }
};

/// Partitions users (and thereby their owned relationships) into
/// `num_shards` shards with near-equal per-sweep work.
///
/// Deterministic greedy LPT: users sorted by owned-edge count descending
/// (ties by id ascending) are assigned one at a time to the currently
/// lightest shard (ties by shard index). LPT guarantees the heaviest shard
/// carries at most 4/3 of the optimal makespan, so shard weights stay well
/// within 2x of perfectly balanced whenever any balanced split exists.
class GraphSharder {
 public:
  /// Every user appears in exactly one shard and every relationship in
  /// exactly one shard's edge list. `num_shards` is clamped to >= 1; with
  /// fewer users than shards the tail shards are empty.
  static std::vector<Shard> Partition(const graph::SocialGraph& graph,
                                      int num_shards);
};

}  // namespace engine
}  // namespace mlp

#endif  // MLP_ENGINE_GRAPH_SHARDER_H_
