#include "engine/parallel_gibbs.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/fit_profile.h"
#include "obs/trace.h"

namespace mlp {
namespace engine {

namespace {

// Phase counters resolved once; Registry handles are stable for the
// process lifetime, so the hot path never touches the registry mutex.
struct FitCounters {
  obs::Counter* sweeps;
  obs::Counter* sweep_ns;
  obs::Counter* replica_refresh_ns;
  obs::Counter* shard_kernel_ns;
  obs::Counter* barrier_wait_ns;
  obs::Counter* delta_merge_ns;
  obs::Counter* prune_ns;
};

const FitCounters& Counters() {
  static const FitCounters counters = [] {
    obs::Registry& registry = obs::Registry::Global();
    FitCounters c;
    c.sweeps = registry.GetCounter(obs::kFitSweepsTotal);
    c.sweep_ns = registry.GetCounter(obs::kFitSweepNs);
    c.replica_refresh_ns = registry.GetCounter(obs::kFitReplicaRefreshNs);
    c.shard_kernel_ns = registry.GetCounter(obs::kFitShardKernelNs);
    c.barrier_wait_ns = registry.GetCounter(obs::kFitBarrierWaitNs);
    c.delta_merge_ns = registry.GetCounter(obs::kFitDeltaMergeNs);
    c.prune_ns = registry.GetCounter(obs::kFitPruneNs);
    return c;
  }();
  return counters;
}

}  // namespace

ParallelGibbsEngine::ParallelGibbsEngine(core::GibbsSampler* sampler,
                                         const core::ModelInput* input,
                                         const core::MlpConfig* config,
                                         core::CandidateSpace* space)
    : sampler_(sampler),
      input_(input),
      config_(config),
      space_(space),
      num_threads_(std::max(1, config->num_threads)),
      sync_every_(std::max(1, config->sync_every_sweeps)) {
  MLP_CHECK(sampler_ != nullptr && input_ != nullptr && config_ != nullptr);
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
    shards_ = GraphSharder::Partition(*input_->graph, num_threads_);
    shard_rngs_.reserve(num_threads_);
    for (int k = 0; k < num_threads_; ++k) {
      // Decorrelated per-shard streams derived from the base seed: distinct
      // PCG increments give independent sequences, and the derivation is a
      // pure function of (seed, shard), so a fixed thread count replays the
      // exact same chain regardless of scheduling.
      shard_rngs_.emplace_back(
          config_->seed ^ (0x9e3779b97f4a7c15ULL * (k + 1)),
          0xda3e39cb94b95bdbULL + 2 * static_cast<uint64_t>(k));
    }
    replicas_.resize(num_threads_);
    scratches_.resize(num_threads_);
  }
}

void ParallelGibbsEngine::Initialize(Pcg32* rng) {
  sampler_->Initialize(rng);
  replicas_fresh_ = false;
  sweeps_since_sync_ = 0;
}

void ParallelGibbsEngine::RefreshReplicas() {
  obs::ScopedSpan span(Counters().replica_refresh_ns, "replica_refresh");
  // Flat value copies into buffers that persist across syncs: after the
  // first refresh binds every arena to the sampler's layout, this is pure
  // std::copy traffic with zero allocation.
  snapshot_.CopyValuesFrom(sampler_->stats());
  for (auto& replica : replicas_) replica.CopyValuesFrom(snapshot_);
  replicas_fresh_ = true;
  sweeps_since_sync_ = 0;
}

void ParallelGibbsEngine::MergeReplicas() {
  {
    obs::ScopedSpan span(Counters().delta_merge_ns, "delta_merge");
    // global' = snapshot + Σ_k (replica_k - snapshot), accumulated in shard
    // order so the merge is deterministic. The global counts are untouched
    // between refresh and merge (workers only write replicas), so they
    // still equal the snapshot and the deltas apply onto them in place.
    // Each AccumulateDelta is a few fused passes over contiguous buffers.
    core::SuffStatsArena* global = sampler_->mutable_stats();
    for (const core::SuffStatsArena& replica : replicas_) {
      global->AccumulateDelta(replica, snapshot_);
    }
    replicas_fresh_ = false;
  }
  // Timed separately (fit_trace_record_ns, inside the sampler): the sweep
  // trace diff is main-thread work that is easy to mistake for merge cost.
  sampler_->RecordSweepTrace();
}

void ParallelGibbsEngine::RunSweep(Pcg32* rng) {
  Counters().sweeps->Add(1);
  obs::ScopedSpan sweep_span(Counters().sweep_ns, "sweep");
  if (num_threads_ <= 1) {
    sampler_->RunSweep(rng);
    return;
  }
  if (!replicas_fresh_) RefreshReplicas();

  const bool use_following = sampler_->UseFollowing();
  const bool use_tweeting = sampler_->UseTweeting();
  shard_kernel_ns_.assign(num_threads_, 0);
  const int64_t section_start_ns = obs::NowNs();
  for (int k = 0; k < num_threads_; ++k) {
    pool_->Submit([this, k, use_following, use_tweeting] {
      const int64_t kernel_start_ns = obs::NowNs();
      const Shard& shard = shards_[k];
      core::SuffStatsArena* replica = &replicas_[k];
      core::GibbsScratch* scratch = &scratches_[k];
      Pcg32* shard_rng = &shard_rngs_[k];
      if (use_following) {
        for (graph::EdgeId s : shard.following) {
          sampler_->SampleFollowingEdge(s, replica, scratch, shard_rng);
        }
      }
      if (use_tweeting) {
        for (graph::EdgeId t : shard.tweeting) {
          sampler_->SampleTweetingEdge(t, replica, scratch, shard_rng);
        }
      }
      shard_kernel_ns_[k] = obs::EndSpan(Counters().shard_kernel_ns,
                                         "shard_kernel", kernel_start_ns);
    });
  }
  pool_->Wait();
  if (obs::Enabled()) {
    // Barrier wait isn't directly observable per worker (the pool hands
    // idle threads the next task immediately); derive it as the idle
    // remainder of the parallel section: every thread spans the whole
    // section, so threads × section − Σ kernel = total time threads spent
    // NOT running kernels — queue latency plus the tail wait on the
    // slowest shard.
    const int64_t section_ns = obs::NowNs() - section_start_ns;
    int64_t kernel_sum_ns = 0;
    for (int64_t ns : shard_kernel_ns_) kernel_sum_ns += ns;
    const int64_t barrier_ns = num_threads_ * section_ns - kernel_sum_ns;
    if (barrier_ns > 0) {
      Counters().barrier_wait_ns->Add(static_cast<uint64_t>(barrier_ns));
    }
  }

  if (++sweeps_since_sync_ >= sync_every_) MergeReplicas();
}

void ParallelGibbsEngine::ReshardByCost() {
  // Per-user cost = the blocked update's real inner-loop work over the
  // ACTIVE candidate rows: |cand_i|·|cand_j| per owned following edge,
  // |cand_i| per owned tweet. Recomputed from scratch each compaction —
  // pruning is rare (a handful of barriers per fit) and the pass is linear
  // in the edge lists.
  const graph::SocialGraph& graph = *input_->graph;
  std::vector<double> cost(graph.num_users(), 0.0);
  if (sampler_->UseFollowing()) {
    for (graph::EdgeId s = 0; s < graph.num_following(); ++s) {
      const graph::FollowingEdge& edge = graph.following(s);
      cost[edge.follower] +=
          static_cast<double>(space_->view(edge.follower).size()) *
          static_cast<double>(space_->view(edge.friend_user).size());
    }
  }
  if (sampler_->UseTweeting()) {
    for (graph::EdgeId t = 0; t < graph.num_tweeting(); ++t) {
      const graph::TweetingEdge& edge = graph.tweeting(t);
      cost[edge.user] += static_cast<double>(space_->view(edge.user).size());
    }
  }
  shards_ = GraphSharder::Partition(graph, num_threads_, cost);
}

bool ParallelGibbsEngine::MaybePrune(int32_t sweep_index) {
  if (space_ == nullptr || config_->prune_floor <= 0.0) return false;
  if (!IsSynchronized()) return false;
  obs::ScopedSpan span(Counters().prune_ns, "prune");
  core::CompactionPlan plan;
  if (!space_->PruneStep(sampler_->stats(), *config_, sweep_index, &plan)) {
    return false;
  }
  sampler_->ApplyCompaction(plan);
  if (num_threads_ > 1) {
    // Replicas and the snapshot are stale in both shape and values; the
    // next sweep's refresh re-binds them to the compacted arena. Shard
    // costs changed non-uniformly, so re-balance.
    replicas_fresh_ = false;
    ReshardByCost();
  }
  return true;
}

void ParallelGibbsEngine::OnActivationRestored() {
  if (space_ != nullptr && space_->layout_version() > 0 && num_threads_ > 1) {
    ReshardByCost();
  }
}

std::vector<int> ParallelGibbsEngine::UserShards() const {
  std::vector<int> owner(input_->graph->num_users(), 0);
  for (size_t k = 0; k < shards_.size(); ++k) {
    for (graph::UserId u : shards_[k].users) owner[u] = static_cast<int>(k);
  }
  return owner;
}

Status ParallelGibbsEngine::SetPartition(std::vector<Shard> shards) {
  if (num_threads_ <= 1) return Status::OK();
  if (static_cast<int>(shards.size()) != num_threads_) {
    return Status::InvalidArgument(
        "partition must have exactly one shard per thread");
  }
  if (!IsSynchronized()) {
    return Status::FailedPrecondition(
        "cannot repartition with unmerged replica deltas");
  }
  size_t users = 0;
  for (const Shard& shard : shards) users += shard.users.size();
  if (users != static_cast<size_t>(input_->graph->num_users())) {
    return Status::InvalidArgument(
        "partition does not cover every user exactly once");
  }
  shards_ = std::move(shards);
  replicas_fresh_ = false;
  return Status::OK();
}

Status ParallelGibbsEngine::BeginShardResample(
    const std::vector<int>& shard_set) {
  if (!IsSynchronized()) {
    return Status::FailedPrecondition(
        "cannot begin a shard resample with unmerged replica deltas");
  }
  const int num_shards =
      num_threads_ <= 1 ? 1 : static_cast<int>(shards_.size());
  resample_shard_selected_.assign(num_shards, 0);
  for (int k : shard_set) {
    if (k < 0 || k >= num_shards) {
      return Status::InvalidArgument("resample shard index out of range");
    }
    resample_shard_selected_[k] = 1;
  }

  const graph::SocialGraph& graph = *input_->graph;
  resample_user_mask_.assign(graph.num_users(), 0);
  if (num_threads_ <= 1) {
    if (resample_shard_selected_[0]) {
      resample_user_mask_.assign(graph.num_users(), 1);
    }
  } else {
    for (size_t k = 0; k < shards_.size(); ++k) {
      if (!resample_shard_selected_[k]) continue;
      for (graph::UserId u : shards_[k].users) resample_user_mask_[u] = 1;
    }
  }
  resample_users_.clear();
  for (graph::UserId u = 0; u < graph.num_users(); ++u) {
    if (resample_user_mask_[u]) resample_users_.push_back(u);
  }

  // Eligibility: a following edge's resample writes BOTH endpoints' ϕ
  // rows, so it may only run when both live in selected shards — that is
  // the invariant that keeps unselected shards bit-identical. Edge lists
  // are per owning shard so the sweep stays a per-shard loop.
  resample_following_mask_.assign(
      sampler_->UseFollowing() ? graph.num_following() : 0, 0);
  resample_tweeting_mask_.assign(
      sampler_->UseTweeting() ? graph.num_tweeting() : 0, 0);
  resample_following_.assign(num_shards, {});
  resample_tweeting_.assign(num_shards, {});
  const std::vector<int> owner =
      num_threads_ <= 1 ? std::vector<int>(graph.num_users(), 0)
                        : UserShards();
  if (sampler_->UseFollowing()) {
    for (graph::EdgeId s = 0; s < graph.num_following(); ++s) {
      const graph::FollowingEdge& edge = graph.following(s);
      if (resample_user_mask_[edge.follower] &&
          resample_user_mask_[edge.friend_user]) {
        resample_following_mask_[s] = 1;
        resample_following_[owner[edge.follower]].push_back(s);
      }
    }
  }
  if (sampler_->UseTweeting()) {
    for (graph::EdgeId t = 0; t < graph.num_tweeting(); ++t) {
      const graph::TweetingEdge& edge = graph.tweeting(t);
      if (resample_user_mask_[edge.user]) {
        resample_tweeting_mask_[t] = 1;
        resample_tweeting_[owner[edge.user]].push_back(t);
      }
    }
  }
  resample_active_ = true;
  return Status::OK();
}

void ParallelGibbsEngine::ResampleShards(Pcg32* rng) {
  MLP_CHECK(resample_active_);
  if (num_threads_ <= 1) {
    core::SuffStatsArena* stats = sampler_->mutable_stats();
    core::GibbsScratch scratch;
    for (graph::EdgeId s : resample_following_[0]) {
      sampler_->SampleFollowingEdge(s, stats, &scratch, rng);
    }
    for (graph::EdgeId t : resample_tweeting_[0]) {
      sampler_->SampleTweetingEdge(t, stats, &scratch, rng);
    }
    sampler_->RecordSweepTrace();
    return;
  }

  // Refresh and merge ONLY the selected shards' replicas, and within them
  // only the selected users' ϕ rows: the restricted sweep's kernels read
  // and write exactly those rows (eligible edges have BOTH endpoints
  // selected), so everything else in a replica may stay stale without
  // ever being observed. The venue rectangle is location×venue (a kernel
  // may read/write any location's row), so it refreshes and merges in
  // full — but its size is independent of the user population. Net:
  // per-sweep traffic scales with the delta's touched rows + the venue
  // rectangle, not with the whole world times the thread count.
  const core::SuffStatsLayout& layout = sampler_->layout();
  const core::SuffStatsArena& global_now = sampler_->stats();
  auto copy_selected = [&](const core::SuffStatsArena& src,
                           core::SuffStatsArena* dst) {
    if (dst->layout != &layout) dst->Reset(&layout);
    for (graph::UserId u : resample_users_) {
      const int64_t begin = layout.phi_offset[u];
      const int64_t end = layout.phi_offset[u + 1];
      std::copy(src.phi.begin() + begin, src.phi.begin() + end,
                dst->phi.begin() + begin);
      dst->phi_total[u] = src.phi_total[u];
    }
    dst->venue_counts = src.venue_counts;
    dst->venue_counts_total = src.venue_counts_total;
  };
  copy_selected(global_now, &snapshot_);
  for (int k = 0; k < num_threads_; ++k) {
    if (resample_shard_selected_[k]) copy_selected(snapshot_, &replicas_[k]);
  }
  for (int k = 0; k < num_threads_; ++k) {
    if (!resample_shard_selected_[k]) continue;
    pool_->Submit([this, k] {
      core::SuffStatsArena* replica = &replicas_[k];
      core::GibbsScratch* scratch = &scratches_[k];
      Pcg32* shard_rng = &shard_rngs_[k];
      for (graph::EdgeId s : resample_following_[k]) {
        sampler_->SampleFollowingEdge(s, replica, scratch, shard_rng);
      }
      for (graph::EdgeId t : resample_tweeting_[k]) {
        sampler_->SampleTweetingEdge(t, replica, scratch, shard_rng);
      }
    });
  }
  pool_->Wait();
  // Force-merge every restricted sweep: the ingest driver reads the global
  // counts (AccumulateSample) between sweeps. Deltas apply in shard order,
  // exactly like MergeReplicas, restricted to the same selected rows (a
  // replica's unselected rows are stale and must never contribute).
  core::SuffStatsArena* global = sampler_->mutable_stats();
  for (int k = 0; k < num_threads_; ++k) {
    if (!resample_shard_selected_[k]) continue;
    const core::SuffStatsArena& replica = replicas_[k];
    for (graph::UserId u : resample_users_) {
      const int64_t begin = layout.phi_offset[u];
      const int64_t end = layout.phi_offset[u + 1];
      for (int64_t i = begin; i < end; ++i) {
        global->phi[i] += replica.phi[i] - snapshot_.phi[i];
      }
      global->phi_total[u] += replica.phi_total[u] - snapshot_.phi_total[u];
    }
    for (size_t i = 0; i < global->venue_counts.size(); ++i) {
      global->venue_counts[i] +=
          replica.venue_counts[i] - snapshot_.venue_counts[i];
    }
    for (size_t i = 0; i < global->venue_counts_total.size(); ++i) {
      global->venue_counts_total[i] +=
          replica.venue_counts_total[i] - snapshot_.venue_counts_total[i];
    }
  }
  // Unselected replicas never saw this sweep's counts; make sure a later
  // full RunSweep re-snapshots everything before using them.
  replicas_fresh_ = false;
  sweeps_since_sync_ = 0;
  sampler_->RecordSweepTrace();
}

void ParallelGibbsEngine::EndShardResample() {
  resample_active_ = false;
  resample_shard_selected_.clear();
  resample_following_.clear();
  resample_tweeting_.clear();
}

void ParallelGibbsEngine::Synchronize() {
  if (num_threads_ <= 1 || !replicas_fresh_) return;
  if (sweeps_since_sync_ > 0) {
    MergeReplicas();
  } else {
    // Replicas were refreshed but never swept: they equal the global
    // counts, so there is nothing to merge.
    replicas_fresh_ = false;
  }
}

std::vector<Pcg32State> ParallelGibbsEngine::ShardRngStates() const {
  std::vector<Pcg32State> states;
  states.reserve(shard_rngs_.size());
  for (const Pcg32& rng : shard_rngs_) states.push_back(rng.SaveState());
  return states;
}

Status ParallelGibbsEngine::RestoreShardRngStates(
    const std::vector<Pcg32State>& states) {
  if (states.size() != shard_rngs_.size()) {
    return Status::InvalidArgument(
        "shard RNG state count does not match num_threads");
  }
  for (size_t k = 0; k < states.size(); ++k) {
    shard_rngs_[k].RestoreState(states[k]);
  }
  replicas_fresh_ = false;
  sweeps_since_sync_ = 0;
  return Status::OK();
}

}  // namespace engine
}  // namespace mlp
