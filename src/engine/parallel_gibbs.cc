#include "engine/parallel_gibbs.h"

#include <algorithm>

#include "common/logging.h"

namespace mlp {
namespace engine {

ParallelGibbsEngine::ParallelGibbsEngine(core::GibbsSampler* sampler,
                                         const core::ModelInput* input,
                                         const core::MlpConfig* config,
                                         core::CandidateSpace* space)
    : sampler_(sampler),
      input_(input),
      config_(config),
      space_(space),
      num_threads_(std::max(1, config->num_threads)),
      sync_every_(std::max(1, config->sync_every_sweeps)) {
  MLP_CHECK(sampler_ != nullptr && input_ != nullptr && config_ != nullptr);
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
    shards_ = GraphSharder::Partition(*input_->graph, num_threads_);
    shard_rngs_.reserve(num_threads_);
    for (int k = 0; k < num_threads_; ++k) {
      // Decorrelated per-shard streams derived from the base seed: distinct
      // PCG increments give independent sequences, and the derivation is a
      // pure function of (seed, shard), so a fixed thread count replays the
      // exact same chain regardless of scheduling.
      shard_rngs_.emplace_back(
          config_->seed ^ (0x9e3779b97f4a7c15ULL * (k + 1)),
          0xda3e39cb94b95bdbULL + 2 * static_cast<uint64_t>(k));
    }
    replicas_.resize(num_threads_);
    scratches_.resize(num_threads_);
  }
}

void ParallelGibbsEngine::Initialize(Pcg32* rng) {
  sampler_->Initialize(rng);
  replicas_fresh_ = false;
  sweeps_since_sync_ = 0;
}

void ParallelGibbsEngine::RefreshReplicas() {
  // Flat value copies into buffers that persist across syncs: after the
  // first refresh binds every arena to the sampler's layout, this is pure
  // std::copy traffic with zero allocation.
  snapshot_.CopyValuesFrom(sampler_->stats());
  for (auto& replica : replicas_) replica.CopyValuesFrom(snapshot_);
  replicas_fresh_ = true;
  sweeps_since_sync_ = 0;
}

void ParallelGibbsEngine::MergeReplicas() {
  // global' = snapshot + Σ_k (replica_k - snapshot), accumulated in shard
  // order so the merge is deterministic. The global counts are untouched
  // between refresh and merge (workers only write replicas), so they still
  // equal the snapshot and the deltas apply onto them in place. Each
  // AccumulateDelta is a few fused passes over contiguous buffers.
  core::SuffStatsArena* global = sampler_->mutable_stats();
  for (const core::SuffStatsArena& replica : replicas_) {
    global->AccumulateDelta(replica, snapshot_);
  }
  replicas_fresh_ = false;
  sampler_->RecordSweepTrace();
}

void ParallelGibbsEngine::RunSweep(Pcg32* rng) {
  if (num_threads_ <= 1) {
    sampler_->RunSweep(rng);
    return;
  }
  if (!replicas_fresh_) RefreshReplicas();

  const bool use_following = sampler_->UseFollowing();
  const bool use_tweeting = sampler_->UseTweeting();
  for (int k = 0; k < num_threads_; ++k) {
    pool_->Submit([this, k, use_following, use_tweeting] {
      const Shard& shard = shards_[k];
      core::SuffStatsArena* replica = &replicas_[k];
      core::GibbsScratch* scratch = &scratches_[k];
      Pcg32* shard_rng = &shard_rngs_[k];
      if (use_following) {
        for (graph::EdgeId s : shard.following) {
          sampler_->SampleFollowingEdge(s, replica, scratch, shard_rng);
        }
      }
      if (use_tweeting) {
        for (graph::EdgeId t : shard.tweeting) {
          sampler_->SampleTweetingEdge(t, replica, scratch, shard_rng);
        }
      }
    });
  }
  pool_->Wait();

  if (++sweeps_since_sync_ >= sync_every_) MergeReplicas();
}

void ParallelGibbsEngine::ReshardByCost() {
  // Per-user cost = the blocked update's real inner-loop work over the
  // ACTIVE candidate rows: |cand_i|·|cand_j| per owned following edge,
  // |cand_i| per owned tweet. Recomputed from scratch each compaction —
  // pruning is rare (a handful of barriers per fit) and the pass is linear
  // in the edge lists.
  const graph::SocialGraph& graph = *input_->graph;
  std::vector<double> cost(graph.num_users(), 0.0);
  if (sampler_->UseFollowing()) {
    for (graph::EdgeId s = 0; s < graph.num_following(); ++s) {
      const graph::FollowingEdge& edge = graph.following(s);
      cost[edge.follower] +=
          static_cast<double>(space_->view(edge.follower).size()) *
          static_cast<double>(space_->view(edge.friend_user).size());
    }
  }
  if (sampler_->UseTweeting()) {
    for (graph::EdgeId t = 0; t < graph.num_tweeting(); ++t) {
      const graph::TweetingEdge& edge = graph.tweeting(t);
      cost[edge.user] += static_cast<double>(space_->view(edge.user).size());
    }
  }
  shards_ = GraphSharder::Partition(graph, num_threads_, cost);
}

bool ParallelGibbsEngine::MaybePrune(int32_t sweep_index) {
  if (space_ == nullptr || config_->prune_floor <= 0.0) return false;
  if (!IsSynchronized()) return false;
  core::CompactionPlan plan;
  if (!space_->PruneStep(sampler_->stats(), *config_, sweep_index, &plan)) {
    return false;
  }
  sampler_->ApplyCompaction(plan);
  if (num_threads_ > 1) {
    // Replicas and the snapshot are stale in both shape and values; the
    // next sweep's refresh re-binds them to the compacted arena. Shard
    // costs changed non-uniformly, so re-balance.
    replicas_fresh_ = false;
    ReshardByCost();
  }
  return true;
}

void ParallelGibbsEngine::OnActivationRestored() {
  if (space_ != nullptr && space_->layout_version() > 0 && num_threads_ > 1) {
    ReshardByCost();
  }
}

void ParallelGibbsEngine::Synchronize() {
  if (num_threads_ <= 1 || !replicas_fresh_) return;
  if (sweeps_since_sync_ > 0) {
    MergeReplicas();
  } else {
    // Replicas were refreshed but never swept: they equal the global
    // counts, so there is nothing to merge.
    replicas_fresh_ = false;
  }
}

std::vector<Pcg32State> ParallelGibbsEngine::ShardRngStates() const {
  std::vector<Pcg32State> states;
  states.reserve(shard_rngs_.size());
  for (const Pcg32& rng : shard_rngs_) states.push_back(rng.SaveState());
  return states;
}

Status ParallelGibbsEngine::RestoreShardRngStates(
    const std::vector<Pcg32State>& states) {
  if (states.size() != shard_rngs_.size()) {
    return Status::InvalidArgument(
        "shard RNG state count does not match num_threads");
  }
  for (size_t k = 0; k < states.size(); ++k) {
    shard_rngs_[k].RestoreState(states[k]);
  }
  replicas_fresh_ = false;
  sweeps_since_sync_ = 0;
  return Status::OK();
}

}  // namespace engine
}  // namespace mlp
