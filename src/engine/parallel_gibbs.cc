#include "engine/parallel_gibbs.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/fit_profile.h"
#include "obs/trace.h"

namespace mlp {
namespace engine {

namespace {

// Phase counters resolved once; Registry handles are stable for the
// process lifetime, so the hot path never touches the registry mutex.
struct FitCounters {
  obs::Counter* sweeps;
  obs::Counter* sweep_ns;
  obs::Counter* replica_refresh_ns;
  obs::Counter* alias_rebuild_ns;
  obs::Counter* shard_kernel_ns;
  obs::Counter* delta_fold_ns;
  obs::Counter* barrier_wait_ns;
  obs::Counter* delta_merge_ns;
  obs::Counter* prune_ns;
  obs::Counter* rebalance_ns;
  obs::Counter* mh_proposed;
  obs::Counter* mh_accepted;
  obs::Gauge* mh_accept_ppm;
};

const FitCounters& Counters() {
  static const FitCounters counters = [] {
    obs::Registry& registry = obs::Registry::Global();
    FitCounters c;
    c.sweeps = registry.GetCounter(obs::kFitSweepsTotal);
    c.sweep_ns = registry.GetCounter(obs::kFitSweepNs);
    c.replica_refresh_ns = registry.GetCounter(obs::kFitReplicaRefreshNs);
    c.alias_rebuild_ns = registry.GetCounter(obs::kFitAliasRebuildNs);
    c.shard_kernel_ns = registry.GetCounter(obs::kFitShardKernelNs);
    c.delta_fold_ns = registry.GetCounter(obs::kFitDeltaFoldNs);
    c.barrier_wait_ns = registry.GetCounter(obs::kFitBarrierWaitNs);
    c.delta_merge_ns = registry.GetCounter(obs::kFitDeltaMergeNs);
    c.prune_ns = registry.GetCounter(obs::kFitPruneNs);
    c.rebalance_ns = registry.GetCounter(obs::kFitRebalanceNs);
    c.mh_proposed = registry.GetCounter(obs::kFitMhProposedTotal);
    c.mh_accepted = registry.GetCounter(obs::kFitMhAcceptedTotal);
    c.mh_accept_ppm = registry.GetGauge(obs::kFitMhAcceptPpm);
    return c;
  }();
  return counters;
}

// Region r's half-open slice of a flat buffer of n elements, for T regions.
inline int64_t SliceBegin(int64_t n, int r, int regions) {
  return n * r / regions;
}

}  // namespace

ParallelGibbsEngine::ParallelGibbsEngine(core::GibbsSampler* sampler,
                                         const core::ModelInput* input,
                                         const core::MlpConfig* config,
                                         core::CandidateSpace* space)
    : sampler_(sampler),
      input_(input),
      config_(config),
      space_(space),
      num_threads_(std::max(1, config->num_threads)),
      sync_every_(std::max(1, config->sync_every_sweeps)) {
  MLP_CHECK(sampler_ != nullptr && input_ != nullptr && config_ != nullptr);
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
    const int num_sub = num_threads_ * kSubShardsPerThread;
    shards_ = GraphSharder::Partition(*input_->graph, num_sub);
    shard_rngs_.reserve(num_sub);
    for (int k = 0; k < num_sub; ++k) {
      // Decorrelated per-sub-shard streams derived from the base seed:
      // distinct PCG increments give independent sequences, and the
      // derivation is a pure function of (seed, sub-shard), so a fixed
      // thread count replays the exact same chain regardless of
      // scheduling.
      shard_rngs_.emplace_back(
          config_->seed ^ (0x9e3779b97f4a7c15ULL * (k + 1)),
          0xda3e39cb94b95bdbULL + 2 * static_cast<uint64_t>(k));
    }
    replicas_.resize(num_threads_);
    delta_accs_.resize(num_threads_);
    scratches_.resize(num_threads_);
    alias_scratches_.resize(num_threads_);
    RebuildTouchSets();
    ResetSchedule();
  }
}

void ParallelGibbsEngine::Initialize(Pcg32* rng) {
  sampler_->Initialize(rng);
  replicas_fresh_ = false;
  proposals_stale_ = true;
  sweeps_since_sync_ = 0;
}

void ParallelGibbsEngine::RebuildTouchSets() {
  const graph::SocialGraph& graph = *input_->graph;
  const bool use_following = sampler_->UseFollowing();
  const bool use_tweeting = sampler_->UseTweeting();
  touch_users_.assign(shards_.size(), {});
  for (size_t k = 0; k < shards_.size(); ++k) {
    std::vector<graph::UserId>& touched = touch_users_[k];
    if (use_following) {
      for (graph::EdgeId s : shards_[k].following) {
        const graph::FollowingEdge& edge = graph.following(s);
        touched.push_back(edge.follower);
        touched.push_back(edge.friend_user);
      }
    }
    if (use_tweeting) {
      for (graph::EdgeId t : shards_[k].tweeting) {
        touched.push_back(graph.tweeting(t).user);
      }
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  }
}

void ParallelGibbsEngine::ResetSchedule() {
  ewma_ns_.assign(shards_.size(), -1.0);
  order_.resize(shards_.size());
  for (size_t k = 0; k < order_.size(); ++k) order_[k] = static_cast<int>(k);
  // Until measurements arrive, the static edge-count weight is the best
  // available cost prior. stable_sort keeps ties in index order.
  std::stable_sort(order_.begin(), order_.end(), [this](int a, int b) {
    return shards_[a].Weight() > shards_[b].Weight();
  });
}

void ParallelGibbsEngine::RefreshReplicas() {
  const core::SuffStatsLayout* layout = &sampler_->layout();
  for (int i = 0; i < num_threads_; ++i) {
    pool_->Submit([this, i, layout] {
      obs::ScopedSpan span(Counters().replica_refresh_ns, "replica_refresh");
      replicas_[i].CopyValuesFrom(sampler_->stats());
      delta_accs_[i].Reset(layout);
    });
  }
  pool_->Wait();
  replicas_fresh_ = true;
  sweeps_since_sync_ = 0;
}

void ParallelGibbsEngine::RebuildProposals() {
  const core::CandidateSpace& space = sampler_->space();
  if (!proposals_.bound() ||
      proposals_.layout_version() != space.layout_version()) {
    proposals_.Bind(&space);
  }
  const int64_t num_users = space.num_users();
  for (int i = 0; i < num_threads_; ++i) {
    const graph::UserId begin =
        static_cast<graph::UserId>(SliceBegin(num_users, i, num_threads_));
    const graph::UserId end =
        static_cast<graph::UserId>(SliceBegin(num_users, i + 1, num_threads_));
    pool_->Submit([this, i, begin, end] {
      obs::ScopedSpan span(Counters().alias_rebuild_ns, "alias_rebuild");
      proposals_.RebuildRange(sampler_->stats(), begin, end,
                              &alias_scratches_[i]);
    });
  }
  pool_->Wait();
  proposals_stale_ = false;
}

void ParallelGibbsEngine::FoldShardDelta(int sub_shard, int slot) {
  const core::SuffStatsArena& global = sampler_->stats();
  const core::SuffStatsLayout& layout = sampler_->layout();
  core::SuffStatsArena* replica = &replicas_[slot];
  core::SuffStatsArena* acc = &delta_accs_[slot];

  for (graph::UserId u : touch_users_[sub_shard]) {
    const int64_t begin = layout.phi_offset[u];
    const int64_t end = layout.phi_offset[u + 1];
    for (int64_t i = begin; i < end; ++i) {
      const double d = replica->phi[i] - global.phi[i];
      if (d != 0.0) {
        acc->phi[i] += d;
        replica->phi[i] = global.phi[i];
      }
    }
    const double dt = replica->phi_total[u] - global.phi_total[u];
    if (dt != 0.0) {
      acc->phi_total[u] += dt;
      replica->phi_total[u] = global.phi_total[u];
    }
  }

  // The venue rectangle is location×venue — far too wide to diff per
  // sub-shard — so the fast tweeting kernel logs exactly the cells it
  // touched. Duplicate log entries are harmless: after the first visit the
  // replica cell equals the global again and the diff is zero. Totals piggy-
  // back on the logged cells' locations the same way.
  core::GibbsScratch* scratch = &scratches_[slot];
  if (!scratch->venue_cells.empty()) {
    const int64_t num_venues = layout.num_venues;
    for (const int64_t cell : scratch->venue_cells) {
      const double d = replica->venue_counts[cell] - global.venue_counts[cell];
      if (d != 0.0) {
        acc->venue_counts[cell] += d;
        replica->venue_counts[cell] = global.venue_counts[cell];
      }
      const int32_t loc = static_cast<int32_t>(cell / num_venues);
      const double dt =
          replica->venue_counts_total[loc] - global.venue_counts_total[loc];
      if (dt != 0.0) {
        acc->venue_counts_total[loc] += dt;
        replica->venue_counts_total[loc] = global.venue_counts_total[loc];
      }
    }
    scratch->venue_cells.clear();
  }
}

void ParallelGibbsEngine::MergeAndRefresh() {
  core::SuffStatsArena* global = sampler_->mutable_stats();
  // One parallel pass, region-sliced: thread r owns slice r of every flat
  // buffer, merges all accumulators' slices into the global slice (zeroing
  // them), then copies the merged slice into every replica. Merge and
  // refresh overlap inside a single barrier, and each byte of the global
  // counts has exactly one writer. Accumulator deltas are integer-valued,
  // so the per-cell sums are exact regardless of which worker produced
  // which delta — the merged counts are schedule-independent.
  for (int r = 0; r < num_threads_; ++r) {
    pool_->Submit([this, global, r] {
      auto merge_slice = [](std::vector<double>* dst, std::vector<double>* acc,
                            int64_t begin, int64_t end) {
        double* d = dst->data();
        double* a = acc->data();
        for (int64_t i = begin; i < end; ++i) {
          d[i] += a[i];
          a[i] = 0.0;
        }
      };
      auto copy_slice = [](const std::vector<double>& src,
                           std::vector<double>* dst, int64_t begin,
                           int64_t end) {
        std::copy(src.begin() + begin, src.begin() + end,
                  dst->begin() + begin);
      };
      const int64_t phi_b = SliceBegin(global->phi.size(), r, num_threads_);
      const int64_t phi_e = SliceBegin(global->phi.size(), r + 1, num_threads_);
      const int64_t tot_b =
          SliceBegin(global->phi_total.size(), r, num_threads_);
      const int64_t tot_e =
          SliceBegin(global->phi_total.size(), r + 1, num_threads_);
      const int64_t ven_b =
          SliceBegin(global->venue_counts.size(), r, num_threads_);
      const int64_t ven_e =
          SliceBegin(global->venue_counts.size(), r + 1, num_threads_);
      const int64_t vtot_b =
          SliceBegin(global->venue_counts_total.size(), r, num_threads_);
      const int64_t vtot_e =
          SliceBegin(global->venue_counts_total.size(), r + 1, num_threads_);
      {
        obs::ScopedSpan span(Counters().delta_merge_ns, "delta_merge");
        for (core::SuffStatsArena& acc : delta_accs_) {
          merge_slice(&global->phi, &acc.phi, phi_b, phi_e);
          merge_slice(&global->phi_total, &acc.phi_total, tot_b, tot_e);
          merge_slice(&global->venue_counts, &acc.venue_counts, ven_b, ven_e);
          merge_slice(&global->venue_counts_total, &acc.venue_counts_total,
                      vtot_b, vtot_e);
        }
      }
      {
        obs::ScopedSpan span(Counters().replica_refresh_ns, "replica_refresh");
        for (core::SuffStatsArena& replica : replicas_) {
          copy_slice(global->phi, &replica.phi, phi_b, phi_e);
          copy_slice(global->phi_total, &replica.phi_total, tot_b, tot_e);
          copy_slice(global->venue_counts, &replica.venue_counts, ven_b,
                     ven_e);
          copy_slice(global->venue_counts_total, &replica.venue_counts_total,
                     vtot_b, vtot_e);
        }
      }
    });
  }
  pool_->Wait();
  sweeps_since_sync_ = 0;
  proposals_stale_ = true;  // rebuilt lazily from the just-merged counts
  // Timed separately (fit_trace_record_ns, inside the sampler): the sweep
  // trace diff is main-thread work that is easy to mistake for merge cost.
  sampler_->RecordSweepTrace();
}

void ParallelGibbsEngine::RunSweep(Pcg32* rng) {
  Counters().sweeps->Add(1);
  obs::ScopedSpan sweep_span(Counters().sweep_ns, "sweep");
  if (num_threads_ <= 1) {
    sampler_->RunSweep(rng);
    return;
  }
  if (!replicas_fresh_) RefreshReplicas();
  if (proposals_stale_) RebuildProposals();

  const bool use_following = sampler_->UseFollowing();
  const bool use_tweeting = sampler_->UseTweeting();
  const int num_sub = static_cast<int>(shards_.size());
  sub_kernel_ns_.assign(num_sub, 0);
  thread_busy_ns_.assign(num_threads_, 0);
  const int64_t section_start_ns = obs::NowNs();
  // Work queue: sub-shards submitted heaviest-first (online LPT over the
  // measured EWMA costs); idle workers pull the next one. The fold after
  // each sub-shard reverts the worker's replica to the global counts, so
  // the assignment of sub-shards to workers is semantically neutral — only
  // the makespan depends on it.
  for (int idx = 0; idx < num_sub; ++idx) {
    const int k = order_[idx];
    pool_->Submit([this, k, use_following, use_tweeting] {
      const int slot = ThreadPool::CurrentWorkerIndex();
      const int64_t kernel_start_ns = obs::NowNs();
      const Shard& shard = shards_[k];
      core::SuffStatsArena* replica = &replicas_[slot];
      core::GibbsScratch* scratch = &scratches_[slot];
      Pcg32* shard_rng = &shard_rngs_[k];
      if (use_following) {
        for (graph::EdgeId s : shard.following) {
          sampler_->SampleFollowingEdgeFast(s, replica, scratch, shard_rng,
                                            proposals_);
        }
      }
      if (use_tweeting) {
        for (graph::EdgeId t : shard.tweeting) {
          sampler_->SampleTweetingEdgeFast(t, replica, scratch, shard_rng,
                                           proposals_);
        }
      }
      const int64_t kernel_ns = obs::EndSpan(Counters().shard_kernel_ns,
                                             "shard_kernel", kernel_start_ns);
      sub_kernel_ns_[k] = kernel_ns;
      const int64_t fold_start_ns = obs::NowNs();
      FoldShardDelta(k, slot);
      const int64_t fold_ns = obs::EndSpan(Counters().delta_fold_ns,
                                           "delta_fold", fold_start_ns);
      thread_busy_ns_[slot] += kernel_ns + fold_ns;
    });
  }
  pool_->Wait();
  if (obs::Enabled()) {
    // Barrier wait isn't directly observable per worker (the pool hands
    // idle threads the next task immediately); derive it as the idle
    // remainder of the parallel section: every thread spans the whole
    // section, so threads × section − Σ busy = total time threads spent
    // NOT running kernels or folds — queue latency plus the tail wait on
    // the last sub-shards.
    const int64_t section_ns = obs::NowNs() - section_start_ns;
    int64_t busy_sum_ns = 0;
    for (int64_t ns : thread_busy_ns_) busy_sum_ns += ns;
    const int64_t barrier_ns = num_threads_ * section_ns - busy_sum_ns;
    if (barrier_ns > 0) {
      Counters().barrier_wait_ns->Add(static_cast<uint64_t>(barrier_ns));
    }
    // Fold this sweep's alias-MH mixing tallies from the worker scratches
    // (workers are quiesced at this point, so plain reads are safe) and
    // publish the acceptance rate as a gauge.
    int64_t proposed = 0;
    int64_t accepted = 0;
    for (core::GibbsScratch& scratch : scratches_) {
      proposed += scratch.mh_proposed;
      accepted += scratch.mh_accepted;
      scratch.mh_proposed = 0;
      scratch.mh_accepted = 0;
    }
    if (proposed > 0) {
      Counters().mh_proposed->Add(static_cast<uint64_t>(proposed));
      Counters().mh_accepted->Add(static_cast<uint64_t>(accepted));
      Counters().mh_accept_ppm->Set(accepted * 1000000 / proposed);
    }
  }
  // Fold this sweep's measurements into the cost model and re-derive the
  // submit order. Purely a scheduling signal: results are independent of
  // it, so feeding wall-clock noise back in cannot break determinism.
  for (int k = 0; k < num_sub; ++k) {
    const double measured = static_cast<double>(sub_kernel_ns_[k]);
    ewma_ns_[k] =
        ewma_ns_[k] < 0.0 ? measured : 0.7 * ewma_ns_[k] + 0.3 * measured;
  }
  std::stable_sort(order_.begin(), order_.end(), [this](int a, int b) {
    return ewma_ns_[a] > ewma_ns_[b];
  });

  if (++sweeps_since_sync_ >= sync_every_) MergeAndRefresh();
}

void ParallelGibbsEngine::ReshardByCost() {
  // Per-user cost = the exact update's inner-loop work over the ACTIVE
  // candidate rows: |cand_i|·|cand_j| per owned following edge, |cand_i|
  // per owned tweet. (The fast kernels are ~O(|cand_i|) per edge, but the
  // candidate-product measure still orders users correctly and the EWMA
  // feedback corrects the residual error within a few sweeps.) Recomputed
  // from scratch each compaction — pruning is rare and the pass is linear
  // in the edge lists.
  const graph::SocialGraph& graph = *input_->graph;
  std::vector<double> cost(graph.num_users(), 0.0);
  if (sampler_->UseFollowing()) {
    for (graph::EdgeId s = 0; s < graph.num_following(); ++s) {
      const graph::FollowingEdge& edge = graph.following(s);
      cost[edge.follower] +=
          static_cast<double>(space_->view(edge.follower).size()) *
          static_cast<double>(space_->view(edge.friend_user).size());
    }
  }
  if (sampler_->UseTweeting()) {
    for (graph::EdgeId t = 0; t < graph.num_tweeting(); ++t) {
      const graph::TweetingEdge& edge = graph.tweeting(t);
      cost[edge.user] += static_cast<double>(space_->view(edge.user).size());
    }
  }
  shards_ = GraphSharder::Partition(graph, num_threads_ * kSubShardsPerThread,
                                    cost);
  RebuildTouchSets();
  ResetSchedule();
}

bool ParallelGibbsEngine::MaybePrune(int32_t sweep_index) {
  if (space_ == nullptr || config_->prune_floor <= 0.0) return false;
  if (!IsSynchronized()) return false;
  bool pruned = false;
  {
    obs::ScopedSpan span(Counters().prune_ns, "prune");
    core::CompactionPlan plan;
    pruned = space_->PruneStep(sampler_->stats(), *config_, sweep_index, &plan);
    if (pruned) sampler_->ApplyCompaction(plan);
  }
  if (!pruned) return false;
  if (num_threads_ > 1) {
    // Replicas, accumulators and proposal tables are stale in both shape
    // and values; the next sweep's refresh re-binds them to the compacted
    // arena. Shard costs changed non-uniformly, so re-balance — timed as
    // its own phase (fit_rebalance_ns) so prune time means prune time.
    obs::ScopedSpan span(Counters().rebalance_ns, "rebalance");
    replicas_fresh_ = false;
    proposals_stale_ = true;
    ReshardByCost();
  }
  return true;
}

void ParallelGibbsEngine::OnActivationRestored() {
  if (space_ != nullptr && space_->layout_version() > 0 && num_threads_ > 1) {
    ReshardByCost();
  }
}

std::vector<int> ParallelGibbsEngine::UserShards() const {
  std::vector<int> owner(input_->graph->num_users(), 0);
  for (size_t k = 0; k < shards_.size(); ++k) {
    for (graph::UserId u : shards_[k].users) owner[u] = static_cast<int>(k);
  }
  return owner;
}

Status ParallelGibbsEngine::SetPartition(std::vector<Shard> shards) {
  if (num_threads_ <= 1) return Status::OK();
  if (static_cast<int>(shards.size()) != num_threads_) {
    return Status::InvalidArgument(
        "partition must have exactly one shard per thread");
  }
  if (!IsSynchronized()) {
    return Status::FailedPrecondition(
        "cannot repartition with unmerged replica deltas");
  }
  size_t users = 0;
  for (const Shard& shard : shards) users += shard.users.size();
  if (users != static_cast<size_t>(input_->graph->num_users())) {
    return Status::InvalidArgument(
        "partition does not cover every user exactly once");
  }
  shards_ = std::move(shards);
  RebuildTouchSets();
  ResetSchedule();
  replicas_fresh_ = false;
  proposals_stale_ = true;
  return Status::OK();
}

Status ParallelGibbsEngine::BeginShardResample(
    const std::vector<int>& shard_set) {
  if (!IsSynchronized()) {
    return Status::FailedPrecondition(
        "cannot begin a shard resample with unmerged replica deltas");
  }
  const int num_shards =
      num_threads_ <= 1 ? 1 : static_cast<int>(shards_.size());
  resample_shard_selected_.assign(num_shards, 0);
  for (int k : shard_set) {
    if (k < 0 || k >= num_shards) {
      return Status::InvalidArgument("resample shard index out of range");
    }
    resample_shard_selected_[k] = 1;
  }

  const graph::SocialGraph& graph = *input_->graph;
  resample_user_mask_.assign(graph.num_users(), 0);
  if (num_threads_ <= 1) {
    if (resample_shard_selected_[0]) {
      resample_user_mask_.assign(graph.num_users(), 1);
    }
  } else {
    for (size_t k = 0; k < shards_.size(); ++k) {
      if (!resample_shard_selected_[k]) continue;
      for (graph::UserId u : shards_[k].users) resample_user_mask_[u] = 1;
    }
  }
  resample_users_.clear();
  for (graph::UserId u = 0; u < graph.num_users(); ++u) {
    if (resample_user_mask_[u]) resample_users_.push_back(u);
  }

  // Eligibility: a following edge's resample writes BOTH endpoints' ϕ
  // rows, so it may only run when both live in selected shards — that is
  // the invariant that keeps unselected shards bit-identical. Edge lists
  // are per owning shard so the sweep stays a per-shard loop.
  resample_following_mask_.assign(
      sampler_->UseFollowing() ? graph.num_following() : 0, 0);
  resample_tweeting_mask_.assign(
      sampler_->UseTweeting() ? graph.num_tweeting() : 0, 0);
  resample_following_.assign(num_shards, {});
  resample_tweeting_.assign(num_shards, {});
  const std::vector<int> owner =
      num_threads_ <= 1 ? std::vector<int>(graph.num_users(), 0)
                        : UserShards();
  if (sampler_->UseFollowing()) {
    for (graph::EdgeId s = 0; s < graph.num_following(); ++s) {
      const graph::FollowingEdge& edge = graph.following(s);
      if (resample_user_mask_[edge.follower] &&
          resample_user_mask_[edge.friend_user]) {
        resample_following_mask_[s] = 1;
        resample_following_[owner[edge.follower]].push_back(s);
      }
    }
  }
  if (sampler_->UseTweeting()) {
    for (graph::EdgeId t = 0; t < graph.num_tweeting(); ++t) {
      const graph::TweetingEdge& edge = graph.tweeting(t);
      if (resample_user_mask_[edge.user]) {
        resample_tweeting_mask_[t] = 1;
        resample_tweeting_[owner[edge.user]].push_back(t);
      }
    }
  }
  resample_active_ = true;
  return Status::OK();
}

void ParallelGibbsEngine::ResampleShards(Pcg32* rng) {
  MLP_CHECK(resample_active_);
  if (num_threads_ <= 1) {
    core::SuffStatsArena* stats = sampler_->mutable_stats();
    core::GibbsScratch scratch;
    for (graph::EdgeId s : resample_following_[0]) {
      sampler_->SampleFollowingEdge(s, stats, &scratch, rng);
    }
    for (graph::EdgeId t : resample_tweeting_[0]) {
      sampler_->SampleTweetingEdge(t, stats, &scratch, rng);
    }
    sampler_->RecordSweepTrace();
    return;
  }

  // Refresh and merge ONLY the selected shards' deltas, and within them
  // only the selected users' ϕ rows: the restricted sweep's kernels read
  // and write exactly those rows (eligible edges have BOTH endpoints
  // selected), so everything else in a replica may stay stale without
  // ever being observed. The venue rectangle is location×venue (a kernel
  // may read/write any location's row), so it refreshes and merges in
  // full — but its size is independent of the user population. Net:
  // per-sweep traffic scales with the delta's touched rows + the venue
  // rectangle, not with the whole world times the thread count.
  const core::SuffStatsLayout& layout = sampler_->layout();
  const core::SuffStatsArena& global_now = sampler_->stats();
  auto copy_selected = [&](const core::SuffStatsArena& src,
                           core::SuffStatsArena* dst) {
    if (dst->layout != &layout) dst->Reset(&layout);
    for (graph::UserId u : resample_users_) {
      const int64_t begin = layout.phi_offset[u];
      const int64_t end = layout.phi_offset[u + 1];
      std::copy(src.phi.begin() + begin, src.phi.begin() + end,
                dst->phi.begin() + begin);
      dst->phi_total[u] = src.phi_total[u];
    }
    dst->venue_counts = src.venue_counts;
    dst->venue_counts_total = src.venue_counts_total;
  };
  copy_selected(global_now, &snapshot_);

  // The selected shards can outnumber the worker slots (the ingest
  // partition is per-thread today, but nothing here should depend on
  // that), so group them onto slots round-robin in ascending shard order;
  // each slot sweeps its shards sequentially against one replica. With at
  // most one shard per slot this degenerates to exactly the historical
  // one-task-per-shard dispatch.
  std::vector<std::vector<int>> slot_shards(num_threads_);
  int next_slot = 0;
  for (size_t k = 0; k < resample_shard_selected_.size(); ++k) {
    if (!resample_shard_selected_[k]) continue;
    slot_shards[next_slot++ % num_threads_].push_back(static_cast<int>(k));
  }
  for (int i = 0; i < num_threads_; ++i) {
    if (slot_shards[i].empty()) continue;
    copy_selected(snapshot_, &replicas_[i]);
    pool_->Submit([this, i, shard_list = slot_shards[i]] {
      core::SuffStatsArena* replica = &replicas_[i];
      core::GibbsScratch* scratch = &scratches_[i];
      for (int k : shard_list) {
        Pcg32* shard_rng = &shard_rngs_[k];
        for (graph::EdgeId s : resample_following_[k]) {
          sampler_->SampleFollowingEdge(s, replica, scratch, shard_rng);
        }
        for (graph::EdgeId t : resample_tweeting_[k]) {
          sampler_->SampleTweetingEdge(t, replica, scratch, shard_rng);
        }
      }
    });
  }
  pool_->Wait();
  // Force-merge every restricted sweep: the ingest driver reads the global
  // counts (AccumulateSample) between sweeps. Deltas apply in slot order,
  // restricted to the selected rows (a replica's unselected rows are stale
  // and must never contribute).
  core::SuffStatsArena* global = sampler_->mutable_stats();
  for (int i = 0; i < num_threads_; ++i) {
    if (slot_shards[i].empty()) continue;
    const core::SuffStatsArena& replica = replicas_[i];
    for (graph::UserId u : resample_users_) {
      const int64_t begin = layout.phi_offset[u];
      const int64_t end = layout.phi_offset[u + 1];
      for (int64_t j = begin; j < end; ++j) {
        global->phi[j] += replica.phi[j] - snapshot_.phi[j];
      }
      global->phi_total[u] += replica.phi_total[u] - snapshot_.phi_total[u];
    }
    for (size_t j = 0; j < global->venue_counts.size(); ++j) {
      global->venue_counts[j] +=
          replica.venue_counts[j] - snapshot_.venue_counts[j];
    }
    for (size_t j = 0; j < global->venue_counts_total.size(); ++j) {
      global->venue_counts_total[j] +=
          replica.venue_counts_total[j] - snapshot_.venue_counts_total[j];
    }
  }
  // The replicas diverged from the (now updated) global counts; make sure
  // a later full RunSweep re-snapshots everything before using them.
  replicas_fresh_ = false;
  proposals_stale_ = true;
  sweeps_since_sync_ = 0;
  sampler_->RecordSweepTrace();
}

void ParallelGibbsEngine::EndShardResample() {
  resample_active_ = false;
  resample_shard_selected_.clear();
  resample_following_.clear();
  resample_tweeting_.clear();
}

void ParallelGibbsEngine::Synchronize() {
  if (num_threads_ <= 1 || sweeps_since_sync_ == 0) return;
  MergeAndRefresh();
}

std::vector<Pcg32State> ParallelGibbsEngine::ShardRngStates() const {
  std::vector<Pcg32State> states;
  states.reserve(shard_rngs_.size());
  for (const Pcg32& rng : shard_rngs_) states.push_back(rng.SaveState());
  return states;
}

Status ParallelGibbsEngine::RestoreShardRngStates(
    const std::vector<Pcg32State>& states) {
  if (states.size() != shard_rngs_.size()) {
    return Status::InvalidArgument(
        "shard RNG state count does not match the engine's sub-shard "
        "streams");
  }
  for (size_t k = 0; k < states.size(); ++k) {
    shard_rngs_[k].RestoreState(states[k]);
  }
  replicas_fresh_ = false;
  proposals_stale_ = true;
  sweeps_since_sync_ = 0;
  return Status::OK();
}

}  // namespace engine
}  // namespace mlp
