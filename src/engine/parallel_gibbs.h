#ifndef MLP_ENGINE_PARALLEL_GIBBS_H_
#define MLP_ENGINE_PARALLEL_GIBBS_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/candidate_space.h"
#include "core/input.h"
#include "core/model_config.h"
#include "core/sampler.h"
#include "engine/graph_sharder.h"
#include "engine/thread_pool.h"
#include "stats/alias_table.h"

namespace mlp {
namespace engine {

/// Parallel sharded driver for the collapsed Gibbs sampler (AD-LDA-style
/// approximate collapsed Gibbs; see src/engine/README.md).
///
/// Users and the relationships they own are partitioned into
/// `kSubShardsPerThread × num_threads` SUB-SHARDS that form a dynamic work
/// queue: each sweep, the sub-shards are submitted to the pool in
/// measured-cost order (heaviest first, by an EWMA of each sub-shard's
/// kernel nanoseconds from previous sweeps — online LPT) and idle workers
/// pull the next one, so a mis-predicted shard cost degrades the balance by
/// at most one sub-shard instead of one thread's whole sweep.
///
/// A worker runs a sub-shard's edges through the sampler's FAST alias-MH
/// kernels (GibbsSampler::Sample*EdgeFast) against the worker's
/// thread-local statistics replica, then immediately FOLDS the sub-shard's
/// delta out of the replica into the worker's delta accumulator and reverts
/// the replica to the global values. The fold touches only the sub-shard's
/// user rows plus the venue cells the kernels logged, and it re-establishes
/// the invariant `replica == global counts` before the next sub-shard runs
/// — which makes the chain a pure function of (global state, per-sub-shard
/// RNG streams): WHICH worker runs a sub-shard, and in WHAT order, is
/// semantically neutral. Counts are integer-valued doubles, so the merge
/// arithmetic is exact and the engine stays run-to-run deterministic for a
/// fixed (seed, num_threads) even under dynamic scheduling.
///
/// At the sync barrier one parallel pass merges every accumulator into the
/// global counts AND refreshes every replica, region by region: thread r
/// owns slice r of each flat buffer, sums the accumulators' slices into the
/// global slice, zeroes them, and copies the merged slice back into all
/// replicas — merge and refresh overlap in a single barrier instead of a
/// serial merge followed by a serial (or separate) refresh. The per-user
/// alias proposal tables (core::ProposalTables) are then rebuilt in
/// parallel from the merged counts; they stay frozen for the next sync
/// epoch and the kernels' MH acceptance ratio corrects their staleness.
///
/// With `config->num_threads <= 1` every call delegates to the sequential
/// `GibbsSampler`, using the caller's RNG and the exact blocked kernels —
/// results are bit-for-bit identical to not using the engine at all. With N
/// threads each sub-shard draws from its own Pcg32 stream derived from
/// `config->seed`, so the chain is independent of thread scheduling but
/// differs (as any approximate parallel chain must) from the sequential
/// one.
///
/// `config->sync_every_sweeps > 1` lets the accumulators collect that many
/// sweeps of deltas between merges, trading statistical freshness for fewer
/// barriers — callers that read global counts mid-run must `Synchronize()`
/// first.
class ParallelGibbsEngine {
 public:
  /// Sub-shards per worker thread. Enough queue depth that dynamic
  /// scheduling can absorb a ~kSubShardsPerThread-to-1 cost misprediction;
  /// small enough that the per-sub-shard fold and submit overheads stay
  /// negligible against the kernel time.
  static constexpr int kSubShardsPerThread = 4;

  /// All pointers must outlive the engine. The sampler must belong to the
  /// same input/config. `space` is the candidate space the sampler reads
  /// through — required for sweep-time pruning (MaybePrune) and shard-cost
  /// re-estimation; pass nullptr only for drivers that never prune.
  ParallelGibbsEngine(core::GibbsSampler* sampler,
                      const core::ModelInput* input,
                      const core::MlpConfig* config,
                      core::CandidateSpace* space = nullptr);

  /// Sequential initialization (identical for every thread count).
  void Initialize(Pcg32* rng);

  /// One full Gibbs sweep over all relationships. `rng` drives the chain
  /// only in the sequential (num_threads <= 1) path.
  void RunSweep(Pcg32* rng);

  /// Forces any pending accumulator deltas into the global counts. No-op
  /// when already synchronized (always, at sync_every_sweeps == 1).
  void Synchronize();

  /// True when the global counts reflect every sweep run so far — i.e. no
  /// accumulator holds unmerged deltas. Checkpoints may only be cut here;
  /// always true in the sequential path and at sync_every_sweeps == 1.
  /// (Replicas are reverted to the global values after every sub-shard
  /// fold, so unlike the pre-fold design they never hold deltas
  /// themselves.)
  bool IsSynchronized() const {
    return num_threads_ <= 1 || sweeps_since_sync_ == 0;
  }

  // ---- adaptive candidate pruning (used by core::MlpModel::Fit) ----

  /// One sweep-time pruning barrier: no-op unless pruning is configured
  /// (config->prune_floor > 0, a space was given) and the engine is at a
  /// merged sync barrier. Otherwise runs CandidateSpace::PruneStep against
  /// the global counts; if anything was deactivated, drives the sampler's
  /// arena/chain compaction, then (timed separately, fit_rebalance_ns)
  /// re-estimates per-user costs and re-partitions the sub-shards so the
  /// scheduler's balance tracks the shrinking inner loops. Returns true iff
  /// a compaction happened. Deterministic: pure function of the merged
  /// counts, so fixed (seed, num_threads) still replays the exact same
  /// chain.
  bool MaybePrune(int32_t sweep_index);

  /// After a warm start restored the space's activation state: re-derives
  /// the cost-based sub-shards a pruned fit was running with at the
  /// checkpoint cut (no-op when nothing was ever pruned, keeping the
  /// unit-cost partition — and its bit-exact-resume guarantee — untouched).
  void OnActivationRestored();

  // ---- shard-scoped warm resampling (streaming ingest, src/stream/) ----

  /// Shard index owning each user under the current partition. In the
  /// sequential path there is exactly one conceptual shard (all zeros).
  std::vector<int> UserShards() const;

  /// Replaces the partition (parallel path only; no-op when sequential).
  /// Streaming ingest uses this with GraphSharder::PartitionGrouped to
  /// pack the delta-touched users into the fewest shards their sampling
  /// cost warrants — the smaller the selected-shard closure, the less
  /// ResampleShards has to sweep. Must cover every user exactly once with
  /// exactly num_threads() shards, at a merged barrier. (The ingest
  /// partition is deliberately coarser than the sweep path's sub-shards:
  /// the selected-closure math wants few, tightly packed shards.)
  Status SetPartition(std::vector<Shard> shards);

  /// Prepares a shard-scoped resample pass: selects the shards in
  /// `shard_set` (indices into shards(); {0} is the whole graph when
  /// sequential) and precomputes the owned edges eligible for resampling.
  /// A following edge resamples BOTH endpoints' counts, so it is eligible
  /// only when follower AND friend live in selected shards; a tweeting
  /// edge needs just its owner. Everything else — unselected shards'
  /// counts, assignments, and cross-boundary edges — is left bit-identical
  /// by the pass. The per-user/per-edge eligibility masks are exposed
  /// below so the caller can merge results accordingly. Fails on an
  /// out-of-range shard index or when accumulators hold unmerged deltas.
  Status BeginShardResample(const std::vector<int>& shard_set);

  /// One restricted Gibbs sweep over the shards selected by
  /// BeginShardResample, using the EXACT blocked kernels (ingest quality
  /// is bounded by few restricted sweeps, so the exact conditionals are
  /// worth their cost), with deltas force-merged at the end of the call so
  /// the caller can read (and accumulate from) fresh global counts between
  /// sweeps. Do not interleave with RunSweep/MaybePrune while a pass is
  /// open.
  void ResampleShards(Pcg32* rng);

  /// Ends the pass; RunSweep sweeps the full graph again.
  void EndShardResample();

  bool resample_active() const { return resample_active_; }
  const std::vector<uint8_t>& resample_user_mask() const {
    return resample_user_mask_;
  }
  const std::vector<uint8_t>& resample_following_mask() const {
    return resample_following_mask_;
  }
  const std::vector<uint8_t>& resample_tweeting_mask() const {
    return resample_tweeting_mask_;
  }

  // ---- checkpoint / warm-start API (used by core::MlpModel) ----

  /// Exact positions of the per-sub-shard RNG streams (empty when
  /// sequential). There are kSubShardsPerThread × num_threads streams; the
  /// snapshot format stores the count explicitly, so the engine owns the
  /// number, not the file format.
  std::vector<Pcg32State> ShardRngStates() const;

  /// Resumes after the sampler's state was restored from a snapshot:
  /// sub-shard streams continue where they left off and replicas are
  /// marked stale so the next sweep re-snapshots the restored global
  /// counts. `states` must have one entry per sub-shard stream (empty for
  /// the sequential path).
  Status RestoreShardRngStates(const std::vector<Pcg32State>& states);

  int num_threads() const { return num_threads_; }
  const std::vector<Shard>& shards() const { return shards_; }

  /// Exact allocated bytes of the engine's own buffers: per-worker replica
  /// + accumulator arenas, the proposal tables and the resample-pass
  /// snapshot arena (zero for the sequential path, which owns none).
  int64_t AccountedBytes() const {
    int64_t total = proposals_.AccountedBytes() + snapshot_.AccountedBytes();
    for (const auto& r : replicas_) total += r.AccountedBytes();
    for (const auto& a : delta_accs_) total += a.AccountedBytes();
    return total;
  }

  /// Per-worker busy nanoseconds (kernel + fold) of the most recent
  /// parallel sweep — the scheduler-quality signal behind the bench's
  /// shard_kernel max/mean metric. Empty until the first parallel sweep;
  /// always empty in the sequential path.
  const std::vector<int64_t>& LastSweepThreadBusyNs() const {
    return thread_busy_ns_;
  }

 private:
  /// Cold refresh: every replica copies the full global counts and every
  /// accumulator resets to zero over the current layout. Needed after
  /// anything that invalidates replica values wholesale (initialize,
  /// compaction, restore, repartition, resample pass).
  void RefreshReplicas();
  /// The sync barrier: one parallel region-sliced pass that merges all
  /// accumulators into the global counts and refreshes all replicas, then
  /// marks the proposal tables stale and records the sweep trace.
  void MergeAndRefresh();
  /// Rebuilds the alias proposal tables from the merged global counts
  /// (parallel over user ranges). Requires IsSynchronized().
  void RebuildProposals();
  /// Moves sub-shard `k`'s delta out of worker `slot`'s replica into its
  /// accumulator and reverts the replica to the global values — only the
  /// sub-shard's touched user rows plus the kernels' logged venue cells.
  void FoldShardDelta(int sub_shard, int slot);
  /// Re-partitions sub-shards with per-user costs = Σ active-candidate
  /// products of owned relationships, then rebuilds touch sets and resets
  /// the measured-cost schedule. Parallel path only.
  void ReshardByCost();
  /// Derives each sub-shard's touched-user set (both endpoints of owned
  /// following edges, owners of owned tweets) — the rows FoldShardDelta
  /// walks.
  void RebuildTouchSets();
  /// Clears the EWMA measurements and seeds the submit order from the
  /// static shard weights (edge counts) until real timings arrive.
  void ResetSchedule();

  core::GibbsSampler* sampler_;
  const core::ModelInput* input_;
  const core::MlpConfig* config_;
  core::CandidateSpace* space_;
  int num_threads_;
  int sync_every_;

  std::unique_ptr<ThreadPool> pool_;    // null in the sequential path
  std::vector<Shard> shards_;           // sub-shards (work-queue granularity)
  /// One persistent stream per sub-shard SLOT (kSubShardsPerThread ×
  /// num_threads, fixed for the engine's lifetime even when SetPartition
  /// installs a coarser partition): the chain consumes stream k exactly for
  /// sub-shard k, so determinism is independent of scheduling.
  std::vector<Pcg32> shard_rngs_;
  std::vector<std::vector<graph::UserId>> touch_users_;  // per sub-shard

  // Per-WORKER state, addressed via ThreadPool::CurrentWorkerIndex().
  std::vector<core::SuffStatsArena> replicas_;
  std::vector<core::SuffStatsArena> delta_accs_;
  std::vector<core::GibbsScratch> scratches_;
  std::vector<stats::AliasBuildScratch> alias_scratches_;

  core::ProposalTables proposals_;
  core::SuffStatsArena snapshot_;       // resample-pass baseline counts
  int sweeps_since_sync_ = 0;
  bool replicas_fresh_ = false;
  bool proposals_stale_ = true;

  // Measured-cost scheduling state (main thread only between barriers).
  std::vector<double> ewma_ns_;         // per sub-shard; < 0 = no sample yet
  std::vector<int> order_;              // submit order, heaviest first
  /// Per-sub-shard kernel nanoseconds of the current sweep, written by the
  /// executing worker and read by the main thread after the pool barrier
  /// (the pool's Wait() synchronizes the accesses). Feeds the EWMA.
  std::vector<int64_t> sub_kernel_ns_;
  /// Per-worker busy (kernel + fold) nanoseconds of the current sweep;
  /// each slot is written only by the worker occupying it. Barrier wait is
  /// derived from it: threads × parallel-section wall − Σ busy.
  std::vector<int64_t> thread_busy_ns_;

  // Shard-scoped resample pass state (BeginShardResample..End).
  bool resample_active_ = false;
  std::vector<uint8_t> resample_shard_selected_;    // per shard
  std::vector<uint8_t> resample_user_mask_;         // per user
  std::vector<uint8_t> resample_following_mask_;    // per following edge
  std::vector<uint8_t> resample_tweeting_mask_;     // per tweeting edge
  std::vector<std::vector<graph::EdgeId>> resample_following_;  // per shard
  std::vector<std::vector<graph::EdgeId>> resample_tweeting_;   // per shard
  /// Users of the selected shards (ascending) — the only ϕ rows the
  /// restricted sweep reads or writes, so replica refresh/merge copies
  /// exactly these row ranges instead of the whole arena.
  std::vector<graph::UserId> resample_users_;
};

}  // namespace engine
}  // namespace mlp

#endif  // MLP_ENGINE_PARALLEL_GIBBS_H_
