#ifndef MLP_ENGINE_PARALLEL_GIBBS_H_
#define MLP_ENGINE_PARALLEL_GIBBS_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/candidate_space.h"
#include "core/input.h"
#include "core/model_config.h"
#include "core/sampler.h"
#include "engine/graph_sharder.h"
#include "engine/thread_pool.h"

namespace mlp {
namespace engine {

/// Parallel sharded driver for the collapsed Gibbs sampler (AD-LDA-style
/// approximate collapsed Gibbs; see src/engine/README.md).
///
/// Users and the relationships they own are partitioned into one shard per
/// thread. Each sweep, every worker resamples its shard's relationships
/// against a thread-local replica of the sufficient statistics (ϕ, φ);
/// per-edge chain state (μ/ν, x/y/z) is written in place since shards own
/// disjoint edges. At the sweep barrier the replicas' deltas are merged
/// back into the sampler's global counts in shard order. Replicas, the
/// snapshot and the global counts are flat SuffStatsArena buffers sharing
/// one layout, so refresh is a straight value copy and the merge is a
/// handful of fused flat loops; all buffers are allocated once and reused
/// across syncs. Counts are integer-valued doubles, so the merge is exact
/// and the engine is run-to-run deterministic for a fixed
/// (seed, num_threads).
///
/// With `config->num_threads <= 1` every call delegates to the sequential
/// `GibbsSampler`, using the caller's RNG — results are bit-for-bit
/// identical to not using the engine at all. With N threads each shard
/// draws from its own Pcg32 stream derived from `config->seed`, so the
/// chain is independent of thread scheduling but differs (as any
/// approximate parallel chain must) from the sequential one.
///
/// `config->sync_every_sweeps > 1` lets replicas run that many sweeps
/// between merges, trading statistical freshness for fewer barriers —
/// callers that read global counts mid-run must `Synchronize()` first.
class ParallelGibbsEngine {
 public:
  /// All pointers must outlive the engine. The sampler must belong to the
  /// same input/config. `space` is the candidate space the sampler reads
  /// through — required for sweep-time pruning (MaybePrune) and shard-cost
  /// re-estimation; pass nullptr only for drivers that never prune.
  ParallelGibbsEngine(core::GibbsSampler* sampler,
                      const core::ModelInput* input,
                      const core::MlpConfig* config,
                      core::CandidateSpace* space = nullptr);

  /// Sequential initialization (identical for every thread count).
  void Initialize(Pcg32* rng);

  /// One full Gibbs sweep over all relationships. `rng` drives the chain
  /// only in the sequential (num_threads <= 1) path.
  void RunSweep(Pcg32* rng);

  /// Forces any pending replica deltas into the global counts. No-op when
  /// already synchronized (always, at sync_every_sweeps == 1).
  void Synchronize();

  /// True when the global counts reflect every sweep run so far — i.e. no
  /// replica holds unmerged deltas. Checkpoints may only be cut here;
  /// always true in the sequential path and at sync_every_sweeps == 1.
  bool IsSynchronized() const {
    return num_threads_ <= 1 || !replicas_fresh_ || sweeps_since_sync_ == 0;
  }

  // ---- adaptive candidate pruning (used by core::MlpModel::Fit) ----

  /// One sweep-time pruning barrier: no-op unless pruning is configured
  /// (config->prune_floor > 0, a space was given) and the engine is at a
  /// merged sync barrier. Otherwise runs CandidateSpace::PruneStep against
  /// the global counts; if anything was deactivated, drives the sampler's
  /// arena/chain compaction, re-estimates per-user costs (active candidate
  /// products) and re-partitions the shards so the LPT balance tracks the
  /// shrinking inner loops. Returns true iff a compaction happened.
  /// Deterministic: pure function of the merged counts, so fixed
  /// (seed, num_threads) still replays the exact same chain.
  bool MaybePrune(int32_t sweep_index);

  /// After a warm start restored the space's activation state: re-derives
  /// the cost-based shards a pruned fit was running with at the checkpoint
  /// cut (no-op when nothing was ever pruned, keeping the unit-cost
  /// partition — and its bit-exact-resume guarantee — untouched).
  void OnActivationRestored();

  // ---- shard-scoped warm resampling (streaming ingest, src/stream/) ----

  /// Shard index owning each user under the current partition. In the
  /// sequential path there is exactly one conceptual shard (all zeros).
  std::vector<int> UserShards() const;

  /// Replaces the partition (parallel path only; no-op when sequential).
  /// Streaming ingest uses this with GraphSharder::PartitionGrouped to
  /// pack the delta-touched users into the fewest shards their sampling
  /// cost warrants — the smaller the selected-shard closure, the less
  /// ResampleShards has to sweep. Must cover every user exactly once with
  /// exactly num_threads() shards, at a merged barrier.
  Status SetPartition(std::vector<Shard> shards);

  /// Prepares a shard-scoped resample pass: selects the shards in
  /// `shard_set` (indices into shards(); {0} is the whole graph when
  /// sequential) and precomputes the owned edges eligible for resampling.
  /// A following edge resamples BOTH endpoints' counts, so it is eligible
  /// only when follower AND friend live in selected shards; a tweeting
  /// edge needs just its owner. Everything else — unselected shards'
  /// counts, assignments, and cross-boundary edges — is left bit-identical
  /// by the pass. The per-user/per-edge eligibility masks are exposed
  /// below so the caller can merge results accordingly. Fails on an
  /// out-of-range shard index or when replicas hold unmerged deltas.
  Status BeginShardResample(const std::vector<int>& shard_set);

  /// One restricted Gibbs sweep over the shards selected by
  /// BeginShardResample, with replica deltas force-merged at the end of
  /// the call so the caller can read (and accumulate from) fresh global
  /// counts between sweeps. Do not interleave with RunSweep/MaybePrune
  /// while a pass is open.
  void ResampleShards(Pcg32* rng);

  /// Ends the pass; RunSweep sweeps the full graph again.
  void EndShardResample();

  bool resample_active() const { return resample_active_; }
  const std::vector<uint8_t>& resample_user_mask() const {
    return resample_user_mask_;
  }
  const std::vector<uint8_t>& resample_following_mask() const {
    return resample_following_mask_;
  }
  const std::vector<uint8_t>& resample_tweeting_mask() const {
    return resample_tweeting_mask_;
  }

  // ---- checkpoint / warm-start API (used by core::MlpModel) ----

  /// Exact positions of the per-shard RNG streams (empty when sequential).
  std::vector<Pcg32State> ShardRngStates() const;

  /// Resumes after the sampler's state was restored from a snapshot: shard
  /// streams continue where they left off and replicas are marked stale so
  /// the next sweep re-snapshots the restored global counts. `states` must
  /// have one entry per thread (empty for the sequential path).
  Status RestoreShardRngStates(const std::vector<Pcg32State>& states);

  int num_threads() const { return num_threads_; }
  const std::vector<Shard>& shards() const { return shards_; }

 private:
  void RefreshReplicas();
  void MergeReplicas();
  /// Re-partitions shards with per-user costs = Σ active-candidate products
  /// of owned relationships. Parallel path only.
  void ReshardByCost();

  core::GibbsSampler* sampler_;
  const core::ModelInput* input_;
  const core::MlpConfig* config_;
  core::CandidateSpace* space_;
  int num_threads_;
  int sync_every_;

  std::unique_ptr<ThreadPool> pool_;    // null in the sequential path
  std::vector<Shard> shards_;
  std::vector<Pcg32> shard_rngs_;       // one persistent stream per shard
  std::vector<core::SuffStatsArena> replicas_;
  std::vector<core::GibbsScratch> scratches_;
  core::SuffStatsArena snapshot_;       // global counts at last refresh
  int sweeps_since_sync_ = 0;
  bool replicas_fresh_ = false;

  /// Per-shard kernel nanoseconds for the current sweep, written by each
  /// worker and read by the main thread after the pool barrier (the pool's
  /// Wait() synchronizes the accesses). Barrier wait is derived from it:
  /// threads × parallel-section wall − Σ kernel time.
  std::vector<int64_t> shard_kernel_ns_;

  // Shard-scoped resample pass state (BeginShardResample..End).
  bool resample_active_ = false;
  std::vector<uint8_t> resample_shard_selected_;    // per shard
  std::vector<uint8_t> resample_user_mask_;         // per user
  std::vector<uint8_t> resample_following_mask_;    // per following edge
  std::vector<uint8_t> resample_tweeting_mask_;     // per tweeting edge
  std::vector<std::vector<graph::EdgeId>> resample_following_;  // per shard
  std::vector<std::vector<graph::EdgeId>> resample_tweeting_;   // per shard
  /// Users of the selected shards (ascending) — the only ϕ rows the
  /// restricted sweep reads or writes, so replica refresh/merge copies
  /// exactly these row ranges instead of the whole arena.
  std::vector<graph::UserId> resample_users_;
};

}  // namespace engine
}  // namespace mlp

#endif  // MLP_ENGINE_PARALLEL_GIBBS_H_
