#include "engine/thread_pool.h"

#include <algorithm>
#include <utility>

namespace mlp {
namespace engine {

namespace {
// Worker identity for CurrentWorkerIndex. Pools don't nest here (tasks may
// not Submit to their own pool), so a single thread-local is unambiguous:
// a thread belongs to at most one pool for its whole lifetime.
thread_local int tls_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (draining_ || stop_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

bool ThreadPool::draining() const {
  std::unique_lock<std::mutex> lock(mu_);
  return draining_;
}

int ThreadPool::queue_depth() const {
  std::unique_lock<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

int ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

void ThreadPool::WorkerLoop(int worker_index) {
  tls_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace engine
}  // namespace mlp
