#ifndef MLP_ENGINE_THREAD_POOL_H_
#define MLP_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mlp {
namespace engine {

/// Fixed-size worker pool with a task queue and a join barrier.
///
/// Workers are spawned once in the constructor and live until destruction,
/// so per-sweep dispatch costs one lock + notify per task instead of a
/// thread spawn. `Wait()` blocks until every submitted task has finished —
/// the sweep barrier of the parallel Gibbs engine.
///
/// Tasks must not throw (the library is exception-free by convention) and
/// must not call Submit/Wait on their own pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution by any worker. Returns false (and drops
  /// the task) once Drain() has been called — long-lived callers like the
  /// serving layer use this to reject work during shutdown instead of
  /// racing the pool teardown.
  bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

  /// Graceful shutdown: stops admitting new tasks (Submit returns false
  /// from the moment Drain is entered) and blocks until every already
  /// queued and in-flight task has finished. One-way and idempotent; the
  /// workers stay parked for the destructor, which remains the only place
  /// that joins them.
  void Drain();

  bool draining() const;

  /// Tasks queued but not yet picked up by a worker. A sustained nonzero
  /// depth on a serving pool means requests are arriving faster than the
  /// workers drain them (exported via /statsz and /metricsz).
  int queue_depth() const;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Index of the calling pool worker in [0, size()), or -1 on any thread
  /// that is not a pool worker (including the owner). Lets tasks pulled
  /// from a shared work queue address per-worker state (the Gibbs engine's
  /// sub-shard tasks pick their statistics replica this way) without the
  /// caller pinning tasks to workers.
  static int CurrentWorkerIndex();

 private:
  void WorkerLoop(int worker_index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: task available / stop
  std::condition_variable idle_cv_;  // signals Wait(): pool drained
  int in_flight_ = 0;                // tasks popped but not yet finished
  bool stop_ = false;
  bool draining_ = false;            // no new tasks; finish what's queued
};

}  // namespace engine
}  // namespace mlp

#endif  // MLP_ENGINE_THREAD_POOL_H_
