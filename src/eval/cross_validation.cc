#include "eval/cross_validation.h"

#include "common/logging.h"
#include "common/random.h"

namespace mlp {
namespace eval {

std::vector<graph::UserId> FoldAssignment::TestUsers(int fold) const {
  std::vector<graph::UserId> out;
  for (size_t u = 0; u < fold_of_user.size(); ++u) {
    if (fold_of_user[u] == fold) out.push_back(static_cast<graph::UserId>(u));
  }
  return out;
}

std::vector<geo::CityId> FoldAssignment::MaskedHomes(
    const std::vector<geo::CityId>& registered, int fold) const {
  MLP_CHECK(registered.size() == fold_of_user.size());
  std::vector<geo::CityId> masked = registered;
  for (size_t u = 0; u < masked.size(); ++u) {
    if (fold_of_user[u] == fold) masked[u] = geo::kInvalidCity;
  }
  return masked;
}

FoldAssignment MakeKFolds(const std::vector<geo::CityId>& registered, int k,
                          uint64_t seed) {
  MLP_CHECK(k >= 2);
  FoldAssignment assignment;
  assignment.num_folds = k;
  assignment.fold_of_user.assign(registered.size(), -1);

  std::vector<graph::UserId> labeled;
  for (size_t u = 0; u < registered.size(); ++u) {
    if (registered[u] != geo::kInvalidCity) {
      labeled.push_back(static_cast<graph::UserId>(u));
    }
  }
  Pcg32 rng(seed, 0x2545F4914F6CDD1DULL);
  rng.Shuffle(&labeled);
  for (size_t i = 0; i < labeled.size(); ++i) {
    assignment.fold_of_user[labeled[i]] = static_cast<int>(i % k);
  }
  return assignment;
}

std::vector<geo::CityId> RegisteredHomes(const graph::SocialGraph& graph) {
  std::vector<geo::CityId> homes(graph.num_users(), geo::kInvalidCity);
  for (graph::UserId u = 0; u < graph.num_users(); ++u) {
    homes[u] = graph.user(u).registered_city;
  }
  return homes;
}

}  // namespace eval
}  // namespace mlp
