#ifndef MLP_EVAL_CROSS_VALIDATION_H_
#define MLP_EVAL_CROSS_VALIDATION_H_

#include <cstdint>
#include <vector>

#include "geo/gazetteer.h"
#include "graph/social_graph.h"

namespace mlp {
namespace eval {

/// K-fold split over labeled users (the paper's "five fold validation":
/// 80% labeled, 20% hidden, averaged over 5 runs). Unlabeled users belong
/// to no fold (-1) — they are never test users and never provide labels.
struct FoldAssignment {
  int num_folds = 0;
  /// fold_of_user[u] ∈ [0, num_folds) for labeled users, -1 otherwise.
  std::vector<int> fold_of_user;

  /// Test users of `fold`.
  std::vector<graph::UserId> TestUsers(int fold) const;

  /// Observed-home vector for a fold: `registered` with the fold's test
  /// users hidden (set to kInvalidCity).
  std::vector<geo::CityId> MaskedHomes(
      const std::vector<geo::CityId>& registered, int fold) const;
};

/// Shuffles labeled users into `k` near-equal folds, deterministically.
FoldAssignment MakeKFolds(const std::vector<geo::CityId>& registered, int k,
                          uint64_t seed);

/// Registered homes straight out of a graph (convenience).
std::vector<geo::CityId> RegisteredHomes(const graph::SocialGraph& graph);

}  // namespace eval
}  // namespace mlp

#endif  // MLP_EVAL_CROSS_VALIDATION_H_
