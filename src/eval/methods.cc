#include "eval/methods.h"

#include "baselines/base_c.h"
#include "baselines/base_u.h"
#include "core/model.h"

namespace mlp {
namespace eval {

Method MakeMlpMethod(core::MlpConfig config) {
  return [config](const core::ModelInput& input) -> Result<MethodOutput> {
    core::MlpModel model(config);
    Result<core::MlpResult> result = model.Fit(input);
    if (!result.ok()) return result.status();
    MethodOutput out;
    out.profiles = std::move(result->profiles);
    out.home = std::move(result->home);
    return out;
  };
}

Method MakeWarmResumeMlpMethod(core::MlpConfig config) {
  return [config](const core::ModelInput& input) -> Result<MethodOutput> {
    core::MlpModel model(config);
    core::FitCheckpoint checkpoint;
    core::FitOptions cold;
    cold.max_total_sweeps = config.burn_in_iterations;
    cold.checkpoint_out = &checkpoint;
    Result<core::MlpResult> partial = model.Fit(input, cold);
    if (!partial.ok()) return partial.status();
    core::FitOptions warm;
    warm.warm_start = &checkpoint;
    Result<core::MlpResult> result = model.Fit(input, warm);
    if (!result.ok()) return result.status();
    MethodOutput out;
    out.profiles = std::move(result->profiles);
    out.home = std::move(result->home);
    return out;
  };
}

Method MakePrunedMlpMethod(core::MlpConfig config) {
  if (config.prune_floor <= 0.0) config.prune_floor = kDefaultPruneFloor;
  return MakeMlpMethod(config);
}

Method MakeBaseUMethod() {
  return [](const core::ModelInput& input) -> Result<MethodOutput> {
    baselines::BaseU base;
    Result<baselines::BaselineResult> result = base.Fit(input);
    if (!result.ok()) return result.status();
    MethodOutput out;
    out.profiles = std::move(result->profiles);
    out.home = std::move(result->home);
    return out;
  };
}

Method MakeBaseCMethod() {
  return [](const core::ModelInput& input) -> Result<MethodOutput> {
    baselines::BaseC base;
    Result<baselines::BaselineResult> result = base.Fit(input);
    if (!result.ok()) return result.status();
    MethodOutput out;
    out.profiles = std::move(result->profiles);
    out.home = std::move(result->home);
    return out;
  };
}

std::vector<NamedMethod> StandardLineup(const core::MlpConfig& mlp_config) {
  core::MlpConfig u_config = mlp_config;
  u_config.source = core::ObservationSource::kFollowingOnly;
  core::MlpConfig c_config = mlp_config;
  c_config.source = core::ObservationSource::kTweetingOnly;
  core::MlpConfig full_config = mlp_config;
  full_config.source = core::ObservationSource::kBoth;
  return {
      {"BaseU", MakeBaseUMethod()},
      {"BaseC", MakeBaseCMethod()},
      {"MLP_U", MakeMlpMethod(u_config)},
      {"MLP_C", MakeMlpMethod(c_config)},
      {"MLP", MakeMlpMethod(full_config)},
  };
}

std::vector<NamedMethod> StandardLineup(const core::MlpConfig& mlp_config,
                                        int num_threads,
                                        bool include_warm_resume,
                                        bool include_pruned) {
  core::MlpConfig config = mlp_config;
  config.num_threads = num_threads < 1 ? 1 : num_threads;
  // The base MLP rows stay unpruned regardless of the caller's prune
  // fields so the paper lineup is untouched; MLP_PR isolates the pruning
  // policy's accuracy cost (the BENCH_pruning.json "AAD delta").
  core::MlpConfig unpruned = config;
  unpruned.prune_floor = 0.0;
  std::vector<NamedMethod> lineup = StandardLineup(unpruned);
  if (include_warm_resume) {
    core::MlpConfig full_config = unpruned;
    full_config.source = core::ObservationSource::kBoth;
    lineup.push_back({"MLP_WS", MakeWarmResumeMlpMethod(full_config)});
  }
  if (include_pruned) {
    core::MlpConfig pruned = config;
    pruned.source = core::ObservationSource::kBoth;
    lineup.push_back({"MLP_PR", MakePrunedMlpMethod(pruned)});
  }
  return lineup;
}

}  // namespace eval
}  // namespace mlp
