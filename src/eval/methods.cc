#include "eval/methods.h"

#include "baselines/base_c.h"
#include "baselines/base_u.h"
#include "core/model.h"

namespace mlp {
namespace eval {

Method MakeMlpMethod(core::MlpConfig config) {
  return [config](const core::ModelInput& input) -> Result<MethodOutput> {
    core::MlpModel model(config);
    Result<core::MlpResult> result = model.Fit(input);
    if (!result.ok()) return result.status();
    MethodOutput out;
    out.profiles = std::move(result->profiles);
    out.home = std::move(result->home);
    return out;
  };
}

Method MakeBaseUMethod() {
  return [](const core::ModelInput& input) -> Result<MethodOutput> {
    baselines::BaseU base;
    Result<baselines::BaselineResult> result = base.Fit(input);
    if (!result.ok()) return result.status();
    MethodOutput out;
    out.profiles = std::move(result->profiles);
    out.home = std::move(result->home);
    return out;
  };
}

Method MakeBaseCMethod() {
  return [](const core::ModelInput& input) -> Result<MethodOutput> {
    baselines::BaseC base;
    Result<baselines::BaselineResult> result = base.Fit(input);
    if (!result.ok()) return result.status();
    MethodOutput out;
    out.profiles = std::move(result->profiles);
    out.home = std::move(result->home);
    return out;
  };
}

std::vector<NamedMethod> StandardLineup(const core::MlpConfig& mlp_config) {
  core::MlpConfig u_config = mlp_config;
  u_config.source = core::ObservationSource::kFollowingOnly;
  core::MlpConfig c_config = mlp_config;
  c_config.source = core::ObservationSource::kTweetingOnly;
  core::MlpConfig full_config = mlp_config;
  full_config.source = core::ObservationSource::kBoth;
  return {
      {"BaseU", MakeBaseUMethod()},
      {"BaseC", MakeBaseCMethod()},
      {"MLP_U", MakeMlpMethod(u_config)},
      {"MLP_C", MakeMlpMethod(c_config)},
      {"MLP", MakeMlpMethod(full_config)},
  };
}

std::vector<NamedMethod> StandardLineup(const core::MlpConfig& mlp_config,
                                        int num_threads) {
  core::MlpConfig config = mlp_config;
  config.num_threads = num_threads < 1 ? 1 : num_threads;
  return StandardLineup(config);
}

}  // namespace eval
}  // namespace mlp
