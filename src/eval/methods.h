#ifndef MLP_EVAL_METHODS_H_
#define MLP_EVAL_METHODS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/input.h"
#include "core/location_profile.h"
#include "core/model_config.h"

namespace mlp {
namespace eval {

/// What every profiling method produces: a per-user profile and home
/// estimate. MLP additionally produces relationship explanations, which
/// the relationship benches consume directly from MlpResult.
struct MethodOutput {
  std::vector<core::LocationProfile> profiles;
  std::vector<geo::CityId> home;
};

/// A profiling method under evaluation: observed homes in, estimates out.
using Method =
    std::function<Result<MethodOutput>(const core::ModelInput& input)>;

/// The five methods of Tab. 2/3. `MakeMlpMethod` wraps the given config
/// (vary `source` for MLP_U / MLP_C / MLP).
Method MakeMlpMethod(core::MlpConfig config);
Method MakeBaseUMethod();
Method MakeBaseCMethod();

/// MLP run in two stages through the checkpoint machinery: a cold fit cut
/// at the end of burn-in, then a warm-start resume to completion. By the
/// warm-start contract this produces the exact MlpResult of
/// MakeMlpMethod(config) — the lineup entry exists as a continuous
/// self-check that snapshot/resume inference is lossless.
Method MakeWarmResumeMlpMethod(core::MlpConfig config);

/// Posterior-mass floor MakePrunedMlpMethod falls back to when the caller's
/// config leaves pruning off. Matches the bench_candidate_pruning default:
/// large enough to deactivate the dead tail of high-degree users' candidate
/// rows (≥1.5x sweep-time speedup on the power-law bench world), small
/// enough to keep Table-2 accuracy within 1% of unpruned.
inline constexpr double kDefaultPruneFloor = 0.003;

/// MLP with adaptive sweep-time candidate pruning enabled
/// (core::CandidateSpace) — the "MLP_PR" lineup row. Uses the config's own
/// prune_floor/prune_patience when set, kDefaultPruneFloor otherwise.
Method MakePrunedMlpMethod(core::MlpConfig config);

/// Name → method for the standard lineup, in the paper's column order:
/// BaseU, BaseC, MLP_U, MLP_C, MLP.
struct NamedMethod {
  std::string name;
  Method method;
};
std::vector<NamedMethod> StandardLineup(const core::MlpConfig& mlp_config);

/// Same lineup with the Gibbs engine parallelism dialed in: the MLP
/// variants run `num_threads` sharded workers (mlpctl's `--threads`).
/// The baselines are unaffected. With `include_warm_resume` the lineup
/// gains MLP_WS, the checkpoint-and-resume variant of MLP (mlpctl's
/// `--warm`); with `include_pruned` it gains MLP_PR, the sweep-time
/// candidate-pruned variant (mlpctl's `--prune`).
std::vector<NamedMethod> StandardLineup(const core::MlpConfig& mlp_config,
                                        int num_threads,
                                        bool include_warm_resume = false,
                                        bool include_pruned = false);

}  // namespace eval
}  // namespace mlp

#endif  // MLP_EVAL_METHODS_H_
