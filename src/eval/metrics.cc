#include "eval/metrics.h"

#include "common/logging.h"

namespace mlp {
namespace eval {

namespace {
bool WithinMiles(geo::CityId a, geo::CityId b,
                 const geo::CityDistanceMatrix& distances, double miles) {
  if (a == geo::kInvalidCity || b == geo::kInvalidCity) return false;
  return distances.raw_miles(a, b) <= miles;
}

bool CloseToAny(geo::CityId l, const std::vector<geo::CityId>& set,
                const geo::CityDistanceMatrix& distances, double miles) {
  for (geo::CityId other : set) {
    if (WithinMiles(l, other, distances, miles)) return true;
  }
  return false;
}
}  // namespace

double AccuracyWithin(const std::vector<geo::CityId>& predicted,
                      const std::vector<geo::CityId>& truth,
                      const std::vector<graph::UserId>& users,
                      const geo::CityDistanceMatrix& distances, double miles) {
  if (users.empty()) return 0.0;
  int correct = 0;
  for (graph::UserId u : users) {
    MLP_CHECK(u >= 0 && u < static_cast<graph::UserId>(predicted.size()));
    MLP_CHECK(u < static_cast<graph::UserId>(truth.size()));
    if (WithinMiles(predicted[u], truth[u], distances, miles)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(users.size());
}

std::vector<double> AccumulativeAccuracyCurve(
    const std::vector<geo::CityId>& predicted,
    const std::vector<geo::CityId>& truth,
    const std::vector<graph::UserId>& users,
    const geo::CityDistanceMatrix& distances,
    const std::vector<double>& mile_points) {
  std::vector<double> curve;
  curve.reserve(mile_points.size());
  for (double m : mile_points) {
    curve.push_back(AccuracyWithin(predicted, truth, users, distances, m));
  }
  return curve;
}

MultiLocationScores DistancePrecisionRecall(
    const std::vector<std::vector<geo::CityId>>& predicted,
    const std::vector<std::vector<geo::CityId>>& truth,
    const std::vector<graph::UserId>& users,
    const geo::CityDistanceMatrix& distances, double miles) {
  MultiLocationScores scores;
  if (users.empty()) return scores;
  double dp_sum = 0.0;
  double dr_sum = 0.0;
  for (graph::UserId u : users) {
    const std::vector<geo::CityId>& pred = predicted[u];
    const std::vector<geo::CityId>& real = truth[u];
    if (!pred.empty()) {
      int close = 0;
      for (geo::CityId l : pred) {
        if (CloseToAny(l, real, distances, miles)) ++close;
      }
      dp_sum += static_cast<double>(close) / static_cast<double>(pred.size());
    }
    if (!real.empty()) {
      int close = 0;
      for (geo::CityId l : real) {
        if (CloseToAny(l, pred, distances, miles)) ++close;
      }
      dr_sum += static_cast<double>(close) / static_cast<double>(real.size());
    }
  }
  scores.dp = dp_sum / static_cast<double>(users.size());
  scores.dr = dr_sum / static_cast<double>(users.size());
  return scores;
}

double RelationshipAccuracy(
    const std::vector<core::FollowingExplanation>& predicted,
    const std::vector<std::pair<geo::CityId, geo::CityId>>& truth,
    const std::vector<graph::EdgeId>& edges,
    const geo::CityDistanceMatrix& distances, double miles) {
  if (edges.empty()) return 0.0;
  int correct = 0;
  for (graph::EdgeId s : edges) {
    MLP_CHECK(s >= 0 && s < static_cast<graph::EdgeId>(predicted.size()));
    MLP_CHECK(s < static_cast<graph::EdgeId>(truth.size()));
    const core::FollowingExplanation& ex = predicted[s];
    if (WithinMiles(ex.x, truth[s].first, distances, miles) &&
        WithinMiles(ex.y, truth[s].second, distances, miles)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(edges.size());
}

}  // namespace eval
}  // namespace mlp
