#ifndef MLP_EVAL_METRICS_H_
#define MLP_EVAL_METRICS_H_

#include <utility>
#include <vector>

#include "core/sampler.h"
#include "geo/distance_matrix.h"
#include "graph/social_graph.h"

namespace mlp {
namespace eval {

/// ACC@m (Sec. 5.1): fraction of `users` whose predicted home lies within
/// `miles` of the true home. Predictions of kInvalidCity count as wrong.
double AccuracyWithin(const std::vector<geo::CityId>& predicted,
                      const std::vector<geo::CityId>& truth,
                      const std::vector<graph::UserId>& users,
                      const geo::CityDistanceMatrix& distances, double miles);

/// The Fig-4 AAD curve: ACC@m for each m in `mile_points`.
std::vector<double> AccumulativeAccuracyCurve(
    const std::vector<geo::CityId>& predicted,
    const std::vector<geo::CityId>& truth,
    const std::vector<graph::UserId>& users,
    const geo::CityDistanceMatrix& distances,
    const std::vector<double>& mile_points);

/// DP@K / DR@K (Sec. 5.2). For one user with predicted set L' and true set
/// L: DP = |{l ∈ L' : ∃l'∈L, d(l,l') < m}| / |L'| and DR symmetric.
struct MultiLocationScores {
  double dp = 0.0;
  double dr = 0.0;
};

/// Averages DP/DR over users (prediction lists indexed per user id; only
/// ids in `users` participate). Users with an empty predicted set score
/// DP=0, DR=0.
MultiLocationScores DistancePrecisionRecall(
    const std::vector<std::vector<geo::CityId>>& predicted,
    const std::vector<std::vector<geo::CityId>>& truth,
    const std::vector<graph::UserId>& users,
    const geo::CityDistanceMatrix& distances, double miles);

/// Relationship-explanation ACC@m (Sec. 5.3): a relationship is correct iff
/// BOTH endpoints' assignments fall within `miles` of the true assignments.
/// Only edge ids in `edges` are scored; invalid predicted assignments are
/// wrong.
double RelationshipAccuracy(
    const std::vector<core::FollowingExplanation>& predicted,
    const std::vector<std::pair<geo::CityId, geo::CityId>>& truth,
    const std::vector<graph::EdgeId>& edges,
    const geo::CityDistanceMatrix& distances, double miles);

}  // namespace eval
}  // namespace mlp

#endif  // MLP_EVAL_METRICS_H_
