#include "geo/distance_matrix.h"

#include "common/logging.h"

namespace mlp {
namespace geo {

CityDistanceMatrix::CityDistanceMatrix(const Gazetteer& gazetteer,
                                       double floor_miles)
    : n_(gazetteer.size()),
      floor_miles_(floor_miles),
      floor_(static_cast<float>(floor_miles)) {
  MLP_CHECK(floor_miles_ >= 0.0);
  data_.assign(static_cast<size_t>(n_) * n_, 0.0f);
  for (CityId a = 0; a < n_; ++a) {
    for (CityId b = a + 1; b < n_; ++b) {
      float d = static_cast<float>(gazetteer.DistanceMiles(a, b));
      data_[static_cast<size_t>(a) * n_ + b] = d;
      data_[static_cast<size_t>(b) * n_ + a] = d;
    }
  }
}

}  // namespace geo
}  // namespace mlp
