#ifndef MLP_GEO_DISTANCE_MATRIX_H_
#define MLP_GEO_DISTANCE_MATRIX_H_

#include <vector>

#include "geo/gazetteer.h"

namespace mlp {
namespace geo {

/// Dense precomputed |L|×|L| city distance matrix in miles.
///
/// Distances are the hottest quantity in both inference (Eq. 1/7/8) and the
/// generators, and |L| is a few hundred, so an O(|L|²) float table (≈0.5 MB)
/// beats recomputing haversines everywhere. Distances below `floor_miles`
/// are clamped up to it: the paper buckets pairs at 1-mile granularity, and
/// the power law β·d^α diverges at d=0 (see DESIGN.md).
class CityDistanceMatrix {
 public:
  explicit CityDistanceMatrix(const Gazetteer& gazetteer,
                              double floor_miles = 1.0);

  /// Distance in miles between cities `a` and `b`, clamped up to the
  /// floor (the diagonal reads floor_miles).
  double miles(CityId a, CityId b) const {
    float raw = data_[static_cast<size_t>(a) * n_ + b];
    return raw < floor_ ? floor_ : raw;
  }

  /// Unclamped great-circle distance (0 on the diagonal).
  double raw_miles(CityId a, CityId b) const {
    return data_[static_cast<size_t>(a) * n_ + b];
  }

  int size() const { return n_; }
  double floor_miles() const { return floor_miles_; }

 private:
  int n_;
  double floor_miles_;
  float floor_;
  std::vector<float> data_;
};

}  // namespace geo
}  // namespace mlp

#endif  // MLP_GEO_DISTANCE_MATRIX_H_
