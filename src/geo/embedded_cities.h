#ifndef MLP_GEO_EMBEDDED_CITIES_H_
#define MLP_GEO_EMBEDDED_CITIES_H_

#include <cstdint>

namespace mlp {
namespace geo {

/// One row of the embedded gazetteer (Census-2000-style city list).
struct EmbeddedCity {
  const char* name;   // e.g. "Los Angeles"
  const char* state;  // USPS abbreviation, e.g. "CA"
  double lat;
  double lon;
  int64_t population;
};

/// The embedded city table: 300+ real US cities covering every state, the
/// largest metros, the college towns the paper's examples use, and the
/// ambiguous names it calls out (Princeton NJ / Princeton WV, Hollywood FL).
const EmbeddedCity* EmbeddedCities(int* count);

}  // namespace geo
}  // namespace mlp

#endif  // MLP_GEO_EMBEDDED_CITIES_H_
