#include "geo/gazetteer.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"
#include "geo/embedded_cities.h"
#include "geo/us_states.h"

namespace mlp {
namespace geo {

namespace {
std::string NameStateKey(std::string_view name, std::string_view state) {
  std::string key = ToLower(Trim(name));
  key += '|';
  key += ToLower(Trim(state));
  return key;
}
}  // namespace

Gazetteer Gazetteer::FromEmbedded() {
  int count = 0;
  const EmbeddedCity* rows = EmbeddedCities(&count);
  Gazetteer gaz;
  gaz.cities_.reserve(count);
  for (int i = 0; i < count; ++i) {
    City c;
    c.name = rows[i].name;
    c.state = rows[i].state;
    c.pos = LatLon{rows[i].lat, rows[i].lon};
    c.population = rows[i].population;
    gaz.cities_.push_back(std::move(c));
  }
  gaz.BuildIndexes();
  return gaz;
}

Result<Gazetteer> Gazetteer::FromRecords(std::vector<City> cities) {
  if (cities.empty()) {
    return Status::InvalidArgument("gazetteer requires at least one city");
  }
  for (const City& c : cities) {
    if (c.name.empty()) {
      return Status::InvalidArgument("gazetteer city with empty name");
    }
    if (!NormalizeState(c.state).has_value()) {
      return Status::InvalidArgument("unknown state: " + c.state);
    }
    if (c.pos.lat < -90.0 || c.pos.lat > 90.0 || c.pos.lon < -180.0 ||
        c.pos.lon > 180.0) {
      return Status::InvalidArgument("city out of lat/lon range: " + c.name);
    }
    if (c.population < 0) {
      return Status::InvalidArgument("negative population: " + c.name);
    }
  }
  Gazetteer gaz;
  gaz.cities_ = std::move(cities);
  gaz.BuildIndexes();
  return gaz;
}

void Gazetteer::BuildIndexes() {
  by_name_.clear();
  by_name_state_.clear();
  total_population_ = 0;
  for (CityId id = 0; id < size(); ++id) {
    const City& c = cities_[id];
    by_name_[ToLower(c.name)].push_back(id);
    by_name_state_[NameStateKey(c.name, c.state)] = id;
    total_population_ += c.population;
  }
}

const std::vector<CityId>* Gazetteer::FindByName(std::string_view name) const {
  auto it = by_name_.find(ToLower(Trim(name)));
  if (it == by_name_.end()) return nullptr;
  return &it->second;
}

CityId Gazetteer::Find(std::string_view name, std::string_view state) const {
  std::optional<std::string> norm = NormalizeState(state);
  if (!norm.has_value()) return kInvalidCity;
  auto it = by_name_state_.find(NameStateKey(name, *norm));
  if (it == by_name_state_.end()) return kInvalidCity;
  return it->second;
}

double Gazetteer::DistanceMiles(CityId a, CityId b) const {
  MLP_CHECK(a >= 0 && a < size() && b >= 0 && b < size());
  return HaversineMiles(cities_[a].pos, cities_[b].pos);
}

std::string Gazetteer::FullName(CityId id) const {
  MLP_CHECK(id >= 0 && id < size());
  return cities_[id].name + ", " + cities_[id].state;
}

std::vector<double> Gazetteer::PopulationWeights() const {
  std::vector<double> w(cities_.size());
  for (size_t i = 0; i < cities_.size(); ++i) {
    w[i] = static_cast<double>(cities_[i].population);
  }
  return w;
}

CityId Gazetteer::NearestCity(const LatLon& p) const {
  CityId best = kInvalidCity;
  double best_dist = std::numeric_limits<double>::infinity();
  for (CityId id = 0; id < size(); ++id) {
    double d = HaversineMiles(p, cities_[id].pos);
    if (d < best_dist) {
      best_dist = d;
      best = id;
    }
  }
  return best;
}

std::vector<CityId> Gazetteer::WithinMiles(CityId center, double miles) const {
  MLP_CHECK(center >= 0 && center < size());
  std::vector<std::pair<double, CityId>> hits;
  for (CityId id = 0; id < size(); ++id) {
    double d = DistanceMiles(center, id);
    if (d <= miles) hits.emplace_back(d, id);
  }
  std::sort(hits.begin(), hits.end());
  std::vector<CityId> out;
  out.reserve(hits.size());
  for (const auto& [d, id] : hits) out.push_back(id);
  return out;
}

}  // namespace geo
}  // namespace mlp
