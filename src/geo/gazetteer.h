#ifndef MLP_GEO_GAZETTEER_H_
#define MLP_GEO_GAZETTEER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geo/latlon.h"

namespace mlp {
namespace geo {

/// Index of a city within a Gazetteer; these are the paper's candidate
/// locations L (Sec. 3: "all possible city-level locations can be given by a
/// gazetteer").
using CityId = int32_t;
inline constexpr CityId kInvalidCity = -1;

/// One gazetteer entry.
struct City {
  std::string name;   // e.g. "Austin"
  std::string state;  // USPS abbreviation, e.g. "TX"
  LatLon pos;
  int64_t population = 0;
};

/// A city-level gazetteer (Census-2000-style). Provides the candidate
/// location set L, name→city resolution (ambiguous names like "Princeton"
/// map to several cities), and pairwise distances.
class Gazetteer {
 public:
  /// Builds from the compiled-in city table (300+ real US cities).
  static Gazetteer FromEmbedded();

  /// Builds from rows of (name, state, lat, lon, population).
  static Result<Gazetteer> FromRecords(std::vector<City> cities);

  int size() const { return static_cast<int>(cities_.size()); }
  const City& city(CityId id) const { return cities_[id]; }
  const std::vector<City>& cities() const { return cities_; }

  /// All cities whose lower-cased name equals `name` (any state); nullptr
  /// when the name is unknown. This is where venue-name ambiguity
  /// ("19 towns named Princeton") surfaces.
  const std::vector<CityId>* FindByName(std::string_view name) const;

  /// Exact (name, state) lookup; kInvalidCity if absent. Both arguments are
  /// case-insensitive; state may be a full name or USPS abbreviation.
  CityId Find(std::string_view name, std::string_view state) const;

  /// Great-circle miles between two cities.
  double DistanceMiles(CityId a, CityId b) const;

  /// "Austin, TX".
  std::string FullName(CityId id) const;

  int64_t TotalPopulation() const { return total_population_; }

  /// Per-city population as unnormalized sampling weights.
  std::vector<double> PopulationWeights() const;

  /// City with minimal haversine distance to `p` (linear scan).
  CityId NearestCity(const LatLon& p) const;

  /// All cities within `miles` of city `center` (inclusive), sorted by
  /// distance ascending. Linear scan; use CityGridIndex for bulk queries.
  std::vector<CityId> WithinMiles(CityId center, double miles) const;

 private:
  Gazetteer() = default;
  void BuildIndexes();

  std::vector<City> cities_;
  std::unordered_map<std::string, std::vector<CityId>> by_name_;
  std::unordered_map<std::string, CityId> by_name_state_;
  int64_t total_population_ = 0;
};

}  // namespace geo
}  // namespace mlp

#endif  // MLP_GEO_GAZETTEER_H_
