#include "geo/grid_index.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace mlp {
namespace geo {

CityGridIndex::CityGridIndex(const Gazetteer* gazetteer, double cell_degrees)
    : gazetteer_(gazetteer), cell_degrees_(cell_degrees) {
  MLP_CHECK(gazetteer_ != nullptr);
  MLP_CHECK(cell_degrees_ > 0.0);
  for (CityId id = 0; id < gazetteer_->size(); ++id) {
    const LatLon& p = gazetteer_->city(id).pos;
    cells_[CellKey(p.lat, p.lon)].push_back(id);
  }
}

int64_t CityGridIndex::CellKey(double lat, double lon) const {
  int64_t row = static_cast<int64_t>(std::floor((lat + 90.0) / cell_degrees_));
  int64_t col = static_cast<int64_t>(std::floor((lon + 180.0) / cell_degrees_));
  return row * 1000000 + col;
}

std::vector<CityId> CityGridIndex::WithinMiles(const LatLon& center,
                                               double miles) const {
  std::vector<CityId> out;
  if (miles < 0.0) return out;
  double dlat = MilesToLatDegrees(miles);
  double dlon = MilesToLonDegrees(miles, center.lat);
  int64_t row_lo =
      static_cast<int64_t>(std::floor((center.lat - dlat + 90.0) / cell_degrees_));
  int64_t row_hi =
      static_cast<int64_t>(std::floor((center.lat + dlat + 90.0) / cell_degrees_));
  int64_t col_lo = static_cast<int64_t>(
      std::floor((center.lon - dlon + 180.0) / cell_degrees_));
  int64_t col_hi = static_cast<int64_t>(
      std::floor((center.lon + dlon + 180.0) / cell_degrees_));
  for (int64_t row = row_lo; row <= row_hi; ++row) {
    for (int64_t col = col_lo; col <= col_hi; ++col) {
      auto it = cells_.find(row * 1000000 + col);
      if (it == cells_.end()) continue;
      for (CityId id : it->second) {
        if (HaversineMiles(center, gazetteer_->city(id).pos) <= miles) {
          out.push_back(id);
        }
      }
    }
  }
  return out;
}

CityId CityGridIndex::Nearest(const LatLon& center) const {
  // Expanding ring search; falls back to a full scan past the continent
  // scale so the loop always terminates.
  for (double radius = 25.0; radius <= 6400.0; radius *= 2.0) {
    std::vector<CityId> hits = WithinMiles(center, radius);
    if (hits.empty()) continue;
    CityId best = kInvalidCity;
    double best_dist = std::numeric_limits<double>::infinity();
    for (CityId id : hits) {
      double d = HaversineMiles(center, gazetteer_->city(id).pos);
      if (d < best_dist) {
        best_dist = d;
        best = id;
      }
    }
    return best;
  }
  return gazetteer_->NearestCity(center);
}

}  // namespace geo
}  // namespace mlp
