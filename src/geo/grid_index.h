#ifndef MLP_GEO_GRID_INDEX_H_
#define MLP_GEO_GRID_INDEX_H_

#include <unordered_map>
#include <vector>

#include "geo/gazetteer.h"
#include "geo/latlon.h"

namespace mlp {
namespace geo {

/// Uniform lat/lon grid over the cities of a Gazetteer for fast radius
/// queries. Cells are `cell_degrees` on a side; a radius query scans only
/// the cells overlapping the query circle's bounding box and then filters
/// by exact haversine distance.
class CityGridIndex {
 public:
  /// `gazetteer` must outlive the index.
  explicit CityGridIndex(const Gazetteer* gazetteer, double cell_degrees = 1.0);

  /// Ids of all cities within `miles` of `center` (inclusive). Order is
  /// unspecified.
  std::vector<CityId> WithinMiles(const LatLon& center, double miles) const;

  /// Nearest city to `center`, expanding the search ring as needed.
  CityId Nearest(const LatLon& center) const;

  int cell_count() const { return static_cast<int>(cells_.size()); }

 private:
  int64_t CellKey(double lat, double lon) const;

  const Gazetteer* gazetteer_;
  double cell_degrees_;
  std::unordered_map<int64_t, std::vector<CityId>> cells_;
};

}  // namespace geo
}  // namespace mlp

#endif  // MLP_GEO_GRID_INDEX_H_
