#include "geo/latlon.h"

#include <algorithm>
#include <cmath>

namespace mlp {
namespace geo {

double DegToRad(double deg) { return deg * M_PI / 180.0; }

double HaversineMiles(const LatLon& a, const LatLon& b) {
  double lat1 = DegToRad(a.lat);
  double lat2 = DegToRad(b.lat);
  double dlat = lat2 - lat1;
  double dlon = DegToRad(b.lon - a.lon);
  double sin_dlat = std::sin(dlat / 2.0);
  double sin_dlon = std::sin(dlon / 2.0);
  double h = sin_dlat * sin_dlat +
             std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  h = std::min(1.0, h);
  return 2.0 * kEarthRadiusMiles * std::asin(std::sqrt(h));
}

double ApproxMiles(const LatLon& a, const LatLon& b) {
  double mean_lat = DegToRad((a.lat + b.lat) / 2.0);
  double dx = DegToRad(b.lon - a.lon) * std::cos(mean_lat);
  double dy = DegToRad(b.lat - a.lat);
  return kEarthRadiusMiles * std::sqrt(dx * dx + dy * dy);
}

bool InBoundingBox(const LatLon& p, const LatLon& lo, const LatLon& hi) {
  return p.lat >= lo.lat && p.lat <= hi.lat && p.lon >= lo.lon &&
         p.lon <= hi.lon;
}

double MilesToLatDegrees(double miles) {
  return miles / (kEarthRadiusMiles * M_PI / 180.0);
}

double MilesToLonDegrees(double miles, double at_lat_deg) {
  double scale = std::cos(DegToRad(at_lat_deg));
  if (scale < 1e-6) scale = 1e-6;
  return MilesToLatDegrees(miles) / scale;
}

}  // namespace geo
}  // namespace mlp
