#ifndef MLP_GEO_LATLON_H_
#define MLP_GEO_LATLON_H_

namespace mlp {
namespace geo {

/// Mean Earth radius in miles (matches the paper's mile-based distances).
inline constexpr double kEarthRadiusMiles = 3958.7613;

/// A geographic point in decimal degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;

  bool operator==(const LatLon& other) const {
    return lat == other.lat && lon == other.lon;
  }
};

double DegToRad(double deg);

/// Great-circle distance in miles (haversine formula).
double HaversineMiles(const LatLon& a, const LatLon& b);

/// Fast approximate distance (equirectangular projection); within ~1% of
/// haversine under ~500 miles. Used in inner sampling loops.
double ApproxMiles(const LatLon& a, const LatLon& b);

/// True when `p` lies inside the axis-aligned box [lo, hi] (degrees).
bool InBoundingBox(const LatLon& p, const LatLon& lo, const LatLon& hi);

/// Degrees of latitude spanned by `miles`.
double MilesToLatDegrees(double miles);

/// Degrees of longitude spanned by `miles` at latitude `at_lat_deg`.
double MilesToLonDegrees(double miles, double at_lat_deg);

}  // namespace geo
}  // namespace mlp

#endif  // MLP_GEO_LATLON_H_
