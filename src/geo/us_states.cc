#include "geo/us_states.h"

#include <cctype>

#include "common/string_util.h"

namespace mlp {
namespace geo {

namespace {
constexpr StateInfo kStates[] = {
    {"Alabama", "AL"},        {"Alaska", "AK"},
    {"Arizona", "AZ"},        {"Arkansas", "AR"},
    {"California", "CA"},     {"Colorado", "CO"},
    {"Connecticut", "CT"},    {"Delaware", "DE"},
    {"District of Columbia", "DC"},
    {"Florida", "FL"},        {"Georgia", "GA"},
    {"Hawaii", "HI"},         {"Idaho", "ID"},
    {"Illinois", "IL"},       {"Indiana", "IN"},
    {"Iowa", "IA"},           {"Kansas", "KS"},
    {"Kentucky", "KY"},       {"Louisiana", "LA"},
    {"Maine", "ME"},          {"Maryland", "MD"},
    {"Massachusetts", "MA"},  {"Michigan", "MI"},
    {"Minnesota", "MN"},      {"Mississippi", "MS"},
    {"Missouri", "MO"},       {"Montana", "MT"},
    {"Nebraska", "NE"},       {"Nevada", "NV"},
    {"New Hampshire", "NH"},  {"New Jersey", "NJ"},
    {"New Mexico", "NM"},     {"New York", "NY"},
    {"North Carolina", "NC"}, {"North Dakota", "ND"},
    {"Ohio", "OH"},           {"Oklahoma", "OK"},
    {"Oregon", "OR"},         {"Pennsylvania", "PA"},
    {"Rhode Island", "RI"},   {"South Carolina", "SC"},
    {"South Dakota", "SD"},   {"Tennessee", "TN"},
    {"Texas", "TX"},          {"Utah", "UT"},
    {"Vermont", "VT"},        {"Virginia", "VA"},
    {"Washington", "WA"},     {"West Virginia", "WV"},
    {"Wisconsin", "WI"},      {"Wyoming", "WY"},
};
constexpr int kNumStates = sizeof(kStates) / sizeof(kStates[0]);
}  // namespace

const StateInfo* AllStates(int* count) {
  *count = kNumStates;
  return kStates;
}

std::optional<std::string> NormalizeState(std::string_view raw) {
  std::string lowered = ToLower(Trim(raw));
  if (lowered.empty()) return std::nullopt;
  for (const StateInfo& s : kStates) {
    if (lowered == ToLower(s.abbreviation) || lowered == ToLower(s.name)) {
      return std::string(s.abbreviation);
    }
  }
  return std::nullopt;
}

bool IsStateAbbreviation(std::string_view raw) {
  if (raw.size() != 2) return false;
  std::string upper;
  upper.push_back(static_cast<char>(std::toupper(raw[0])));
  upper.push_back(static_cast<char>(std::toupper(raw[1])));
  for (const StateInfo& s : kStates) {
    if (upper == s.abbreviation) return true;
  }
  return false;
}

}  // namespace geo
}  // namespace mlp
