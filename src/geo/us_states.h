#ifndef MLP_GEO_US_STATES_H_
#define MLP_GEO_US_STATES_H_

#include <optional>
#include <string>
#include <string_view>

namespace mlp {
namespace geo {

/// One US state (or DC) with its USPS abbreviation.
struct StateInfo {
  const char* name;          // e.g. "California"
  const char* abbreviation;  // e.g. "CA"
};

/// All 50 states plus DC.
const StateInfo* AllStates(int* count);

/// Resolves a state name or abbreviation (case-insensitive) to the USPS
/// abbreviation. Returns nullopt for unknown strings.
std::optional<std::string> NormalizeState(std::string_view raw);

/// True when `raw` (case-insensitive) is a USPS state abbreviation.
bool IsStateAbbreviation(std::string_view raw);

}  // namespace geo
}  // namespace mlp

#endif  // MLP_GEO_US_STATES_H_
