#include "graph/graph_stats.h"

#include <unordered_set>

namespace mlp {
namespace graph {

GraphStats ComputeGraphStats(const SocialGraph& graph) {
  GraphStats stats;
  stats.num_users = graph.num_users();
  stats.num_labeled = graph.num_labeled();
  stats.num_following = graph.num_following();
  stats.num_tweeting = graph.num_tweeting();
  if (stats.num_users > 0) {
    double n = static_cast<double>(stats.num_users);
    stats.avg_friends_per_user = graph.num_following() / n;
    stats.avg_followers_per_user = graph.num_following() / n;
    stats.avg_venues_per_user = graph.num_tweeting() / n;
    stats.labeled_fraction = stats.num_labeled / n;
  }
  return stats;
}

double NeighborLocationCoverage(
    const SocialGraph& graph,
    const std::vector<std::vector<geo::CityId>>& venue_referents) {
  int labeled = 0;
  int covered = 0;
  for (UserId u = 0; u < graph.num_users(); ++u) {
    geo::CityId home = graph.user(u).registered_city;
    if (home == geo::kInvalidCity) continue;
    ++labeled;
    std::unordered_set<geo::CityId> seen;
    for (EdgeId s : graph.OutEdges(u)) {
      geo::CityId c = graph.user(graph.following(s).friend_user).registered_city;
      if (c != geo::kInvalidCity) seen.insert(c);
    }
    for (EdgeId s : graph.InEdges(u)) {
      geo::CityId c = graph.user(graph.following(s).follower).registered_city;
      if (c != geo::kInvalidCity) seen.insert(c);
    }
    for (EdgeId k : graph.TweetEdges(u)) {
      VenueId v = graph.tweeting(k).venue;
      if (v >= 0 && v < static_cast<VenueId>(venue_referents.size())) {
        for (geo::CityId c : venue_referents[v]) seen.insert(c);
      }
    }
    if (seen.count(home) > 0) ++covered;
  }
  if (labeled == 0) return 0.0;
  return static_cast<double>(covered) / static_cast<double>(labeled);
}

}  // namespace graph
}  // namespace mlp
