#ifndef MLP_GRAPH_GRAPH_STATS_H_
#define MLP_GRAPH_GRAPH_STATS_H_

#include "graph/social_graph.h"

namespace mlp {
namespace graph {

/// Dataset summary in the shape of the paper's Sec. 5 statistics
/// ("14.8 friends, 14.9 followers, and 29.0 tweeted venues per user").
struct GraphStats {
  int num_users = 0;
  int num_labeled = 0;
  int num_following = 0;
  int num_tweeting = 0;
  double avg_friends_per_user = 0.0;    // out-degree
  double avg_followers_per_user = 0.0;  // in-degree
  double avg_venues_per_user = 0.0;     // tweeting relationships
  double labeled_fraction = 0.0;
};

GraphStats ComputeGraphStats(const SocialGraph& graph);

/// Fraction of labeled users whose registered city appears among the
/// observed locations of their relationships: neighbors' registered homes
/// or referents of tweeted venues (`venue_referents[v]` lists the cities a
/// venue name may denote). The paper reports ~92% (Sec. 4.3); this is the
/// quantity that justifies candidacy vectors.
double NeighborLocationCoverage(
    const SocialGraph& graph,
    const std::vector<std::vector<geo::CityId>>& venue_referents);

}  // namespace graph
}  // namespace mlp

#endif  // MLP_GRAPH_GRAPH_STATS_H_
