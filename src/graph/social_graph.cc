#include "graph/social_graph.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace mlp {
namespace graph {

UserId SocialGraph::AddUser(UserRecord record) {
  MLP_CHECK(!finalized_);
  users_.push_back(std::move(record));
  return static_cast<UserId>(users_.size() - 1);
}

Status SocialGraph::AddFollowing(UserId follower, UserId friend_user) {
  MLP_CHECK(!finalized_);
  if (follower < 0 || follower >= num_users() || friend_user < 0 ||
      friend_user >= num_users()) {
    return Status::InvalidArgument(
        StringPrintf("following edge references unknown user (%d -> %d)",
                     follower, friend_user));
  }
  if (follower == friend_user) {
    return Status::InvalidArgument(
        StringPrintf("self-follow rejected for user %d", follower));
  }
  following_.push_back(FollowingEdge{follower, friend_user});
  return Status::OK();
}

Status SocialGraph::AddTweeting(UserId user, VenueId venue) {
  MLP_CHECK(!finalized_);
  if (user < 0 || user >= num_users()) {
    return Status::InvalidArgument(
        StringPrintf("tweeting edge references unknown user %d", user));
  }
  if (venue < 0 || venue >= num_venues_) {
    return Status::InvalidArgument(
        StringPrintf("tweeting edge references unknown venue %d", venue));
  }
  tweeting_.push_back(TweetingEdge{user, venue});
  return Status::OK();
}

void SocialGraph::Finalize() {
  MLP_CHECK(!finalized_);
  out_edges_.assign(users_.size(), {});
  in_edges_.assign(users_.size(), {});
  tweet_edges_.assign(users_.size(), {});
  for (EdgeId s = 0; s < num_following(); ++s) {
    out_edges_[following_[s].follower].push_back(s);
    in_edges_[following_[s].friend_user].push_back(s);
  }
  for (EdgeId k = 0; k < num_tweeting(); ++k) {
    tweet_edges_[tweeting_[k].user].push_back(k);
  }
  finalized_ = true;
}

int SocialGraph::num_labeled() const {
  int count = 0;
  for (const UserRecord& u : users_) {
    if (u.registered_city != geo::kInvalidCity) ++count;
  }
  return count;
}

const std::vector<EdgeId>& SocialGraph::OutEdges(UserId u) const {
  MLP_CHECK(finalized_);
  return out_edges_[u];
}

const std::vector<EdgeId>& SocialGraph::InEdges(UserId u) const {
  MLP_CHECK(finalized_);
  return in_edges_[u];
}

const std::vector<EdgeId>& SocialGraph::TweetEdges(UserId u) const {
  MLP_CHECK(finalized_);
  return tweet_edges_[u];
}

}  // namespace graph
}  // namespace mlp
