#ifndef MLP_GRAPH_SOCIAL_GRAPH_H_
#define MLP_GRAPH_SOCIAL_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/gazetteer.h"

namespace mlp {
namespace graph {

using UserId = int32_t;
using VenueId = int32_t;
using EdgeId = int32_t;
inline constexpr UserId kInvalidUser = -1;

/// One account. `registered_city` is the parsed "city, state" home location
/// from the profile field — the paper's labeled users U* have it set; the
/// rest are UN. It is ground-truth input, not a prediction.
struct UserRecord {
  std::string handle;
  std::string profile_location;  // raw registered-location string (may be noise)
  geo::CityId registered_city = geo::kInvalidCity;
};

/// A following relationship f⟨i,j⟩: `follower` follows `friend_user`
/// (paper Sec. 3: i is a follower of j, j is a friend of i).
struct FollowingEdge {
  UserId follower = kInvalidUser;
  UserId friend_user = kInvalidUser;
};

/// A tweeting relationship t⟨i,j⟩: `user` tweeted venue `venue` once.
/// Repeated mentions are repeated edges, exactly as in the paper.
struct TweetingEdge {
  UserId user = kInvalidUser;
  VenueId venue = -1;
};

/// The observation store: users U, following relationships f(1:S) and
/// tweeting relationships t(1:K), with per-user adjacency indexes built by
/// `Finalize()`. Append-only before finalization; immutable after.
class SocialGraph {
 public:
  explicit SocialGraph(int num_venues = 0) : num_venues_(num_venues) {}

  /// Appends a user; returns its id.
  UserId AddUser(UserRecord record);

  /// Appends f⟨follower, friend⟩. Both ids must already exist; self-follows
  /// are rejected.
  Status AddFollowing(UserId follower, UserId friend_user);

  /// Appends t⟨user, venue⟩.
  Status AddTweeting(UserId user, VenueId venue);

  /// Builds per-user adjacency indexes. Must be called before the per-user
  /// accessors; further mutation afterwards is a programming error.
  void Finalize();
  bool finalized() const { return finalized_; }

  int num_users() const { return static_cast<int>(users_.size()); }
  int num_venues() const { return num_venues_; }
  void set_num_venues(int n) { num_venues_ = n; }

  /// S and K in the paper's notation.
  int num_following() const { return static_cast<int>(following_.size()); }
  int num_tweeting() const { return static_cast<int>(tweeting_.size()); }

  const UserRecord& user(UserId id) const { return users_[id]; }
  UserRecord* mutable_user(UserId id) { return &users_[id]; }
  const FollowingEdge& following(EdgeId s) const { return following_[s]; }
  const TweetingEdge& tweeting(EdgeId k) const { return tweeting_[k]; }

  bool is_labeled(UserId id) const {
    return users_[id].registered_city != geo::kInvalidCity;
  }
  int num_labeled() const;

  /// Edge ids where `u` is the follower (u's "friends" list).
  const std::vector<EdgeId>& OutEdges(UserId u) const;
  /// Edge ids where `u` is the friend (u's "followers" list).
  const std::vector<EdgeId>& InEdges(UserId u) const;
  /// Tweeting-edge ids of `u`.
  const std::vector<EdgeId>& TweetEdges(UserId u) const;

 private:
  int num_venues_;
  std::vector<UserRecord> users_;
  std::vector<FollowingEdge> following_;
  std::vector<TweetingEdge> tweeting_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
  std::vector<std::vector<EdgeId>> tweet_edges_;
  bool finalized_ = false;
};

}  // namespace graph
}  // namespace mlp

#endif  // MLP_GRAPH_SOCIAL_GRAPH_H_
