#include "io/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mlp {
namespace io {

std::vector<std::string> ParseCsvLine(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
    ++i;
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields, char sep) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(sep);
    const std::string& f = fields[i];
    bool needs_quotes =
        f.find(sep) != std::string::npos || f.find('"') != std::string::npos ||
        (!f.empty() && (f.front() == ' ' || f.back() == ' '));
    if (needs_quotes) {
      out.push_back('"');
      for (char c : f) {
        if (c == '"') out += "\"\"";
        else out.push_back(c);
      }
      out.push_back('"');
    } else {
      out += f;
    }
  }
  return out;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, char sep) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(ParseCsvLine(line, sep));
  }
  return rows;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    char sep) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  for (const auto& row : rows) {
    out << FormatCsvLine(row, sep) << "\n";
  }
  if (!out.good()) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

std::string PathJoin(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

Result<int> ParseIntField(const std::string& field, const char* what) {
  char* end = nullptr;
  long value = std::strtol(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument(std::string("bad ") + what + " field: '" +
                                   field + "'");
  }
  return static_cast<int>(value);
}

}  // namespace io
}  // namespace mlp
