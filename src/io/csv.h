#ifndef MLP_IO_CSV_H_
#define MLP_IO_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace mlp {
namespace io {

/// Parses one CSV line. Supports double-quoted fields with embedded commas
/// and doubled-quote escapes; no embedded newlines.
std::vector<std::string> ParseCsvLine(const std::string& line, char sep = ',');

/// Serializes one row, quoting fields that contain the separator, quotes,
/// or leading/trailing whitespace.
std::string FormatCsvLine(const std::vector<std::string>& fields,
                          char sep = ',');

/// Reads a whole CSV file into rows of fields. Empty lines are skipped.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, char sep = ',');

/// Writes rows to `path`, overwriting.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    char sep = ',');

/// dir + "/" + name, tolerating an empty or slash-terminated dir. The one
/// path-join used by every CSV dataset/delta reader and writer.
std::string PathJoin(const std::string& dir, const std::string& name);

/// Strictly parses a whole CSV field as a decimal integer; `what` names
/// the field in the error. Shared by the dataset and delta parsers so a
/// format tweak lands in exactly one place.
Result<int> ParseIntField(const std::string& field, const char* what);

}  // namespace io
}  // namespace mlp

#endif  // MLP_IO_CSV_H_
