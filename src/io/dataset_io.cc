#include "io/dataset_io.h"

#include <cstdlib>

#include "common/string_util.h"
#include "io/csv.h"

namespace mlp {
namespace io {

namespace {
std::string CityField(geo::CityId id) { return std::to_string(id); }

Result<geo::CityId> ParseCity(const std::string& field) {
  MLP_ASSIGN_OR_RETURN(int value, ParseIntField(field, "city id"));
  return static_cast<geo::CityId>(value);
}

Result<int> ParseInt(const std::string& field) {
  return ParseIntField(field, "integer");
}
}  // namespace

Status SaveDataset(const std::string& directory,
                   const graph::SocialGraph& graph,
                   const synth::GroundTruth* truth) {
  std::vector<std::vector<std::string>> users;
  users.push_back({"handle", "profile_location", "registered_city",
                   "true_locations", "true_weights"});
  for (graph::UserId u = 0; u < graph.num_users(); ++u) {
    const graph::UserRecord& record = graph.user(u);
    std::vector<std::string> row = {record.handle, record.profile_location,
                                    CityField(record.registered_city)};
    if (truth != nullptr) {
      const synth::TrueProfile& p = truth->profiles[u];
      std::vector<std::string> locs, weights;
      for (size_t i = 0; i < p.locations.size(); ++i) {
        locs.push_back(std::to_string(p.locations[i]));
        weights.push_back(StringPrintf("%.6f", p.weights[i]));
      }
      row.push_back(Join(locs, ";"));
      row.push_back(Join(weights, ";"));
    } else {
      row.push_back("");
      row.push_back("");
    }
    users.push_back(std::move(row));
  }
  MLP_RETURN_NOT_OK(WriteCsvFile(PathJoin(directory, "users.csv"), users));

  std::vector<std::vector<std::string>> following;
  following.push_back({"follower", "friend", "noisy", "x", "y"});
  for (graph::EdgeId s = 0; s < graph.num_following(); ++s) {
    const graph::FollowingEdge& e = graph.following(s);
    std::vector<std::string> row = {std::to_string(e.follower),
                                    std::to_string(e.friend_user)};
    if (truth != nullptr) {
      const synth::FollowingTruth& t = truth->following[s];
      row.push_back(t.noisy ? "1" : "0");
      row.push_back(CityField(t.x));
      row.push_back(CityField(t.y));
    }
    following.push_back(std::move(row));
  }
  MLP_RETURN_NOT_OK(
      WriteCsvFile(PathJoin(directory, "following.csv"), following));

  std::vector<std::vector<std::string>> tweeting;
  tweeting.push_back({"user", "venue", "noisy", "z"});
  for (graph::EdgeId k = 0; k < graph.num_tweeting(); ++k) {
    const graph::TweetingEdge& e = graph.tweeting(k);
    std::vector<std::string> row = {std::to_string(e.user),
                                    std::to_string(e.venue)};
    if (truth != nullptr) {
      const synth::TweetingTruth& t = truth->tweeting[k];
      row.push_back(t.noisy ? "1" : "0");
      row.push_back(CityField(t.z));
    }
    tweeting.push_back(std::move(row));
  }
  return WriteCsvFile(PathJoin(directory, "tweeting.csv"), tweeting);
}

Result<DatasetStreamWriter> DatasetStreamWriter::Open(
    const std::string& directory, bool with_truth) {
  DatasetStreamWriter writer;
  writer.with_truth_ = with_truth;
  struct FileSpec {
    std::ofstream* stream;
    const char* name;
    const char* header;
  };
  // Headers match SaveDataset verbatim: truth column names are always
  // present; rows simply omit the trailing fields when truth is absent.
  const FileSpec specs[] = {
      {&writer.users_, "users.csv",
       "handle,profile_location,registered_city,true_locations,true_weights"},
      {&writer.following_, "following.csv", "follower,friend,noisy,x,y"},
      {&writer.tweeting_, "tweeting.csv", "user,venue,noisy,z"},
  };
  for (const FileSpec& spec : specs) {
    std::string path = PathJoin(directory, spec.name);
    spec.stream->open(path, std::ios::trunc);
    if (!spec.stream->is_open()) {
      return Status::IOError("cannot open for writing: " + path);
    }
    *spec.stream << spec.header << "\n";
  }
  return writer;
}

Status DatasetStreamWriter::AppendUser(const graph::UserRecord& record,
                                       const synth::TrueProfile* profile) {
  std::vector<std::string> row = {record.handle, record.profile_location,
                                  CityField(record.registered_city)};
  if (profile != nullptr) {
    std::vector<std::string> locs, weights;
    for (size_t i = 0; i < profile->locations.size(); ++i) {
      locs.push_back(std::to_string(profile->locations[i]));
      weights.push_back(StringPrintf("%.6f", profile->weights[i]));
    }
    row.push_back(Join(locs, ";"));
    row.push_back(Join(weights, ";"));
  } else {
    row.push_back("");
    row.push_back("");
  }
  users_ << FormatCsvLine(row) << "\n";
  ++users_written_;
  return users_.good() ? Status::OK() : Status::IOError("users.csv write");
}

Status DatasetStreamWriter::AppendFollowing(
    graph::UserId follower, graph::UserId friend_user,
    const synth::FollowingTruth* truth) {
  // All-numeric row: skip FormatCsvLine (nothing ever needs quoting).
  following_ << follower << ',' << friend_user;
  if (with_truth_ && truth != nullptr) {
    following_ << ',' << (truth->noisy ? '1' : '0') << ',' << truth->x << ','
               << truth->y;
  }
  following_ << '\n';
  ++following_written_;
  return following_.good() ? Status::OK()
                           : Status::IOError("following.csv write");
}

Status DatasetStreamWriter::AppendTweeting(graph::UserId user, int venue,
                                           const synth::TweetingTruth* truth) {
  tweeting_ << user << ',' << venue;
  if (with_truth_ && truth != nullptr) {
    tweeting_ << ',' << (truth->noisy ? '1' : '0') << ',' << truth->z;
  }
  tweeting_ << '\n';
  ++tweeting_written_;
  return tweeting_.good() ? Status::OK() : Status::IOError("tweeting.csv write");
}

Status DatasetStreamWriter::Close() {
  users_.close();
  following_.close();
  tweeting_.close();
  if (users_.fail()) return Status::IOError("users.csv close");
  if (following_.fail()) return Status::IOError("following.csv close");
  if (tweeting_.fail()) return Status::IOError("tweeting.csv close");
  return Status::OK();
}

Result<LoadedDataset> LoadDataset(const std::string& directory,
                                  int num_venues) {
  LoadedDataset loaded{graph::SocialGraph(num_venues), {}, false};

  MLP_ASSIGN_OR_RETURN(auto user_rows,
                       ReadCsvFile(PathJoin(directory, "users.csv")));
  if (user_rows.empty()) {
    return Status::InvalidArgument("users.csv empty");
  }
  for (size_t r = 1; r < user_rows.size(); ++r) {
    const auto& row = user_rows[r];
    if (row.size() < 3) {
      return Status::InvalidArgument("users.csv row too short");
    }
    graph::UserRecord record;
    record.handle = row[0];
    record.profile_location = row[1];
    MLP_ASSIGN_OR_RETURN(record.registered_city, ParseCity(row[2]));
    loaded.graph.AddUser(std::move(record));

    synth::TrueProfile profile;
    if (row.size() >= 5 && !row[3].empty()) {
      loaded.has_truth = true;
      for (const std::string& loc : Split(row[3], ';')) {
        MLP_ASSIGN_OR_RETURN(geo::CityId c, ParseCity(loc));
        profile.locations.push_back(c);
      }
      for (const std::string& w : Split(row[4], ';')) {
        profile.weights.push_back(std::atof(w.c_str()));
      }
      if (profile.locations.size() != profile.weights.size()) {
        return Status::InvalidArgument("users.csv truth size mismatch");
      }
    }
    loaded.truth.profiles.push_back(std::move(profile));
  }

  MLP_ASSIGN_OR_RETURN(auto follow_rows,
                       ReadCsvFile(PathJoin(directory, "following.csv")));
  for (size_t r = 1; r < follow_rows.size(); ++r) {
    const auto& row = follow_rows[r];
    if (row.size() < 2) {
      return Status::InvalidArgument("following.csv row too short");
    }
    MLP_ASSIGN_OR_RETURN(int follower, ParseInt(row[0]));
    MLP_ASSIGN_OR_RETURN(int friend_user, ParseInt(row[1]));
    MLP_RETURN_NOT_OK(loaded.graph.AddFollowing(follower, friend_user));
    if (row.size() >= 5) {
      synth::FollowingTruth t;
      t.noisy = row[2] == "1";
      MLP_ASSIGN_OR_RETURN(t.x, ParseCity(row[3]));
      MLP_ASSIGN_OR_RETURN(t.y, ParseCity(row[4]));
      loaded.truth.following.push_back(t);
    }
  }

  MLP_ASSIGN_OR_RETURN(auto tweet_rows,
                       ReadCsvFile(PathJoin(directory, "tweeting.csv")));
  for (size_t r = 1; r < tweet_rows.size(); ++r) {
    const auto& row = tweet_rows[r];
    if (row.size() < 2) {
      return Status::InvalidArgument("tweeting.csv row too short");
    }
    MLP_ASSIGN_OR_RETURN(int user, ParseInt(row[0]));
    MLP_ASSIGN_OR_RETURN(int venue, ParseInt(row[1]));
    MLP_RETURN_NOT_OK(loaded.graph.AddTweeting(user, venue));
    if (row.size() >= 4) {
      synth::TweetingTruth t;
      t.noisy = row[2] == "1";
      MLP_ASSIGN_OR_RETURN(t.z, ParseCity(row[3]));
      loaded.truth.tweeting.push_back(t);
    }
  }

  loaded.graph.Finalize();
  return loaded;
}

}  // namespace io
}  // namespace mlp
