#ifndef MLP_IO_DATASET_IO_H_
#define MLP_IO_DATASET_IO_H_

#include <cstdint>
#include <fstream>
#include <string>

#include "common/result.h"
#include "graph/social_graph.h"
#include "synth/ground_truth.h"

namespace mlp {
namespace io {

/// Persists a dataset as three CSV files under `directory` (created by the
/// caller): users.csv (handle, profile_location, registered_city),
/// following.csv (follower, friend[, truth]) and tweeting.csv
/// (user, venue[, truth]). Ground truth columns are included when `truth`
/// is non-null, so saved worlds stay evaluable.
Status SaveDataset(const std::string& directory,
                   const graph::SocialGraph& graph,
                   const synth::GroundTruth* truth = nullptr);

/// Loaded counterpart of SaveDataset.
struct LoadedDataset {
  graph::SocialGraph graph;
  synth::GroundTruth truth;  // empty vectors when files had no truth columns
  bool has_truth = false;
};

Result<LoadedDataset> LoadDataset(const std::string& directory,
                                  int num_venues);

/// Incremental counterpart of SaveDataset for worlds too large to
/// materialize: opens the three CSVs up front (headers included) and
/// appends rows one at a time, so a streaming generator writes a
/// million-user dataset with O(1) writer memory. The emitted bytes match
/// SaveDataset field for field — LoadDataset cannot tell the two apart.
class DatasetStreamWriter {
 public:
  /// Opens users.csv / following.csv / tweeting.csv under `directory`
  /// (which must exist) and writes the headers. `with_truth` controls
  /// whether the ground-truth columns are emitted, mirroring SaveDataset's
  /// `truth != nullptr`.
  static Result<DatasetStreamWriter> Open(const std::string& directory,
                                          bool with_truth);

  DatasetStreamWriter(DatasetStreamWriter&&) = default;
  DatasetStreamWriter& operator=(DatasetStreamWriter&&) = default;

  Status AppendUser(const graph::UserRecord& record,
                    const synth::TrueProfile* profile);
  Status AppendFollowing(graph::UserId follower, graph::UserId friend_user,
                         const synth::FollowingTruth* truth);
  Status AppendTweeting(graph::UserId user, int venue,
                        const synth::TweetingTruth* truth);

  /// Flushes and closes all three files; returns the first I/O error seen
  /// on any of them (including buffered errors from earlier appends).
  Status Close();

  int64_t users_written() const { return users_written_; }
  int64_t following_written() const { return following_written_; }
  int64_t tweeting_written() const { return tweeting_written_; }

 private:
  DatasetStreamWriter() = default;

  bool with_truth_ = false;
  std::ofstream users_;
  std::ofstream following_;
  std::ofstream tweeting_;
  int64_t users_written_ = 0;
  int64_t following_written_ = 0;
  int64_t tweeting_written_ = 0;
};

}  // namespace io
}  // namespace mlp

#endif  // MLP_IO_DATASET_IO_H_
