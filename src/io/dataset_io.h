#ifndef MLP_IO_DATASET_IO_H_
#define MLP_IO_DATASET_IO_H_

#include <string>

#include "common/result.h"
#include "graph/social_graph.h"
#include "synth/ground_truth.h"

namespace mlp {
namespace io {

/// Persists a dataset as three CSV files under `directory` (created by the
/// caller): users.csv (handle, profile_location, registered_city),
/// following.csv (follower, friend[, truth]) and tweeting.csv
/// (user, venue[, truth]). Ground truth columns are included when `truth`
/// is non-null, so saved worlds stay evaluable.
Status SaveDataset(const std::string& directory,
                   const graph::SocialGraph& graph,
                   const synth::GroundTruth* truth = nullptr);

/// Loaded counterpart of SaveDataset.
struct LoadedDataset {
  graph::SocialGraph graph;
  synth::GroundTruth truth;  // empty vectors when files had no truth columns
  bool has_truth = false;
};

Result<LoadedDataset> LoadDataset(const std::string& directory,
                                  int num_venues);

}  // namespace io
}  // namespace mlp

#endif  // MLP_IO_DATASET_IO_H_
