#include "io/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mlp {
namespace io {

Result<MmapFile> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + " for mapping: " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("cannot stat " + path + ": " + err);
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  file.mapped_ = true;
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IOError("cannot map " + path + ": " + err);
    }
    // Point queries jump around the JSON blobs; tell readahead not to pull
    // in megabytes per fault.
    ::madvise(addr, file.size_, MADV_RANDOM);
    file.data_ = static_cast<const uint8_t*>(addr);
  }
  ::close(fd);  // the mapping keeps its own reference to the file
  return file;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

}  // namespace io
}  // namespace mlp
