#ifndef MLP_IO_MMAP_FILE_H_
#define MLP_IO_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "common/result.h"

namespace mlp {
namespace io {

/// Read-only memory mapping of a whole file. The out-of-core serving path
/// (serve::ReadModel::MapServeSection) keeps one of these alive for the
/// model's lifetime: queries touch only the pages they read, so the
/// process RSS stays proportional to the working set, not the file size.
///
/// Move-only. A move transfers ownership of the mapping WITHOUT changing
/// its base address, so raw pointers derived from data() stay valid across
/// moves of the owning object — ReadModel relies on this.
class MmapFile {
 public:
  /// Maps `path` read-only (PROT_READ, MAP_PRIVATE) and advises the kernel
  /// for random access. Fails with NotFound / IOError; an empty file maps
  /// to a valid zero-length MmapFile.
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr || size_ == 0; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;  // distinguishes "empty file" from "never opened"
};

}  // namespace io
}  // namespace mlp

#endif  // MLP_IO_MMAP_FILE_H_
