#include "io/model_snapshot.h"

#include <cstring>
#include <fstream>
#include <type_traits>
#include <utility>

#include "common/hash.h"
#include "core/priors.h"

namespace mlp {
namespace io {

namespace {

// Eight magic bytes + version + endian marker head every snapshot. The
// payload after the header is covered by an FNV-1a 64 checksum, so torn
// writes, truncation and bit flips are all detected before any field is
// interpreted.
constexpr char kMagic[8] = {'M', 'L', 'P', 'S', 'N', 'A', 'P', 'B'};
constexpr uint32_t kEndianMarker = 0x01020304u;

class BinaryWriter {
 public:
  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable<T>::value, "POD only");
    const char* p = reinterpret_cast<const char*>(&value);
    buffer_.append(p, sizeof(T));
  }
  template <typename T>
  void PutVector(const std::vector<T>& v) {
    static_assert(std::is_arithmetic<T>::value, "no padding allowed");
    Put<uint64_t>(v.size());
    if (!v.empty()) {
      buffer_.append(reinterpret_cast<const char*>(v.data()),
                     v.size() * sizeof(T));
    }
  }
  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
};

/// Bounds-checked reader: any overrun latches `failed()` and every later
/// read returns zeros, so one end-of-parse check suffices.
class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable<T>::value, "POD only");
    T value{};
    if (failed_ || size_ - pos_ < sizeof(T)) {
      failed_ = true;
      return value;
    }
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }
  template <typename T>
  void GetVector(std::vector<T>* out) {
    static_assert(std::is_arithmetic<T>::value, "no padding allowed");
    uint64_t count = Get<uint64_t>();
    if (failed_ || count > (size_ - pos_) / sizeof(T)) {
      failed_ = true;
      out->clear();
      return;
    }
    out->resize(count);
    if (count > 0) {
      std::memcpy(out->data(), data_ + pos_, count * sizeof(T));
      pos_ += count * sizeof(T);
    }
  }
  bool failed() const { return failed_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

void PutConfig(BinaryWriter* w, const core::MlpConfig& c) {
  w->Put<int32_t>(static_cast<int32_t>(c.source));
  w->Put(c.alpha);
  w->Put(c.beta);
  w->Put<uint8_t>(c.fit_power_law_from_data);
  w->Put(c.rho_f);
  w->Put(c.rho_t);
  w->Put<uint8_t>(c.model_noise);
  w->Put(c.tau);
  w->Put(c.supervision_boost);
  w->Put(c.delta);
  w->Put<uint8_t>(c.use_candidacy);
  w->Put<uint8_t>(c.use_supervision);
  w->Put<int32_t>(c.fallback_top_cities);
  w->Put<int32_t>(c.max_candidates);
  w->Put<int32_t>(c.burn_in_iterations);
  w->Put<int32_t>(c.sampling_iterations);
  w->Put<int32_t>(c.gibbs_em_rounds);
  w->Put(c.em_damping);
  w->Put(c.seed);
  w->Put(c.distance_floor_miles);
  w->Put<int32_t>(c.num_threads);
  w->Put<int32_t>(c.sync_every_sweeps);
}

core::MlpConfig GetConfig(BinaryReader* r) {
  core::MlpConfig c;
  c.source = static_cast<core::ObservationSource>(r->Get<int32_t>());
  c.alpha = r->Get<double>();
  c.beta = r->Get<double>();
  c.fit_power_law_from_data = r->Get<uint8_t>() != 0;
  c.rho_f = r->Get<double>();
  c.rho_t = r->Get<double>();
  c.model_noise = r->Get<uint8_t>() != 0;
  c.tau = r->Get<double>();
  c.supervision_boost = r->Get<double>();
  c.delta = r->Get<double>();
  c.use_candidacy = r->Get<uint8_t>() != 0;
  c.use_supervision = r->Get<uint8_t>() != 0;
  c.fallback_top_cities = r->Get<int32_t>();
  c.max_candidates = r->Get<int32_t>();
  c.burn_in_iterations = r->Get<int32_t>();
  c.sampling_iterations = r->Get<int32_t>();
  c.gibbs_em_rounds = r->Get<int32_t>();
  c.em_damping = r->Get<double>();
  c.seed = r->Get<uint64_t>();
  c.distance_floor_miles = r->Get<double>();
  c.num_threads = r->Get<int32_t>();
  c.sync_every_sweeps = r->Get<int32_t>();
  return c;
}

void PutRng(BinaryWriter* w, const Pcg32State& s) {
  w->Put(s.state);
  w->Put(s.inc);
  w->Put(s.has_cached_normal);
  w->Put(s.cached_normal);
}

Pcg32State GetRng(BinaryReader* r) {
  Pcg32State s;
  s.state = r->Get<uint64_t>();
  s.inc = r->Get<uint64_t>();
  s.has_cached_normal = r->Get<uint8_t>();
  s.cached_normal = r->Get<double>();
  return s;
}

void PutRagged(BinaryWriter* w, const std::vector<std::vector<float>>& rows) {
  w->Put<uint64_t>(rows.size());
  for (const std::vector<float>& row : rows) w->PutVector(row);
}

void GetRagged(BinaryReader* r, std::vector<std::vector<float>>* rows) {
  uint64_t count = r->Get<uint64_t>();
  rows->clear();
  for (uint64_t i = 0; i < count && !r->failed(); ++i) {
    rows->emplace_back();
    r->GetVector(&rows->back());
  }
}

void PutSamplerState(BinaryWriter* w, const core::SamplerState& s) {
  w->PutVector(s.mu);
  w->PutVector(s.x_idx);
  w->PutVector(s.y_idx);
  w->PutVector(s.nu);
  w->PutVector(s.z_idx);
  w->PutVector(s.phi);
  w->PutVector(s.phi_total);
  w->PutVector(s.venue_counts);
  w->PutVector(s.venue_counts_total);
  w->Put(s.accumulated_samples);
  w->PutVector(s.acc_phi);
  PutRagged(w, s.acc_x);
  PutRagged(w, s.acc_y);
  w->PutVector(s.acc_mu);
  PutRagged(w, s.acc_z);
  w->PutVector(s.acc_nu);
  w->PutVector(s.acc_edge_distance);
  w->PutVector(s.last_homes);
  w->PutVector(s.home_change_per_sweep);
}

void GetSamplerState(BinaryReader* r, core::SamplerState* s) {
  r->GetVector(&s->mu);
  r->GetVector(&s->x_idx);
  r->GetVector(&s->y_idx);
  r->GetVector(&s->nu);
  r->GetVector(&s->z_idx);
  r->GetVector(&s->phi);
  r->GetVector(&s->phi_total);
  r->GetVector(&s->venue_counts);
  r->GetVector(&s->venue_counts_total);
  s->accumulated_samples = r->Get<int32_t>();
  r->GetVector(&s->acc_phi);
  GetRagged(r, &s->acc_x);
  GetRagged(r, &s->acc_y);
  r->GetVector(&s->acc_mu);
  GetRagged(r, &s->acc_z);
  r->GetVector(&s->acc_nu);
  r->GetVector(&s->acc_edge_distance);
  r->GetVector(&s->last_homes);
  r->GetVector(&s->home_change_per_sweep);
}

void PutResult(BinaryWriter* w, const core::MlpResult& result) {
  w->Put<uint64_t>(result.profiles.size());
  for (const core::LocationProfile& profile : result.profiles) {
    w->Put<uint64_t>(profile.entries().size());
    for (const auto& entry : profile.entries()) {
      w->Put(entry.first);
      w->Put(entry.second);
    }
  }
  w->PutVector(result.home);
  w->Put<uint64_t>(result.following.size());
  for (const core::FollowingExplanation& ex : result.following) {
    w->Put(ex.x);
    w->Put(ex.y);
    w->Put(ex.noise_prob);
  }
  w->Put<uint64_t>(result.tweeting.size());
  for (const core::TweetExplanation& ex : result.tweeting) {
    w->Put(ex.z);
    w->Put(ex.noise_prob);
  }
  w->Put(result.alpha);
  w->Put(result.beta);
  w->PutVector(result.home_change_per_sweep);
}

void GetResult(BinaryReader* r, core::MlpResult* result) {
  uint64_t num_profiles = r->Get<uint64_t>();
  result->profiles.clear();
  for (uint64_t u = 0; u < num_profiles && !r->failed(); ++u) {
    uint64_t num_entries = r->Get<uint64_t>();
    std::vector<std::pair<geo::CityId, double>> entries;
    for (uint64_t l = 0; l < num_entries && !r->failed(); ++l) {
      geo::CityId city = r->Get<geo::CityId>();
      double p = r->Get<double>();
      entries.emplace_back(city, p);
    }
    result->profiles.emplace_back(std::move(entries));
  }
  r->GetVector(&result->home);
  uint64_t num_following = r->Get<uint64_t>();
  result->following.clear();
  for (uint64_t s = 0; s < num_following && !r->failed(); ++s) {
    core::FollowingExplanation ex;
    ex.x = r->Get<geo::CityId>();
    ex.y = r->Get<geo::CityId>();
    ex.noise_prob = r->Get<double>();
    result->following.push_back(ex);
  }
  uint64_t num_tweeting = r->Get<uint64_t>();
  result->tweeting.clear();
  for (uint64_t k = 0; k < num_tweeting && !r->failed(); ++k) {
    core::TweetExplanation ex;
    ex.z = r->Get<geo::CityId>();
    ex.noise_prob = r->Get<double>();
    result->tweeting.push_back(ex);
  }
  result->alpha = r->Get<double>();
  result->beta = r->Get<double>();
  r->GetVector(&result->home_change_per_sweep);
}

}  // namespace

ModelSnapshot MakeModelSnapshot(const core::ModelInput& input,
                                const core::FitCheckpoint& checkpoint,
                                const core::MlpResult& result) {
  ModelSnapshot snapshot;
  snapshot.checkpoint = checkpoint;
  snapshot.result = result;
  // The candidate layout is a pure function of (input, config) — rebuild
  // it through the same SuffStatsLayout::Build the sampler's arena was
  // allocated with, so the stored offsets can never drift from the flat ϕ
  // buffer they index.
  std::vector<core::UserPrior> priors =
      core::BuildPriors(input, checkpoint.config);
  const int num_venues =
      checkpoint.config.source == core::ObservationSource::kFollowingOnly
          ? 0
          : input.num_venues();
  core::SuffStatsLayout layout =
      core::SuffStatsLayout::Build(priors, input.num_locations(), num_venues);
  snapshot.phi_offset = std::move(layout.phi_offset);
  snapshot.candidates.reserve(snapshot.phi_offset.back());
  for (const core::UserPrior& prior : priors) {
    snapshot.candidates.insert(snapshot.candidates.end(),
                               prior.candidates.begin(),
                               prior.candidates.end());
  }
  snapshot.num_locations = layout.num_locations;
  snapshot.num_venues = layout.num_venues;
  return snapshot;
}

Status SaveModelSnapshot(const std::string& path,
                         const ModelSnapshot& snapshot) {
  BinaryWriter payload;
  PutConfig(&payload, snapshot.checkpoint.config);
  payload.Put(snapshot.checkpoint.fingerprint);
  payload.Put<uint8_t>(snapshot.checkpoint.complete);
  payload.Put(snapshot.checkpoint.progress.round);
  payload.Put(snapshot.checkpoint.progress.burn_in_done);
  payload.Put(snapshot.checkpoint.progress.sampling_done);
  payload.Put(snapshot.checkpoint.progress.alpha);
  payload.Put(snapshot.checkpoint.progress.beta);
  PutSamplerState(&payload, snapshot.checkpoint.sampler);
  PutRng(&payload, snapshot.checkpoint.master_rng);
  payload.Put<uint64_t>(snapshot.checkpoint.shard_rngs.size());
  for (const Pcg32State& s : snapshot.checkpoint.shard_rngs) {
    PutRng(&payload, s);
  }
  payload.PutVector(snapshot.phi_offset);
  payload.PutVector(snapshot.candidates);
  payload.Put(snapshot.num_locations);
  payload.Put(snapshot.num_venues);
  PutResult(&payload, snapshot.result);

  BinaryWriter header;
  for (char c : kMagic) header.Put(c);
  header.Put(kModelSnapshotVersion);
  header.Put(kEndianMarker);
  header.Put<uint64_t>(payload.buffer().size());
  header.Put<uint64_t>(
      HashFnv1a64(payload.buffer().data(), payload.buffer().size()));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  out.write(header.buffer().data(),
            static_cast<std::streamsize>(header.buffer().size()));
  out.write(payload.buffer().data(),
            static_cast<std::streamsize>(payload.buffer().size()));
  out.flush();
  if (!out.good()) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Result<ModelSnapshot> LoadModelSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) {
    return Status::NotFound("cannot open snapshot " + path);
  }
  const std::streamsize file_size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(file_size));
  if (file_size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()), file_size);
  }
  if (!in.good()) {
    return Status::IOError("cannot read snapshot " + path);
  }

  constexpr size_t kHeaderSize =
      sizeof(kMagic) + sizeof(uint32_t) * 2 + sizeof(uint64_t) * 2;
  if (bytes.size() < kHeaderSize) {
    return Status::IOError("snapshot truncated: " + path);
  }
  BinaryReader header(bytes.data(), kHeaderSize);
  char magic[8];
  for (char& c : magic) c = header.Get<char>();
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an MLP model snapshot: " + path);
  }
  const uint32_t version = header.Get<uint32_t>();
  if (version != kModelSnapshotVersion) {
    return Status::InvalidArgument(
        "snapshot version " + std::to_string(version) +
        " unsupported (this build reads version " +
        std::to_string(kModelSnapshotVersion) + "): " + path);
  }
  if (header.Get<uint32_t>() != kEndianMarker) {
    return Status::InvalidArgument(
        "snapshot written on an incompatible-endianness machine: " + path);
  }
  const uint64_t payload_size = header.Get<uint64_t>();
  const uint64_t checksum = header.Get<uint64_t>();
  if (payload_size != bytes.size() - kHeaderSize) {
    return Status::IOError("snapshot payload size mismatch: " + path);
  }
  const uint8_t* payload_bytes = bytes.data() + kHeaderSize;
  if (HashFnv1a64(payload_bytes, payload_size) != checksum) {
    return Status::IOError("snapshot checksum mismatch (corrupt): " + path);
  }

  BinaryReader r(payload_bytes, payload_size);
  ModelSnapshot snapshot;
  snapshot.checkpoint.config = GetConfig(&r);
  snapshot.checkpoint.fingerprint = r.Get<uint64_t>();
  snapshot.checkpoint.complete = r.Get<uint8_t>() != 0;
  snapshot.checkpoint.progress.round = r.Get<int32_t>();
  snapshot.checkpoint.progress.burn_in_done = r.Get<int32_t>();
  snapshot.checkpoint.progress.sampling_done = r.Get<int32_t>();
  snapshot.checkpoint.progress.alpha = r.Get<double>();
  snapshot.checkpoint.progress.beta = r.Get<double>();
  GetSamplerState(&r, &snapshot.checkpoint.sampler);
  snapshot.checkpoint.master_rng = GetRng(&r);
  uint64_t num_shard_rngs = r.Get<uint64_t>();
  for (uint64_t k = 0; k < num_shard_rngs && !r.failed(); ++k) {
    snapshot.checkpoint.shard_rngs.push_back(GetRng(&r));
  }
  r.GetVector(&snapshot.phi_offset);
  r.GetVector(&snapshot.candidates);
  snapshot.num_locations = r.Get<int32_t>();
  snapshot.num_venues = r.Get<int32_t>();
  GetResult(&r, &snapshot.result);

  if (r.failed() || !r.AtEnd()) {
    return Status::IOError("snapshot payload malformed: " + path);
  }
  return snapshot;
}

}  // namespace io
}  // namespace mlp
