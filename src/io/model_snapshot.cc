#include "io/model_snapshot.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <type_traits>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "core/candidate_space.h"

namespace mlp {
namespace io {

namespace {

// Eight magic bytes + version + endian marker head every snapshot. The
// payload after the header is covered by an FNV-1a 64 checksum, so torn
// writes, truncation and bit flips are all detected before any field is
// interpreted.
constexpr char kMagic[8] = {'M', 'L', 'P', 'S', 'N', 'A', 'P', 'B'};
constexpr uint32_t kEndianMarker = 0x01020304u;

class BinaryWriter {
 public:
  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable<T>::value, "POD only");
    const char* p = reinterpret_cast<const char*>(&value);
    buffer_.append(p, sizeof(T));
  }
  template <typename T>
  void PutVector(const std::vector<T>& v) {
    static_assert(std::is_arithmetic<T>::value, "no padding allowed");
    Put<uint64_t>(v.size());
    if (!v.empty()) {
      buffer_.append(reinterpret_cast<const char*>(v.data()),
                     v.size() * sizeof(T));
    }
  }
  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
};

/// Bounds-checked reader: any overrun latches `failed()` and every later
/// read returns zeros, so one end-of-parse check suffices.
class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable<T>::value, "POD only");
    T value{};
    if (failed_ || size_ - pos_ < sizeof(T)) {
      failed_ = true;
      return value;
    }
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }
  template <typename T>
  void GetVector(std::vector<T>* out) {
    static_assert(std::is_arithmetic<T>::value, "no padding allowed");
    uint64_t count = Get<uint64_t>();
    if (failed_ || count > (size_ - pos_) / sizeof(T)) {
      failed_ = true;
      out->clear();
      return;
    }
    out->resize(count);
    if (count > 0) {
      std::memcpy(out->data(), data_ + pos_, count * sizeof(T));
      pos_ += count * sizeof(T);
    }
  }
  bool failed() const { return failed_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

void PutConfig(BinaryWriter* w, const core::MlpConfig& c, uint32_t version) {
  w->Put<int32_t>(static_cast<int32_t>(c.source));
  w->Put(c.alpha);
  w->Put(c.beta);
  w->Put<uint8_t>(c.fit_power_law_from_data);
  w->Put(c.rho_f);
  w->Put(c.rho_t);
  w->Put<uint8_t>(c.model_noise);
  w->Put(c.tau);
  w->Put(c.supervision_boost);
  w->Put(c.delta);
  w->Put<uint8_t>(c.use_candidacy);
  w->Put<uint8_t>(c.use_supervision);
  w->Put<int32_t>(c.fallback_top_cities);
  w->Put<int32_t>(c.max_candidates);
  w->Put<int32_t>(c.burn_in_iterations);
  w->Put<int32_t>(c.sampling_iterations);
  w->Put<int32_t>(c.gibbs_em_rounds);
  w->Put(c.em_damping);
  w->Put(c.seed);
  w->Put(c.distance_floor_miles);
  w->Put<int32_t>(c.num_threads);
  w->Put<int32_t>(c.sync_every_sweeps);
  if (version >= 2) {
    w->Put(c.prune_floor);
    w->Put<int32_t>(c.prune_patience);
  }
}

core::MlpConfig GetConfig(BinaryReader* r, uint32_t version) {
  core::MlpConfig c;
  c.source = static_cast<core::ObservationSource>(r->Get<int32_t>());
  c.alpha = r->Get<double>();
  c.beta = r->Get<double>();
  c.fit_power_law_from_data = r->Get<uint8_t>() != 0;
  c.rho_f = r->Get<double>();
  c.rho_t = r->Get<double>();
  c.model_noise = r->Get<uint8_t>() != 0;
  c.tau = r->Get<double>();
  c.supervision_boost = r->Get<double>();
  c.delta = r->Get<double>();
  c.use_candidacy = r->Get<uint8_t>() != 0;
  c.use_supervision = r->Get<uint8_t>() != 0;
  c.fallback_top_cities = r->Get<int32_t>();
  c.max_candidates = r->Get<int32_t>();
  c.burn_in_iterations = r->Get<int32_t>();
  c.sampling_iterations = r->Get<int32_t>();
  c.gibbs_em_rounds = r->Get<int32_t>();
  c.em_damping = r->Get<double>();
  c.seed = r->Get<uint64_t>();
  c.distance_floor_miles = r->Get<double>();
  c.num_threads = r->Get<int32_t>();
  c.sync_every_sweeps = r->Get<int32_t>();
  if (version >= 2) {
    c.prune_floor = r->Get<double>();
    c.prune_patience = r->Get<int32_t>();
  }
  // version 1 predates pruning: the defaults (prune_floor = 0, i.e. off)
  // already describe the program that fit ran.
  return c;
}

void PutActivation(BinaryWriter* w, const core::CandidateActivation& a) {
  w->PutVector(a.active);
  w->PutVector(a.cold_streak);
  w->Put(a.layout_version);
  w->Put<uint64_t>(a.history.size());
  for (const core::PruneEvent& event : a.history) {
    w->Put(event.sweep);
    w->Put(event.deactivated);
  }
}

void GetActivation(BinaryReader* r, core::CandidateActivation* a) {
  r->GetVector(&a->active);
  r->GetVector(&a->cold_streak);
  a->layout_version = r->Get<uint64_t>();
  uint64_t history = r->Get<uint64_t>();
  a->history.clear();
  for (uint64_t i = 0; i < history && !r->failed(); ++i) {
    core::PruneEvent event;
    event.sweep = r->Get<int32_t>();
    event.deactivated = r->Get<int32_t>();
    a->history.push_back(event);
  }
}

void PutRng(BinaryWriter* w, const Pcg32State& s) {
  w->Put(s.state);
  w->Put(s.inc);
  w->Put(s.has_cached_normal);
  w->Put(s.cached_normal);
}

Pcg32State GetRng(BinaryReader* r) {
  Pcg32State s;
  s.state = r->Get<uint64_t>();
  s.inc = r->Get<uint64_t>();
  s.has_cached_normal = r->Get<uint8_t>();
  s.cached_normal = r->Get<double>();
  return s;
}

void PutRagged(BinaryWriter* w, const std::vector<std::vector<float>>& rows) {
  w->Put<uint64_t>(rows.size());
  for (const std::vector<float>& row : rows) w->PutVector(row);
}

void GetRagged(BinaryReader* r, std::vector<std::vector<float>>* rows) {
  uint64_t count = r->Get<uint64_t>();
  rows->clear();
  for (uint64_t i = 0; i < count && !r->failed(); ++i) {
    rows->emplace_back();
    r->GetVector(&rows->back());
  }
}

void PutSamplerState(BinaryWriter* w, const core::SamplerState& s) {
  w->PutVector(s.mu);
  w->PutVector(s.x_idx);
  w->PutVector(s.y_idx);
  w->PutVector(s.nu);
  w->PutVector(s.z_idx);
  w->PutVector(s.phi);
  w->PutVector(s.phi_total);
  w->PutVector(s.venue_counts);
  w->PutVector(s.venue_counts_total);
  w->Put(s.accumulated_samples);
  w->PutVector(s.acc_phi);
  PutRagged(w, s.acc_x);
  PutRagged(w, s.acc_y);
  w->PutVector(s.acc_mu);
  PutRagged(w, s.acc_z);
  w->PutVector(s.acc_nu);
  w->PutVector(s.acc_edge_distance);
  w->PutVector(s.last_homes);
  w->PutVector(s.home_change_per_sweep);
}

void GetSamplerState(BinaryReader* r, core::SamplerState* s) {
  r->GetVector(&s->mu);
  r->GetVector(&s->x_idx);
  r->GetVector(&s->y_idx);
  r->GetVector(&s->nu);
  r->GetVector(&s->z_idx);
  r->GetVector(&s->phi);
  r->GetVector(&s->phi_total);
  r->GetVector(&s->venue_counts);
  r->GetVector(&s->venue_counts_total);
  s->accumulated_samples = r->Get<int32_t>();
  r->GetVector(&s->acc_phi);
  GetRagged(r, &s->acc_x);
  GetRagged(r, &s->acc_y);
  r->GetVector(&s->acc_mu);
  GetRagged(r, &s->acc_z);
  r->GetVector(&s->acc_nu);
  r->GetVector(&s->acc_edge_distance);
  r->GetVector(&s->last_homes);
  r->GetVector(&s->home_change_per_sweep);
}

void PutResult(BinaryWriter* w, const core::MlpResult& result) {
  w->Put<uint64_t>(result.profiles.size());
  for (const core::LocationProfile& profile : result.profiles) {
    w->Put<uint64_t>(profile.entries().size());
    for (const auto& entry : profile.entries()) {
      w->Put(entry.first);
      w->Put(entry.second);
    }
  }
  w->PutVector(result.home);
  w->Put<uint64_t>(result.following.size());
  for (const core::FollowingExplanation& ex : result.following) {
    w->Put(ex.x);
    w->Put(ex.y);
    w->Put(ex.noise_prob);
  }
  w->Put<uint64_t>(result.tweeting.size());
  for (const core::TweetExplanation& ex : result.tweeting) {
    w->Put(ex.z);
    w->Put(ex.noise_prob);
  }
  w->Put(result.alpha);
  w->Put(result.beta);
  w->PutVector(result.home_change_per_sweep);
}

void GetResult(BinaryReader* r, core::MlpResult* result) {
  uint64_t num_profiles = r->Get<uint64_t>();
  result->profiles.clear();
  for (uint64_t u = 0; u < num_profiles && !r->failed(); ++u) {
    uint64_t num_entries = r->Get<uint64_t>();
    std::vector<std::pair<geo::CityId, double>> entries;
    for (uint64_t l = 0; l < num_entries && !r->failed(); ++l) {
      geo::CityId city = r->Get<geo::CityId>();
      double p = r->Get<double>();
      entries.emplace_back(city, p);
    }
    result->profiles.emplace_back(std::move(entries));
  }
  r->GetVector(&result->home);
  uint64_t num_following = r->Get<uint64_t>();
  result->following.clear();
  for (uint64_t s = 0; s < num_following && !r->failed(); ++s) {
    core::FollowingExplanation ex;
    ex.x = r->Get<geo::CityId>();
    ex.y = r->Get<geo::CityId>();
    ex.noise_prob = r->Get<double>();
    result->following.push_back(ex);
  }
  uint64_t num_tweeting = r->Get<uint64_t>();
  result->tweeting.clear();
  for (uint64_t k = 0; k < num_tweeting && !r->failed(); ++k) {
    core::TweetExplanation ex;
    ex.z = r->Get<geo::CityId>();
    ex.noise_prob = r->Get<double>();
    result->tweeting.push_back(ex);
  }
  result->alpha = r->Get<double>();
  result->beta = r->Get<double>();
  r->GetVector(&result->home_change_per_sweep);
}

}  // namespace

ModelSnapshot MakeModelSnapshot(const core::ModelInput& input,
                                const core::FitCheckpoint& checkpoint,
                                const core::MlpResult& result) {
  ModelSnapshot snapshot;
  snapshot.checkpoint = checkpoint;
  snapshot.result = result;
  // The candidate universe is a pure function of (input, config); the
  // stored layout is its ACTIVE view under the checkpoint's activation
  // mask — rebuilt through the same CandidateSpace the sampler's arena was
  // laid out over, so the stored offsets can never drift from the flat ϕ
  // buffer they index.
  core::CandidateSpace space =
      core::CandidateSpace::Build(input, checkpoint.config);
  // The checkpoint came out of a fit over this same universe; a mismatch
  // means the caller paired a checkpoint with foreign data, and writing it
  // out would persist a corrupt-by-construction file (fully-active layout
  // indexing compacted-size arena buffers) — fail loudly here instead.
  Status restored = space.RestoreActivation(checkpoint.activation);
  MLP_CHECK_MSG(restored.ok(),
                "checkpoint activation does not match the candidate universe "
                "derived from this input/config");
  const core::SuffStatsLayout& layout = space.layout();
  snapshot.phi_offset = layout.phi_offset;
  snapshot.candidates.reserve(layout.phi_size());
  for (graph::UserId u = 0; u < space.num_users(); ++u) {
    const core::CandidateView& view = space.view(u);
    snapshot.candidates.insert(snapshot.candidates.end(), view.candidates,
                               view.candidates + view.size());
  }
  snapshot.num_locations = layout.num_locations;
  snapshot.num_venues = layout.num_venues;
  return snapshot;
}

namespace {

Status SaveModelSnapshotAtVersion(const std::string& path,
                                  const ModelSnapshot& snapshot,
                                  uint32_t version) {
  BinaryWriter payload;
  PutConfig(&payload, snapshot.checkpoint.config, version);
  payload.Put(snapshot.checkpoint.fingerprint);
  payload.Put<uint8_t>(snapshot.checkpoint.complete);
  payload.Put(snapshot.checkpoint.progress.round);
  payload.Put(snapshot.checkpoint.progress.burn_in_done);
  payload.Put(snapshot.checkpoint.progress.sampling_done);
  payload.Put(snapshot.checkpoint.progress.alpha);
  payload.Put(snapshot.checkpoint.progress.beta);
  PutSamplerState(&payload, snapshot.checkpoint.sampler);
  PutRng(&payload, snapshot.checkpoint.master_rng);
  payload.Put<uint64_t>(snapshot.checkpoint.shard_rngs.size());
  for (const Pcg32State& s : snapshot.checkpoint.shard_rngs) {
    PutRng(&payload, s);
  }
  if (version >= 2) {
    PutActivation(&payload, snapshot.checkpoint.activation);
  }
  payload.PutVector(snapshot.phi_offset);
  payload.PutVector(snapshot.candidates);
  payload.Put(snapshot.num_locations);
  payload.Put(snapshot.num_venues);
  PutResult(&payload, snapshot.result);

  // v2 folds the (un-checksummed, pre-checksum) header words into the
  // checksum: a flipped version byte must read as corruption, not as an
  // instruction to reinterpret the payload under the other version's
  // layout. v1 keeps its historical payload-only checksum.
  Fnv1a64 checksum;
  if (version >= 2) {
    checksum.Value<uint32_t>(version);
    checksum.Value<uint32_t>(kEndianMarker);
  }
  checksum.Bytes(payload.buffer().data(), payload.buffer().size());

  BinaryWriter header;
  for (char c : kMagic) header.Put(c);
  header.Put(version);
  header.Put(kEndianMarker);
  header.Put<uint64_t>(payload.buffer().size());
  header.Put<uint64_t>(checksum.hash);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  out.write(header.buffer().data(),
            static_cast<std::streamsize>(header.buffer().size()));
  out.write(payload.buffer().data(),
            static_cast<std::streamsize>(payload.buffer().size()));
  out.flush();
  if (!out.good()) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace

Status SaveModelSnapshot(const std::string& path,
                         const ModelSnapshot& snapshot) {
  return SaveModelSnapshotAtVersion(path, snapshot, kModelSnapshotVersion);
}

Status SaveModelSnapshotV1(const std::string& path,
                           const ModelSnapshot& snapshot) {
  const core::CandidateActivation& a = snapshot.checkpoint.activation;
  const bool mask_trivial =
      a.active.empty() ||
      std::all_of(a.active.begin(), a.active.end(),
                  [](uint8_t v) { return v != 0; });
  const bool streaks_trivial =
      a.cold_streak.empty() ||
      std::all_of(a.cold_streak.begin(), a.cold_streak.end(),
                  [](int32_t c) { return c == 0; });
  if (!mask_trivial || !streaks_trivial || a.layout_version != 0 ||
      !a.history.empty() || snapshot.checkpoint.config.prune_floor != 0.0 ||
      snapshot.checkpoint.config.prune_patience !=
          core::MlpConfig().prune_patience) {
    return Status::InvalidArgument(
        "snapshot carries candidate-pruning state the v1 format cannot "
        "express — save as v" +
        std::to_string(kModelSnapshotVersion) + " instead");
  }
  return SaveModelSnapshotAtVersion(path, snapshot, 1);
}

Result<SnapshotHeaderInfo> ParseSnapshotHeader(const uint8_t* data,
                                               size_t size) {
  static_assert(kModelSnapshotHeaderSize ==
                    sizeof(kMagic) + sizeof(uint32_t) * 2 +
                        sizeof(uint64_t) * 2,
                "header constant out of sync with the writer");
  if (size < kModelSnapshotHeaderSize) {
    return Status::IOError("snapshot truncated");
  }
  BinaryReader header(data, kModelSnapshotHeaderSize);
  char magic[8];
  for (char& c : magic) c = header.Get<char>();
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an MLP model snapshot");
  }
  SnapshotHeaderInfo info;
  info.version = header.Get<uint32_t>();
  if (info.version < kMinModelSnapshotVersion ||
      info.version > kModelSnapshotVersion) {
    return Status::InvalidArgument(
        "snapshot version " + std::to_string(info.version) +
        " unsupported (this build reads versions " +
        std::to_string(kMinModelSnapshotVersion) + ".." +
        std::to_string(kModelSnapshotVersion) + ")");
  }
  if (header.Get<uint32_t>() != kEndianMarker) {
    return Status::InvalidArgument(
        "snapshot written on an incompatible-endianness machine");
  }
  info.payload_size = header.Get<uint64_t>();
  if (info.payload_size > size - kModelSnapshotHeaderSize) {
    return Status::IOError("snapshot payload size mismatch");
  }
  info.core_end = kModelSnapshotHeaderSize + info.payload_size;
  return info;
}

Result<ModelSnapshot> LoadModelSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) {
    return Status::NotFound("cannot open snapshot " + path);
  }
  const std::streamsize file_size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(file_size));
  if (file_size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()), file_size);
  }
  if (!in.good()) {
    return Status::IOError("cannot read snapshot " + path);
  }

  Result<SnapshotHeaderInfo> info =
      ParseSnapshotHeader(bytes.data(), bytes.size());
  if (!info.ok()) {
    Status status = info.status();
    return Status(status.code(), status.message() + ": " + path);
  }
  const uint32_t version = info->version;
  const uint64_t payload_size = info->payload_size;
  // Bytes past core_end are NOT part of the snapshot: that region holds
  // the optional appended serve section (its own magic + checksum, mapped
  // by serve::ReadModel::MapServeSection), which this loader ignores.
  constexpr size_t kHeaderSize = kModelSnapshotHeaderSize;
  BinaryReader header(bytes.data(), kHeaderSize);
  for (size_t i = 0; i < sizeof(kMagic) + sizeof(uint32_t) * 2; ++i) {
    header.Get<char>();
  }
  header.Get<uint64_t>();  // payload_size, already validated
  const uint64_t checksum = header.Get<uint64_t>();
  const uint8_t* payload_bytes = bytes.data() + kHeaderSize;
  Fnv1a64 expected;
  if (version >= 2) {
    expected.Value<uint32_t>(version);
    expected.Value<uint32_t>(kEndianMarker);
  }
  expected.Bytes(payload_bytes, payload_size);
  if (expected.hash != checksum) {
    return Status::IOError("snapshot checksum mismatch (corrupt): " + path);
  }

  BinaryReader r(payload_bytes, payload_size);
  ModelSnapshot snapshot;
  snapshot.version = version;
  snapshot.checkpoint.config = GetConfig(&r, version);
  snapshot.checkpoint.fingerprint = r.Get<uint64_t>();
  snapshot.checkpoint.complete = r.Get<uint8_t>() != 0;
  snapshot.checkpoint.progress.round = r.Get<int32_t>();
  snapshot.checkpoint.progress.burn_in_done = r.Get<int32_t>();
  snapshot.checkpoint.progress.sampling_done = r.Get<int32_t>();
  snapshot.checkpoint.progress.alpha = r.Get<double>();
  snapshot.checkpoint.progress.beta = r.Get<double>();
  GetSamplerState(&r, &snapshot.checkpoint.sampler);
  snapshot.checkpoint.master_rng = GetRng(&r);
  uint64_t num_shard_rngs = r.Get<uint64_t>();
  for (uint64_t k = 0; k < num_shard_rngs && !r.failed(); ++k) {
    snapshot.checkpoint.shard_rngs.push_back(GetRng(&r));
  }
  if (version >= 2) {
    GetActivation(&r, &snapshot.checkpoint.activation);
  }
  // version 1: activation stays default-constructed — empty mask, i.e.
  // fully active, which is exactly the state those fits ran with.
  r.GetVector(&snapshot.phi_offset);
  r.GetVector(&snapshot.candidates);
  snapshot.num_locations = r.Get<int32_t>();
  snapshot.num_venues = r.Get<int32_t>();
  GetResult(&r, &snapshot.result);

  if (r.failed() || !r.AtEnd()) {
    return Status::IOError("snapshot payload malformed: " + path);
  }
  return snapshot;
}

}  // namespace io
}  // namespace mlp
