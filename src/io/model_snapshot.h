#ifndef MLP_IO_MODEL_SNAPSHOT_H_
#define MLP_IO_MODEL_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/input.h"
#include "core/model.h"
#include "core/sampler.h"
#include "core/suff_stats.h"

namespace mlp {
namespace io {

/// On-disk format version. Bump on ANY layout change (including new
/// MlpConfig fields) — readers reject every version they were not built
/// for. See src/io/README.md for the byte layout.
inline constexpr uint32_t kModelSnapshotVersion = 1;

/// A fitted (or mid-fit) MLP model, persistable and resumable:
///   - the FitCheckpoint (config, fingerprint, program position, sampler
///     chain + arena + accumulators, every RNG stream),
///   - the candidate-set layout the arena is indexed by (offsets +
///     candidate city ids, so a serving layer can interpret ϕ without
///     rebuilding priors),
///   - the MlpResult built when the snapshot was cut.
struct ModelSnapshot {
  core::FitCheckpoint checkpoint;

  /// CSR prefix over users, size num_users + 1; candidates holds the
  /// concatenated candidate CityIds in the same order as the arena's ϕ.
  std::vector<int64_t> phi_offset;
  std::vector<geo::CityId> candidates;
  int32_t num_locations = 0;
  int32_t num_venues = 0;

  core::MlpResult result;
};

/// Assembles a snapshot from a finished Fit call: derives the candidate
/// layout from (input, checkpoint.config) exactly as Fit did.
ModelSnapshot MakeModelSnapshot(const core::ModelInput& input,
                                const core::FitCheckpoint& checkpoint,
                                const core::MlpResult& result);

/// Writes `snapshot` to `path` as one versioned, checksummed binary blob.
/// The write is atomic-ish: a partially written file never passes the
/// checksum, so readers can't consume a torn snapshot.
Status SaveModelSnapshot(const std::string& path,
                         const ModelSnapshot& snapshot);

/// Reads a snapshot back. Fails with InvalidArgument on a foreign or
/// version-mismatched file and IOError on a corrupt one (bad checksum,
/// truncation, out-of-bounds section) — never crashes on malformed input.
Result<ModelSnapshot> LoadModelSnapshot(const std::string& path);

}  // namespace io
}  // namespace mlp

#endif  // MLP_IO_MODEL_SNAPSHOT_H_
