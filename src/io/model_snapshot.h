#ifndef MLP_IO_MODEL_SNAPSHOT_H_
#define MLP_IO_MODEL_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/input.h"
#include "core/model.h"
#include "core/sampler.h"
#include "core/suff_stats.h"

namespace mlp {
namespace io {

/// On-disk format version. Bump on ANY layout change (including new
/// MlpConfig fields) and extend the reader's back-compat path — the reader
/// accepts every version back to kMinModelSnapshotVersion and rejects the
/// rest. See src/io/README.md for the byte layout.
///
/// v2 (candidate pruning): appends the MlpConfig pruning knobs
/// (prune_floor, prune_patience) to the config section and the
/// CandidateActivation (active mask over the full candidate universe,
/// per-slot cold streaks, layout_version, compaction history) after the
/// shard RNG streams. A v1 file loads with an empty mask — i.e. fully
/// active — and resumes bit-exactly under --no_prune.
inline constexpr uint32_t kModelSnapshotVersion = 2;
inline constexpr uint32_t kMinModelSnapshotVersion = 1;

/// A fitted (or mid-fit) MLP model, persistable and resumable:
///   - the FitCheckpoint (config, fingerprint, program position, sampler
///     chain + arena + accumulators, every RNG stream, and the candidate
///     activation state),
///   - the ACTIVE candidate-set layout the arena is indexed by (offsets +
///     candidate city ids, so a serving layer can interpret ϕ without
///     rebuilding priors — after pruning this is the compacted layout),
///   - the MlpResult built when the snapshot was cut.
struct ModelSnapshot {
  core::FitCheckpoint checkpoint;

  /// Format version this snapshot was READ from (kModelSnapshotVersion for
  /// snapshots assembled in memory). Informational — surfaced by CLI
  /// mismatch diagnostics; Save* functions choose their own version.
  uint32_t version = kModelSnapshotVersion;

  /// CSR prefix over users, size num_users + 1; candidates holds the
  /// concatenated ACTIVE candidate CityIds in the same order as the
  /// arena's ϕ (identical to the full universe until a prune fires).
  std::vector<int64_t> phi_offset;
  std::vector<geo::CityId> candidates;
  int32_t num_locations = 0;
  int32_t num_venues = 0;

  core::MlpResult result;
};

/// Assembles a snapshot from a finished Fit call: derives the candidate
/// layout from (input, checkpoint.config) exactly as Fit did.
ModelSnapshot MakeModelSnapshot(const core::ModelInput& input,
                                const core::FitCheckpoint& checkpoint,
                                const core::MlpResult& result);

/// Writes `snapshot` to `path` as one versioned, checksummed binary blob.
/// The write is atomic-ish: a partially written file never passes the
/// checksum, so readers can't consume a torn snapshot.
Status SaveModelSnapshot(const std::string& path,
                         const ModelSnapshot& snapshot);

/// Writes the legacy v1 (pre-pruning) byte layout — for downgrade interop
/// with older readers and for the v1→v2 compatibility tests. Fails with
/// InvalidArgument when the snapshot carries pruning state a v1 file
/// cannot express (a non-trivial activation mask or non-default prune
/// config fields).
Status SaveModelSnapshotV1(const std::string& path,
                           const ModelSnapshot& snapshot);

/// Reads a snapshot back. Fails with InvalidArgument on a foreign or
/// version-mismatched file and IOError on a corrupt one (bad checksum,
/// truncation, out-of-bounds section) — never crashes on malformed input.
/// Bytes past the checksummed core payload are tolerated and ignored:
/// that region holds the optional mmap-able serve section appended by
/// serve::ReadModel::AppendServeSection (see src/io/README.md).
Result<ModelSnapshot> LoadModelSnapshot(const std::string& path);

/// Fixed size of the snapshot file header (magic + version + endian marker
/// + payload size + checksum).
inline constexpr size_t kModelSnapshotHeaderSize = 32;

/// The header fields a reader needs to navigate a snapshot file without
/// parsing the payload: the format version and where the checksummed core
/// payload ends. `core_end` is the offset of the first byte past the
/// payload — any appended section (the serve section) starts at or after
/// it. Validates magic, version range, endianness and that `core_end`
/// fits in `size`.
struct SnapshotHeaderInfo {
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint64_t core_end = 0;  // kModelSnapshotHeaderSize + payload_size
};
Result<SnapshotHeaderInfo> ParseSnapshotHeader(const uint8_t* data,
                                               size_t size);

}  // namespace io
}  // namespace mlp

#endif  // MLP_IO_MODEL_SNAPSHOT_H_
