#include "io/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "io/csv.h"

namespace mlp {
namespace io {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.push_back(label);
  for (double v : values) {
    row.push_back(StringPrintf("%.*f", precision, v));
  }
  AddRow(std::move(row));
}

namespace {

/// "12", "-3.5", "62.30%", "1e-4" — numbers, optionally percent-suffixed.
bool IsNumericCell(const std::string& cell) {
  if (cell.empty()) return false;
  std::string body = cell;
  if (body.back() == '%') body.pop_back();
  if (body.empty()) return false;
  char* end = nullptr;
  std::strtod(body.c_str(), &end);
  return end == body.c_str() + body.size();
}

}  // namespace

bool TablePrinter::ColumnIsNumeric(size_t c) const {
  bool any = false;
  for (const auto& row : rows_) {
    if (c >= row.size() || row[c].empty()) continue;
    if (!IsNumericCell(row[c])) return false;
    any = true;
  }
  return any;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  std::vector<bool> numeric(header_.size(), false);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    numeric[c] = ColumnIsNumeric(c);
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      size_t pad = widths[c] - row[c].size();
      if (numeric[c]) line.append(pad, ' ');
      line += row[c];
      if (!numeric[c]) line.append(pad, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header_);
  size_t underline = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    underline += widths[c] + (c > 0 ? 2 : 0);
  }
  out += std::string(underline, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::ToCsv() const {
  std::string out = FormatCsvLine(header_) + "\n";
  for (const auto& row : rows_) {
    out += FormatCsvLine(row) + "\n";
  }
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace io
}  // namespace mlp
