#ifndef MLP_IO_TABLE_PRINTER_H_
#define MLP_IO_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace mlp {
namespace io {

/// Column-aligned console tables — every bench prints its paper table or
/// figure series through this so output stays uniform and diffable.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimals.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 2);

  /// Renders with a header underline; columns padded to the widest cell.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace io
}  // namespace mlp

#endif  // MLP_IO_TABLE_PRINTER_H_
