#ifndef MLP_IO_TABLE_PRINTER_H_
#define MLP_IO_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace mlp {
namespace io {

/// Column-aligned console tables — every bench prints its paper table or
/// figure series through this so output stays uniform and diffable.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimals.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 2);

  /// Renders with a header underline; columns padded to the widest cell.
  /// Columns whose data cells are all numeric (ints, floats, percentages
  /// like "62.30%") are right-aligned so magnitudes line up; everything
  /// else stays left-aligned.
  std::string ToString() const;

  /// RFC-4180-style CSV rendering (header line + one line per row):
  /// fields containing commas, quotes or leading/trailing whitespace are
  /// quoted with doubled-quote escaping. The machine-readable twin of
  /// ToString — the serving layer's /statsz?format=csv and the eval tables
  /// share it.
  std::string ToCsv() const;

  /// Prints to stdout.
  void Print() const;

 private:
  /// True when every non-empty data cell of column `c` parses as a number
  /// (an optional trailing '%' is ignored).
  bool ColumnIsNumeric(size_t c) const;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace io
}  // namespace mlp

#endif  // MLP_IO_TABLE_PRINTER_H_
