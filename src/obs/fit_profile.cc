#include "obs/fit_profile.h"

namespace mlp {
namespace obs {

namespace {

uint64_t Delta(const std::map<std::string, uint64_t>& before,
               const std::map<std::string, uint64_t>& after,
               const std::string& name) {
  uint64_t b = 0;
  uint64_t a = 0;
  auto it = before.find(name);
  if (it != before.end()) b = it->second;
  it = after.find(name);
  if (it != after.end()) a = it->second;
  return a > b ? a - b : 0;
}

double ToMs(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

FitProfile ComputeFitProfile(const std::map<std::string, uint64_t>& before,
                             const std::map<std::string, uint64_t>& after,
                             int num_threads) {
  if (num_threads < 1) num_threads = 1;
  FitProfile profile;
  profile.sweeps = Delta(before, after, kFitSweepsTotal);
  const uint64_t sweep_ns = Delta(before, after, kFitSweepNs);
  profile.sweep_wall_ms = ToMs(sweep_ns);

  // In-sweep phases. Worker-side counters (refresh, alias rebuild, kernel,
  // fold, barrier wait, merge — everything the engine runs inside a
  // parallel section) accumulate across all threads, so their
  // wall-clock-equivalent divides by the thread count; main-thread phases
  // pass through unchanged. The sequential-engine kernels (seq
  // following/tweeting) are main-thread by construction. With this
  // normalization the rows below sum to the sweep wall-clock minus loop
  // overhead (~100%).
  struct Spec {
    const char* display;
    const char* counter;
    bool per_thread;
  };
  static const Spec kInSweep[] = {
      {"replica refresh", kFitReplicaRefreshNs, true},
      {"alias rebuild", kFitAliasRebuildNs, true},
      {"shard kernel", kFitShardKernelNs, true},
      {"delta fold", kFitDeltaFoldNs, true},
      {"barrier wait", kFitBarrierWaitNs, true},
      {"delta merge", kFitDeltaMergeNs, true},
      {"sweep trace record", kFitTraceRecordNs, false},
      {"seq following kernel", kFitSeqFollowingNs, false},
      {"seq tweeting kernel", kFitSeqTweetingNs, false},
  };

  double accounted_ms = 0.0;
  for (const Spec& spec : kInSweep) {
    PhaseRow row;
    row.phase = spec.display;
    row.counter = spec.counter;
    row.raw_ns = Delta(before, after, spec.counter);
    row.wall_ms =
        ToMs(row.raw_ns) / (spec.per_thread ? num_threads : 1);
    row.pct_of_sweep = profile.sweep_wall_ms > 0.0
                           ? 100.0 * row.wall_ms / profile.sweep_wall_ms
                           : 0.0;
    accounted_ms += row.wall_ms;
    profile.rows.push_back(std::move(row));
  }
  profile.accounted_pct = profile.sweep_wall_ms > 0.0
                              ? 100.0 * accounted_ms / profile.sweep_wall_ms
                              : 0.0;

  // Unaccounted remainder of the sweep loop (scheduling, bookkeeping).
  PhaseRow other;
  other.phase = "other (unattributed)";
  other.counter = "-";
  other.wall_ms = profile.sweep_wall_ms > accounted_ms
                      ? profile.sweep_wall_ms - accounted_ms
                      : 0.0;
  other.pct_of_sweep = profile.sweep_wall_ms > 0.0
                           ? 100.0 * other.wall_ms / profile.sweep_wall_ms
                           : 0.0;
  profile.rows.push_back(std::move(other));

  // Prune and rebalance run between sweeps, outside fit_sweep_ns; report
  // them with percentages relative to sweep time for scale, not as part of
  // the 100%. Keeping them in separate counters (ISSUE 7) means the prune
  // row measures PruneStep + the sampler compaction only, and the
  // scheduler's reshard + touch-set rebuild shows up as its own phase.
  static const Spec kBetweenSweeps[] = {
      {"candidate prune (between sweeps)", kFitPruneNs, false},
      {"shard rebalance (between sweeps)", kFitRebalanceNs, false},
  };
  for (const Spec& spec : kBetweenSweeps) {
    PhaseRow row;
    row.phase = spec.display;
    row.counter = spec.counter;
    row.raw_ns = Delta(before, after, spec.counter);
    row.wall_ms = ToMs(row.raw_ns);
    row.pct_of_sweep = profile.sweep_wall_ms > 0.0
                           ? 100.0 * row.wall_ms / profile.sweep_wall_ms
                           : 0.0;
    profile.rows.push_back(std::move(row));
  }

  return profile;
}

}  // namespace obs
}  // namespace mlp
