#ifndef MLP_OBS_FIT_PROFILE_H_
#define MLP_OBS_FIT_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mlp {
namespace obs {

// Canonical fit phase counter names (all accumulate nanoseconds unless
// suffixed _total). Instrumented in engine::ParallelGibbsEngine and
// core::GibbsSampler; consumed by `mlpctl fit --profile`,
// bench_parallel_scaling's BENCH_parallel.json phase breakdown, and
// GET /metricsz.
inline constexpr char kFitSweepNs[] = "fit_sweep_ns";
inline constexpr char kFitSweepsTotal[] = "fit_sweeps_total";
inline constexpr char kFitReplicaRefreshNs[] = "fit_replica_refresh_ns";
inline constexpr char kFitAliasRebuildNs[] = "fit_alias_rebuild_ns";
inline constexpr char kFitShardKernelNs[] = "fit_shard_kernel_ns";
inline constexpr char kFitDeltaFoldNs[] = "fit_delta_fold_ns";
inline constexpr char kFitBarrierWaitNs[] = "fit_barrier_wait_ns";
inline constexpr char kFitDeltaMergeNs[] = "fit_delta_merge_ns";
inline constexpr char kFitTraceRecordNs[] = "fit_trace_record_ns";
inline constexpr char kFitPruneNs[] = "fit_prune_ns";
inline constexpr char kFitRebalanceNs[] = "fit_rebalance_ns";
inline constexpr char kFitSeqFollowingNs[] = "fit_seq_following_ns";
inline constexpr char kFitSeqTweetingNs[] = "fit_seq_tweeting_ns";

// Per-sweep fit health gauges/counters (ISSUE 9): sampler mixing and
// candidate-space occupancy, refreshed each sweep and scraped from
// /metricsz. Rates are parts-per-million so they stay integers.
inline constexpr char kFitHomeFlipPpm[] = "fit_home_flip_ppm";
inline constexpr char kFitMhProposedTotal[] = "fit_mh_proposed_total";
inline constexpr char kFitMhAcceptedTotal[] = "fit_mh_accepted_total";
inline constexpr char kFitMhAcceptPpm[] = "fit_mh_accept_ppm";
inline constexpr char kFitActiveCandidateSlots[] =
    "fit_active_candidate_slots";

// Streaming ingest phases (core::MlpModel::ApplyDelta /
// stream::ApplyDeltaBatch).
inline constexpr char kIngestMergeNs[] = "ingest_merge_ns";
inline constexpr char kIngestMigrateNs[] = "ingest_migrate_ns";
inline constexpr char kIngestResampleNs[] = "ingest_resample_ns";

// Streaming ingest volume counters (stream::ApplyDeltaBatch).
inline constexpr char kIngestBatchesTotal[] = "ingest_batches_total";
inline constexpr char kIngestUsersAddedTotal[] = "ingest_users_added_total";
inline constexpr char kIngestFollowingAddedTotal[] =
    "ingest_following_added_total";
inline constexpr char kIngestTweetingAddedTotal[] =
    "ingest_tweeting_added_total";

// Live ingest+serve daemon (stream::LiveIngestor, ISSUE 10): the spool
// watcher's health surface. Depth is the pending batch-* count per scan;
// apply/swap are per-batch histograms; staleness is now − the swapped
// batch's spool mtime, set at the instant the swap publishes (the
// freshness an operator actually observes). Surfaced on /statusz,
// /statsz and /metricsz.
inline constexpr char kIngestSpoolDepth[] = "ingest_spool_depth";
inline constexpr char kIngestApplyNs[] = "ingest_apply_ns";
inline constexpr char kIngestSwapNs[] = "ingest_swap_ns";
inline constexpr char kIngestLiveBatchesTotal[] = "ingest_live_batches_total";
inline constexpr char kIngestFailedBatchesTotal[] =
    "ingest_failed_batches_total";
inline constexpr char kIngestSwapStalenessMs[] = "ingest_swap_staleness_ms";

/// Canonical bucket bounds for the two live-ingest histograms. The
/// registry is first-caller-wins on bounds, and both stream::LiveIngestor
/// (recording) and serve::ModelServer (/statusz rendering) resolve these
/// names — sharing the bounds here keeps whichever side registers first
/// from truncating the other's buckets. Apply spans ~ms..minutes, swaps
/// ~µs..ms; both record nanoseconds.
inline const std::vector<int64_t>& IngestApplyNsBounds() {
  static const std::vector<int64_t> kBounds = {
      1000000,    5000000,    10000000,   50000000,    100000000,
      500000000,  1000000000, 5000000000, 10000000000, 60000000000};
  return kBounds;
}
inline const std::vector<int64_t>& IngestSwapNsBounds() {
  static const std::vector<int64_t> kBounds = {
      10000,   50000,    100000,   500000,    1000000,
      5000000, 10000000, 100000000, 1000000000};
  return kBounds;
}

/// One row of the per-phase fit report.
struct PhaseRow {
  std::string phase;      // display name, e.g. "shard kernel"
  std::string counter;    // registry counter behind it
  uint64_t raw_ns = 0;    // accumulated ns (worker phases: summed across
                          // threads)
  double wall_ms = 0.0;   // wall-clock-equivalent ms: raw_ns, normalized by
                          // the thread count for worker-side phases, so the
                          // in-sweep rows sum to the sweep wall-clock
  double pct_of_sweep = 0.0;
};

/// The `mlpctl fit --profile` / BENCH_parallel payload: where the sweeps'
/// wall-clock went. In-sweep phases (refresh, kernel, barrier, merge,
/// trace) are constructed to sum to ~100% of sweep wall-clock; prune and
/// the unaccounted remainder are reported alongside.
struct FitProfile {
  uint64_t sweeps = 0;
  double sweep_wall_ms = 0.0;           // total RunSweep wall-clock
  double accounted_pct = 0.0;           // Σ in-sweep phase wall / sweep wall
  std::vector<PhaseRow> rows;           // in-sweep phases, then prune/other
};

/// Diffs two Registry::CounterValues() snapshots taken around a fit and
/// folds the fit_* counters into a per-phase breakdown. `num_threads` is
/// the engine thread count the fit ran with (worker-side phases divide by
/// it to become wall-clock-equivalent). Phases with zero time are kept —
/// a zero is information (e.g. no pruning configured).
FitProfile ComputeFitProfile(const std::map<std::string, uint64_t>& before,
                             const std::map<std::string, uint64_t>& after,
                             int num_threads);

}  // namespace obs
}  // namespace mlp

#endif  // MLP_OBS_FIT_PROFILE_H_
