#include "obs/metrics.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace mlp {
namespace obs {

namespace {
int CellIndex() { return CurrentThreadOrdinal() % kCells; }
}  // namespace

// ------------------------------------------------------------------ Counter

void Counter::Add(uint64_t n) {
  cells_[CellIndex()].value.fetch_add(n, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const CounterCell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (CounterCell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    MLP_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                  "histogram bounds must be strictly increasing");
  }
  const size_t slots = bounds_.size() + 1;  // trailing +Inf bucket
  for (HistCell& cell : cells_) {
    cell.counts = std::make_unique<std::atomic<uint64_t>[]>(slots);
    for (size_t i = 0; i < slots; ++i) {
      cell.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Record(int64_t value) {
  // Upper-inclusive bucket search (`le` semantics). Bound lists are short
  // (≤ ~16 for latency scales), so a linear walk beats binary search on
  // branch predictability.
  size_t bucket = bounds_.size();
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  HistCell& cell = cells_[CellIndex()];
  cell.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.bucket_counts.assign(bounds_.size() + 1, 0);
  for (const HistCell& cell : cells_) {
    for (size_t i = 0; i < snapshot.bucket_counts.size(); ++i) {
      snapshot.bucket_counts[i] += cell.counts[i].load(std::memory_order_relaxed);
    }
    snapshot.count += cell.count.load(std::memory_order_relaxed);
    snapshot.sum += cell.sum.load(std::memory_order_relaxed);
  }
  return snapshot;
}

double HistogramQuantile(const Histogram::Snapshot& snapshot, double q) {
  if (snapshot.count == 0 || snapshot.bounds.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(snapshot.count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < snapshot.bounds.size(); ++i) {
    const uint64_t in_bucket = snapshot.bucket_counts[i];
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (in_bucket == 0) return static_cast<double>(snapshot.bounds[i]);
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(snapshot.bounds[i - 1]);
      const double upper = static_cast<double>(snapshot.bounds[i]);
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, fraction));
    }
    cumulative += in_bucket;
  }
  // Landed in the +Inf bucket: clamp to the last finite bound.
  return static_cast<double>(snapshot.bounds.back());
}

// ----------------------------------------------------------------- Registry

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed: handles
  return *registry;                            // outlive static teardown
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

std::map<std::string, uint64_t> Registry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> values;
  for (const auto& [name, counter] : counters_) {
    values[name] = counter->Value();
  }
  return values;
}

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += StringPrintf("# TYPE %s counter\n%s %llu\n", name.c_str(),
                        name.c_str(),
                        static_cast<unsigned long long>(counter->Value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    out += StringPrintf("# TYPE %s gauge\n%s %lld\n", name.c_str(),
                        name.c_str(),
                        static_cast<long long>(gauge->Value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->GetSnapshot();
    out += StringPrintf("# TYPE %s histogram\n", name.c_str());
    uint64_t cumulative = 0;
    for (size_t i = 0; i < snap.bounds.size(); ++i) {
      cumulative += snap.bucket_counts[i];
      out += StringPrintf("%s_bucket{le=\"%lld\"} %llu\n", name.c_str(),
                          static_cast<long long>(snap.bounds[i]),
                          static_cast<unsigned long long>(cumulative));
    }
    cumulative += snap.bucket_counts.back();
    out += StringPrintf("%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                        static_cast<unsigned long long>(cumulative));
    out += StringPrintf("%s_sum %lld\n", name.c_str(),
                        static_cast<long long>(snap.sum));
    out += StringPrintf("%s_count %llu\n", name.c_str(),
                        static_cast<unsigned long long>(snap.count));
  }
  return out;
}

}  // namespace obs
}  // namespace mlp
