#ifndef MLP_OBS_METRICS_H_
#define MLP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mlp {
namespace obs {

/// Number of independent per-thread cells a counter/histogram shards its
/// state across. Threads are routed by their stable ordinal
/// (mlp::CurrentThreadOrdinal), so with up to kCells concurrently active
/// threads every increment lands on a cell no other thread touches — one
/// relaxed atomic add, no contention, no false sharing (cells are
/// cache-line aligned). More threads than cells just share cells; counts
/// stay exact because the adds are atomic.
inline constexpr int kCells = 16;

/// One cache line of counter state. The alignment is the point: adjacent
/// cells must never share a line, or the "sharded" counter would still
/// bounce ownership between cores on every increment.
struct alignas(64) CounterCell {
  std::atomic<uint64_t> value{0};
};

/// Monotonic counter, sharded per thread. Add() from an inner loop costs
/// ~one relaxed fetch_add; Value() sums the cells (scrape-time only).
/// Concurrent Add/Value are both safe — a scrape observes some valid
/// intermediate total, never a torn one.
class Counter {
 public:
  void Add(uint64_t n = 1);
  uint64_t Value() const;
  /// Testing/bench convenience: resets every cell to zero. Racy against
  /// concurrent Add only in the sense that in-flight adds may land before
  /// or after — never corrupt.
  void Reset();

 private:
  CounterCell cells_[kCells];
};

/// Last-write-wins gauge (queue depths, byte budgets, generation numbers).
/// Single atomic — gauges are set from one place at a time, not from inner
/// loops, so sharding would buy nothing.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t v) { value_.fetch_add(v, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram, sharded per thread like Counter. Bucket
/// bounds are upper-inclusive (Prometheus `le` semantics) and fixed at
/// registration; Record() walks the (small) bound list and does two relaxed
/// adds — no allocation, no locks. Values are recorded in whatever integer
/// unit the metric name declares (the serving layer uses microseconds:
/// `*_us`).
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  void Record(int64_t value);

  struct Snapshot {
    std::vector<int64_t> bounds;          // upper bounds, excluding +Inf
    std::vector<uint64_t> bucket_counts;  // bounds.size() + 1 (last = +Inf)
    uint64_t count = 0;
    int64_t sum = 0;
  };
  /// Scrape-time aggregation over the cells. Count and the bucket totals
  /// are each internally exact; under concurrent Record the snapshot is a
  /// valid point-in-time-ish view (Prometheus scrapes tolerate this).
  Snapshot GetSnapshot() const;

  const std::vector<int64_t>& bounds() const { return bounds_; }

 private:
  struct alignas(64) HistCell {
    // counts[i] for bucket i; one extra trailing slot for +Inf.
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<uint64_t> count{0};
    std::atomic<int64_t> sum{0};
  };

  std::vector<int64_t> bounds_;
  HistCell cells_[kCells];
};

/// Estimates the q-quantile (q in [0, 1]) of a histogram snapshot by
/// linear interpolation inside the bucket the quantile lands in (the
/// standard Prometheus histogram_quantile estimate). Returns 0 for an
/// empty snapshot; a quantile landing in the +Inf bucket is clamped to the
/// last finite bound — the estimate is for dashboards (/statusz), not for
/// exact statistics.
double HistogramQuantile(const Histogram::Snapshot& snapshot, double q);

/// Process-wide metric registry. GetCounter/GetGauge/GetHistogram return a
/// stable pointer for the lifetime of the process — resolve handles once
/// (construction time) and hit the handle from the hot path; the lookup
/// itself takes a mutex and must stay off inner loops.
///
/// Naming convention (see src/obs/README.md): `<subsystem>_<what>_<unit>`,
/// snake_case, unit suffix mandatory for non-count metrics (`_ns`, `_us`,
/// `_bytes`). Phase-time counters accumulate nanoseconds.
class Registry {
 public:
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Bounds must be strictly increasing. Re-getting an existing histogram
  /// ignores `bounds` and returns the original.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds);

  /// All counter values by name — the diffable snapshot behind
  /// `mlpctl fit --profile` and the bench phase breakdowns.
  std::map<std::string, uint64_t> CounterValues() const;

  /// Prometheus text exposition (0.0.4) of every registered metric:
  /// counters as `counter`, gauges as `gauge`, histograms as cumulative
  /// `_bucket{le=...}` series plus `_sum`/`_count`. Served by
  /// GET /metricsz.
  std::string RenderPrometheus() const;

 private:
  mutable std::mutex mu_;
  // std::map for deterministic exposition order; values are stable
  // pointers because the metric objects live in unique_ptrs.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace mlp

#endif  // MLP_OBS_METRICS_H_
