#include "obs/process_stats.h"

#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

namespace mlp {
namespace obs {

namespace {

/// Reads one "Vm*: N kB" line from /proc/self/status. Linux-only by
/// design (the ROADMAP targets Linux boxes); returns 0 elsewhere.
int64_t ReadStatusKb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const size_t key_len = std::strlen(key);
  char line[256];
  int64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      long long value = 0;
      if (std::sscanf(line + key_len + 1, "%lld", &value) != 1) value = 0;
      kb = static_cast<int64_t>(value);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

int64_t ProcessRssBytes() { return ReadStatusKb("VmRSS") * 1024; }

int64_t ProcessPeakRssBytes() { return ReadStatusKb("VmHWM") * 1024; }

void UpdateProcessRssGauges() {
  Registry& registry = Registry::Global();
  static Gauge* const rss = registry.GetGauge(kMemProcessRssBytes);
  static Gauge* const peak = registry.GetGauge(kMemProcessPeakRssBytes);
  rss->Set(ProcessRssBytes());
  peak->Set(ProcessPeakRssBytes());
}

}  // namespace obs
}  // namespace mlp
