#ifndef MLP_OBS_PROCESS_STATS_H_
#define MLP_OBS_PROCESS_STATS_H_

#include <cstdint>

namespace mlp {
namespace obs {

// Memory gauge family (ISSUE 8: memory-budgeted fit / out-of-core serve).
// All values are bytes. The mem_fit_* gauges are set by core::MlpModel::Fit
// at merged sync barriers from exact AccountedBytes() walks; the process
// RSS gauges are refreshed wherever a fresh number matters (/statsz,
// fit barriers, `mlpctl fit --profile`).
inline constexpr char kMemProcessRssBytes[] = "mem_process_rss_bytes";
inline constexpr char kMemProcessPeakRssBytes[] =
    "mem_process_peak_rss_bytes";
/// Sufficient-statistics arenas: the sampler's global arena + accumulators
/// and the engine's per-worker replicas/accumulators/proposal tables.
inline constexpr char kMemArenaBytes[] = "mem_arena_bytes";
/// core::CandidateSpace (full universe + activation + active view).
inline constexpr char kMemCandidateBytes[] = "mem_candidate_bytes";
/// serve::ReadModel accounted bytes (in-memory structures; an mmap-backed
/// model reports only its resident structures, not the mapping size).
inline constexpr char kMemReadModelBytes[] = "mem_readmodel_bytes";
/// Total accounted fit footprint the mem_budget_mb enforcement gates on.
inline constexpr char kMemFitAccountedBytes[] = "mem_fit_accounted_bytes";
/// The configured budget (0 = unbudgeted), for dashboards to plot against.
inline constexpr char kMemFitBudgetBytes[] = "mem_fit_budget_bytes";

/// Counter: barriers where the accounted footprint exceeded the budget and
/// the pruning schedule was tightened in response.
inline constexpr char kFitBudgetTightenTotal[] = "fit_budget_tighten_total";

/// Current resident set size (VmRSS) of this process in bytes; 0 when
/// /proc/self/status is unavailable (non-Linux).
int64_t ProcessRssBytes();

/// Peak resident set size (VmHWM) in bytes; 0 when unavailable.
int64_t ProcessPeakRssBytes();

/// Reads both and publishes them to the registry's RSS gauges.
void UpdateProcessRssGauges();

}  // namespace obs
}  // namespace mlp

#endif  // MLP_OBS_PROCESS_STATS_H_
