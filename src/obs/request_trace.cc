#include "obs/request_trace.h"

#include <atomic>

namespace mlp {
namespace obs {

namespace {
// Process-monotonic request id spring. Starts at 1 so 0 can mean "no
// request" in logs and tests.
std::atomic<uint64_t> g_next_request_id{1};
}  // namespace

const char* RequestStageName(RequestStage stage) {
  switch (stage) {
    case RequestStage::kParse:
      return "parse";
    case RequestStage::kCacheLookup:
      return "cache_lookup";
    case RequestStage::kBatchQueueWait:
      return "batch_queue_wait";
    case RequestStage::kRender:
      return "render";
    case RequestStage::kWrite:
      return "write";
  }
  return "unknown";
}

const char* RequestStageCounterName(RequestStage stage) {
  switch (stage) {
    case RequestStage::kParse:
      return kServeStageParseNs;
    case RequestStage::kCacheLookup:
      return kServeStageCacheLookupNs;
    case RequestStage::kBatchQueueWait:
      return kServeStageBatchQueueWaitNs;
    case RequestStage::kRender:
      return kServeStageRenderNs;
    case RequestStage::kWrite:
      return kServeStageWriteNs;
  }
  return "serve_stage_unknown_ns";
}

RequestTrace::RequestTrace()
    : id_(g_next_request_id.fetch_add(1, std::memory_order_relaxed)),
      start_ns_(NowNs()) {}

int64_t RequestTrace::Finish() {
  if (finished_) return total_ns_;
  finished_ = true;
  const int64_t end_ns = NowNs();
  total_ns_ = (start_ns_ > 0 && end_ns > start_ns_) ? end_ns - start_ns_ : 0;
  return total_ns_;
}

}  // namespace obs
}  // namespace mlp
