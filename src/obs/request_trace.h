#ifndef MLP_OBS_REQUEST_TRACE_H_
#define MLP_OBS_REQUEST_TRACE_H_

#include <cstdint>
#include <string>

#include "obs/trace.h"

namespace mlp {
namespace obs {

/// The per-request stages the serving layer attributes time to (ISSUE 9).
/// The set is fixed: a stage is an index into a flat array on the trace,
/// so recording costs two clock reads and one add — no maps, no strings.
enum class RequestStage : int {
  kParse = 0,          // socket read + HTTP parse of the request
  kCacheLookup = 1,    // ResponseCache::Get under the pinned generation
  kBatchQueueWait = 2, // batch chunks waiting for a batch-pool worker
  kRender = 3,         // ReadModel rendering / fragment assembly
  kWrite = 4,          // response serialization + socket write
};
inline constexpr int kNumRequestStages = 5;

/// Stable display name ("parse", "cache_lookup", ...) for logs and /debug
/// surfaces.
const char* RequestStageName(RequestStage stage);

// Per-stage aggregate counters (accumulate nanoseconds across requests),
// scraped from /metricsz and summarized by /statusz.
inline constexpr char kServeStageParseNs[] = "serve_stage_parse_ns";
inline constexpr char kServeStageCacheLookupNs[] =
    "serve_stage_cache_lookup_ns";
inline constexpr char kServeStageBatchQueueWaitNs[] =
    "serve_stage_batch_queue_wait_ns";
inline constexpr char kServeStageRenderNs[] = "serve_stage_render_ns";
inline constexpr char kServeStageWriteNs[] = "serve_stage_write_ns";

/// The canonical counter name for `stage` (same order as RequestStage).
const char* RequestStageCounterName(RequestStage stage);

/// Request-scoped trace context: a process-monotonic request id plus
/// per-stage nanosecond timings. Created by serve::HttpServer when a
/// request's first byte arrives and threaded through ModelServer →
/// ResponseCache → RequestBatcher → ReadModel; each layer accumulates into
/// the stage it owns. One trace belongs to one request and is only ever
/// touched by the thread serving it — no locking anywhere.
///
/// Cost discipline: when obs::Enabled() is false NowNs() returns 0, so
/// every stage timer degenerates to branch-only work; the id assignment
/// (one relaxed fetch_add) always happens because the access log correlates
/// on it regardless of the tracing switch.
class RequestTrace {
 public:
  /// Assigns the next request id and stamps start_ns = NowNs().
  RequestTrace();

  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  uint64_t id() const { return id_; }
  int64_t start_ns() const { return start_ns_; }
  /// Rebases the request start (serve::HttpServer moves it back to the
  /// request's first byte, so keep-alive idle time never counts).
  void RebaseStart(int64_t start_ns) {
    if (start_ns > 0) start_ns_ = start_ns;
  }

  void AddStageNs(RequestStage stage, int64_t ns) {
    if (ns > 0) stage_ns_[static_cast<int>(stage)] += ns;
  }
  int64_t stage_ns(RequestStage stage) const {
    return stage_ns_[static_cast<int>(stage)];
  }

  /// Static strings only (endpoint/outcome label the per-endpoint
  /// histograms; nothing is copied on the hot path).
  void set_endpoint(const char* endpoint) { endpoint_ = endpoint; }
  const char* endpoint() const { return endpoint_; }
  void set_outcome(const char* outcome) { outcome_ = outcome; }
  const char* outcome() const { return outcome_; }

  void set_status(int status) { status_ = status; }
  int status() const { return status_; }

  /// The model generation the request rendered against (access-log field).
  void set_generation(uint64_t generation) { generation_ = generation; }
  uint64_t generation() const { return generation_; }

  /// Stamps the end of the request and returns total_ns (0 when obs is
  /// disabled). Idempotent: a second call returns the first total.
  int64_t Finish();
  int64_t total_ns() const { return total_ns_; }

  /// RAII stage timer; ~10ns when enabled, branch-only when disabled.
  class StageTimer {
   public:
    StageTimer(RequestTrace* trace, RequestStage stage)
        : trace_(trace), stage_(stage), start_ns_(NowNs()) {}
    StageTimer(const StageTimer&) = delete;
    StageTimer& operator=(const StageTimer&) = delete;
    ~StageTimer() {
      if (trace_ != nullptr && start_ns_ > 0) {
        trace_->AddStageNs(stage_, NowNs() - start_ns_);
      }
    }

   private:
    RequestTrace* trace_;
    RequestStage stage_;
    int64_t start_ns_;
  };

 private:
  uint64_t id_;
  int64_t start_ns_;
  int64_t total_ns_ = 0;
  bool finished_ = false;
  int64_t stage_ns_[kNumRequestStages] = {0, 0, 0, 0, 0};
  const char* endpoint_ = "other";
  const char* outcome_ = "none";
  int status_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace obs
}  // namespace mlp

#endif  // MLP_OBS_REQUEST_TRACE_H_
