#include "obs/ring_log.h"

#include <algorithm>
#include <utility>

namespace mlp {
namespace obs {

RequestTraceRecord MakeRecord(const RequestTrace& trace,
                              const std::string& method,
                              const std::string& target) {
  RequestTraceRecord record;
  record.id = trace.id();
  record.start_ns = trace.start_ns();
  record.total_ns = trace.total_ns();
  for (int s = 0; s < kNumRequestStages; ++s) {
    record.stage_ns[s] = trace.stage_ns(static_cast<RequestStage>(s));
  }
  record.endpoint = trace.endpoint();
  record.outcome = trace.outcome();
  record.status = trace.status();
  record.generation = trace.generation();
  record.method = method;
  record.target = target;
  return record;
}

RingLog::RingLog(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void RingLog::Push(RequestTraceRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  ++pushed_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % capacity_;
}

std::vector<RequestTraceRecord> RingLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RequestTraceRecord> out;
  out.reserve(ring_.size());
  // Once full, next_ points at the oldest record; before that the ring is
  // already in insertion order.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t RingLog::total_pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pushed_;
}

}  // namespace obs
}  // namespace mlp
