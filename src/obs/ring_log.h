#ifndef MLP_OBS_RING_LOG_H_
#define MLP_OBS_RING_LOG_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/request_trace.h"

namespace mlp {
namespace obs {

/// A completed request trace, flattened for retention beyond the request's
/// lifetime. The strings are copied exactly once, when a record enters the
/// ring — i.e. only for requests that crossed the slow threshold.
struct RequestTraceRecord {
  uint64_t id = 0;
  int64_t start_ns = 0;
  int64_t total_ns = 0;
  int64_t stage_ns[kNumRequestStages] = {0, 0, 0, 0, 0};
  const char* endpoint = "other";  // static strings (see RequestTrace)
  const char* outcome = "none";
  int status = 0;
  uint64_t generation = 0;
  std::string method;
  std::string target;
};

/// Flattens a finished trace plus its request line into a record.
RequestTraceRecord MakeRecord(const RequestTrace& trace,
                              const std::string& method,
                              const std::string& target);

/// Fixed-capacity ring of the last N slow-request records, behind
/// GET /debug/slowz. Lock-cheap by construction: the mutex is only taken
/// when a request actually crosses the slow threshold (rare by definition)
/// or when an operator scrapes the ring — the per-request fast path never
/// touches it.
class RingLog {
 public:
  explicit RingLog(size_t capacity = 64);

  RingLog(const RingLog&) = delete;
  RingLog& operator=(const RingLog&) = delete;

  void Push(RequestTraceRecord record);

  /// The retained records, oldest first.
  std::vector<RequestTraceRecord> Snapshot() const;

  size_t capacity() const { return capacity_; }
  /// Total records ever pushed (≥ retained count; the difference is how
  /// many slow requests aged out of the ring).
  uint64_t total_pushed() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<RequestTraceRecord> ring_;  // grows to capacity_, then wraps
  size_t next_ = 0;                       // overwrite cursor once full
  uint64_t pushed_ = 0;
};

}  // namespace obs
}  // namespace mlp

#endif  // MLP_OBS_RING_LOG_H_
