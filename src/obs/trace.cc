#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/logging.h"
#include "common/string_util.h"

namespace mlp {
namespace obs {

namespace {
std::atomic<bool> g_enabled{true};
std::atomic<TraceRecorder*> g_recorder{nullptr};
}  // namespace

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

int64_t NowNs() {
  if (!Enabled()) return 0;
  // Share the MonotonicMicros epoch so trace timestamps line up with log
  // prefixes (the first call pins the epoch; ns precision on top of it).
  static const std::chrono::steady_clock::time_point epoch = [] {
    MonotonicMicros();  // pin the shared epoch first
    return std::chrono::steady_clock::now();
  }();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void SetTraceRecorder(TraceRecorder* recorder) {
  g_recorder.store(recorder, std::memory_order_release);
}

TraceRecorder* GetTraceRecorder() {
  return g_recorder.load(std::memory_order_acquire);
}

void TraceRecorder::Record(const char* name, int64_t start_ns,
                           int64_t end_ns) {
  TraceEvent event;
  event.name = name;
  event.tid = CurrentThreadOrdinal();
  event.ts_us = start_ns / 1000;
  event.dur_us = (end_ns - start_ns) / 1000;
  if (event.dur_us < 0) event.dur_us = 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxTraceEvents) {
    ++dropped_;
    if (!overflow_warned_) {
      overflow_warned_ = true;
      // Routed through common/logging.h — --log_level / MLP_LOG_LEVEL
      // decide whether an operator sees this, like every other warning.
      MLP_LOG(kWarning) << "trace recorder full (" << kMaxTraceEvents
                        << " events); dropping further spans";
    }
    return;
  }
  events_.push_back(event);
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

size_t TraceRecorder::dropped_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file " + path);
  }
  std::fputs("{\"traceEvents\":[\n", f);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < events_.size(); ++i) {
      const TraceEvent& e = events_[i];
      std::fprintf(
          f,
          "{\"name\":\"%s\",\"cat\":\"mlp\",\"ph\":\"X\",\"pid\":1,"
          "\"tid\":%d,\"ts\":%lld,\"dur\":%lld}%s\n",
          e.name, e.tid, static_cast<long long>(e.ts_us),
          static_cast<long long>(e.dur_us),
          i + 1 < events_.size() ? "," : "");
    }
  }
  std::fputs("]}\n", f);
  if (std::fclose(f) != 0) {
    return Status::IOError("failed writing trace file " + path);
  }
  return Status::OK();
}

int64_t EndSpan(Counter* ns_total, const char* trace_name, int64_t start_ns) {
  if (!Enabled()) return 0;
  const int64_t end_ns = NowNs();
  const int64_t elapsed = end_ns > start_ns ? end_ns - start_ns : 0;
  if (ns_total != nullptr && elapsed > 0) {
    ns_total->Add(static_cast<uint64_t>(elapsed));
  }
  if (TraceRecorder* recorder = GetTraceRecorder()) {
    recorder->Record(trace_name, start_ns, end_ns);
  }
  return elapsed;
}

}  // namespace obs
}  // namespace mlp
