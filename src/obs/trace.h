#ifndef MLP_OBS_TRACE_H_
#define MLP_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace mlp {
namespace obs {

/// Global observability kill switch, ON by default. Spans and manual
/// NowNs() callers check it with one relaxed load; when off they skip even
/// the clock reads, which is what the bench_micro overhead guard compares
/// against (instrumented-but-enabled vs. fully short-circuited sweeps).
void SetEnabled(bool enabled);
bool Enabled();

/// Monotonic nanoseconds (same epoch as mlp::MonotonicMicros), or 0 when
/// observability is disabled — phase math degenerates to zeros instead of
/// paying for clocks nobody reads.
int64_t NowNs();

/// One completed span, Chrome trace_event "X" (complete) phase shaped.
struct TraceEvent {
  const char* name;  // static string (phase names are compile-time)
  int tid = 0;       // mlp::CurrentThreadOrdinal of the recording thread
  int64_t ts_us = 0;
  int64_t dur_us = 0;
};

/// Hard cap on retained trace events (~128 MB of TraceEvent at 4M). A
/// recorder left installed across a very long run must not grow without
/// bound; past the cap further spans are dropped and a single warning is
/// emitted through common/logging.h (so --log_level / MLP_LOG_LEVEL
/// governs it like every other diagnostic).
inline constexpr size_t kMaxTraceEvents = 4u << 20;

/// Collects spans for one run and writes them as Chrome trace_event JSON
/// (open in chrome://tracing or Perfetto). Span recording takes a mutex —
/// fine at span granularity (per sweep / per shard task / per request),
/// never per edge kernel. Install with SetTraceRecorder; spans recorded
/// while no recorder is installed are simply not collected (the counters
/// still accumulate).
class TraceRecorder {
 public:
  TraceRecorder() { events_.reserve(4096); }
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void Record(const char* name, int64_t start_ns, int64_t end_ns);

  size_t event_count() const;
  /// Events dropped because the recorder hit kMaxTraceEvents.
  size_t dropped_count() const;

  /// Writes {"traceEvents":[...]} to `path`. All events carry pid 1; tids
  /// are the process's thread ordinals, so shard workers line up as
  /// parallel tracks under the main thread.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  size_t dropped_ = 0;
  bool overflow_warned_ = false;
};

/// Installs (or, with nullptr, uninstalls) the process-wide recorder.
/// The recorder must outlive its installation window; callers (mlpctl
/// --trace) install before the fit and uninstall before destruction.
void SetTraceRecorder(TraceRecorder* recorder);
TraceRecorder* GetTraceRecorder();

/// RAII phase timer: on destruction adds the elapsed nanoseconds to
/// `ns_total` (may be null) and, when a TraceRecorder is installed, emits
/// a trace event. When observability is disabled the constructor and
/// destructor are branch-only — no clock reads, no atomics.
///
///   static obs::Counter* c =
///       obs::Registry::Global().GetCounter("fit_delta_merge_ns");
///   { obs::ScopedSpan span(c, "delta_merge"); MergeReplicas(); }
class ScopedSpan {
 public:
  ScopedSpan(Counter* ns_total, const char* trace_name)
      : ns_total_(ns_total), name_(trace_name), start_ns_(NowNs()) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (start_ns_ == 0 && !Enabled()) return;
    const int64_t end_ns = NowNs();
    if (ns_total_ != nullptr && end_ns > start_ns_) {
      ns_total_->Add(static_cast<uint64_t>(end_ns - start_ns_));
    }
    if (TraceRecorder* recorder = GetTraceRecorder()) {
      recorder->Record(name_, start_ns_, end_ns);
    }
  }

 private:
  Counter* ns_total_;
  const char* name_;
  int64_t start_ns_;
};

/// Manual-span helper for call sites that need the elapsed time itself
/// (the engine derives barrier wait from per-shard kernel times): records
/// into counter + trace exactly like ScopedSpan, then returns elapsed ns.
int64_t EndSpan(Counter* ns_total, const char* trace_name, int64_t start_ns);

}  // namespace obs
}  // namespace mlp

#endif  // MLP_OBS_TRACE_H_
