#include "serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/string_util.h"

namespace mlp {
namespace serve {

namespace {

// Bounds on what one request may occupy before the connection is dropped —
// the server fronts a read model, not a file upload endpoint.
constexpr size_t kMaxHeaderBytes = 64 * 1024;
constexpr size_t kMaxBodyBytes = 8 * 1024 * 1024;
// An idle keep-alive connection may pin a pool worker for at most this
// long before the read times out and the connection closes.
constexpr int kReadTimeoutSeconds = 5;

void SetReadTimeout(int fd, int seconds) {
  struct timeval tv;
  tv.tv_sec = seconds;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

std::string AsciiLower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c += 'a' - 'A';
  }
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  size_t e = s.find_last_not_of(" \t\r");
  return b == std::string::npos ? "" : s.substr(b, e - b + 1);
}

/// Splits raw header block lines and extracts the two headers the server
/// cares about. Returns false on a malformed block.
struct ParsedHeaders {
  size_t content_length = 0;
  bool has_connection = false;
  std::string connection;  // lower-cased value
};

bool ParseHeaderLines(const std::string& block, size_t begin, size_t end,
                      ParsedHeaders* out) {
  size_t pos = begin;
  while (pos < end) {
    size_t eol = block.find("\r\n", pos);
    if (eol == std::string::npos || eol > end) eol = end;
    std::string line = block.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string::npos) return false;
    std::string name = AsciiLower(Trim(line.substr(0, colon)));
    std::string value = Trim(line.substr(colon + 1));
    if (name == "content-length") {
      char* endp = nullptr;
      unsigned long long n = std::strtoull(value.c_str(), &endp, 10);
      if (endp == value.c_str() || n > kMaxBodyBytes) return false;
      out->content_length = static_cast<size_t>(n);
    } else if (name == "connection") {
      out->has_connection = true;
      out->connection = AsciiLower(value);
    }
  }
  return true;
}

/// Blocking read of more bytes into `*buffer`; false on EOF/error/timeout.
bool ReadMore(int fd, std::string* buffer) {
  char chunk[8192];
  ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
  if (n <= 0) return false;
  buffer->append(chunk, static_cast<size_t>(n));
  return true;
}

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

}  // namespace

HttpServer::HttpServer(engine::ThreadPool* pool) : pool_(pool) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(int port, HttpHandler handler,
                         HttpCompletionHook on_complete) {
  if (running_.load()) return Status::FailedPrecondition("already started");
  handler_ = std::move(handler);
  on_complete_ = std::move(on_complete);

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status s = Status::IOError(StringPrintf("bind to port %d: %s", port,
                                            std::strerror(errno)));
    ::close(listen_fd);
    return s;
  }
  if (::listen(listen_fd, 128) != 0) {
    Status s = Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  // Published only once fully set up; AcceptLoop and Stop() race on this
  // fd by design (Stop closes it to wake accept), so it lives in an
  // atomic and Stop claims it with exchange.
  listen_fd_.store(listen_fd);
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener closed or unrecoverable
    }
    connections_.fetch_add(1);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetReadTimeout(fd, kReadTimeoutSeconds);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_.load()) {
        ::close(fd);
        continue;
      }
      open_fds_.insert(fd);
      ++active_connections_;
    }
    bool submitted = pool_->Submit([this, fd] { ServeConnection(fd); });
    if (!submitted) {
      std::lock_guard<std::mutex> lock(mu_);
      open_fds_.erase(fd);
      --active_connections_;
      ::close(fd);
      idle_cv_.notify_all();
    }
  }
}

bool HttpServer::ReadRequest(int fd, std::string* buffer,
                             HttpRequest* request, int64_t* first_byte_ns) {
  // Pipelined leftovers in the carry-over buffer count as "first byte now";
  // otherwise the stamp is taken right after the first successful read, so
  // keep-alive idle time never leaks into the parse stage.
  *first_byte_ns = buffer->empty() ? 0 : obs::NowNs();
  // Accumulate until the blank line ending the header block.
  size_t header_end;
  while ((header_end = buffer->find("\r\n\r\n")) == std::string::npos) {
    if (buffer->size() > kMaxHeaderBytes) return false;
    if (!ReadMore(fd, buffer)) return false;
    if (*first_byte_ns == 0) *first_byte_ns = obs::NowNs();
  }

  size_t line_end = buffer->find("\r\n");
  std::string request_line = buffer->substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return false;
  request->method = request_line.substr(0, sp1);
  request->target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string version = request_line.substr(sp2 + 1);
  if (request->method.empty() || request->target.empty() ||
      request->target[0] != '/') {
    return false;
  }

  ParsedHeaders headers;
  if (!ParseHeaderLines(*buffer, line_end + 2, header_end, &headers)) {
    return false;
  }
  // HTTP/1.1 defaults to keep-alive; 1.0 to close.
  request->keep_alive = version == "HTTP/1.1";
  if (headers.has_connection) {
    request->keep_alive = headers.connection != "close";
  }

  const size_t body_begin = header_end + 4;
  while (buffer->size() - body_begin < headers.content_length) {
    if (!ReadMore(fd, buffer)) return false;
  }
  request->body = buffer->substr(body_begin, headers.content_length);
  buffer->erase(0, body_begin + headers.content_length);
  return true;
}

void HttpServer::ServeConnection(int fd) {
  std::string buffer;
  while (!stopping_.load()) {
    HttpRequest request;
    int64_t first_byte_ns = 0;
    if (!ReadRequest(fd, &buffer, &request, &first_byte_ns)) break;
    obs::RequestTrace trace;
    trace.RebaseStart(first_byte_ns);
    if (first_byte_ns > 0) {
      const int64_t parsed_ns = obs::NowNs();
      trace.AddStageNs(obs::RequestStage::kParse, parsed_ns - first_byte_ns);
    }
    HttpResponse response = handler_(request, &trace);
    requests_served_.fetch_add(1);
    const bool keep_alive = request.keep_alive && !stopping_.load();
    std::string out = StringPrintf(
        "HTTP/1.1 %d %s\r\n"
        "Content-Type: %s\r\n"
        "Content-Length: %zu\r\n"
        "Connection: %s\r\n"
        "\r\n",
        response.status, StatusText(response.status),
        response.content_type.c_str(), response.body.size(),
        keep_alive ? "keep-alive" : "close");
    out += response.body;
    const int64_t write_start_ns = obs::NowNs();
    const bool write_ok = WriteAll(fd, out);
    if (write_start_ns > 0) {
      trace.AddStageNs(obs::RequestStage::kWrite,
                       obs::NowNs() - write_start_ns);
    }
    trace.set_status(response.status);
    trace.Finish();
    if (on_complete_) on_complete_(request, response, trace);
    if (!write_ok) break;
    if (!keep_alive) break;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    open_fds_.erase(fd);
    --active_connections_;
  }
  ::close(fd);
  idle_cv_.notify_all();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Claim the listener exactly once: shutdown() wakes the blocked
  // accept(), and AcceptLoop only ever sees the fd value, never a
  // half-written one (the TSan-clean handshake for the close-to-wake
  // idiom).
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::unique_lock<std::mutex> lock(mu_);
  // Wake every connection blocked in recv; ServeConnection owns the close.
  for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  idle_cv_.wait(lock, [this] { return active_connections_ == 0; });
}

// ------------------------------------------------------------- HttpClient

namespace {

/// Reads one full HTTP response off `fd`, using `*buffer` for carry-over.
Result<HttpResponse> ReadResponse(int fd, std::string* buffer) {
  size_t header_end;
  while ((header_end = buffer->find("\r\n\r\n")) == std::string::npos) {
    if (buffer->size() > kMaxHeaderBytes) {
      return Status::IOError("response headers too large");
    }
    if (!ReadMore(fd, buffer)) {
      return Status::IOError("connection closed mid-response");
    }
  }
  size_t line_end = buffer->find("\r\n");
  std::string status_line = buffer->substr(0, line_end);
  // "HTTP/1.1 200 OK"
  size_t sp = status_line.find(' ');
  if (sp == std::string::npos) return Status::IOError("bad status line");
  HttpResponse response;
  response.status = std::atoi(status_line.c_str() + sp + 1);

  ParsedHeaders headers;
  if (!ParseHeaderLines(*buffer, line_end + 2, header_end, &headers)) {
    return Status::IOError("bad response headers");
  }
  const size_t body_begin = header_end + 4;
  while (buffer->size() - body_begin < headers.content_length) {
    if (!ReadMore(fd, buffer)) {
      return Status::IOError("connection closed mid-body");
    }
  }
  response.body = buffer->substr(body_begin, headers.content_length);
  buffer->erase(0, body_begin + headers.content_length);
  return response;
}

}  // namespace

Result<HttpClient> HttpClient::Connect(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status s = Status::IOError(StringPrintf("connect %s:%d: %s", host.c_str(),
                                            port, std::strerror(errno)));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetReadTimeout(fd, 10);
  return HttpClient(fd);
}

HttpClient::HttpClient(HttpClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

HttpClient::~HttpClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<HttpResponse> HttpClient::RoundTrip(const std::string& method,
                                           const std::string& target,
                                           const std::string& body) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  std::string request = StringPrintf(
      "%s %s HTTP/1.1\r\n"
      "Host: 127.0.0.1\r\n"
      "Content-Length: %zu\r\n"
      "\r\n",
      method.c_str(), target.c_str(), body.size());
  request += body;
  if (!WriteAll(fd_, request)) {
    return Status::IOError("write failed (server closed?)");
  }
  return ReadResponse(fd_, &buffer_);
}

Result<HttpResponse> HttpFetch(const std::string& host, int port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body) {
  Result<HttpClient> client = HttpClient::Connect(host, port);
  if (!client.ok()) return client.status();
  return client->RoundTrip(method, target, body);
}

}  // namespace serve
}  // namespace mlp
