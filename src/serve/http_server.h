#ifndef MLP_SERVE_HTTP_SERVER_H_
#define MLP_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "common/result.h"
#include "engine/thread_pool.h"
#include "obs/request_trace.h"

namespace mlp {
namespace serve {

/// One parsed HTTP/1.1 request (the subset the serving layer needs:
/// request line, Content-Length bodies, Connection header).
struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string target;  // raw request target, e.g. "/v1/user/3?pretty=1"
  std::string body;
  bool keep_alive = true;
};

/// Response the handler fills in; the server adds the status line,
/// Content-Type/Content-Length and Connection headers.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Request handler. The server creates one obs::RequestTrace per request
/// (request id + parse time already recorded) and hands it to the handler,
/// which attributes its own stages (cache lookup, batch queue wait,
/// render) and labels endpoint/outcome. Never null.
using HttpHandler =
    std::function<HttpResponse(const HttpRequest&, obs::RequestTrace*)>;

/// Invoked after the response bytes have been written (write stage and
/// total time are final at this point). This is where the model server
/// hangs its access log, latency histograms and slow-request ring — the
/// hook runs on the connection's pool thread, so it must be cheap.
using HttpCompletionHook = std::function<void(
    const HttpRequest&, const HttpResponse&, obs::RequestTrace&)>;

/// Minimal HTTP/1.1 server over plain POSIX sockets — no external
/// dependencies. One dedicated accept thread; each accepted connection is
/// dispatched onto the shared engine::ThreadPool and served with
/// keep-alive until the peer closes, errors, sends "Connection: close", or
/// the server stops. Read timeouts bound how long an idle keep-alive
/// connection can pin a worker.
///
/// Lifecycle: Start() binds/listens (port 0 picks an ephemeral port,
/// readable via port()), Stop() closes the listener, wakes every open
/// connection and blocks until all of them have unwound — after which the
/// caller can safely Drain() the pool.
class HttpServer {
 public:
  /// `pool` is borrowed and must outlive the server.
  explicit HttpServer(engine::ThreadPool* pool);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting.
  /// `on_complete` (optional) fires once per request after the response
  /// has been written, with the finished trace.
  Status Start(int port, HttpHandler handler,
               HttpCompletionHook on_complete = nullptr);
  /// The bound port; 0 before Start.
  int port() const { return port_; }
  bool running() const { return running_.load(); }

  /// Graceful stop, idempotent: no new connections, in-flight requests
  /// finish, blocked reads are woken via shutdown(2).
  void Stop();

  uint64_t requests_served() const { return requests_served_.load(); }
  uint64_t connections_accepted() const { return connections_.load(); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Reads one request off `fd` into `*request`, using `*buffer` as the
  /// connection's carry-over buffer. Returns false on EOF/timeout/parse
  /// error (connection should close). `*first_byte_ns` is set to the
  /// obs::NowNs() timestamp at which this request's first byte was
  /// available (0 when observability is disabled) — the keep-alive idle
  /// wait before it is deliberately excluded from request timing.
  bool ReadRequest(int fd, std::string* buffer, HttpRequest* request,
                   int64_t* first_byte_ns);

  engine::ThreadPool* pool_;
  HttpHandler handler_;
  HttpCompletionHook on_complete_;
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> connections_{0};

  std::mutex mu_;
  std::condition_variable idle_cv_;
  std::unordered_set<int> open_fds_;
  int active_connections_ = 0;
};

/// Blocking keep-alive HTTP/1.1 client connection — the test/bench/
/// selfcheck counterpart of HttpServer (and the reason the smoke tests
/// need no curl). Not thread-safe; one connection per caller thread.
class HttpClient {
 public:
  static Result<HttpClient> Connect(const std::string& host, int port);

  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  ~HttpClient();

  /// Sends one request and blocks for the full response.
  Result<HttpResponse> RoundTrip(const std::string& method,
                                 const std::string& target,
                                 const std::string& body = "");

 private:
  explicit HttpClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  // carry-over bytes between responses
};

/// One-shot convenience: connect, request, close.
Result<HttpResponse> HttpFetch(const std::string& host, int port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body = "");

}  // namespace serve
}  // namespace mlp

#endif  // MLP_SERVE_HTTP_SERVER_H_
