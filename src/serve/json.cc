#include "serve/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace mlp {
namespace serve {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  // Try the shortest renderings first; fall back to 17 significant digits,
  // which always round-trips an IEEE double.
  for (int precision : {15, 16, 17}) {
    std::string text = StringPrintf("%.*g", precision, v);
    if (std::strtod(text.c_str(), nullptr) == v) return text;
  }
  return StringPrintf("%.17g", v);
}

// ------------------------------------------------------------- JsonWriter

void JsonWriter::Comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = 1;
  }
}

void JsonWriter::BeginObject() {
  Comma();
  out_ += '{';
  needs_comma_.push_back(0);
}

void JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_.pop_back();
}

void JsonWriter::BeginArray() {
  Comma();
  out_ += '[';
  needs_comma_.push_back(0);
}

void JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_.pop_back();
}

void JsonWriter::Key(std::string_view key) {
  Comma();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  Comma();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  Comma();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  Comma();
  out_ += JsonDouble(value);
}

void JsonWriter::Bool(bool value) {
  Comma();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  Comma();
  out_ += "null";
}

void JsonWriter::Raw(std::string_view json) {
  Comma();
  out_ += json;
}

// -------------------------------------------------------------- JsonValue

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

int64_t JsonValue::AsInt(int64_t fallback) const {
  return type == Type::kNumber ? static_cast<int64_t>(number) : fallback;
}

double JsonValue::AsDouble(double fallback) const {
  return type == Type::kNumber ? number : fallback;
}

// ----------------------------------------------------------------- parser

namespace {

constexpr int kMaxDepth = 64;

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    Status s = ParseValue(&value, 0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(Error("trailing characters"));
    }
    return value;
  }

 private:
  std::string Error(const std::string& what) const {
    return "json parse error at byte " + std::to_string(pos_) + ": " + what;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Status::InvalidArgument(Error("too deep"));
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument(Error("unexpected end of input"));
    }
    char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string_value);
    }
    if (ConsumeLiteral("true")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      return Status::OK();
    }
    if (ConsumeLiteral("false")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      return Status::OK();
    }
    if (ConsumeLiteral("null")) {
      out->type = JsonValue::Type::kNull;
      return Status::OK();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Status::InvalidArgument(Error("unexpected character"));
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Status::InvalidArgument(Error("expected member name"));
      }
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipWhitespace();
      if (!Consume(':')) return Status::InvalidArgument(Error("expected ':'"));
      JsonValue value;
      s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Status::InvalidArgument(Error("expected ',' or '}'"));
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      Status s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Status::InvalidArgument(Error("expected ',' or ']'"));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      unsigned char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Status::InvalidArgument(Error("raw control char"));
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument(Error("dangling escape"));
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument(Error("short \\u escape"));
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= h - '0';
            } else if (h >= 'a' && h <= 'f') {
              code |= h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              code |= h - 'A' + 10;
            } else {
              return Status::InvalidArgument(Error("bad \\u escape"));
            }
          }
          // BMP code points, UTF-8 encoded. Surrogates (which would need a
          // pair) degrade to U+FFFD rather than failing the whole body.
          if (code >= 0xD800 && code <= 0xDFFF) code = 0xFFFD;
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::InvalidArgument(Error("unknown escape"));
      }
    }
    return Status::InvalidArgument(Error("unterminated string"));
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (Consume('.')) {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty() ||
        token == "-") {
      return Status::InvalidArgument(Error("malformed number"));
    }
    out->type = JsonValue::Type::kNumber;
    out->number = value;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace serve
}  // namespace mlp
