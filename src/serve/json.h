#ifndef MLP_SERVE_JSON_H_
#define MLP_SERVE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace mlp {
namespace serve {

/// Escapes `s` for inclusion inside a JSON string literal (no surrounding
/// quotes). Control characters, quotes and backslashes become \-escapes.
std::string JsonEscape(std::string_view s);

/// Shortest decimal rendering of `v` that parses back to exactly the same
/// double — the serving layer's "byte-consistent posteriors" guarantee
/// rests on this round-trip.
std::string JsonDouble(double v);

/// Streaming JSON emitter with automatic comma placement. Values are
/// appended depth-first; the writer never buffers a tree, so building a
/// large batch response is one pass over the read model.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("home"); w.Int(17);
///   w.Key("profile"); w.BeginArray(); w.Double(0.93); w.EndArray();
///   w.EndObject();
///   std::string body = std::move(w).Take();
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(std::string_view key);
  void String(std::string_view value);
  void Int(int64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();
  /// Splices an already-rendered JSON value (with comma handling) — the
  /// read model's pre-rendered fragments enter batch responses through
  /// here without re-rendering.
  void Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string Take() && { return std::move(out_); }

 private:
  void Comma();

  std::string out_;
  std::vector<uint8_t> needs_comma_;  // one flag per open container
  bool after_key_ = false;
};

/// Parsed JSON document node. A deliberately small tree — just enough for
/// the batch endpoint's request bodies and for tests to read responses
/// back; not a general-purpose DOM.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  int64_t AsInt(int64_t fallback = 0) const;
  double AsDouble(double fallback = 0.0) const;
};

/// Strict-enough recursive-descent parser: UTF-8 pass-through, \uXXXX
/// escapes (BMP), nesting capped at 64 levels, trailing garbage rejected.
/// Never crashes on malformed input — returns InvalidArgument instead.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace serve
}  // namespace mlp

#endif  // MLP_SERVE_JSON_H_
