#include "serve/model_server.h"

#include <cstdlib>
#include <limits>
#include <string_view>
#include <utility>

#include "common/string_util.h"
#include "io/table_printer.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "obs/trace.h"

namespace mlp {
namespace serve {

namespace {

HttpResponse ErrorResponse(int status, const std::string& message) {
  JsonWriter w;
  w.BeginObject();
  w.Key("error");
  w.String(message);
  w.EndObject();
  HttpResponse response;
  response.status = status;
  response.body = std::move(w).Take();
  return response;
}

/// Parses a non-negative decimal id occupying all of `text`; -1 otherwise.
int64_t ParseId(const std::string& text) {
  if (text.empty() || text.size() > 18) return -1;
  int64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return value;
}

/// Narrows an id to graph::UserId without wrap-around: anything outside
/// [0, INT32_MAX] becomes kInvalidUser, which every lookup rejects —
/// /v1/user/4294967296 must be a 404, not user 0.
graph::UserId NarrowUserId(int64_t id) {
  if (id < 0 || id > std::numeric_limits<int32_t>::max()) {
    return graph::kInvalidUser;
  }
  return static_cast<graph::UserId>(id);
}

}  // namespace

ModelServer::ModelServer(ReadModel model, const ServeOptions& options)
    : options_(options),
      cache_(static_cast<size_t>(std::max(0, options.cache_mb)) * 1024 * 1024),
      conn_pool_(std::max(1, options.threads)),
      batch_pool_(std::max(1, options.threads)),
      batcher_(nullptr, &batch_pool_),
      http_(&conn_pool_),
      requests_total_(
          obs::Registry::Global().GetCounter("serve_requests_total")),
      request_latency_us_(obs::Registry::Global().GetHistogram(
          "serve_request_latency_us",
          {100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000,
           250000, 1000000})) {
  auto published = std::make_shared<Published>();
  published->model = std::make_shared<const ReadModel>(std::move(model));
  published->generation = 1;
  published_ = std::move(published);
  swaps_.store(0);
}

ModelServer::~ModelServer() { Stop(); }

Status ModelServer::Start() {
  start_time_ = std::chrono::steady_clock::now();
  return http_.Start(options_.port,
                     [this](const HttpRequest& request) {
                       return Handle(request);
                     });
}

void ModelServer::Stop() {
  if (stopped_.exchange(true)) return;
  http_.Stop();
  batch_pool_.Drain();
  conn_pool_.Drain();
}

std::shared_ptr<const ModelServer::Published> ModelServer::Pin() const {
  // atomic_load on the shared_ptr: lock-free on the data path against
  // concurrent SwapReadModel stores, and the returned pin keeps the model
  // alive for the whole request even if a swap lands mid-render.
  return std::atomic_load(&published_);
}

void ModelServer::SwapReadModel(ReadModel model) {
  // Swaps serialize on a control-plane mutex: two concurrent swaps must
  // not mint the same generation (the cache namespaces by it) or publish
  // out of order. The data path never takes this lock — requests only
  // atomic_load the published pair.
  std::lock_guard<std::mutex> lock(swap_mu_);
  auto fresh = std::make_shared<Published>();
  fresh->model = std::make_shared<const ReadModel>(std::move(model));
  fresh->generation = Pin()->generation + 1;
  std::atomic_store(&published_,
                    std::shared_ptr<const Published>(std::move(fresh)));
  // Cache keys carry the generation, so stale bodies are unreachable the
  // instant the store lands; clearing just hands the byte budget to the
  // new model without waiting for LRU pressure.
  cache_.Clear();
  swaps_.fetch_add(1);
}

std::shared_ptr<const ReadModel> ModelServer::model() const {
  return Pin()->model;
}

uint64_t ModelServer::model_generation() const { return Pin()->generation; }

// --------------------------------------------------------------- routing

HttpResponse ModelServer::CachedGet(
    const Published& published, const std::string& target,
    HttpResponse (ModelServer::*render)(const ReadModel&, const std::string&),
    const std::string& arg) {
  // Generation-namespaced key: a body rendered from model generation G can
  // only ever serve generation G, no matter how requests and swaps race.
  const std::string key =
      StringPrintf("g%llu %s",
                   static_cast<unsigned long long>(published.generation),
                   target.c_str());
  HttpResponse response;
  if (cache_.Get(key, &response.body)) {
    return response;  // cached bodies are always 200/application/json
  }
  response = (this->*render)(*published.model, arg);
  if (response.status == 200) cache_.Put(key, response.body);
  return response;
}

HttpResponse ModelServer::HandleUser(const ReadModel& model,
                                     const std::string& rest) {
  user_queries_.fetch_add(1);
  int64_t id = ParseId(rest);
  if (id < 0) {
    errors_.fetch_add(1);
    return ErrorResponse(400, "user id must be a non-negative integer");
  }
  std::string_view fragment = model.UserJson(NarrowUserId(id));
  if (fragment.empty()) {
    errors_.fetch_add(1);
    return ErrorResponse(404, StringPrintf("no user %lld",
                                           static_cast<long long>(id)));
  }
  HttpResponse response;
  response.body.assign(fragment.data(), fragment.size());
  return response;
}

HttpResponse ModelServer::HandleEdge(const ReadModel& model,
                                     const std::string& rest) {
  edge_queries_.fetch_add(1);
  size_t slash = rest.find('/');
  if (slash == std::string::npos) {
    errors_.fetch_add(1);
    return ErrorResponse(400, "expected /v1/edge/{src}/{dst}");
  }
  int64_t src = ParseId(rest.substr(0, slash));
  int64_t dst = ParseId(rest.substr(slash + 1));
  if (src < 0 || dst < 0) {
    errors_.fetch_add(1);
    return ErrorResponse(400, "edge endpoints must be non-negative integers");
  }
  std::string_view fragment = model.EdgeJson(
      model.FindEdge(NarrowUserId(src), NarrowUserId(dst)));
  if (fragment.empty()) {
    errors_.fetch_add(1);
    return ErrorResponse(
        404, StringPrintf("no following relationship %lld -> %lld",
                          static_cast<long long>(src),
                          static_cast<long long>(dst)));
  }
  HttpResponse response;
  response.body.assign(fragment.data(), fragment.size());
  return response;
}

HttpResponse ModelServer::HandleBatch(const ReadModel& model,
                                      const HttpRequest& request) {
  Result<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) {
    errors_.fetch_add(1);
    return ErrorResponse(400, parsed.status().message());
  }
  if (!parsed->is_object()) {
    errors_.fetch_add(1);
    return ErrorResponse(400, "batch body must be a JSON object");
  }
  BatchRequest batch;
  if (const JsonValue* users = parsed->Find("users")) {
    if (!users->is_array()) {
      errors_.fetch_add(1);
      return ErrorResponse(400, "\"users\" must be an array of ids");
    }
    batch.users.reserve(users->items.size());
    for (const JsonValue& item : users->items) {
      batch.users.push_back(NarrowUserId(item.AsInt(-1)));
    }
  }
  if (const JsonValue* edges = parsed->Find("edges")) {
    if (!edges->is_array()) {
      errors_.fetch_add(1);
      return ErrorResponse(400, "\"edges\" must be an array of [src,dst]");
    }
    batch.edges.reserve(edges->items.size());
    for (const JsonValue& item : edges->items) {
      if (!item.is_array() || item.items.size() != 2) {
        errors_.fetch_add(1);
        return ErrorResponse(400, "each edge must be a [src,dst] pair");
      }
      batch.edges.emplace_back(NarrowUserId(item.items[0].AsInt(-1)),
                               NarrowUserId(item.items[1].AsInt(-1)));
    }
  }
  batch_queries_.fetch_add(batch.users.size() + batch.edges.size());

  HttpResponse response;
  response.body = batcher_.ExecuteJson(model, batch);
  return response;
}

HttpResponse ModelServer::HandleStats(const Published& published,
                                      const std::string& query) {
  const ReadModel& model = *published.model;
  const ResponseCache::Stats cache = cache_.GetStats();
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  std::vector<std::pair<std::string, std::string>> rows;
  auto add = [&](const std::string& key, const std::string& value) {
    rows.emplace_back(key, value);
  };
  add("users", std::to_string(model.num_users()));
  add("following_edges", std::to_string(model.num_edges()));
  add("model_generation", std::to_string(published.generation));
  add("model_swaps", std::to_string(swaps_.load()));
  add("active_candidate_slots",
      std::to_string(model.active_candidate_slots()));
  add("candidate_layout_version",
      std::to_string(model.candidate_layout_version()));
  add("mean_profile_entries",
      StringPrintf("%.2f", model.mean_profile_entries()));
  add("alpha", StringPrintf("%.4f", model.alpha()));
  add("beta", StringPrintf("%.6f", model.beta()));
  add("fit_complete", model.fit_complete() ? "1" : "0");
  // Memory picture (ISSUE 8): the read model's exact owned footprint next
  // to the live process RSS. mmap-backed models account only resident
  // structures — the gap between RSS and the snapshot size is the point.
  add("mmap_backed", model.mmap_backed() ? "1" : "0");
  const int64_t model_bytes = model.AccountedBytes();
  obs::Registry::Global().GetGauge(obs::kMemReadModelBytes)->Set(model_bytes);
  obs::UpdateProcessRssGauges();
  add("mem_readmodel_bytes", std::to_string(model_bytes));
  add("mem_process_rss_bytes", std::to_string(obs::ProcessRssBytes()));
  add("mem_process_peak_rss_bytes",
      std::to_string(obs::ProcessPeakRssBytes()));
  add("threads", std::to_string(conn_pool_.size()));
  add("uptime_seconds", StringPrintf("%.1f", uptime));
  add("requests_served", std::to_string(http_.requests_served()));
  add("connections_accepted", std::to_string(http_.connections_accepted()));
  add("user_queries", std::to_string(user_queries_.load()));
  add("edge_queries", std::to_string(edge_queries_.load()));
  add("batch_lookups", std::to_string(batch_queries_.load()));
  add("batches_executed", std::to_string(batcher_.batches_executed()));
  add("errors", std::to_string(errors_.load()));
  add("cache_hits", std::to_string(cache.hits));
  add("cache_misses", std::to_string(cache.misses));
  add("cache_evictions", std::to_string(cache.evictions));
  add("cache_entries", std::to_string(cache.entries));
  add("cache_bytes", std::to_string(cache.bytes));
  add("cache_capacity_bytes", std::to_string(cache.capacity_bytes));
  add("conn_queue_depth", std::to_string(conn_pool_.queue_depth()));
  add("batch_queue_depth", std::to_string(batch_pool_.queue_depth()));

  HttpResponse response;
  if (query == "format=csv" || query == "format=table") {
    io::TablePrinter table({"stat", "value"});
    for (const auto& [key, value] : rows) table.AddRow({key, value});
    const bool csv = query == "format=csv";
    response.content_type = csv ? "text/csv" : "text/plain";
    response.body = csv ? table.ToCsv() : table.ToString();
    return response;
  }
  // Default: the same rows as a flat JSON object (values kept as the
  // strings the table renders — /statsz is an operator surface, not an API
  // contract).
  JsonWriter w;
  w.BeginObject();
  for (const auto& [key, value] : rows) {
    w.Key(key);
    w.String(value);
  }
  w.EndObject();
  response.body = std::move(w).Take();
  return response;
}

HttpResponse ModelServer::HandleMetrics(const Published& published) {
  // Everything the process-wide registry holds (fit/ingest phase counters,
  // the request-latency histogram), plus server-local stats rendered in
  // the same exposition format. Queue depths and cache occupancy are
  // gauges; the cache tallies are cumulative counters.
  const ResponseCache::Stats cache = cache_.GetStats();
  std::string body = obs::Registry::Global().RenderPrometheus();
  auto counter = [&](const char* name, uint64_t value) {
    body += StringPrintf("# TYPE %s counter\n%s %llu\n", name, name,
                         static_cast<unsigned long long>(value));
  };
  auto gauge = [&](const char* name, int64_t value) {
    body += StringPrintf("# TYPE %s gauge\n%s %lld\n", name, name,
                         static_cast<long long>(value));
  };
  counter("serve_cache_hits", cache.hits);
  counter("serve_cache_misses", cache.misses);
  counter("serve_cache_evictions", cache.evictions);
  counter("serve_errors_total", errors_.load());
  counter("serve_model_swaps_total", swaps_.load());
  gauge("serve_cache_entries", static_cast<int64_t>(cache.entries));
  gauge("serve_cache_bytes", static_cast<int64_t>(cache.bytes));
  gauge("serve_cache_capacity_bytes",
        static_cast<int64_t>(cache.capacity_bytes));
  gauge("serve_conn_queue_depth", conn_pool_.queue_depth());
  gauge("serve_batch_queue_depth", batch_pool_.queue_depth());
  gauge("serve_model_generation", static_cast<int64_t>(published.generation));
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = std::move(body);
  return response;
}

HttpResponse ModelServer::Handle(const HttpRequest& request) {
  requests_total_->Add(1);
  const int64_t start_ns = obs::NowNs();
  HttpResponse response = Route(request);
  if (obs::Enabled()) {
    request_latency_us_->Record((obs::NowNs() - start_ns) / 1000);
  }
  return response;
}

HttpResponse ModelServer::Route(const HttpRequest& request) {
  const std::string& target = request.target;
  std::string path = target;
  std::string query;
  size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    path = target.substr(0, qmark);
    query = target.substr(qmark + 1);
  }

  // Pin one (model, generation) snapshot for the whole request: a
  // concurrent SwapReadModel can land at any point from here on and this
  // request still renders consistently from the model it started with.
  const std::shared_ptr<const Published> published = Pin();

  if (path == "/healthz") {
    JsonWriter w;
    w.BeginObject();
    w.Key("status");
    w.String("ok");
    w.Key("model");
    w.String("loaded");
    w.Key("users");
    w.Int(published->model->num_users());
    w.EndObject();
    HttpResponse response;
    response.body = std::move(w).Take();
    return response;
  }
  if (path == "/statsz") return HandleStats(*published, query);
  if (path == "/metricsz") return HandleMetrics(*published);

  constexpr char kUserPrefix[] = "/v1/user/";
  constexpr char kEdgePrefix[] = "/v1/edge/";
  if (path.rfind(kUserPrefix, 0) == 0) {
    if (request.method != "GET") {
      errors_.fetch_add(1);
      return ErrorResponse(405, "use GET");
    }
    return CachedGet(*published, path, &ModelServer::HandleUser,
                     path.substr(sizeof(kUserPrefix) - 1));
  }
  if (path.rfind(kEdgePrefix, 0) == 0) {
    if (request.method != "GET") {
      errors_.fetch_add(1);
      return ErrorResponse(405, "use GET");
    }
    return CachedGet(*published, path, &ModelServer::HandleEdge,
                     path.substr(sizeof(kEdgePrefix) - 1));
  }
  if (path == "/v1/batch") {
    if (request.method != "POST") {
      errors_.fetch_add(1);
      return ErrorResponse(405, "use POST");
    }
    return HandleBatch(*published->model, request);
  }
  errors_.fetch_add(1);
  return ErrorResponse(404, "unknown endpoint " + path);
}

}  // namespace serve
}  // namespace mlp
