#include "serve/model_server.h"

#include <cstdlib>
#include <limits>
#include <string_view>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "io/table_printer.h"
#include "obs/fit_profile.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "obs/trace.h"

namespace mlp {
namespace serve {

namespace {

HttpResponse ErrorResponse(int status, const std::string& message) {
  JsonWriter w;
  w.BeginObject();
  w.Key("error");
  w.String(message);
  w.EndObject();
  HttpResponse response;
  response.status = status;
  response.body = std::move(w).Take();
  return response;
}

/// Parses a non-negative decimal id occupying all of `text`; -1 otherwise.
int64_t ParseId(const std::string& text) {
  if (text.empty() || text.size() > 18) return -1;
  int64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return value;
}

/// Narrows an id to graph::UserId without wrap-around: anything outside
/// [0, INT32_MAX] becomes kInvalidUser, which every lookup rejects —
/// /v1/user/4294967296 must be a 404, not user 0.
graph::UserId NarrowUserId(int64_t id) {
  if (id < 0 || id > std::numeric_limits<int32_t>::max()) {
    return graph::kInvalidUser;
  }
  return static_cast<graph::UserId>(id);
}

/// steady_clock nanoseconds — independent of the obs::Enabled() switch
/// (model staleness must stay observable with tracing off).
int64_t SteadyNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Latency bounds shared by the per-endpoint histograms (same scale as
/// serve_request_latency_us).
std::vector<int64_t> LatencyBoundsUs() {
  return {100,   250,   500,    1000,   2500,  5000,
          10000, 25000, 50000, 100000, 250000, 1000000};
}

}  // namespace

ModelServer::ModelServer(ReadModel model, const ServeOptions& options)
    : options_(options),
      cache_(static_cast<size_t>(std::max(0, options.cache_mb)) * 1024 * 1024),
      conn_pool_(std::max(1, options.threads)),
      batch_pool_(std::max(1, options.threads)),
      batcher_(nullptr, &batch_pool_),
      http_(&conn_pool_),
      slow_ring_(static_cast<size_t>(std::max(1, options.slow_ring_capacity))),
      requests_total_(
          obs::Registry::Global().GetCounter("serve_requests_total")),
      request_latency_us_(obs::Registry::Global().GetHistogram(
          "serve_request_latency_us", LatencyBoundsUs())),
      user_hit_latency_us_(obs::Registry::Global().GetHistogram(
          "serve_user_hit_latency_us", LatencyBoundsUs())),
      user_miss_latency_us_(obs::Registry::Global().GetHistogram(
          "serve_user_miss_latency_us", LatencyBoundsUs())),
      edge_hit_latency_us_(obs::Registry::Global().GetHistogram(
          "serve_edge_hit_latency_us", LatencyBoundsUs())),
      edge_miss_latency_us_(obs::Registry::Global().GetHistogram(
          "serve_edge_miss_latency_us", LatencyBoundsUs())),
      batch_latency_us_(obs::Registry::Global().GetHistogram(
          "serve_batch_latency_us", LatencyBoundsUs())),
      other_latency_us_(obs::Registry::Global().GetHistogram(
          "serve_other_latency_us", LatencyBoundsUs())),
      user_errors_total_(
          obs::Registry::Global().GetCounter("serve_user_errors_total")),
      edge_errors_total_(
          obs::Registry::Global().GetCounter("serve_edge_errors_total")),
      batch_errors_total_(
          obs::Registry::Global().GetCounter("serve_batch_errors_total")),
      other_errors_total_(
          obs::Registry::Global().GetCounter("serve_other_errors_total")),
      slow_requests_total_(
          obs::Registry::Global().GetCounter("serve_slow_requests_total")) {
  for (int s = 0; s < obs::kNumRequestStages; ++s) {
    stage_ns_total_[s] = obs::Registry::Global().GetCounter(
        obs::RequestStageCounterName(static_cast<obs::RequestStage>(s)));
  }
  auto published = std::make_shared<Published>();
  published->model = std::make_shared<const ReadModel>(std::move(model));
  published->generation = 1;
  published_ = std::move(published);
  swaps_.store(0);
}

ModelServer::~ModelServer() { Stop(); }

Status ModelServer::Start() {
  start_time_ = std::chrono::steady_clock::now();
  last_swap_ns_.store(SteadyNs());
  if (options_.access_log && !options_.access_log_path.empty()) {
    access_log_file_ = std::fopen(options_.access_log_path.c_str(), "a");
    if (access_log_file_ == nullptr) {
      return Status::IOError("cannot open access log " +
                             options_.access_log_path);
    }
  }
  return http_.Start(
      options_.port,
      [this](const HttpRequest& request, obs::RequestTrace* trace) {
        return HandleTraced(request, trace);
      },
      [this](const HttpRequest& request, const HttpResponse& response,
             obs::RequestTrace& trace) {
        FinishRequest(request, response, trace);
      });
}

void ModelServer::Stop() {
  if (stopped_.exchange(true)) return;
  http_.Stop();
  batch_pool_.Drain();
  conn_pool_.Drain();
  if (access_log_file_ != nullptr) {
    std::fclose(access_log_file_);
    access_log_file_ = nullptr;
  }
}

std::shared_ptr<const ModelServer::Published> ModelServer::Pin() const {
  // atomic_load on the shared_ptr: lock-free on the data path against
  // concurrent SwapReadModel stores, and the returned pin keeps the model
  // alive for the whole request even if a swap lands mid-render.
  return std::atomic_load(&published_);
}

void ModelServer::SwapReadModel(ReadModel model) {
  // Swaps serialize on a control-plane mutex: two concurrent swaps must
  // not mint the same generation (the cache namespaces by it) or publish
  // out of order. The data path never takes this lock — requests only
  // atomic_load the published pair.
  std::lock_guard<std::mutex> lock(swap_mu_);
  auto fresh = std::make_shared<Published>();
  fresh->model = std::make_shared<const ReadModel>(std::move(model));
  fresh->generation = Pin()->generation + 1;
  std::atomic_store(&published_,
                    std::shared_ptr<const Published>(std::move(fresh)));
  // Cache keys carry the generation, so stale bodies are unreachable the
  // instant the store lands; clearing just hands the byte budget to the
  // new model without waiting for LRU pressure.
  cache_.Clear();
  swaps_.fetch_add(1);
  last_swap_ns_.store(SteadyNs());
}

double ModelServer::SecondsSinceLastSwap() const {
  const int64_t last = last_swap_ns_.load();
  if (last == 0) return 0.0;
  return static_cast<double>(SteadyNs() - last) / 1e9;
}

std::shared_ptr<const ReadModel> ModelServer::model() const {
  return Pin()->model;
}

uint64_t ModelServer::model_generation() const { return Pin()->generation; }

// --------------------------------------------------------------- routing

HttpResponse ModelServer::CachedGet(
    const Published& published, const std::string& target,
    HttpResponse (ModelServer::*render)(const ReadModel&, const std::string&),
    const std::string& arg, obs::RequestTrace* trace) {
  // Generation-namespaced key: a body rendered from model generation G can
  // only ever serve generation G, no matter how requests and swaps race.
  const std::string key =
      StringPrintf("g%llu %s",
                   static_cast<unsigned long long>(published.generation),
                   target.c_str());
  HttpResponse response;
  {
    obs::RequestTrace::StageTimer timer(trace,
                                        obs::RequestStage::kCacheLookup);
    if (cache_.Get(key, &response.body)) {
      trace->set_outcome("hit");
      return response;  // cached bodies are always 200/application/json
    }
  }
  trace->set_outcome("miss");
  {
    obs::RequestTrace::StageTimer timer(trace, obs::RequestStage::kRender);
    response = (this->*render)(*published.model, arg);
  }
  if (response.status == 200) cache_.Put(key, response.body);
  return response;
}

HttpResponse ModelServer::HandleUser(const ReadModel& model,
                                     const std::string& rest) {
  user_queries_.fetch_add(1);
  int64_t id = ParseId(rest);
  if (id < 0) {
    errors_.fetch_add(1);
    return ErrorResponse(400, "user id must be a non-negative integer");
  }
  std::string_view fragment = model.UserJson(NarrowUserId(id));
  if (fragment.empty()) {
    errors_.fetch_add(1);
    return ErrorResponse(404, StringPrintf("no user %lld",
                                           static_cast<long long>(id)));
  }
  HttpResponse response;
  response.body.assign(fragment.data(), fragment.size());
  return response;
}

HttpResponse ModelServer::HandleEdge(const ReadModel& model,
                                     const std::string& rest) {
  edge_queries_.fetch_add(1);
  size_t slash = rest.find('/');
  if (slash == std::string::npos) {
    errors_.fetch_add(1);
    return ErrorResponse(400, "expected /v1/edge/{src}/{dst}");
  }
  int64_t src = ParseId(rest.substr(0, slash));
  int64_t dst = ParseId(rest.substr(slash + 1));
  if (src < 0 || dst < 0) {
    errors_.fetch_add(1);
    return ErrorResponse(400, "edge endpoints must be non-negative integers");
  }
  std::string_view fragment = model.EdgeJson(
      model.FindEdge(NarrowUserId(src), NarrowUserId(dst)));
  if (fragment.empty()) {
    errors_.fetch_add(1);
    return ErrorResponse(
        404, StringPrintf("no following relationship %lld -> %lld",
                          static_cast<long long>(src),
                          static_cast<long long>(dst)));
  }
  HttpResponse response;
  response.body.assign(fragment.data(), fragment.size());
  return response;
}

HttpResponse ModelServer::HandleBatch(const ReadModel& model,
                                      const HttpRequest& request,
                                      obs::RequestTrace* trace) {
  Result<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) {
    errors_.fetch_add(1);
    return ErrorResponse(400, parsed.status().message());
  }
  if (!parsed->is_object()) {
    errors_.fetch_add(1);
    return ErrorResponse(400, "batch body must be a JSON object");
  }
  BatchRequest batch;
  if (const JsonValue* users = parsed->Find("users")) {
    if (!users->is_array()) {
      errors_.fetch_add(1);
      return ErrorResponse(400, "\"users\" must be an array of ids");
    }
    batch.users.reserve(users->items.size());
    for (const JsonValue& item : users->items) {
      batch.users.push_back(NarrowUserId(item.AsInt(-1)));
    }
  }
  if (const JsonValue* edges = parsed->Find("edges")) {
    if (!edges->is_array()) {
      errors_.fetch_add(1);
      return ErrorResponse(400, "\"edges\" must be an array of [src,dst]");
    }
    batch.edges.reserve(edges->items.size());
    for (const JsonValue& item : edges->items) {
      if (!item.is_array() || item.items.size() != 2) {
        errors_.fetch_add(1);
        return ErrorResponse(400, "each edge must be a [src,dst] pair");
      }
      batch.edges.emplace_back(NarrowUserId(item.items[0].AsInt(-1)),
                               NarrowUserId(item.items[1].AsInt(-1)));
    }
  }
  batch_queries_.fetch_add(batch.users.size() + batch.edges.size());

  HttpResponse response;
  trace->set_outcome("batch");
  const int64_t exec_start_ns = obs::NowNs();
  response.body = batcher_.ExecuteJson(model, batch, trace);
  if (exec_start_ns > 0) {
    // The batcher attributed chunk queue wait separately; render is the
    // execute time minus that wait, so the two stages stay disjoint.
    const int64_t elapsed = obs::NowNs() - exec_start_ns;
    trace->AddStageNs(
        obs::RequestStage::kRender,
        elapsed - trace->stage_ns(obs::RequestStage::kBatchQueueWait));
  }
  return response;
}

HttpResponse ModelServer::HandleStats(const Published& published,
                                      const std::string& query) {
  const ReadModel& model = *published.model;
  const ResponseCache::Stats cache = cache_.GetStats();
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  std::vector<std::pair<std::string, std::string>> rows;
  auto add = [&](const std::string& key, const std::string& value) {
    rows.emplace_back(key, value);
  };
  add("users", std::to_string(model.num_users()));
  add("following_edges", std::to_string(model.num_edges()));
  add("model_generation", std::to_string(published.generation));
  add("model_swaps", std::to_string(swaps_.load()));
  add("active_candidate_slots",
      std::to_string(model.active_candidate_slots()));
  add("candidate_layout_version",
      std::to_string(model.candidate_layout_version()));
  add("mean_profile_entries",
      StringPrintf("%.2f", model.mean_profile_entries()));
  add("alpha", StringPrintf("%.4f", model.alpha()));
  add("beta", StringPrintf("%.6f", model.beta()));
  add("fit_complete", model.fit_complete() ? "1" : "0");
  // Memory picture (ISSUE 8): the read model's exact owned footprint next
  // to the live process RSS. mmap-backed models account only resident
  // structures — the gap between RSS and the snapshot size is the point.
  add("mmap_backed", model.mmap_backed() ? "1" : "0");
  const int64_t model_bytes = model.AccountedBytes();
  obs::Registry::Global().GetGauge(obs::kMemReadModelBytes)->Set(model_bytes);
  obs::UpdateProcessRssGauges();
  add("mem_readmodel_bytes", std::to_string(model_bytes));
  add("mem_process_rss_bytes", std::to_string(obs::ProcessRssBytes()));
  add("mem_process_peak_rss_bytes",
      std::to_string(obs::ProcessPeakRssBytes()));
  add("threads", std::to_string(conn_pool_.size()));
  add("uptime_seconds", StringPrintf("%.1f", uptime));
  add("requests_served", std::to_string(http_.requests_served()));
  add("connections_accepted", std::to_string(http_.connections_accepted()));
  add("user_queries", std::to_string(user_queries_.load()));
  add("edge_queries", std::to_string(edge_queries_.load()));
  add("batch_lookups", std::to_string(batch_queries_.load()));
  add("batches_executed", std::to_string(batcher_.batches_executed()));
  add("errors", std::to_string(errors_.load()));
  add("cache_hits", std::to_string(cache.hits));
  add("cache_misses", std::to_string(cache.misses));
  add("cache_evictions", std::to_string(cache.evictions));
  add("cache_entries", std::to_string(cache.entries));
  add("cache_bytes", std::to_string(cache.bytes));
  add("cache_capacity_bytes", std::to_string(cache.capacity_bytes));
  add("conn_queue_depth", std::to_string(conn_pool_.queue_depth()));
  add("batch_queue_depth", std::to_string(batch_pool_.queue_depth()));
  // Live ingest daemon (ISSUE 10): the spool watcher's registry metrics,
  // surfaced here so the CI live-pipeline job (and operators) can poll a
  // single JSON endpoint for swap progress and quarantine counts. All
  // zero when no --spool watcher is attached.
  obs::Registry& registry = obs::Registry::Global();
  add("live_spool_depth",
      std::to_string(registry.GetGauge(obs::kIngestSpoolDepth)->Value()));
  add("live_batches_applied",
      std::to_string(
          registry.GetCounter(obs::kIngestLiveBatchesTotal)->Value()));
  add("live_batches_failed",
      std::to_string(
          registry.GetCounter(obs::kIngestFailedBatchesTotal)->Value()));
  add("live_swap_staleness_ms",
      std::to_string(
          registry.GetGauge(obs::kIngestSwapStalenessMs)->Value()));

  HttpResponse response;
  if (query == "format=csv" || query == "format=table") {
    io::TablePrinter table({"stat", "value"});
    for (const auto& [key, value] : rows) table.AddRow({key, value});
    const bool csv = query == "format=csv";
    response.content_type = csv ? "text/csv" : "text/plain";
    response.body = csv ? table.ToCsv() : table.ToString();
    return response;
  }
  // Default: the same rows as a flat JSON object (values kept as the
  // strings the table renders — /statsz is an operator surface, not an API
  // contract).
  JsonWriter w;
  w.BeginObject();
  for (const auto& [key, value] : rows) {
    w.Key(key);
    w.String(value);
  }
  w.EndObject();
  response.body = std::move(w).Take();
  return response;
}

HttpResponse ModelServer::HandleMetrics(const Published& published) {
  // Everything the process-wide registry holds (fit/ingest phase counters,
  // the request-latency histograms), plus server-local stats rendered in
  // the same exposition format. Queue depths and cache occupancy are
  // gauges; the cache tallies are cumulative counters.
  const ResponseCache::Stats cache = cache_.GetStats();
  // Every scrape sees the memory picture as of this scrape, not as of the
  // last /statsz visit: refresh VmRSS/VmHWM before rendering.
  obs::UpdateProcessRssGauges();
  std::string body = obs::Registry::Global().RenderPrometheus();
  auto counter = [&](const char* name, uint64_t value) {
    body += StringPrintf("# TYPE %s counter\n%s %llu\n", name, name,
                         static_cast<unsigned long long>(value));
  };
  auto gauge = [&](const char* name, int64_t value) {
    body += StringPrintf("# TYPE %s gauge\n%s %lld\n", name, name,
                         static_cast<long long>(value));
  };
  counter("serve_cache_hits", cache.hits);
  counter("serve_cache_misses", cache.misses);
  counter("serve_cache_evictions", cache.evictions);
  counter("serve_errors_total", errors_.load());
  counter("serve_model_swaps_total", swaps_.load());
  gauge("serve_cache_entries", static_cast<int64_t>(cache.entries));
  gauge("serve_cache_bytes", static_cast<int64_t>(cache.bytes));
  gauge("serve_cache_capacity_bytes",
        static_cast<int64_t>(cache.capacity_bytes));
  gauge("serve_conn_queue_depth", conn_pool_.queue_depth());
  gauge("serve_batch_queue_depth", batch_pool_.queue_depth());
  gauge("serve_model_generation", static_cast<int64_t>(published.generation));
  gauge("serve_seconds_since_last_swap",
        static_cast<int64_t>(SecondsSinceLastSwap()));
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = std::move(body);
  return response;
}

HttpResponse ModelServer::HandleStatusz(const Published& published) {
  const ReadModel& model = *published.model;
  const ResponseCache::Stats cache = cache_.GetStats();
  obs::UpdateProcessRssGauges();
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  const uint64_t requests = http_.requests_served();
  const double qps = uptime > 0.0 ? static_cast<double>(requests) / uptime
                                  : 0.0;
  const uint64_t lookups = cache.hits + cache.misses;
  const double hit_ratio =
      lookups > 0 ? static_cast<double>(cache.hits) /
                        static_cast<double>(lookups)
                  : 0.0;

  std::string body;
  body +=
      "<!DOCTYPE html><html><head><title>mlp /statusz</title>"
      "<style>body{font-family:monospace;margin:2em}"
      "table{border-collapse:collapse;margin-bottom:1.5em}"
      "td,th{border:1px solid #999;padding:4px 10px;text-align:right}"
      "th{background:#eee}td:first-child,th:first-child{text-align:left}"
      "</style></head><body><h1>mlp model server</h1>\n";

  body += "<h2>server</h2><table>\n";
  auto row = [&](const char* key, const std::string& value) {
    body += StringPrintf("<tr><td>%s</td><td>%s</td></tr>\n", key,
                         value.c_str());
  };
  row("uptime_seconds", StringPrintf("%.1f", uptime));
  row("qps", StringPrintf("%.2f", qps));
  row("requests_served", std::to_string(requests));
  row("errors", std::to_string(errors_.load()));
  row("model_generation", std::to_string(published.generation));
  row("model_swaps", std::to_string(swaps_.load()));
  row("seconds_since_last_swap",
      StringPrintf("%.1f", SecondsSinceLastSwap()));
  row("model_users", std::to_string(model.num_users()));
  row("cache_hit_ratio", StringPrintf("%.3f", hit_ratio));
  row("cache_entries", std::to_string(cache.entries));
  row("cache_bytes", std::to_string(cache.bytes));
  row("vm_rss_bytes", std::to_string(obs::ProcessRssBytes()));
  row("vm_hwm_bytes", std::to_string(obs::ProcessPeakRssBytes()));
  row("slow_requests_captured", std::to_string(slow_ring_.total_pushed()));
  body += "</table>\n";

  // Live ingest daemon (ISSUE 10): spool health at a glance. Rendered only
  // when a watcher has ever touched the registry (applied or failed at
  // least one batch, or has a non-empty spool) — a plain static server
  // keeps its dashboard uncluttered.
  obs::Registry& registry = obs::Registry::Global();
  const int64_t live_depth = registry.GetGauge(obs::kIngestSpoolDepth)->Value();
  const uint64_t live_applied =
      registry.GetCounter(obs::kIngestLiveBatchesTotal)->Value();
  const uint64_t live_failed =
      registry.GetCounter(obs::kIngestFailedBatchesTotal)->Value();
  if (live_depth > 0 || live_applied > 0 || live_failed > 0) {
    body += "<h2>live ingest</h2><table>\n";
    row("spool_depth", std::to_string(live_depth));
    row("batches_applied", std::to_string(live_applied));
    row("batches_failed", std::to_string(live_failed));
    row("swap_staleness_ms",
        std::to_string(
            registry.GetGauge(obs::kIngestSwapStalenessMs)->Value()));
    const obs::Histogram::Snapshot apply_snap =
        registry.GetHistogram(obs::kIngestApplyNs, obs::IngestApplyNsBounds())
            ->GetSnapshot();
    row("mean_apply_ms",
        StringPrintf("%.1f", apply_snap.count > 0
                                 ? static_cast<double>(apply_snap.sum) /
                                       static_cast<double>(apply_snap.count) /
                                       1e6
                                 : 0.0));
    body += "</table>\n";
  }

  body +=
      "<h2>latency by endpoint (µs)</h2><table>\n"
      "<tr><th>endpoint</th><th>count</th><th>p50</th><th>p99</th></tr>\n";
  auto latency_row = [&](const char* label, const obs::Histogram* histogram) {
    const obs::Histogram::Snapshot snap = histogram->GetSnapshot();
    body += StringPrintf(
        "<tr><td>%s</td><td>%llu</td><td>%.0f</td><td>%.0f</td></tr>\n",
        label, static_cast<unsigned long long>(snap.count),
        obs::HistogramQuantile(snap, 0.5), obs::HistogramQuantile(snap, 0.99));
  };
  latency_row("all", request_latency_us_);
  latency_row("user (hit)", user_hit_latency_us_);
  latency_row("user (miss)", user_miss_latency_us_);
  latency_row("edge (hit)", edge_hit_latency_us_);
  latency_row("edge (miss)", edge_miss_latency_us_);
  latency_row("batch", batch_latency_us_);
  latency_row("other", other_latency_us_);
  body += "</table>\n";

  body +=
      "<p>more: <a href=\"/statsz\">/statsz</a> "
      "<a href=\"/metricsz\">/metricsz</a> "
      "<a href=\"/debug/slowz\">/debug/slowz</a></p></body></html>\n";

  HttpResponse response;
  response.content_type = "text/html; charset=utf-8";
  response.body = std::move(body);
  return response;
}

HttpResponse ModelServer::HandleSlowz() {
  const std::vector<obs::RequestTraceRecord> records = slow_ring_.Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("threshold_us");
  w.Int(options_.slow_request_us);
  w.Key("capacity");
  w.Int(static_cast<int64_t>(slow_ring_.capacity()));
  w.Key("total_captured");
  w.Int(static_cast<int64_t>(slow_ring_.total_pushed()));
  w.Key("count");
  w.Int(static_cast<int64_t>(records.size()));
  w.Key("requests");
  w.BeginArray();
  for (const obs::RequestTraceRecord& r : records) {
    w.BeginObject();
    w.Key("id");
    w.Int(static_cast<int64_t>(r.id));
    w.Key("method");
    w.String(r.method);
    w.Key("target");
    w.String(r.target);
    w.Key("status");
    w.Int(r.status);
    w.Key("endpoint");
    w.String(r.endpoint);
    w.Key("outcome");
    w.String(r.outcome);
    w.Key("generation");
    w.Int(static_cast<int64_t>(r.generation));
    w.Key("total_us");
    w.Int(r.total_ns / 1000);
    w.Key("stages");
    w.BeginObject();
    for (int s = 0; s < obs::kNumRequestStages; ++s) {
      const auto stage = static_cast<obs::RequestStage>(s);
      w.Key(std::string(obs::RequestStageName(stage)) + "_us");
      w.Int(r.stage_ns[s] / 1000);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  HttpResponse response;
  response.body = std::move(w).Take();
  return response;
}

void ModelServer::WriteAccessLog(const HttpRequest& request,
                                 const obs::RequestTrace& trace) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ts_us");
  w.Int(trace.start_ns() / 1000);
  w.Key("id");
  w.Int(static_cast<int64_t>(trace.id()));
  w.Key("method");
  w.String(request.method);
  w.Key("target");
  w.String(request.target);
  w.Key("status");
  w.Int(trace.status());
  w.Key("endpoint");
  w.String(trace.endpoint());
  w.Key("outcome");
  w.String(trace.outcome());
  w.Key("generation");
  w.Int(static_cast<int64_t>(trace.generation()));
  w.Key("total_us");
  w.Int(trace.total_ns() / 1000);
  for (int s = 0; s < obs::kNumRequestStages; ++s) {
    const auto stage = static_cast<obs::RequestStage>(s);
    w.Key(std::string(obs::RequestStageName(stage)) + "_us");
    w.Int(trace.stage_ns(stage) / 1000);
  }
  w.EndObject();
  const std::string line = std::move(w).Take();
  if (access_log_file_ != nullptr) {
    // One locked fputs+flush per request: the log is line-atomic and
    // survives a crash up to the last completed request.
    std::lock_guard<std::mutex> lock(access_log_mu_);
    std::fputs(line.c_str(), access_log_file_);
    std::fputc('\n', access_log_file_);
    std::fflush(access_log_file_);
  } else {
    MLP_LOG(kInfo) << "access " << line;
  }
}

HttpResponse ModelServer::Handle(const HttpRequest& request) {
  obs::RequestTrace trace;
  HttpResponse response = HandleTraced(request, &trace);
  trace.set_status(response.status);
  FinishRequest(request, response, trace);
  return response;
}

HttpResponse ModelServer::HandleTraced(const HttpRequest& request,
                                       obs::RequestTrace* trace) {
  requests_total_->Add(1);
  return Route(request, trace);
}

void ModelServer::FinishRequest(const HttpRequest& request,
                                const HttpResponse& response,
                                obs::RequestTrace& trace) {
  trace.Finish();  // idempotent; the socket path already finished it
  if (obs::Enabled()) {
    const int64_t total_us = trace.total_ns() / 1000;
    request_latency_us_->Record(total_us);
    for (int s = 0; s < obs::kNumRequestStages; ++s) {
      const int64_t ns = trace.stage_ns(static_cast<obs::RequestStage>(s));
      if (ns > 0) stage_ns_total_[s]->Add(static_cast<uint64_t>(ns));
    }
    const std::string_view endpoint = trace.endpoint();
    if (response.status >= 400) {
      trace.set_outcome("error");
      obs::Counter* errors = other_errors_total_;
      if (endpoint == "user") errors = user_errors_total_;
      else if (endpoint == "edge") errors = edge_errors_total_;
      else if (endpoint == "batch") errors = batch_errors_total_;
      errors->Add(1);
    } else {
      const std::string_view outcome = trace.outcome();
      obs::Histogram* latency = other_latency_us_;
      if (endpoint == "user") {
        latency = outcome == "hit" ? user_hit_latency_us_
                                   : user_miss_latency_us_;
      } else if (endpoint == "edge") {
        latency = outcome == "hit" ? edge_hit_latency_us_
                                   : edge_miss_latency_us_;
      } else if (endpoint == "batch") {
        latency = batch_latency_us_;
      }
      latency->Record(total_us);
    }
    if (options_.slow_request_us > 0 && total_us >= options_.slow_request_us) {
      slow_requests_total_->Add(1);
      slow_ring_.Push(obs::MakeRecord(trace, request.method, request.target));
    }
  }
  if (options_.access_log) WriteAccessLog(request, trace);
}

HttpResponse ModelServer::Route(const HttpRequest& request,
                                obs::RequestTrace* trace) {
  const std::string& target = request.target;
  std::string path = target;
  std::string query;
  size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    path = target.substr(0, qmark);
    query = target.substr(qmark + 1);
  }

  // Pin one (model, generation) snapshot for the whole request: a
  // concurrent SwapReadModel can land at any point from here on and this
  // request still renders consistently from the model it started with.
  const std::shared_ptr<const Published> published = Pin();
  trace->set_generation(published->generation);

  if (path == "/healthz") {
    trace->set_endpoint("health");
    JsonWriter w;
    w.BeginObject();
    w.Key("status");
    w.String("ok");
    w.Key("model");
    w.String("loaded");
    w.Key("users");
    w.Int(published->model->num_users());
    w.EndObject();
    HttpResponse response;
    response.body = std::move(w).Take();
    return response;
  }
  if (path == "/statsz") {
    trace->set_endpoint("stats");
    return HandleStats(*published, query);
  }
  if (path == "/metricsz") {
    trace->set_endpoint("metrics");
    return HandleMetrics(*published);
  }
  if (path == "/statusz") {
    trace->set_endpoint("statusz");
    return HandleStatusz(*published);
  }
  if (path == "/debug/slowz") {
    trace->set_endpoint("slowz");
    return HandleSlowz();
  }

  constexpr char kUserPrefix[] = "/v1/user/";
  constexpr char kEdgePrefix[] = "/v1/edge/";
  if (path.rfind(kUserPrefix, 0) == 0) {
    trace->set_endpoint("user");
    if (request.method != "GET") {
      errors_.fetch_add(1);
      return ErrorResponse(405, "use GET");
    }
    return CachedGet(*published, path, &ModelServer::HandleUser,
                     path.substr(sizeof(kUserPrefix) - 1), trace);
  }
  if (path.rfind(kEdgePrefix, 0) == 0) {
    trace->set_endpoint("edge");
    if (request.method != "GET") {
      errors_.fetch_add(1);
      return ErrorResponse(405, "use GET");
    }
    return CachedGet(*published, path, &ModelServer::HandleEdge,
                     path.substr(sizeof(kEdgePrefix) - 1), trace);
  }
  if (path == "/v1/batch") {
    trace->set_endpoint("batch");
    if (request.method != "POST") {
      errors_.fetch_add(1);
      return ErrorResponse(405, "use POST");
    }
    return HandleBatch(*published->model, request, trace);
  }
  errors_.fetch_add(1);
  return ErrorResponse(404, "unknown endpoint " + path);
}

}  // namespace serve
}  // namespace mlp
