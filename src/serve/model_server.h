#ifndef MLP_SERVE_MODEL_SERVER_H_
#define MLP_SERVE_MODEL_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "engine/thread_pool.h"
#include "serve/http_server.h"
#include "serve/json.h"
#include "serve/read_model.h"
#include "serve/request_batcher.h"
#include "serve/response_cache.h"

namespace mlp {
namespace serve {

/// Server knobs (the `mlpctl serve` flags map 1:1 onto these).
struct ServeOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port.
  int port = 8080;
  /// Worker threads serving connections; a second pool of the same size
  /// fans out large batch requests.
  int threads = 4;
  /// Response-cache budget; 0 disables caching.
  int cache_mb = 16;
  /// Profile entries served per user (ReadModelOptions::top_k).
  int top_k = 10;
};

/// The online query front end over one fitted model (ISSUE 4 / ROADMAP
/// "serving layer"): an immutable ReadModel behind a minimal HTTP/1.1
/// server, with a sharded LRU response cache on the GET endpoints and a
/// RequestBatcher turning POST /v1/batch payloads into vectorized scans.
///
/// Endpoints (all JSON; see src/serve/README.md for shapes):
///   GET  /v1/user/{id}         posterior location profile + home of a user
///   GET  /v1/edge/{src}/{dst}  following-relationship explanation
///   POST /v1/batch             {"users":[...],"edges":[[s,d],...]}
///   GET  /healthz              liveness
///   GET  /statsz               server/model counters (?format=csv for CSV)
///
/// Threading: connections run on `conn_pool_`, batch fan-out on
/// `batch_pool_` (two pools because ThreadPool tasks must not block on
/// their own pool). The read model is immutable after Build, so handlers
/// never lock around model state — only the cache shards synchronize.
class ModelServer {
 public:
  ModelServer(ReadModel model, const ServeOptions& options);

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;
  ~ModelServer();

  /// Binds and starts serving. Returns the bound port via port().
  Status Start();
  int port() const { return http_.port(); }
  bool running() const { return http_.running(); }

  /// Graceful shutdown: stop accepting, finish in-flight requests, drain
  /// both pools. Safe to call from a signal-driven main loop; idempotent.
  void Stop();

  const ReadModel& model() const { return model_; }
  uint64_t requests_served() const { return http_.requests_served(); }
  uint64_t connections_accepted() const {
    return http_.connections_accepted();
  }

  /// The request router — exposed so tests can exercise routing and
  /// rendering without sockets.
  HttpResponse Handle(const HttpRequest& request);

 private:
  HttpResponse HandleUser(const std::string& rest);
  HttpResponse HandleEdge(const std::string& rest);
  HttpResponse HandleBatch(const HttpRequest& request);
  HttpResponse HandleStats(const std::string& query);
  /// GET-endpoint cache wrapper: serves `target` from the cache or renders
  /// via `render` and inserts.
  HttpResponse CachedGet(const std::string& target,
                         HttpResponse (ModelServer::*render)(const std::string&),
                         const std::string& arg);

  ReadModel model_;
  ServeOptions options_;
  ResponseCache cache_;
  engine::ThreadPool conn_pool_;
  engine::ThreadPool batch_pool_;
  RequestBatcher batcher_;
  HttpServer http_;
  std::atomic<bool> stopped_{false};

  std::atomic<uint64_t> user_queries_{0};
  std::atomic<uint64_t> edge_queries_{0};
  std::atomic<uint64_t> batch_queries_{0};
  std::atomic<uint64_t> errors_{0};
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace serve
}  // namespace mlp

#endif  // MLP_SERVE_MODEL_SERVER_H_
