#ifndef MLP_SERVE_MODEL_SERVER_H_
#define MLP_SERVE_MODEL_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/ring_log.h"
#include "serve/http_server.h"
#include "serve/json.h"
#include "serve/read_model.h"
#include "serve/request_batcher.h"
#include "serve/response_cache.h"

namespace mlp {
namespace serve {

/// Server knobs (the `mlpctl serve` flags map 1:1 onto these).
struct ServeOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port.
  int port = 8080;
  /// Worker threads serving connections; a second pool of the same size
  /// fans out large batch requests.
  int threads = 4;
  /// Response-cache budget; 0 disables caching.
  int cache_mb = 16;
  /// Profile entries served per user (ReadModelOptions::top_k).
  int top_k = 10;
  /// Structured JSON access log, one line per request (`mlpctl serve
  /// --access_log[=path]`). With a path the lines are appended to that
  /// file (flushed per line); with the bare flag they go through
  /// MLP_LOG(kInfo).
  bool access_log = false;
  std::string access_log_path;
  /// Requests whose total time crosses this many microseconds are retained
  /// (with their stage breakdown) in the GET /debug/slowz ring; <= 0
  /// disables slow-request capture.
  int64_t slow_request_us = 10000;
  /// How many slow-request traces /debug/slowz retains.
  int slow_ring_capacity = 64;
};

/// The online query front end over one fitted model (ISSUE 4 / ROADMAP
/// "serving layer"): an immutable ReadModel behind a minimal HTTP/1.1
/// server, with a sharded LRU response cache on the GET endpoints and a
/// RequestBatcher turning POST /v1/batch payloads into vectorized scans.
///
/// Endpoints (all JSON; see src/serve/README.md for shapes):
///   GET  /v1/user/{id}         posterior location profile + home of a user
///   GET  /v1/edge/{src}/{dst}  following-relationship explanation
///   POST /v1/batch             {"users":[...],"edges":[[s,d],...]}
///   GET  /healthz              liveness
///   GET  /statsz               server/model counters (?format=csv for CSV)
///   GET  /metricsz             Prometheus text exposition (scrape target)
///   GET  /statusz              human-readable HTML dashboard (QPS,
///                              per-endpoint p50/p99, cache hit ratio,
///                              model generation/staleness, RSS)
///   GET  /debug/slowz          last-N slow requests with stage breakdowns
///
/// Threading: connections run on `conn_pool_`, batch fan-out on
/// `batch_pool_` (two pools because ThreadPool tasks must not block on
/// their own pool). Each ReadModel is immutable after Build; the server
/// publishes the CURRENT one behind an atomic shared_ptr so streaming
/// ingest can swap in a post-delta model while the server runs
/// (SwapReadModel): every request pins one (model, generation) snapshot up
/// front and renders entirely against it, so in-flight queries finish on
/// the model they started with and the swap never blocks the data path.
class ModelServer {
 public:
  ModelServer(ReadModel model, const ServeOptions& options);

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;
  ~ModelServer();

  /// Binds and starts serving. Returns the bound port via port().
  Status Start();
  int port() const { return http_.port(); }
  bool running() const { return http_.running(); }

  /// Graceful shutdown: stop accepting, finish in-flight requests, drain
  /// both pools. Safe to call from a signal-driven main loop; idempotent.
  void Stop();

  /// Atomically publishes `model` as the serving view (streaming ingest:
  /// the post-delta snapshot's ReadModel). Requests that already pinned
  /// the previous model finish on it — the shared_ptr keeps it alive until
  /// the last one returns — while every new request sees the new model.
  /// The response cache keys carry the model generation, so stale cached
  /// bodies can never serve the new generation; the cache is also cleared
  /// to hand the space to the fresh model immediately. Safe to call from
  /// any thread, any number of times.
  void SwapReadModel(ReadModel model);

  /// Pins and returns the currently published model.
  std::shared_ptr<const ReadModel> model() const;
  /// Monotonic publish counter, starting at 1; reported by /statsz as
  /// "model_generation" so operators can observe ingest swaps land.
  uint64_t model_generation() const;

  uint64_t requests_served() const { return http_.requests_served(); }
  uint64_t connections_accepted() const {
    return http_.connections_accepted();
  }

  /// The request router — exposed so tests can exercise routing and
  /// rendering without sockets. Creates a local RequestTrace and runs the
  /// full HandleTraced + FinishRequest pipeline (histograms, access log,
  /// slow ring), minus the socket-level parse/write stages.
  HttpResponse Handle(const HttpRequest& request);

  /// The traced request path: counts the request, routes it, and lets each
  /// layer attribute its stages into `*trace` (never null). The HTTP
  /// server calls this as its handler.
  HttpResponse HandleTraced(const HttpRequest& request,
                            obs::RequestTrace* trace);
  /// Completion hook: finishes the trace (idempotent), records the
  /// per-endpoint/per-outcome latency histograms, stage counters and error
  /// counters, captures slow requests into the /debug/slowz ring, and
  /// emits the access-log line.
  void FinishRequest(const HttpRequest& request, const HttpResponse& response,
                     obs::RequestTrace& trace);

 private:
  /// One published (model, generation) pair — swapped as a unit so a
  /// request can never pair the new model with the old generation's cache
  /// namespace (or vice versa).
  struct Published {
    std::shared_ptr<const ReadModel> model;
    uint64_t generation = 1;
  };

  std::shared_ptr<const Published> Pin() const;

  HttpResponse HandleUser(const ReadModel& model, const std::string& rest);
  HttpResponse HandleEdge(const ReadModel& model, const std::string& rest);
  HttpResponse HandleBatch(const ReadModel& model, const HttpRequest& request,
                           obs::RequestTrace* trace);
  HttpResponse HandleStats(const Published& published,
                           const std::string& query);
  HttpResponse HandleMetrics(const Published& published);
  HttpResponse HandleStatusz(const Published& published);
  HttpResponse HandleSlowz();
  /// The actual router; HandleTraced() wraps it with request counting and
  /// labels the trace with endpoint/generation.
  HttpResponse Route(const HttpRequest& request, obs::RequestTrace* trace);
  /// GET-endpoint cache wrapper: serves `target` from the cache (keyed
  /// under the pinned generation) or renders via `render` and inserts.
  /// Attributes cache probe time to the cache_lookup stage and render time
  /// to the render stage, and labels the trace outcome hit/miss.
  HttpResponse CachedGet(
      const Published& published, const std::string& target,
      HttpResponse (ModelServer::*render)(const ReadModel&,
                                          const std::string&),
      const std::string& arg, obs::RequestTrace* trace);
  /// Appends one structured JSON access-log line for a finished request.
  void WriteAccessLog(const HttpRequest& request,
                      const obs::RequestTrace& trace);
  /// Seconds since the last SwapReadModel (or Start, before any swap).
  double SecondsSinceLastSwap() const;

  /// Swapped atomically (std::atomic_load/atomic_store on shared_ptr).
  std::shared_ptr<const Published> published_;
  /// Serializes SwapReadModel calls (unique, monotonic generations);
  /// never touched on the request path.
  std::mutex swap_mu_;
  ServeOptions options_;
  ResponseCache cache_;
  engine::ThreadPool conn_pool_;
  engine::ThreadPool batch_pool_;
  RequestBatcher batcher_;
  HttpServer http_;
  std::atomic<bool> stopped_{false};

  std::atomic<uint64_t> user_queries_{0};
  std::atomic<uint64_t> edge_queries_{0};
  std::atomic<uint64_t> batch_queries_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> swaps_{0};
  std::chrono::steady_clock::time_point start_time_;
  /// steady_clock ns of the last model publish (Start or SwapReadModel) —
  /// deliberately not obs::NowNs(), so /statusz staleness survives
  /// obs::SetEnabled(false).
  std::atomic<int64_t> last_swap_ns_{0};

  /// Slow-request retention (GET /debug/slowz); only requests crossing
  /// options_.slow_request_us ever touch it.
  obs::RingLog slow_ring_;
  /// Access log sink when options_.access_log names a path; lines are
  /// serialized by access_log_mu_ and flushed per line.
  std::FILE* access_log_file_ = nullptr;
  std::mutex access_log_mu_;

  // Registry-owned handles (process-lifetime; see src/obs/README.md).
  obs::Counter* requests_total_;
  obs::Histogram* request_latency_us_;
  // Per-endpoint, per-outcome latency histograms (error responses are
  // counted, not histogrammed).
  obs::Histogram* user_hit_latency_us_;
  obs::Histogram* user_miss_latency_us_;
  obs::Histogram* edge_hit_latency_us_;
  obs::Histogram* edge_miss_latency_us_;
  obs::Histogram* batch_latency_us_;
  obs::Histogram* other_latency_us_;
  obs::Counter* user_errors_total_;
  obs::Counter* edge_errors_total_;
  obs::Counter* batch_errors_total_;
  obs::Counter* other_errors_total_;
  obs::Counter* slow_requests_total_;
  // serve_stage_*_ns, indexed by obs::RequestStage.
  obs::Counter* stage_ns_total_[obs::kNumRequestStages];
};

}  // namespace serve
}  // namespace mlp

#endif  // MLP_SERVE_MODEL_SERVER_H_
