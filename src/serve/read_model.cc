#include "serve/read_model.h"

#include <algorithm>
#include <utility>

#include "core/priors.h"
#include "serve/json.h"

namespace mlp {
namespace serve {

namespace {

uint64_t EdgeKey(graph::UserId src, graph::UserId dst) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
         static_cast<uint32_t>(dst);
}

void WriteCity(const ReadModel& model, const char* key, geo::CityId id,
               JsonWriter* w) {
  w->Key(key);
  if (id == geo::kInvalidCity) {
    w->Null();
    return;
  }
  w->BeginObject();
  w->Key("city_id");
  w->Int(id);
  w->Key("name");
  w->String(model.CityName(id));
  w->EndObject();
}

void WriteUserJson(const ReadModel& model, const UserAnswer& answer,
                   JsonWriter* w) {
  w->BeginObject();
  w->Key("user");
  w->Int(answer.user);
  WriteCity(model, "home", answer.home, w);
  w->Key("profile");
  w->BeginArray();
  for (int i = 0; i < answer.entry_count; ++i) {
    const ProfileEntry& entry = answer.entries[i];
    w->BeginObject();
    w->Key("city_id");
    w->Int(entry.city);
    w->Key("name");
    w->String(model.CityName(entry.city));
    w->Key("p");
    w->Double(entry.prob);
    w->EndObject();
  }
  w->EndArray();
  w->Key("friends");
  w->Int(answer.num_friends);
  w->Key("followers");
  w->Int(answer.num_followers);
  w->Key("tweets");
  w->Int(answer.num_tweets);
  w->EndObject();
}

void WriteEdgeJson(const ReadModel& model, const EdgeAnswer& answer,
                   JsonWriter* w) {
  w->BeginObject();
  w->Key("src");
  w->Int(answer.src);
  w->Key("dst");
  w->Int(answer.dst);
  w->Key("edge");
  w->Int(answer.edge);
  w->Key("explanation");
  w->BeginObject();
  WriteCity(model, "x", answer.x, w);
  WriteCity(model, "y", answer.y, w);
  w->Key("noise_prob");
  w->Double(answer.noise_prob);
  w->Key("location_based_prob");
  w->Double(1.0 - answer.noise_prob);
  w->Key("x_support");
  w->Double(answer.x_support);
  w->Key("y_support");
  w->Double(answer.y_support);
  w->Key("distance_miles");
  w->Double(answer.distance_miles);
  w->EndObject();
  w->EndObject();
}

}  // namespace

Result<ReadModel> ReadModel::Build(const io::ModelSnapshot& snapshot,
                                   const graph::SocialGraph& graph,
                                   const geo::Gazetteer* gazetteer,
                                   const ReadModelOptions& options) {
  const core::MlpResult& result = snapshot.result;
  const int num_users = graph.num_users();
  if (static_cast<int>(result.home.size()) != num_users ||
      static_cast<int>(result.profiles.size()) != num_users) {
    return Status::InvalidArgument(
        "snapshot result covers " + std::to_string(result.home.size()) +
        " users but the dataset has " + std::to_string(num_users) +
        " — wrong data directory?");
  }
  if (static_cast<int>(result.following.size()) != graph.num_following()) {
    return Status::InvalidArgument(
        "snapshot explains " + std::to_string(result.following.size()) +
        " following relationships but the dataset has " +
        std::to_string(graph.num_following()));
  }
  if (snapshot.phi_offset.size() != static_cast<size_t>(num_users) + 1 ||
      snapshot.candidates.size() !=
          static_cast<size_t>(snapshot.phi_offset.back())) {
    return Status::InvalidArgument(
        "snapshot candidate layout is inconsistent with its user count");
  }
  const core::SamplerState& sampler = snapshot.checkpoint.sampler;
  const bool have_arena =
      sampler.phi.size() == snapshot.candidates.size() &&
      sampler.phi_total.size() == static_cast<size_t>(num_users);

  ReadModel model;
  model.gazetteer_ = gazetteer;
  model.alpha_ = result.alpha;
  model.beta_ = result.beta;
  model.fit_complete_ = snapshot.checkpoint.complete;
  model.active_slots_ = snapshot.phi_offset.back();
  model.layout_version_ = snapshot.checkpoint.activation.layout_version;

  // ---- flat top-K profiles (posteriors copied verbatim) ----
  model.home_ = result.home;
  model.profile_offset_.reserve(num_users + 1);
  model.profile_offset_.push_back(0);
  for (graph::UserId u = 0; u < num_users; ++u) {
    const auto& entries = result.profiles[u].entries();
    int keep = static_cast<int>(entries.size());
    if (options.top_k > 0) keep = std::min(keep, options.top_k);
    for (int i = 0; i < keep; ++i) {
      model.entries_.push_back({entries[i].first, entries[i].second});
    }
    model.profile_offset_.push_back(
        static_cast<int64_t>(model.entries_.size()));
  }

  // ---- per-user degrees ----
  model.num_friends_.resize(num_users);
  model.num_followers_.resize(num_users);
  model.num_tweets_.resize(num_users);
  for (graph::UserId u = 0; u < num_users; ++u) {
    model.num_friends_[u] = static_cast<int32_t>(graph.OutEdges(u).size());
    model.num_followers_[u] = static_cast<int32_t>(graph.InEdges(u).size());
    model.num_tweets_[u] = static_cast<int32_t>(graph.TweetEdges(u).size());
  }

  // ---- per-edge explanations + arena support scores ----
  const int num_edges = graph.num_following();
  model.edge_src_.resize(num_edges);
  model.edge_dst_.resize(num_edges);
  model.edge_x_.resize(num_edges);
  model.edge_y_.resize(num_edges);
  model.edge_noise_.resize(num_edges);
  model.edge_x_support_.assign(num_edges, 0.0);
  model.edge_y_support_.assign(num_edges, 0.0);
  model.edge_distance_.assign(num_edges, 0.0);
  model.edge_index_.reserve(num_edges);

  // ϕ_u[city] / ϕ_u total against the stored (compacted) candidate layout:
  // the fraction of u's location-based relationship assignments sitting on
  // `city` in the final chain state — the sufficient-statistics view of how
  // much evidence backs an explanation endpoint.
  auto support = [&](graph::UserId u, geo::CityId city) -> double {
    if (!have_arena || city == geo::kInvalidCity) return 0.0;
    const int64_t begin = snapshot.phi_offset[u];
    const int count = static_cast<int>(snapshot.phi_offset[u + 1] - begin);
    const int slot =
        core::FindCandidateSlot(snapshot.candidates.data() + begin, count, city);
    if (slot < 0) return 0.0;
    const double total = sampler.phi_total[u];
    return total > 0.0 ? sampler.phi[begin + slot] / total : 0.0;
  };

  for (graph::EdgeId s = 0; s < num_edges; ++s) {
    const graph::FollowingEdge& edge = graph.following(s);
    const core::FollowingExplanation& ex = result.following[s];
    model.edge_src_[s] = edge.follower;
    model.edge_dst_[s] = edge.friend_user;
    model.edge_x_[s] = ex.x;
    model.edge_y_[s] = ex.y;
    model.edge_noise_[s] = ex.noise_prob;
    model.edge_x_support_[s] = support(edge.follower, ex.x);
    model.edge_y_support_[s] = support(edge.friend_user, ex.y);
    if (gazetteer != nullptr && ex.x != geo::kInvalidCity &&
        ex.y != geo::kInvalidCity) {
      model.edge_distance_[s] = gazetteer->DistanceMiles(ex.x, ex.y);
    }
    model.edge_index_.emplace(EdgeKey(edge.follower, edge.friend_user), s);
  }

  // ---- pre-rendered JSON fragments ----
  // Rendering is hoisted out of the request path entirely: the model is
  // immutable, so every answer body is known at build time. Point queries
  // become substring copies and batch responses a concatenation scan.
  model.user_json_offset_.reserve(num_users + 1);
  model.user_json_offset_.push_back(0);
  for (graph::UserId u = 0; u < num_users; ++u) {
    UserAnswer answer;
    model.GetUser(u, &answer);
    JsonWriter w;
    WriteUserJson(model, answer, &w);
    model.user_json_ += w.str();
    model.user_json_offset_.push_back(
        static_cast<int64_t>(model.user_json_.size()));
  }
  model.edge_json_offset_.reserve(num_edges + 1);
  model.edge_json_offset_.push_back(0);
  for (graph::EdgeId s = 0; s < num_edges; ++s) {
    EdgeAnswer answer;
    model.GetEdgeById(s, &answer);
    JsonWriter w;
    WriteEdgeJson(model, answer, &w);
    model.edge_json_ += w.str();
    model.edge_json_offset_.push_back(
        static_cast<int64_t>(model.edge_json_.size()));
  }

  return model;
}

bool ReadModel::GetUser(graph::UserId u, UserAnswer* out) const {
  if (u < 0 || u >= num_users()) return false;
  out->user = u;
  out->home = home_[u];
  out->entries = entries_.data() + profile_offset_[u];
  out->entry_count = static_cast<int>(profile_offset_[u + 1] - profile_offset_[u]);
  out->num_friends = num_friends_[u];
  out->num_followers = num_followers_[u];
  out->num_tweets = num_tweets_[u];
  return true;
}

graph::EdgeId ReadModel::FindEdge(graph::UserId src, graph::UserId dst) const {
  auto it = edge_index_.find(EdgeKey(src, dst));
  return it == edge_index_.end() ? -1 : it->second;
}

bool ReadModel::GetEdgeById(graph::EdgeId s, EdgeAnswer* out) const {
  if (s < 0 || s >= num_edges()) return false;
  out->src = edge_src_[s];
  out->dst = edge_dst_[s];
  out->edge = s;
  out->x = edge_x_[s];
  out->y = edge_y_[s];
  out->noise_prob = edge_noise_[s];
  out->x_support = edge_x_support_[s];
  out->y_support = edge_y_support_[s];
  out->distance_miles = edge_distance_[s];
  return true;
}

bool ReadModel::GetEdge(graph::UserId src, graph::UserId dst,
                        EdgeAnswer* out) const {
  return GetEdgeById(FindEdge(src, dst), out);
}

std::string ReadModel::CityName(geo::CityId id) const {
  if (gazetteer_ == nullptr || id < 0 || id >= gazetteer_->size()) return "";
  return gazetteer_->FullName(id);
}

double ReadModel::mean_profile_entries() const {
  return home_.empty() ? 0.0
                       : static_cast<double>(entries_.size()) / home_.size();
}

}  // namespace serve
}  // namespace mlp
