#include "serve/read_model.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/hash.h"
#include "core/priors.h"
#include "core/suff_stats.h"
#include "serve/json.h"

namespace mlp {
namespace serve {

namespace {

uint64_t EdgeKey(graph::UserId src, graph::UserId dst) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
         static_cast<uint32_t>(dst);
}

// ---- serve section (out-of-core backing) ----
// Appended after the snapshot's checksummed core payload; byte layout in
// src/io/README.md. Everything the HTTP surface needs at query time lives
// in 64-byte-aligned arrays so the mapper can point straight into the
// file: the two JSON blobs, their CSR offsets, and a sorted key table
// replacing the hash index.
constexpr char kServeMagic[8] = {'M', 'L', 'P', 'S', 'E', 'R', 'V', 'E'};
constexpr uint32_t kServeEndianMarker = 0x01020304u;
constexpr uint64_t kServeAlign = 64;
// magic + version + endian + header checksum, then 18 8-byte fields.
constexpr uint64_t kServeChecksumStart = 24;
constexpr uint64_t kServeHeaderBytes = kServeChecksumStart + 18 * 8;

// Field slots (8 bytes each) after the checksum, in file order.
enum ServeField : int {
  kFieldNumUsers = 0,
  kFieldNumEdges,
  kFieldNumEdgeKeys,
  kFieldTotalProfileEntries,
  kFieldAlpha,
  kFieldBeta,
  kFieldLayoutVersion,
  kFieldActiveSlots,
  kFieldFitComplete,
  kFieldFileSize,
  kFieldUserOffsetsOff,
  kFieldEdgeOffsetsOff,
  kFieldEdgeKeysOff,
  kFieldEdgeIdsOff,
  kFieldUserJsonOff,
  kFieldUserJsonSize,
  kFieldEdgeJsonOff,
  kFieldEdgeJsonSize,
};

uint64_t AlignUp(uint64_t v, uint64_t a) { return (v + a - 1) / a * a; }

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

double ReadF64(const uint8_t* p) {
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void WriteCity(const ReadModel& model, const char* key, geo::CityId id,
               JsonWriter* w) {
  w->Key(key);
  if (id == geo::kInvalidCity) {
    w->Null();
    return;
  }
  w->BeginObject();
  w->Key("city_id");
  w->Int(id);
  w->Key("name");
  w->String(model.CityName(id));
  w->EndObject();
}

void WriteUserJson(const ReadModel& model, const UserAnswer& answer,
                   JsonWriter* w) {
  w->BeginObject();
  w->Key("user");
  w->Int(answer.user);
  WriteCity(model, "home", answer.home, w);
  w->Key("profile");
  w->BeginArray();
  for (int i = 0; i < answer.entry_count; ++i) {
    const ProfileEntry& entry = answer.entries[i];
    w->BeginObject();
    w->Key("city_id");
    w->Int(entry.city);
    w->Key("name");
    w->String(model.CityName(entry.city));
    w->Key("p");
    w->Double(entry.prob);
    w->EndObject();
  }
  w->EndArray();
  w->Key("friends");
  w->Int(answer.num_friends);
  w->Key("followers");
  w->Int(answer.num_followers);
  w->Key("tweets");
  w->Int(answer.num_tweets);
  w->EndObject();
}

void WriteEdgeJson(const ReadModel& model, const EdgeAnswer& answer,
                   JsonWriter* w) {
  w->BeginObject();
  w->Key("src");
  w->Int(answer.src);
  w->Key("dst");
  w->Int(answer.dst);
  w->Key("edge");
  w->Int(answer.edge);
  w->Key("explanation");
  w->BeginObject();
  WriteCity(model, "x", answer.x, w);
  WriteCity(model, "y", answer.y, w);
  w->Key("noise_prob");
  w->Double(answer.noise_prob);
  w->Key("location_based_prob");
  w->Double(1.0 - answer.noise_prob);
  w->Key("x_support");
  w->Double(answer.x_support);
  w->Key("y_support");
  w->Double(answer.y_support);
  w->Key("distance_miles");
  w->Double(answer.distance_miles);
  w->EndObject();
  w->EndObject();
}

}  // namespace

Result<ReadModel> ReadModel::Build(const io::ModelSnapshot& snapshot,
                                   const graph::SocialGraph& graph,
                                   const geo::Gazetteer* gazetteer,
                                   const ReadModelOptions& options) {
  const core::MlpResult& result = snapshot.result;
  const int num_users = graph.num_users();
  if (static_cast<int>(result.home.size()) != num_users ||
      static_cast<int>(result.profiles.size()) != num_users) {
    return Status::InvalidArgument(
        "snapshot result covers " + std::to_string(result.home.size()) +
        " users but the dataset has " + std::to_string(num_users) +
        " — wrong data directory?");
  }
  if (static_cast<int>(result.following.size()) != graph.num_following()) {
    return Status::InvalidArgument(
        "snapshot explains " + std::to_string(result.following.size()) +
        " following relationships but the dataset has " +
        std::to_string(graph.num_following()));
  }
  if (snapshot.phi_offset.size() != static_cast<size_t>(num_users) + 1 ||
      snapshot.candidates.size() !=
          static_cast<size_t>(snapshot.phi_offset.back())) {
    return Status::InvalidArgument(
        "snapshot candidate layout is inconsistent with its user count");
  }
  const core::SamplerState& sampler = snapshot.checkpoint.sampler;
  const bool have_arena =
      sampler.phi.size() == snapshot.candidates.size() &&
      sampler.phi_total.size() == static_cast<size_t>(num_users);

  ReadModel model;
  model.gazetteer_ = gazetteer;
  model.alpha_ = result.alpha;
  model.beta_ = result.beta;
  model.fit_complete_ = snapshot.checkpoint.complete;
  model.active_slots_ = snapshot.phi_offset.back();
  model.layout_version_ = snapshot.checkpoint.activation.layout_version;

  // ---- flat top-K profiles (posteriors copied verbatim) ----
  model.home_ = result.home;
  model.profile_offset_.reserve(num_users + 1);
  model.profile_offset_.push_back(0);
  for (graph::UserId u = 0; u < num_users; ++u) {
    const auto& entries = result.profiles[u].entries();
    int keep = static_cast<int>(entries.size());
    if (options.top_k > 0) keep = std::min(keep, options.top_k);
    for (int i = 0; i < keep; ++i) {
      model.entries_.push_back({entries[i].first, entries[i].second});
    }
    model.profile_offset_.push_back(
        static_cast<int64_t>(model.entries_.size()));
  }
  model.total_profile_entries_ = static_cast<int64_t>(model.entries_.size());

  // ---- per-user degrees ----
  model.num_friends_.resize(num_users);
  model.num_followers_.resize(num_users);
  model.num_tweets_.resize(num_users);
  for (graph::UserId u = 0; u < num_users; ++u) {
    model.num_friends_[u] = static_cast<int32_t>(graph.OutEdges(u).size());
    model.num_followers_[u] = static_cast<int32_t>(graph.InEdges(u).size());
    model.num_tweets_[u] = static_cast<int32_t>(graph.TweetEdges(u).size());
  }

  // ---- per-edge explanations + arena support scores ----
  const int num_edges = graph.num_following();
  model.edge_src_.resize(num_edges);
  model.edge_dst_.resize(num_edges);
  model.edge_x_.resize(num_edges);
  model.edge_y_.resize(num_edges);
  model.edge_noise_.resize(num_edges);
  model.edge_x_support_.assign(num_edges, 0.0);
  model.edge_y_support_.assign(num_edges, 0.0);
  model.edge_distance_.assign(num_edges, 0.0);
  model.edge_index_.reserve(num_edges);

  // ϕ_u[city] / ϕ_u total against the stored (compacted) candidate layout:
  // the fraction of u's location-based relationship assignments sitting on
  // `city` in the final chain state — the sufficient-statistics view of how
  // much evidence backs an explanation endpoint.
  auto support = [&](graph::UserId u, geo::CityId city) -> double {
    if (!have_arena || city == geo::kInvalidCity) return 0.0;
    const int64_t begin = snapshot.phi_offset[u];
    const int count = static_cast<int>(snapshot.phi_offset[u + 1] - begin);
    const int slot =
        core::FindCandidateSlot(snapshot.candidates.data() + begin, count, city);
    if (slot < 0) return 0.0;
    const double total = sampler.phi_total[u];
    return total > 0.0 ? sampler.phi[begin + slot] / total : 0.0;
  };

  for (graph::EdgeId s = 0; s < num_edges; ++s) {
    const graph::FollowingEdge& edge = graph.following(s);
    const core::FollowingExplanation& ex = result.following[s];
    model.edge_src_[s] = edge.follower;
    model.edge_dst_[s] = edge.friend_user;
    model.edge_x_[s] = ex.x;
    model.edge_y_[s] = ex.y;
    model.edge_noise_[s] = ex.noise_prob;
    model.edge_x_support_[s] = support(edge.follower, ex.x);
    model.edge_y_support_[s] = support(edge.friend_user, ex.y);
    if (gazetteer != nullptr && ex.x != geo::kInvalidCity &&
        ex.y != geo::kInvalidCity) {
      model.edge_distance_[s] = gazetteer->DistanceMiles(ex.x, ex.y);
    }
    model.edge_index_.emplace(EdgeKey(edge.follower, edge.friend_user), s);
  }

  // ---- pre-rendered JSON fragments ----
  // Rendering is hoisted out of the request path entirely: the model is
  // immutable, so every answer body is known at build time. Point queries
  // become substring copies and batch responses a concatenation scan.
  model.user_json_offset_.reserve(num_users + 1);
  model.user_json_offset_.push_back(0);
  for (graph::UserId u = 0; u < num_users; ++u) {
    UserAnswer answer;
    model.GetUser(u, &answer);
    JsonWriter w;
    WriteUserJson(model, answer, &w);
    model.user_json_ += w.str();
    model.user_json_offset_.push_back(
        static_cast<int64_t>(model.user_json_.size()));
  }
  model.edge_json_offset_.reserve(num_edges + 1);
  model.edge_json_offset_.push_back(0);
  for (graph::EdgeId s = 0; s < num_edges; ++s) {
    EdgeAnswer answer;
    model.GetEdgeById(s, &answer);
    JsonWriter w;
    WriteEdgeJson(model, answer, &w);
    model.edge_json_ += w.str();
    model.edge_json_offset_.push_back(
        static_cast<int64_t>(model.edge_json_.size()));
  }

  return model;
}

bool ReadModel::GetUser(graph::UserId u, UserAnswer* out) const {
  if (mmap_backed_ || u < 0 || u >= num_users()) return false;
  out->user = u;
  out->home = home_[u];
  out->entries = entries_.data() + profile_offset_[u];
  out->entry_count = static_cast<int>(profile_offset_[u + 1] - profile_offset_[u]);
  out->num_friends = num_friends_[u];
  out->num_followers = num_followers_[u];
  out->num_tweets = num_tweets_[u];
  return true;
}

graph::EdgeId ReadModel::FindEdge(graph::UserId src, graph::UserId dst) const {
  const uint64_t key = EdgeKey(src, dst);
  if (mmap_backed_) {
    const uint64_t* end = map_edge_keys_ + map_num_edge_keys_;
    const uint64_t* it = std::lower_bound(map_edge_keys_, end, key);
    if (it == end || *it != key) return -1;
    return static_cast<graph::EdgeId>(map_edge_ids_[it - map_edge_keys_]);
  }
  auto it = edge_index_.find(key);
  return it == edge_index_.end() ? -1 : it->second;
}

bool ReadModel::GetEdgeById(graph::EdgeId s, EdgeAnswer* out) const {
  if (mmap_backed_ || s < 0 || s >= num_edges()) return false;
  out->src = edge_src_[s];
  out->dst = edge_dst_[s];
  out->edge = s;
  out->x = edge_x_[s];
  out->y = edge_y_[s];
  out->noise_prob = edge_noise_[s];
  out->x_support = edge_x_support_[s];
  out->y_support = edge_y_support_[s];
  out->distance_miles = edge_distance_[s];
  return true;
}

bool ReadModel::GetEdge(graph::UserId src, graph::UserId dst,
                        EdgeAnswer* out) const {
  return GetEdgeById(FindEdge(src, dst), out);
}

std::string ReadModel::CityName(geo::CityId id) const {
  if (gazetteer_ == nullptr || id < 0 || id >= gazetteer_->size()) return "";
  return gazetteer_->FullName(id);
}

double ReadModel::mean_profile_entries() const {
  const int n = num_users();
  return n == 0 ? 0.0 : static_cast<double>(total_profile_entries_) / n;
}

bool ReadModel::ExampleEdge(graph::UserId* src, graph::UserId* dst) const {
  if (mmap_backed_) {
    if (map_num_edge_keys_ == 0) return false;
    const uint64_t key = map_edge_keys_[0];
    *src = static_cast<graph::UserId>(key >> 32);
    *dst = static_cast<graph::UserId>(static_cast<uint32_t>(key));
    return true;
  }
  if (edge_src_.empty()) return false;
  *src = edge_src_[0];
  *dst = edge_dst_[0];
  return true;
}

int64_t ReadModel::AccountedBytes() const {
  using core::VectorBytes;
  // Hash index: bucket array plus one heap node per entry (key/value pair
  // + libstdc++'s next pointer and cached hash).
  const int64_t index_bytes =
      static_cast<int64_t>(edge_index_.bucket_count()) * sizeof(void*) +
      static_cast<int64_t>(edge_index_.size()) *
          (sizeof(std::pair<uint64_t, graph::EdgeId>) + 2 * sizeof(void*));
  return VectorBytes(profile_offset_) + VectorBytes(entries_) +
         VectorBytes(home_) + VectorBytes(num_friends_) +
         VectorBytes(num_followers_) + VectorBytes(num_tweets_) +
         VectorBytes(edge_src_) + VectorBytes(edge_dst_) +
         VectorBytes(edge_x_) + VectorBytes(edge_y_) +
         VectorBytes(edge_noise_) + VectorBytes(edge_x_support_) +
         VectorBytes(edge_y_support_) + VectorBytes(edge_distance_) +
         index_bytes + static_cast<int64_t>(user_json_.capacity()) +
         static_cast<int64_t>(user_json_offset_.capacity() * sizeof(int64_t)) +
         static_cast<int64_t>(edge_json_.capacity()) +
         static_cast<int64_t>(edge_json_offset_.capacity() * sizeof(int64_t));
}

Status ReadModel::AppendServeSection(const std::string& snapshot_path) const {
  if (mmap_backed_) {
    return Status::FailedPrecondition(
        "cannot re-pack from an mmap-backed model — build from the snapshot");
  }
  // Validate the target is a well-formed snapshot and find where its
  // checksummed core payload ends; everything after that is ours.
  uint64_t core_end = 0;
  {
    std::ifstream in(snapshot_path, std::ios::binary | std::ios::ate);
    if (!in.is_open()) {
      return Status::NotFound("cannot open snapshot " + snapshot_path);
    }
    const uint64_t file_size = static_cast<uint64_t>(in.tellg());
    in.seekg(0);
    uint8_t header[io::kModelSnapshotHeaderSize] = {};
    in.read(reinterpret_cast<char*>(header), sizeof(header));
    if (!in.good()) {
      return Status::IOError("cannot read snapshot header: " + snapshot_path);
    }
    Result<io::SnapshotHeaderInfo> info =
        io::ParseSnapshotHeader(header, file_size);
    if (!info.ok()) {
      return Status(info.status().code(),
                    info.status().message() + ": " + snapshot_path);
    }
    core_end = info->core_end;
  }
  // Drop any existing section so re-packing is idempotent.
  std::error_code ec;
  std::filesystem::resize_file(snapshot_path, core_end, ec);
  if (ec) {
    return Status::IOError("cannot truncate " + snapshot_path + ": " +
                           ec.message());
  }

  // Sorted key table: binary search in the mapped model replaces the hash
  // index. Duplicate (src,dst) edges resolve to the same id the hash map
  // holds (the first inserted), so lookups agree between backings.
  std::vector<uint64_t> keys;
  keys.reserve(edge_index_.size());
  for (const auto& [key, id] : edge_index_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  std::vector<int64_t> ids;
  ids.reserve(keys.size());
  for (uint64_t key : keys) ids.push_back(edge_index_.at(key));

  const uint64_t section_start = AlignUp(core_end, kServeAlign);
  uint64_t cursor = section_start + kServeHeaderBytes;
  auto place = [&cursor](uint64_t bytes) {
    cursor = AlignUp(cursor, kServeAlign);
    const uint64_t offset = cursor;
    cursor += bytes;
    return offset;
  };
  const uint64_t num_users_u64 = static_cast<uint64_t>(num_users());
  const uint64_t num_edges_u64 = static_cast<uint64_t>(num_edges());
  const uint64_t user_offsets_off = place((num_users_u64 + 1) * 8);
  const uint64_t edge_offsets_off = place((num_edges_u64 + 1) * 8);
  const uint64_t edge_keys_off = place(keys.size() * 8);
  const uint64_t edge_ids_off = place(ids.size() * 8);
  const uint64_t user_json_off = place(user_json_.size());
  const uint64_t edge_json_off = place(edge_json_.size());
  const uint64_t file_size = cursor;

  uint64_t fields[18] = {};
  fields[kFieldNumUsers] = num_users_u64;
  fields[kFieldNumEdges] = num_edges_u64;
  fields[kFieldNumEdgeKeys] = keys.size();
  fields[kFieldTotalProfileEntries] =
      static_cast<uint64_t>(total_profile_entries_);
  std::memcpy(&fields[kFieldAlpha], &alpha_, sizeof(double));
  std::memcpy(&fields[kFieldBeta], &beta_, sizeof(double));
  fields[kFieldLayoutVersion] = layout_version_;
  fields[kFieldActiveSlots] = static_cast<uint64_t>(active_slots_);
  fields[kFieldFitComplete] = fit_complete_ ? 1 : 0;
  fields[kFieldFileSize] = file_size;
  fields[kFieldUserOffsetsOff] = user_offsets_off;
  fields[kFieldEdgeOffsetsOff] = edge_offsets_off;
  fields[kFieldEdgeKeysOff] = edge_keys_off;
  fields[kFieldEdgeIdsOff] = edge_ids_off;
  fields[kFieldUserJsonOff] = user_json_off;
  fields[kFieldUserJsonSize] = user_json_.size();
  fields[kFieldEdgeJsonOff] = edge_json_off;
  fields[kFieldEdgeJsonSize] = edge_json_.size();

  Fnv1a64 checksum;
  checksum.Bytes(fields, sizeof(fields));

  std::string header;
  header.append(kServeMagic, sizeof(kServeMagic));
  const uint32_t version = kServeSectionVersion;
  header.append(reinterpret_cast<const char*>(&version), sizeof(version));
  header.append(reinterpret_cast<const char*>(&kServeEndianMarker),
                sizeof(kServeEndianMarker));
  header.append(reinterpret_cast<const char*>(&checksum.hash),
                sizeof(checksum.hash));
  header.append(reinterpret_cast<const char*>(fields), sizeof(fields));

  std::ofstream out(snapshot_path,
                    std::ios::binary | std::ios::in | std::ios::out);
  if (!out.is_open()) {
    return Status::IOError("cannot open " + snapshot_path + " for packing");
  }
  out.seekp(static_cast<std::streamoff>(core_end));
  uint64_t written = core_end;
  auto pad_to = [&out, &written](uint64_t offset) {
    static const char zeros[kServeAlign] = {};
    while (written < offset) {
      const uint64_t n = std::min<uint64_t>(offset - written, sizeof(zeros));
      out.write(zeros, static_cast<std::streamsize>(n));
      written += n;
    }
  };
  auto write_bytes = [&out, &written](const void* p, uint64_t n) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    written += n;
  };
  pad_to(section_start);
  write_bytes(header.data(), header.size());
  pad_to(user_offsets_off);
  write_bytes(user_json_offset_.data(), (num_users_u64 + 1) * 8);
  pad_to(edge_offsets_off);
  write_bytes(edge_json_offset_.data(), (num_edges_u64 + 1) * 8);
  pad_to(edge_keys_off);
  write_bytes(keys.data(), keys.size() * 8);
  pad_to(edge_ids_off);
  write_bytes(ids.data(), ids.size() * 8);
  pad_to(user_json_off);
  write_bytes(user_json_.data(), user_json_.size());
  pad_to(edge_json_off);
  write_bytes(edge_json_.data(), edge_json_.size());
  out.flush();
  if (!out.good() || written != file_size) {
    return Status::IOError("short write packing serve section into " +
                           snapshot_path);
  }
  return Status::OK();
}

Result<ReadModel> ReadModel::MapServeSection(const std::string& snapshot_path,
                                             const geo::Gazetteer* gazetteer) {
  Result<io::MmapFile> mapped = io::MmapFile::Open(snapshot_path);
  if (!mapped.ok()) return mapped.status();
  const uint8_t* data = mapped->data();
  const uint64_t size = mapped->size();
  Result<io::SnapshotHeaderInfo> core = io::ParseSnapshotHeader(data, size);
  if (!core.ok()) {
    return Status(core.status().code(),
                  core.status().message() + ": " + snapshot_path);
  }
  const uint64_t section_start = AlignUp(core->core_end, kServeAlign);
  if (size < section_start + kServeHeaderBytes ||
      std::memcmp(data + section_start, kServeMagic, sizeof(kServeMagic)) !=
          0) {
    return Status::NotFound("snapshot has no serve section (run `mlpctl "
                            "pack` to append one): " +
                            snapshot_path);
  }
  const uint8_t* section = data + section_start;
  uint32_t version;
  std::memcpy(&version, section + 8, sizeof(version));
  if (version != kServeSectionVersion) {
    return Status::InvalidArgument(
        "serve section version " + std::to_string(version) +
        " unsupported (this build serves v" +
        std::to_string(kServeSectionVersion) +
        "; re-run `mlpctl pack`): " + snapshot_path);
  }
  uint32_t endian;
  std::memcpy(&endian, section + 12, sizeof(endian));
  if (endian != kServeEndianMarker) {
    return Status::InvalidArgument(
        "serve section written on an incompatible-endianness machine: " +
        snapshot_path);
  }
  const uint64_t stored_checksum = ReadU64(section + 16);
  Fnv1a64 checksum;
  checksum.Bytes(section + kServeChecksumStart,
                 kServeHeaderBytes - kServeChecksumStart);
  if (checksum.hash != stored_checksum) {
    return Status::IOError("serve section header checksum mismatch: " +
                           snapshot_path);
  }
  auto field = [section](int i) {
    return ReadU64(section + kServeChecksumStart + i * 8);
  };
  if (field(kFieldFileSize) != size) {
    return Status::IOError("serve section truncated (expected " +
                           std::to_string(field(kFieldFileSize)) +
                           " bytes, file has " + std::to_string(size) +
                           "): " + snapshot_path);
  }
  const uint64_t num_users = field(kFieldNumUsers);
  const uint64_t num_edges = field(kFieldNumEdges);
  const uint64_t num_keys = field(kFieldNumEdgeKeys);
  auto in_bounds = [size](uint64_t off, uint64_t bytes) {
    return off % kServeAlign == 0 && off <= size && bytes <= size - off;
  };
  if (!in_bounds(field(kFieldUserOffsetsOff), (num_users + 1) * 8) ||
      !in_bounds(field(kFieldEdgeOffsetsOff), (num_edges + 1) * 8) ||
      !in_bounds(field(kFieldEdgeKeysOff), num_keys * 8) ||
      !in_bounds(field(kFieldEdgeIdsOff), num_keys * 8) ||
      !in_bounds(field(kFieldUserJsonOff), field(kFieldUserJsonSize)) ||
      !in_bounds(field(kFieldEdgeJsonOff), field(kFieldEdgeJsonSize))) {
    return Status::IOError("serve section layout out of bounds: " +
                           snapshot_path);
  }

  ReadModel model;
  model.gazetteer_ = gazetteer;
  model.mmap_backed_ = true;
  model.map_num_users_ = static_cast<int64_t>(num_users);
  model.map_num_edges_ = static_cast<int64_t>(num_edges);
  model.map_num_edge_keys_ = static_cast<int64_t>(num_keys);
  model.total_profile_entries_ =
      static_cast<int64_t>(field(kFieldTotalProfileEntries));
  model.alpha_ = ReadF64(section + kServeChecksumStart + kFieldAlpha * 8);
  model.beta_ = ReadF64(section + kServeChecksumStart + kFieldBeta * 8);
  model.layout_version_ = field(kFieldLayoutVersion);
  model.active_slots_ = static_cast<int64_t>(field(kFieldActiveSlots));
  model.fit_complete_ = field(kFieldFitComplete) != 0;
  model.map_user_json_offset_ =
      reinterpret_cast<const int64_t*>(data + field(kFieldUserOffsetsOff));
  model.map_edge_json_offset_ =
      reinterpret_cast<const int64_t*>(data + field(kFieldEdgeOffsetsOff));
  model.map_edge_keys_ =
      reinterpret_cast<const uint64_t*>(data + field(kFieldEdgeKeysOff));
  model.map_edge_ids_ =
      reinterpret_cast<const int64_t*>(data + field(kFieldEdgeIdsOff));
  model.map_user_json_ = std::string_view(
      reinterpret_cast<const char*>(data + field(kFieldUserJsonOff)),
      field(kFieldUserJsonSize));
  model.map_edge_json_ = std::string_view(
      reinterpret_cast<const char*>(data + field(kFieldEdgeJsonOff)),
      field(kFieldEdgeJsonSize));
  // Cheap coherence probe (touches two pages): the CSR ends must agree
  // with the blob sizes the header promises.
  if (model.map_user_json_offset_[num_users] !=
          static_cast<int64_t>(field(kFieldUserJsonSize)) ||
      model.map_edge_json_offset_[num_edges] !=
          static_cast<int64_t>(field(kFieldEdgeJsonSize))) {
    return Status::IOError("serve section offsets disagree with blobs: " +
                           snapshot_path);
  }
  model.mapped_ = std::move(*mapped);
  return model;
}

}  // namespace serve
}  // namespace mlp
