#ifndef MLP_SERVE_READ_MODEL_H_
#define MLP_SERVE_READ_MODEL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "geo/gazetteer.h"
#include "graph/social_graph.h"
#include "io/mmap_file.h"
#include "io/model_snapshot.h"

namespace mlp {
namespace serve {

/// One (city, probability) line of a served location profile.
struct ProfileEntry {
  geo::CityId city = geo::kInvalidCity;
  double prob = 0.0;
};

/// Answer to GET /v1/user/{id}. `entries` aliases the read model's flat
/// profile storage (valid for the model's lifetime).
struct UserAnswer {
  graph::UserId user = graph::kInvalidUser;
  geo::CityId home = geo::kInvalidCity;
  const ProfileEntry* entries = nullptr;
  int entry_count = 0;
  int32_t num_friends = 0;    // out-degree (accounts this user follows)
  int32_t num_followers = 0;  // in-degree
  int32_t num_tweets = 0;     // tweeting relationships
};

/// Answer to GET /v1/edge/{src}/{dst}: the Sec-3 following-relationship
/// explanation — the posterior-mode assignment pair (x̂, ŷ), the noise
/// posterior, and support scores recomputed from the arena's sufficient
/// statistics (the final chain's ϕ counts), which say how strongly each
/// endpoint's own assignments back the explanation.
struct EdgeAnswer {
  graph::UserId src = graph::kInvalidUser;
  graph::UserId dst = graph::kInvalidUser;
  graph::EdgeId edge = -1;
  geo::CityId x = geo::kInvalidCity;  // follower's assigned location
  geo::CityId y = geo::kInvalidCity;  // friend's assigned location
  double noise_prob = 0.0;
  double x_support = 0.0;  // ϕ_src[x̂] / ϕ_src total, from the arena
  double y_support = 0.0;  // ϕ_dst[ŷ] / ϕ_dst total
  double distance_miles = 0.0;  // d(x̂, ŷ); 0 when either side is invalid
};

/// Tuning for ReadModel::Build.
struct ReadModelOptions {
  /// Profile entries kept per user (posterior top-K). <= 0 keeps all.
  int top_k = 10;
};

/// Serve-section format version (the mmap-able blob AppendServeSection
/// appends after a snapshot's core payload). Bump on any layout change;
/// MapServeSection rejects versions it does not understand, and `mlpctl
/// serve --mmap` falls back to asking the operator to re-pack — the core
/// snapshot itself stays readable either way (downgrade path).
inline constexpr uint32_t kServeSectionVersion = 1;

/// Immutable, query-optimized view of one fitted model snapshot: flat
/// top-K posterior profiles (CSR over users, probabilities copied verbatim
/// from MlpResult so served values are byte-consistent with the fit),
/// per-edge explanations with arena-derived support scores, an O(1)
/// (src, dst) → edge index, and per-user degrees. Everything is built once
/// by Build(); afterwards the model is read-only and safe to share across
/// server threads without locking.
///
/// The snapshot carries the model but not the observation graph, which is
/// why Build also takes the dataset's SocialGraph (edge endpoints, degrees)
/// — callers are expected to have fingerprint-checked the pair, as
/// `mlpctl serve` does.
class ReadModel {
 public:
  /// Validates shape agreement between snapshot and graph, then builds the
  /// flat read-side structures. The gazetteer is retained (not owned) for
  /// city names in rendered responses.
  static Result<ReadModel> Build(const io::ModelSnapshot& snapshot,
                                 const graph::SocialGraph& graph,
                                 const geo::Gazetteer* gazetteer,
                                 const ReadModelOptions& options = {});

  /// Renders this (in-memory) model's serving surface — the pre-rendered
  /// JSON blobs, their CSR offsets, a sorted (src,dst)→edge key table and
  /// the /statsz metadata — into an aligned, versioned section appended to
  /// the snapshot file at `snapshot_path` (replacing any existing section,
  /// so re-packing is idempotent). The core snapshot bytes are untouched
  /// and keep loading everywhere. Layout: src/io/README.md.
  Status AppendServeSection(const std::string& snapshot_path) const;

  /// Out-of-core backing: maps the serve section of a packed snapshot and
  /// serves every HTTP query (UserJson / EdgeJson / FindEdge / statsz
  /// metadata) straight out of the mapping — responses are byte-identical
  /// to the in-memory model the section was rendered from, but resident
  /// memory stays proportional to the touched pages, not the model size.
  /// The struct-answer lookups (GetUser/GetEdge/GetEdgeById) are not
  /// available in this mode and return false. Fails with NotFound when the
  /// snapshot has no serve section (run `mlpctl pack` first) and
  /// InvalidArgument/IOError on a foreign, stale-version or corrupt one.
  static Result<ReadModel> MapServeSection(const std::string& snapshot_path,
                                           const geo::Gazetteer* gazetteer);

  ReadModel() = default;
  ReadModel(ReadModel&&) = default;
  ReadModel& operator=(ReadModel&&) = default;
  ReadModel(const ReadModel&) = delete;
  ReadModel& operator=(const ReadModel&) = delete;

  int num_users() const {
    return mmap_backed_ ? static_cast<int>(map_num_users_)
                        : static_cast<int>(home_.size());
  }
  int num_edges() const {
    return mmap_backed_ ? static_cast<int>(map_num_edges_)
                        : static_cast<int>(edge_x_.size());
  }

  /// Point lookups. Return false when the id is out of range / the edge
  /// does not exist; `out` is untouched in that case. An mmap-backed model
  /// carries only the rendered responses, so these always return false
  /// there — the serving surface goes through UserJson/EdgeJson instead.
  bool GetUser(graph::UserId u, UserAnswer* out) const;
  bool GetEdge(graph::UserId src, graph::UserId dst, EdgeAnswer* out) const;
  /// Edge lookup by id (the batch scan path after index resolution).
  bool GetEdgeById(graph::EdgeId s, EdgeAnswer* out) const;
  /// (src, dst) → edge id, or -1.
  graph::EdgeId FindEdge(graph::UserId src, graph::UserId dst) const;

  /// Pre-rendered JSON value of one user / edge answer — rendered once at
  /// Build time into a flat blob (CSR over entities), so a point query is
  /// a substring copy and a batch response a sequential concatenation scan
  /// instead of per-request JSON assembly. Empty view when out of range.
  std::string_view UserJson(graph::UserId u) const {
    if (u < 0 || u >= num_users()) return {};
    const int64_t* off =
        mmap_backed_ ? map_user_json_offset_ : user_json_offset_.data();
    std::string_view blob =
        mmap_backed_ ? map_user_json_ : std::string_view(user_json_);
    return blob.substr(off[u], off[u + 1] - off[u]);
  }
  std::string_view EdgeJson(graph::EdgeId s) const {
    if (s < 0 || s >= num_edges()) return {};
    const int64_t* off =
        mmap_backed_ ? map_edge_json_offset_ : edge_json_offset_.data();
    std::string_view blob =
        mmap_backed_ ? map_edge_json_ : std::string_view(edge_json_);
    return blob.substr(off[s], off[s + 1] - off[s]);
  }

  const geo::Gazetteer* gazetteer() const { return gazetteer_; }
  std::string CityName(geo::CityId id) const;

  // ---- model metadata served by /statsz ----
  double alpha() const { return alpha_; }
  double beta() const { return beta_; }
  bool fit_complete() const { return fit_complete_; }
  int64_t active_candidate_slots() const { return active_slots_; }
  uint64_t candidate_layout_version() const { return layout_version_; }
  double mean_profile_entries() const;

  /// True when this model serves out of a mapped serve section.
  bool mmap_backed() const { return mmap_backed_; }

  /// Exact heap footprint of the owned read-side structures (vector
  /// capacities + blob sizes + edge index), feeding the mem_readmodel_bytes
  /// gauge. An mmap-backed model accounts only its resident skeleton — the
  /// mapping itself is paged in and out by the kernel on demand.
  int64_t AccountedBytes() const;

  /// First edge of the model as (src, dst), or false when edgeless — the
  /// probe the mmap selfcheck uses in place of a loaded graph.
  bool ExampleEdge(graph::UserId* src, graph::UserId* dst) const;

 private:
  const geo::Gazetteer* gazetteer_ = nullptr;

  // Flat top-K profiles: CSR prefix over users into entries_.
  std::vector<int64_t> profile_offset_;
  std::vector<ProfileEntry> entries_;
  std::vector<geo::CityId> home_;

  // Per-user degrees.
  std::vector<int32_t> num_friends_;
  std::vector<int32_t> num_followers_;
  std::vector<int32_t> num_tweets_;

  // Per-edge explanation columns (struct-of-arrays; the batch path scans
  // them sequentially).
  std::vector<graph::UserId> edge_src_;
  std::vector<graph::UserId> edge_dst_;
  std::vector<geo::CityId> edge_x_;
  std::vector<geo::CityId> edge_y_;
  std::vector<double> edge_noise_;
  std::vector<double> edge_x_support_;
  std::vector<double> edge_y_support_;
  std::vector<double> edge_distance_;

  // (src << 32 | dst) → first matching edge id.
  std::unordered_map<uint64_t, graph::EdgeId> edge_index_;

  // Pre-rendered response fragments (flat blob + CSR prefix per entity).
  std::string user_json_;
  std::vector<int64_t> user_json_offset_;
  std::string edge_json_;
  std::vector<int64_t> edge_json_offset_;

  double alpha_ = 0.0;
  double beta_ = 0.0;
  bool fit_complete_ = false;
  int64_t active_slots_ = 0;
  uint64_t layout_version_ = 0;

  // ---- mmap backing (MapServeSection) ----
  // The mapping owns the file; the raw pointers/views below alias it.
  // io::MmapFile moves preserve the base address, so a moved ReadModel
  // keeps serving without re-deriving them.
  io::MmapFile mapped_;
  bool mmap_backed_ = false;
  int64_t map_num_users_ = 0;
  int64_t map_num_edges_ = 0;
  int64_t total_profile_entries_ = 0;  // for mean_profile_entries()
  const int64_t* map_user_json_offset_ = nullptr;  // num_users + 1
  const int64_t* map_edge_json_offset_ = nullptr;  // num_edges + 1
  int64_t map_num_edge_keys_ = 0;  // distinct (src,dst) pairs, ≤ num_edges
  const uint64_t* map_edge_keys_ = nullptr;  // sorted (src<<32|dst)
  const int64_t* map_edge_ids_ = nullptr;    // parallel edge ids
  std::string_view map_user_json_;
  std::string_view map_edge_json_;
};

}  // namespace serve
}  // namespace mlp

#endif  // MLP_SERVE_READ_MODEL_H_
