#ifndef MLP_SERVE_READ_MODEL_H_
#define MLP_SERVE_READ_MODEL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "geo/gazetteer.h"
#include "graph/social_graph.h"
#include "io/model_snapshot.h"

namespace mlp {
namespace serve {

/// One (city, probability) line of a served location profile.
struct ProfileEntry {
  geo::CityId city = geo::kInvalidCity;
  double prob = 0.0;
};

/// Answer to GET /v1/user/{id}. `entries` aliases the read model's flat
/// profile storage (valid for the model's lifetime).
struct UserAnswer {
  graph::UserId user = graph::kInvalidUser;
  geo::CityId home = geo::kInvalidCity;
  const ProfileEntry* entries = nullptr;
  int entry_count = 0;
  int32_t num_friends = 0;    // out-degree (accounts this user follows)
  int32_t num_followers = 0;  // in-degree
  int32_t num_tweets = 0;     // tweeting relationships
};

/// Answer to GET /v1/edge/{src}/{dst}: the Sec-3 following-relationship
/// explanation — the posterior-mode assignment pair (x̂, ŷ), the noise
/// posterior, and support scores recomputed from the arena's sufficient
/// statistics (the final chain's ϕ counts), which say how strongly each
/// endpoint's own assignments back the explanation.
struct EdgeAnswer {
  graph::UserId src = graph::kInvalidUser;
  graph::UserId dst = graph::kInvalidUser;
  graph::EdgeId edge = -1;
  geo::CityId x = geo::kInvalidCity;  // follower's assigned location
  geo::CityId y = geo::kInvalidCity;  // friend's assigned location
  double noise_prob = 0.0;
  double x_support = 0.0;  // ϕ_src[x̂] / ϕ_src total, from the arena
  double y_support = 0.0;  // ϕ_dst[ŷ] / ϕ_dst total
  double distance_miles = 0.0;  // d(x̂, ŷ); 0 when either side is invalid
};

/// Tuning for ReadModel::Build.
struct ReadModelOptions {
  /// Profile entries kept per user (posterior top-K). <= 0 keeps all.
  int top_k = 10;
};

/// Immutable, query-optimized view of one fitted model snapshot: flat
/// top-K posterior profiles (CSR over users, probabilities copied verbatim
/// from MlpResult so served values are byte-consistent with the fit),
/// per-edge explanations with arena-derived support scores, an O(1)
/// (src, dst) → edge index, and per-user degrees. Everything is built once
/// by Build(); afterwards the model is read-only and safe to share across
/// server threads without locking.
///
/// The snapshot carries the model but not the observation graph, which is
/// why Build also takes the dataset's SocialGraph (edge endpoints, degrees)
/// — callers are expected to have fingerprint-checked the pair, as
/// `mlpctl serve` does.
class ReadModel {
 public:
  /// Validates shape agreement between snapshot and graph, then builds the
  /// flat read-side structures. The gazetteer is retained (not owned) for
  /// city names in rendered responses.
  static Result<ReadModel> Build(const io::ModelSnapshot& snapshot,
                                 const graph::SocialGraph& graph,
                                 const geo::Gazetteer* gazetteer,
                                 const ReadModelOptions& options = {});

  ReadModel() = default;
  ReadModel(ReadModel&&) = default;
  ReadModel& operator=(ReadModel&&) = default;
  ReadModel(const ReadModel&) = delete;
  ReadModel& operator=(const ReadModel&) = delete;

  int num_users() const { return static_cast<int>(home_.size()); }
  int num_edges() const { return static_cast<int>(edge_x_.size()); }

  /// Point lookups. Return false when the id is out of range / the edge
  /// does not exist; `out` is untouched in that case.
  bool GetUser(graph::UserId u, UserAnswer* out) const;
  bool GetEdge(graph::UserId src, graph::UserId dst, EdgeAnswer* out) const;
  /// Edge lookup by id (the batch scan path after index resolution).
  bool GetEdgeById(graph::EdgeId s, EdgeAnswer* out) const;
  /// (src, dst) → edge id, or -1.
  graph::EdgeId FindEdge(graph::UserId src, graph::UserId dst) const;

  /// Pre-rendered JSON value of one user / edge answer — rendered once at
  /// Build time into a flat blob (CSR over entities), so a point query is
  /// a substring copy and a batch response a sequential concatenation scan
  /// instead of per-request JSON assembly. Empty view when out of range.
  std::string_view UserJson(graph::UserId u) const {
    if (u < 0 || u >= num_users()) return {};
    return std::string_view(user_json_).substr(
        user_json_offset_[u], user_json_offset_[u + 1] - user_json_offset_[u]);
  }
  std::string_view EdgeJson(graph::EdgeId s) const {
    if (s < 0 || s >= num_edges()) return {};
    return std::string_view(edge_json_).substr(
        edge_json_offset_[s], edge_json_offset_[s + 1] - edge_json_offset_[s]);
  }

  const geo::Gazetteer* gazetteer() const { return gazetteer_; }
  std::string CityName(geo::CityId id) const;

  // ---- model metadata served by /statsz ----
  double alpha() const { return alpha_; }
  double beta() const { return beta_; }
  bool fit_complete() const { return fit_complete_; }
  int64_t active_candidate_slots() const { return active_slots_; }
  uint64_t candidate_layout_version() const { return layout_version_; }
  double mean_profile_entries() const;

 private:
  const geo::Gazetteer* gazetteer_ = nullptr;

  // Flat top-K profiles: CSR prefix over users into entries_.
  std::vector<int64_t> profile_offset_;
  std::vector<ProfileEntry> entries_;
  std::vector<geo::CityId> home_;

  // Per-user degrees.
  std::vector<int32_t> num_friends_;
  std::vector<int32_t> num_followers_;
  std::vector<int32_t> num_tweets_;

  // Per-edge explanation columns (struct-of-arrays; the batch path scans
  // them sequentially).
  std::vector<graph::UserId> edge_src_;
  std::vector<graph::UserId> edge_dst_;
  std::vector<geo::CityId> edge_x_;
  std::vector<geo::CityId> edge_y_;
  std::vector<double> edge_noise_;
  std::vector<double> edge_x_support_;
  std::vector<double> edge_y_support_;
  std::vector<double> edge_distance_;

  // (src << 32 | dst) → first matching edge id.
  std::unordered_map<uint64_t, graph::EdgeId> edge_index_;

  // Pre-rendered response fragments (flat blob + CSR prefix per entity).
  std::string user_json_;
  std::vector<int64_t> user_json_offset_;
  std::string edge_json_;
  std::vector<int64_t> edge_json_offset_;

  double alpha_ = 0.0;
  double beta_ = 0.0;
  bool fit_complete_ = false;
  int64_t active_slots_ = 0;
  uint64_t layout_version_ = 0;
};

}  // namespace serve
}  // namespace mlp

#endif  // MLP_SERVE_READ_MODEL_H_
