#include "serve/request_batcher.h"

#include <algorithm>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <numeric>
#include <string_view>

#include "common/logging.h"

namespace mlp {
namespace serve {

namespace {

/// Completion latch for one batch's chunks: counts down as chunks finish,
/// releases the batch's own waiter. Deliberately not ThreadPool::Wait —
/// that is pool-wide and would make concurrent batches barrier on each
/// other's work.
class Latch {
 public:
  explicit Latch(int count) : remaining_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
};

/// Splits [0, total) into non-empty chunk ranges sized for `pool`. A
/// single range means "run inline".
std::vector<std::pair<int, int>> ChunkRanges(engine::ThreadPool* pool,
                                             int total, int min_parallel) {
  std::vector<std::pair<int, int>> ranges;
  if (total <= 0) return ranges;
  const int threads = pool == nullptr ? 1 : pool->size();
  if (pool == nullptr || total < min_parallel || threads <= 1) {
    ranges.emplace_back(0, total);
    return ranges;
  }
  const int chunks = std::min(threads * 2, (total + min_parallel - 1) /
                                               std::max(1, min_parallel / 2));
  const int chunk_size = (total + chunks - 1) / chunks;
  for (int begin = 0; begin < total; begin += chunk_size) {
    ranges.emplace_back(begin, std::min(total, begin + chunk_size));
  }
  return ranges;
}

/// Runs `work(chunk, begin, end)` for every range — on `pool` when there
/// is more than one range, inline otherwise. Chunks write disjoint output
/// slots, so no locking inside `work`. Returns the batch's queue wait:
/// submit until the FIRST chunk started running on a pool worker (0 for
/// inline execution or when observability is disabled).
int64_t RunChunks(engine::ThreadPool* pool,
                  const std::vector<std::pair<int, int>>& ranges,
                  const std::function<void(int, int, int)>& work) {
  if (ranges.empty()) return 0;
  if (ranges.size() == 1 || pool == nullptr) {
    for (size_t c = 0; c < ranges.size(); ++c) {
      work(static_cast<int>(c), ranges[c].first, ranges[c].second);
    }
    return 0;
  }
  const int64_t submit_ns = obs::NowNs();
  std::atomic<int64_t> first_start_ns{0};
  Latch latch(static_cast<int>(ranges.size()));
  for (size_t c = 0; c < ranges.size(); ++c) {
    const int chunk = static_cast<int>(c);
    const int begin = ranges[c].first;
    const int end = ranges[c].second;
    bool submitted = pool->Submit([&, chunk, begin, end] {
      if (submit_ns > 0) {
        // One winner stamps the first-execution time; everyone else's CAS
        // fails and costs one relaxed load.
        int64_t expected = 0;
        first_start_ns.compare_exchange_strong(expected, obs::NowNs(),
                                               std::memory_order_relaxed);
      }
      work(chunk, begin, end);
      latch.CountDown();
    });
    if (!submitted) {
      // Pool draining (server shutdown): fall back to inline so the batch
      // still completes before the connection unwinds.
      work(chunk, begin, end);
      latch.CountDown();
    }
  }
  latch.Wait();
  const int64_t first = first_start_ns.load(std::memory_order_relaxed);
  return (submit_ns > 0 && first > submit_ns) ? first - submit_ns : 0;
}

}  // namespace

RequestBatcher::RequestBatcher(const ReadModel* model,
                               engine::ThreadPool* pool,
                               int min_parallel_items)
    : model_(model), pool_(pool), min_parallel_items_(min_parallel_items) {}

BatchResult RequestBatcher::Execute(const BatchRequest& request) const {
  // The stored model is optional (ModelServer passes nullptr and always
  // uses the explicit-model overloads); calling the legacy form without
  // one is a caller bug, not a crash site.
  MLP_CHECK(model_ != nullptr);
  return Execute(*model_, request);
}

BatchResult RequestBatcher::Execute(const ReadModel& model,
                                    const BatchRequest& request) const {
  BatchResult result;
  result.users.resize(request.users.size());
  result.user_found.assign(request.users.size(), 0);
  result.edges.resize(request.edges.size());
  result.edge_found.assign(request.edges.size(), 0);

  // Visit lookups in user-id order so the flat profile CSR / degree / edge
  // columns are walked near-sequentially; answers land at their original
  // slots, so callers see request order.
  std::vector<int32_t> user_order(request.users.size());
  std::iota(user_order.begin(), user_order.end(), 0);
  std::sort(user_order.begin(), user_order.end(), [&](int32_t a, int32_t b) {
    return request.users[a] < request.users[b];
  });
  std::vector<int32_t> edge_order(request.edges.size());
  std::iota(edge_order.begin(), edge_order.end(), 0);
  std::sort(edge_order.begin(), edge_order.end(), [&](int32_t a, int32_t b) {
    return request.edges[a] < request.edges[b];
  });

  RunChunks(pool_,
            ChunkRanges(pool_, static_cast<int>(user_order.size()),
                        min_parallel_items_),
            [&](int, int begin, int end) {
              for (int pos = begin; pos < end; ++pos) {
                const int32_t i = user_order[pos];
                result.user_found[i] =
                    model.GetUser(request.users[i], &result.users[i]) ? 1 : 0;
              }
            });
  RunChunks(pool_,
            ChunkRanges(pool_, static_cast<int>(edge_order.size()),
                        min_parallel_items_),
            [&](int, int begin, int end) {
              for (int pos = begin; pos < end; ++pos) {
                const int32_t i = edge_order[pos];
                const auto& [src, dst] = request.edges[i];
                result.edge_found[i] =
                    model.GetEdge(src, dst, &result.edges[i]) ? 1 : 0;
              }
            });

  batches_.fetch_add(1);
  lookups_.fetch_add(request.users.size() + request.edges.size());
  return result;
}

std::string RequestBatcher::ExecuteJson(const BatchRequest& request) const {
  MLP_CHECK(model_ != nullptr);
  return ExecuteJson(*model_, request);
}

std::string RequestBatcher::ExecuteJson(const ReadModel& model,
                                        const BatchRequest& request,
                                        obs::RequestTrace* trace) const {
  const auto user_ranges = ChunkRanges(
      pool_, static_cast<int>(request.users.size()), min_parallel_items_);
  const auto edge_ranges = ChunkRanges(
      pool_, static_cast<int>(request.edges.size()), min_parallel_items_);
  std::vector<std::string> user_parts(user_ranges.size());
  std::vector<std::string> edge_parts(edge_ranges.size());

  // Each chunk concatenates its slice of pre-rendered fragments in request
  // order — a sequential scan over the fragment blob for clustered ids.
  int64_t queue_wait_ns = 0;
  queue_wait_ns += RunChunks(pool_, user_ranges,
                             [&](int chunk, int begin, int end) {
    std::string& out = user_parts[chunk];
    for (int i = begin; i < end; ++i) {
      if (i > begin) out += ',';
      std::string_view fragment = model.UserJson(request.users[i]);
      if (fragment.empty()) {
        out += "null";
      } else {
        out.append(fragment.data(), fragment.size());
      }
    }
  });
  queue_wait_ns += RunChunks(pool_, edge_ranges,
                             [&](int chunk, int begin, int end) {
    std::string& out = edge_parts[chunk];
    for (int i = begin; i < end; ++i) {
      if (i > begin) out += ',';
      std::string_view fragment = model.EdgeJson(
          model.FindEdge(request.edges[i].first, request.edges[i].second));
      if (fragment.empty()) {
        out += "null";
      } else {
        out.append(fragment.data(), fragment.size());
      }
    }
  });
  if (trace != nullptr) {
    trace->AddStageNs(obs::RequestStage::kBatchQueueWait, queue_wait_ns);
  }

  size_t total = 32;
  for (const std::string& part : user_parts) total += part.size() + 1;
  for (const std::string& part : edge_parts) total += part.size() + 1;
  std::string body;
  body.reserve(total);
  body += "{\"users\":[";
  for (size_t c = 0; c < user_parts.size(); ++c) {
    if (c > 0) body += ',';
    body += user_parts[c];
  }
  body += "],\"edges\":[";
  for (size_t c = 0; c < edge_parts.size(); ++c) {
    if (c > 0) body += ',';
    body += edge_parts[c];
  }
  body += "]}";

  batches_.fetch_add(1);
  lookups_.fetch_add(request.users.size() + request.edges.size());
  return body;
}

}  // namespace serve
}  // namespace mlp
