#ifndef MLP_SERVE_REQUEST_BATCHER_H_
#define MLP_SERVE_REQUEST_BATCHER_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "engine/thread_pool.h"
#include "obs/request_trace.h"
#include "serve/read_model.h"

namespace mlp {
namespace serve {

/// A coalesced set of point lookups (the POST /v1/batch payload).
struct BatchRequest {
  std::vector<graph::UserId> users;
  std::vector<std::pair<graph::UserId, graph::UserId>> edges;
};

/// Answers aligned 1:1 with the request vectors; `found` is false for
/// out-of-range users / absent edges (the matching answer slot is then
/// default-constructed).
struct BatchResult {
  std::vector<UserAnswer> users;
  std::vector<uint8_t> user_found;
  std::vector<EdgeAnswer> edges;
  std::vector<uint8_t> edge_found;
};

/// Turns N point lookups into vectorized scans over the read model's flat
/// arrays. Two levers over per-request point queries:
///   - lookups are executed sorted by user id (original order restored on
///     output), so the profile CSR and degree arrays are walked mostly
///     sequentially instead of randomly; and
///   - batches past `min_parallel_items` are chunked across the batch
///     ThreadPool, each chunk writing disjoint output slots, with a
///     per-batch completion latch (no pool-wide Wait, so concurrent
///     batches never serialize each other).
///
/// The pool must NOT be the one the caller itself runs on (ThreadPool
/// tasks must not block on their own pool) — ModelServer hands the batcher
/// a dedicated batch pool for exactly this reason.
class RequestBatcher {
 public:
  /// `model` and `pool` are borrowed. `pool` may be null: every batch then
  /// runs inline on the calling thread (still sorted/vectorized). `model`
  /// may be null when every call uses the explicit-model overloads below —
  /// ModelServer does exactly that, because its current model is swappable
  /// (SwapReadModel) and each request pins its own snapshot.
  RequestBatcher(const ReadModel* model, engine::ThreadPool* pool,
                 int min_parallel_items = 512);

  BatchResult Execute(const BatchRequest& request) const;
  /// Same, against an explicitly pinned model instead of the stored one.
  BatchResult Execute(const ReadModel& model,
                      const BatchRequest& request) const;

  /// The POST /v1/batch hot path: assembles the full response body
  /// ({"users":[...],"edges":[...]}, `null` for missing entries) directly
  /// from the read model's pre-rendered fragments — per chunk a sequential
  /// concatenation scan, chunks across the batch pool. No per-request JSON
  /// rendering at all.
  /// When `trace` is non-null the time the batch's chunks spent queued
  /// behind other work on the batch pool (submit → first chunk running) is
  /// attributed to the batch_queue_wait stage; inline execution counts as
  /// zero wait.
  std::string ExecuteJson(const BatchRequest& request) const;
  std::string ExecuteJson(const ReadModel& model, const BatchRequest& request,
                          obs::RequestTrace* trace = nullptr) const;

  uint64_t batches_executed() const { return batches_; }
  uint64_t lookups_executed() const { return lookups_; }

 private:
  const ReadModel* model_;
  engine::ThreadPool* pool_;
  int min_parallel_items_;
  mutable std::atomic<uint64_t> batches_{0};
  mutable std::atomic<uint64_t> lookups_{0};
};

}  // namespace serve
}  // namespace mlp

#endif  // MLP_SERVE_REQUEST_BATCHER_H_
