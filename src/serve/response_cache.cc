#include "serve/response_cache.h"

#include <algorithm>
#include <functional>

namespace mlp {
namespace serve {

ResponseCache::ResponseCache(size_t capacity_bytes, int num_shards) {
  int n = std::max(1, num_shards);
  shard_capacity_ = capacity_bytes / n;
  shards_.reserve(n);
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

ResponseCache::Shard& ResponseCache::ShardFor(const std::string& key) {
  size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

size_t ResponseCache::EntryCost(const std::string& key,
                                const std::string& value) {
  // Strings plus list/map node overhead; 64 is a round approximation that
  // keeps the budget honest without per-allocator introspection.
  return key.size() + value.size() + 64;
}

bool ResponseCache::Get(const std::string& key, std::string* value) {
  if (shard_capacity_ == 0) return false;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  *value = it->second->second;
  return true;
}

void ResponseCache::Put(const std::string& key, std::string value) {
  if (shard_capacity_ == 0) return;
  const size_t cost = EntryCost(key, value);
  if (cost > shard_capacity_) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= EntryCost(key, it->second->second);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    it->second->second = std::move(value);
    shard.bytes += cost;
  } else {
    shard.lru.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += cost;
  }
  while (shard.bytes > shard_capacity_ && !shard.lru.empty()) {
    auto& victim = shard.lru.back();
    shard.bytes -= EntryCost(victim.first, victim.second);
    shard.index.erase(victim.first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ResponseCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

ResponseCache::Stats ResponseCache::GetStats() const {
  Stats stats;
  stats.capacity_bytes = shard_capacity_ * shards_.size();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.entries += shard->index.size();
    stats.bytes += shard->bytes;
  }
  return stats;
}

}  // namespace serve
}  // namespace mlp
