#ifndef MLP_SERVE_RESPONSE_CACHE_H_
#define MLP_SERVE_RESPONSE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mlp {
namespace serve {

/// Sharded LRU cache for rendered response bodies, keyed by request target.
/// Shards are independent (key-hash routed), so concurrent server threads
/// only contend when they hit the same shard; eviction is per shard by
/// byte budget. Capacity 0 disables the cache entirely (every Get misses,
/// Put is a no-op) — the hot path stays branch-cheap either way.
class ResponseCache {
 public:
  /// `capacity_bytes` is the total budget split evenly across
  /// `num_shards` (clamped to >= 1).
  ResponseCache(size_t capacity_bytes, int num_shards = 8);

  ResponseCache(const ResponseCache&) = delete;
  ResponseCache& operator=(const ResponseCache&) = delete;

  /// On hit copies the cached body into `*value` and refreshes recency.
  bool Get(const std::string& key, std::string* value);

  /// Inserts or refreshes `key`. Entries larger than a whole shard's
  /// budget are not cached.
  void Put(const std::string& key, std::string value);

  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
    size_t capacity_bytes = 0;
  };
  /// Aggregated over shards (locks each shard briefly).
  Stats GetStats() const;

 private:
  struct Shard {
    std::mutex mu;
    // Front = most recent. unordered_map points into the list.
    std::list<std::pair<std::string, std::string>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, std::string>>::iterator>
        index;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const std::string& key);
  static size_t EntryCost(const std::string& key, const std::string& value);

  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace serve
}  // namespace mlp

#endif  // MLP_SERVE_RESPONSE_CACHE_H_
