#include "stats/alias_table.h"

#include "common/logging.h"

namespace mlp {
namespace stats {

AliasTable::AliasTable(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    MLP_CHECK_MSG(w >= 0.0, "AliasTable weight must be non-negative");
    total += w;
  }
  if (weights.empty() || total <= 0.0) return;

  const int n = static_cast<int>(weights.size());
  normalized_.resize(n);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scale so the average bucket holds probability exactly 1.
  std::vector<double> scaled(n);
  for (int i = 0; i < n; ++i) {
    normalized_[i] = weights[i] / total;
    scaled[i] = normalized_[i] * n;
  }

  std::vector<int> small, large;
  small.reserve(n);
  large.reserve(n);
  for (int i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    int s = small.back();
    small.pop_back();
    int l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical remainders: both queues drain to probability-1 buckets.
  for (int i : large) prob_[i] = 1.0;
  for (int i : small) prob_[i] = 1.0;
}

int AliasTable::Sample(Pcg32* rng) const {
  MLP_CHECK(ok());
  int bucket = static_cast<int>(rng->UniformU32(static_cast<uint32_t>(size())));
  return rng->NextDouble() < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace stats
}  // namespace mlp
