#include "stats/alias_table.h"

#include "common/logging.h"

namespace mlp {
namespace stats {

double AliasTable::BuildInto(const double* weights, int n, double* prob,
                             int32_t* alias, AliasBuildScratch* scratch) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += weights[i] > 0.0 ? weights[i] : 0.0;
  if (total <= 0.0) {
    // Degenerate row: uniform. prob = 1 means the bucket always accepts,
    // so the alias entries are never read — keep them in-range anyway.
    for (int i = 0; i < n; ++i) {
      prob[i] = 1.0;
      alias[i] = i;
    }
    return 0.0;
  }

  std::vector<double>& scaled = scratch->scaled;
  std::vector<int32_t>& small = scratch->small;
  std::vector<int32_t>& large = scratch->large;
  scaled.resize(n);
  small.clear();
  large.clear();

  // Scale so the average bucket holds probability exactly 1. Evaluated as
  // (w / total) * n — the historical order of operations — so tables built
  // here are bit-identical to ones the pre-BuildInto constructor produced.
  for (int i = 0; i < n; ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    scaled[i] = (w / total) * static_cast<double>(n);
    alias[i] = i;
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const int32_t s = small.back();
    small.pop_back();
    const int32_t l = large.back();
    large.pop_back();
    prob[s] = scaled[s];
    alias[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical remainders: both queues drain to probability-1 buckets.
  for (int32_t i : large) prob[i] = 1.0;
  for (int32_t i : small) prob[i] = 1.0;
  return total;
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    MLP_CHECK_MSG(w >= 0.0, "AliasTable weight must be non-negative");
    total += w;
  }
  if (weights.empty() || total <= 0.0) return;

  const int n = static_cast<int>(weights.size());
  normalized_.resize(n);
  for (int i = 0; i < n; ++i) normalized_[i] = weights[i] / total;
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  AliasBuildScratch scratch;
  BuildInto(weights.data(), n, prob_.data(), alias_.data(), &scratch);
}

int AliasTable::Sample(Pcg32* rng) const {
  MLP_CHECK(ok());
  return SampleFrom(prob_.data(), alias_.data(), size(), rng);
}

}  // namespace stats
}  // namespace mlp
