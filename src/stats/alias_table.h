#ifndef MLP_STATS_ALIAS_TABLE_H_
#define MLP_STATS_ALIAS_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace mlp {
namespace stats {

/// Reusable work stacks for AliasTable::BuildInto so callers rebuilding
/// many tables per epoch (the Gibbs engine's per-user proposal tables)
/// allocate once, not once per row.
struct AliasBuildScratch {
  std::vector<int32_t> small;
  std::vector<int32_t> large;
  std::vector<double> scaled;
};

/// Walker's alias method: O(n) construction, O(1) draws from a fixed
/// discrete distribution. Used wherever the same weights are sampled many
/// times (population-weighted city draws, per-city target tables in the
/// network generator, the random tweeting model TR, and the per-user
/// proposal tables of the parallel engine's alias-MH kernels).
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds from unnormalized non-negative weights. All-zero or empty
  /// weights produce an empty (unusable) table; check `ok()`.
  explicit AliasTable(const std::vector<double>& weights);

  /// True when the table can be sampled from.
  bool ok() const { return !prob_.empty(); }

  int size() const { return static_cast<int>(prob_.size()); }

  /// Draws an index in [0, size()). Requires ok().
  int Sample(Pcg32* rng) const;

  /// Probability mass of index `i` in the normalized distribution.
  double Probability(int i) const { return normalized_[i]; }

  // ---- flat (caller-owned storage) form ----
  //
  // The single alias-construction implementation: the instance constructor
  // above delegates here, and callers that keep many tables in flat arrays
  // (one row per user, offsets from a CSR prefix) build and sample without
  // wrapping each row in an object.

  /// Builds alias buckets for `weights[0..n)` into `prob`/`alias` (each
  /// length n). Negative weights clamp to zero; when the total is not
  /// positive the row degenerates to uniform (prob = 1, alias = self).
  /// Returns the clamped weight total.
  static double BuildInto(const double* weights, int n, double* prob,
                          int32_t* alias, AliasBuildScratch* scratch);

  /// One draw from a row built by BuildInto. O(1): one bucket pick plus one
  /// acceptance test.
  static int SampleFrom(const double* prob, const int32_t* alias, int n,
                        Pcg32* rng) {
    const int bucket =
        static_cast<int>(rng->UniformU32(static_cast<uint32_t>(n)));
    return rng->NextDouble() < prob[bucket] ? bucket : alias[bucket];
  }

 private:
  std::vector<double> prob_;     // acceptance probability per bucket
  std::vector<int32_t> alias_;   // alias index per bucket
  std::vector<double> normalized_;
};

}  // namespace stats
}  // namespace mlp

#endif  // MLP_STATS_ALIAS_TABLE_H_
