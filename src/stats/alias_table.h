#ifndef MLP_STATS_ALIAS_TABLE_H_
#define MLP_STATS_ALIAS_TABLE_H_

#include <vector>

#include "common/random.h"

namespace mlp {
namespace stats {

/// Walker's alias method: O(n) construction, O(1) draws from a fixed
/// discrete distribution. Used wherever the same weights are sampled many
/// times (population-weighted city draws, per-city target tables in the
/// network generator, the random tweeting model TR).
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds from unnormalized non-negative weights. All-zero or empty
  /// weights produce an empty (unusable) table; check `ok()`.
  explicit AliasTable(const std::vector<double>& weights);

  /// True when the table can be sampled from.
  bool ok() const { return !prob_.empty(); }

  int size() const { return static_cast<int>(prob_.size()); }

  /// Draws an index in [0, size()). Requires ok().
  int Sample(Pcg32* rng) const;

  /// Probability mass of index `i` in the normalized distribution.
  double Probability(int i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;     // acceptance probability per bucket
  std::vector<int> alias_;       // alias index per bucket
  std::vector<double> normalized_;
};

}  // namespace stats
}  // namespace mlp

#endif  // MLP_STATS_ALIAS_TABLE_H_
