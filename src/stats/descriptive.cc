#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace mlp {
namespace stats {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mean = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return ss / static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  double idx = q * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(idx));
  size_t hi = static_cast<size_t>(std::ceil(idx));
  double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Median(std::vector<double> xs) { return Quantile(std::move(xs), 0.5); }

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  double mx = Mean(xs);
  double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double RSquared(const std::vector<double>& actual,
                const std::vector<double>& predicted) {
  if (actual.size() != predicted.size() || actual.empty()) return 0.0;
  double mean = Mean(actual);
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - mean) * (actual[i] - mean);
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace stats
}  // namespace mlp
