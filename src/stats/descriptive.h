#ifndef MLP_STATS_DESCRIPTIVE_H_
#define MLP_STATS_DESCRIPTIVE_H_

#include <vector>

namespace mlp {
namespace stats {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance; 0 for fewer than two points.
double Variance(const std::vector<double>& xs);

double StdDev(const std::vector<double>& xs);

/// Linear-interpolated quantile, q in [0,1]; 0 for empty input.
double Quantile(std::vector<double> xs, double q);

double Median(std::vector<double> xs);

/// Pearson correlation; 0 when either side is constant or sizes mismatch.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Coefficient of determination of predictions vs. actuals; can be negative
/// for fits worse than the mean; 0 on degenerate input.
double RSquared(const std::vector<double>& actual,
                const std::vector<double>& predicted);

}  // namespace stats
}  // namespace mlp

#endif  // MLP_STATS_DESCRIPTIVE_H_
