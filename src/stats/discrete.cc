#include "stats/discrete.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mlp {
namespace stats {

double NormalizeInPlace(std::vector<double>* weights) {
  double total = 0.0;
  for (double w : *weights) total += w;
  if (weights->empty()) return total;
  if (total <= 0.0) {
    double uniform = 1.0 / static_cast<double>(weights->size());
    for (double& w : *weights) w = uniform;
    return total;
  }
  for (double& w : *weights) w /= total;
  return total;
}

double Entropy(const std::vector<double>& probs) {
  double h = 0.0;
  for (double p : probs) {
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

std::vector<int> TopK(const std::vector<double>& weights, int k) {
  std::vector<int> idx(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) idx[i] = static_cast<int>(i);
  if (k < 0) k = 0;
  k = std::min<int>(k, static_cast<int>(weights.size()));
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](int a, int b) {
                      if (weights[a] != weights[b]) {
                        return weights[a] > weights[b];
                      }
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

std::vector<int> AboveThreshold(const std::vector<double>& weights,
                                double threshold) {
  std::vector<int> idx;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] >= threshold) idx.push_back(static_cast<int>(i));
  }
  std::sort(idx.begin(), idx.end(), [&](int a, int b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });
  return idx;
}

void SparseCounts::Add(int32_t id, double delta) {
  total_ += delta;
  for (auto& [key, count] : entries_) {
    if (key == id) {
      count += delta;
      MLP_CHECK_MSG(count > -1e-9, "SparseCounts went negative");
      if (count < 0.0) count = 0.0;
      return;
    }
  }
  MLP_CHECK_MSG(delta > -1e-9, "SparseCounts decrement of missing id");
  entries_.emplace_back(id, delta);
}

double SparseCounts::Get(int32_t id) const {
  for (const auto& [key, count] : entries_) {
    if (key == id) return count;
  }
  return 0.0;
}

void SparseCounts::Clear() {
  entries_.clear();
  total_ = 0.0;
}

}  // namespace stats
}  // namespace mlp
