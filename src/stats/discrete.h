#ifndef MLP_STATS_DISCRETE_H_
#define MLP_STATS_DISCRETE_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace mlp {
namespace stats {

/// Normalizes non-negative weights in place to sum to 1; all-zero input
/// becomes uniform. Returns the pre-normalization sum.
double NormalizeInPlace(std::vector<double>* weights);

/// Shannon entropy (nats) of a normalized distribution; treats zeros as 0.
double Entropy(const std::vector<double>& probs);

/// Indices of the `k` largest weights, descending by weight (ties broken by
/// lower index first).
std::vector<int> TopK(const std::vector<double>& weights, int k);

/// Indices whose weight is >= threshold, descending by weight.
std::vector<int> AboveThreshold(const std::vector<double>& weights,
                                double threshold);

/// Sparse counter keyed by small integer ids. Backed by a flat map of
/// (id → count); the working sets here (candidate locations per user) are
/// tiny, so linear probing over a small vector beats hashing.
class SparseCounts {
 public:
  /// Adds `delta` to the count of `id` (may go to zero but not negative).
  void Add(int32_t id, double delta);

  double Get(int32_t id) const;
  double total() const { return total_; }

  const std::vector<std::pair<int32_t, double>>& entries() const {
    return entries_;
  }

  void Clear();

 private:
  std::vector<std::pair<int32_t, double>> entries_;
  double total_ = 0.0;
};

}  // namespace stats
}  // namespace mlp

#endif  // MLP_STATS_DISCRETE_H_
