#include "stats/histogram.h"

#include <cmath>

#include "common/logging.h"

namespace mlp {
namespace stats {

Histogram::Histogram(double bucket_width, int num_buckets)
    : bucket_width_(bucket_width) {
  MLP_CHECK(bucket_width > 0.0);
  MLP_CHECK(num_buckets > 0);
  counts_.assign(num_buckets, 0.0);
}

void Histogram::Add(double value, double weight) {
  total_ += weight;
  if (value < 0.0) value = 0.0;
  int bucket = static_cast<int>(std::floor(value / bucket_width_));
  if (bucket >= num_buckets()) {
    overflow_ += weight;
    return;
  }
  counts_[bucket] += weight;
}

double Histogram::BucketCenter(int bucket) const {
  return (static_cast<double>(bucket) + 0.5) * bucket_width_;
}

std::vector<double> Histogram::Normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ <= 0.0) return out;
  for (size_t i = 0; i < counts_.size(); ++i) out[i] = counts_[i] / total_;
  return out;
}

void Histogram::Clear() {
  for (double& c : counts_) c = 0.0;
  overflow_ = 0.0;
  total_ = 0.0;
}

}  // namespace stats
}  // namespace mlp
