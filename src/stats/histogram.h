#ifndef MLP_STATS_HISTOGRAM_H_
#define MLP_STATS_HISTOGRAM_H_

#include <vector>

namespace mlp {
namespace stats {

/// Fixed-width histogram over [0, bucket_width * num_buckets); values past
/// the top edge land in the overflow bucket. The paper buckets user-pair
/// distances "by intervals of 1 mile" (Sec. 4.1); this is that structure.
class Histogram {
 public:
  Histogram(double bucket_width, int num_buckets);

  void Add(double value, double weight = 1.0);

  int num_buckets() const { return static_cast<int>(counts_.size()); }
  double bucket_width() const { return bucket_width_; }
  double count(int bucket) const { return counts_[bucket]; }
  double overflow() const { return overflow_; }
  double total() const { return total_; }

  /// Bucket midpoint in value units.
  double BucketCenter(int bucket) const;

  /// All in-range bucket counts.
  const std::vector<double>& counts() const { return counts_; }

  /// Normalized densities (counts / total, excluding nothing); zero total
  /// yields all-zero.
  std::vector<double> Normalized() const;

  void Clear();

 private:
  double bucket_width_;
  std::vector<double> counts_;
  double overflow_ = 0.0;
  double total_ = 0.0;
};

}  // namespace stats
}  // namespace mlp

#endif  // MLP_STATS_HISTOGRAM_H_
