#include "stats/power_law.h"

#include <algorithm>
#include <cmath>

namespace mlp {
namespace stats {

double PowerLaw::operator()(double d) const {
  double p = beta * std::pow(d, alpha);
  return std::clamp(p, 0.0, 1.0);
}

double PowerLaw::LogProb(double d) const {
  return std::log(beta) + alpha * std::log(d);
}

Result<PowerLaw> FitPowerLaw(const std::vector<CurvePoint>& points) {
  // Weighted least squares on (log x, log y).
  double sw = 0.0, sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  int usable = 0;
  double first_logx = 0.0;
  bool distinct_x = false;
  for (const CurvePoint& p : points) {
    if (p.x <= 0.0 || p.y <= 0.0 || p.weight <= 0.0) continue;
    double lx = std::log(p.x);
    double ly = std::log(p.y);
    if (usable == 0) {
      first_logx = lx;
    } else if (lx != first_logx) {
      distinct_x = true;
    }
    ++usable;
    sw += p.weight;
    sx += p.weight * lx;
    sy += p.weight * ly;
    sxx += p.weight * lx * lx;
    sxy += p.weight * lx * ly;
  }
  if (usable < 2 || !distinct_x) {
    return Status::InvalidArgument(
        "power-law fit needs >=2 points with distinct positive x and y");
  }
  double denom = sw * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    return Status::InvalidArgument("degenerate power-law fit (denominator~0)");
  }
  PowerLaw fit;
  fit.alpha = (sw * sxy - sx * sy) / denom;
  fit.beta = std::exp((sy - fit.alpha * sx) / sw);
  return fit;
}

std::vector<CurvePoint> RatioCurve(const std::vector<double>& edge_counts,
                                   const std::vector<double>& pair_counts,
                                   double min_pairs) {
  std::vector<CurvePoint> out;
  size_t n = std::min(edge_counts.size(), pair_counts.size());
  for (size_t d = 0; d < n; ++d) {
    if (pair_counts[d] < min_pairs || edge_counts[d] <= 0.0) continue;
    CurvePoint p;
    p.x = static_cast<double>(d) + 0.5;  // bucket midpoint; keeps x > 0
    p.y = edge_counts[d] / pair_counts[d];
    p.weight = pair_counts[d];
    out.push_back(p);
  }
  return out;
}

}  // namespace stats
}  // namespace mlp
