#ifndef MLP_STATS_POWER_LAW_H_
#define MLP_STATS_POWER_LAW_H_

#include <vector>

#include "common/result.h"

namespace mlp {
namespace stats {

/// The paper's location-based following model parameters (Eq. 1):
/// P(f⟨i,j⟩ | α, β, x_i, y_j) = β · d(x_i, y_j)^α, with α≈-0.55 and
/// β≈0.0045 learned from Twitter (Sec. 4.1, Fig. 3a).
struct PowerLaw {
  double alpha = -0.55;
  double beta = 0.0045;

  /// β·d^α, with probability clamped into [0, 1]. `d` must be > 0 (callers
  /// clamp distances to the 1-mile floor first; see CityDistanceMatrix).
  double operator()(double d) const;

  /// log(β·d^α) without the [0,1] clamp; useful in log-likelihoods.
  double LogProb(double d) const;
};

/// One (distance, probability) point of an empirical following-probability
/// curve (the dots of Fig. 3a).
struct CurvePoint {
  double x = 0.0;  // distance in miles (> 0)
  double y = 0.0;  // probability (> 0 to participate in the fit)
  double weight = 1.0;  // e.g. number of pairs in the bucket
};

/// Weighted least-squares fit of log y = log β + α·log x. Points with
/// non-positive x or y are skipped (log undefined); the fit needs at least
/// two usable points with distinct x.
Result<PowerLaw> FitPowerLaw(const std::vector<CurvePoint>& points);

/// Builds the Fig-3a curve from bucketed counts: `edge_counts[d]` edges and
/// `pair_counts[d]` user pairs in the d-th 1-mile bucket; probability is the
/// ratio. Buckets with fewer than `min_pairs` pairs or zero edges are
/// dropped (log-log fit cannot use them).
std::vector<CurvePoint> RatioCurve(const std::vector<double>& edge_counts,
                                   const std::vector<double>& pair_counts,
                                   double min_pairs = 1.0);

}  // namespace stats
}  // namespace mlp

#endif  // MLP_STATS_POWER_LAW_H_
