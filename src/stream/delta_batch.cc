#include "stream/delta_batch.h"

#include <cstdlib>
#include <filesystem>
#include <unordered_set>

#include "common/string_util.h"
#include "io/csv.h"

namespace mlp {
namespace stream {

namespace {

using io::ParseIntField;
using io::PathJoin;

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

}  // namespace

Result<DeltaBatch> LoadDeltaBatch(const std::string& directory) {
  std::error_code ec;
  if (!std::filesystem::is_directory(directory, ec)) {
    // A typo'd path must not pass as an (empty-delta) successful ingest.
    return Status::NotFound("delta directory does not exist: " + directory);
  }
  DeltaBatch batch;

  // users.csv — same columns SaveDataset writes; truth columns (if any)
  // are ignored: a delta carries observations, not ground truth.
  const std::string users_path = PathJoin(directory, "users.csv");
  if (FileExists(users_path)) {
    MLP_ASSIGN_OR_RETURN(auto rows, io::ReadCsvFile(users_path));
    for (size_t r = 1; r < rows.size(); ++r) {
      const auto& row = rows[r];
      if (row.size() < 3) {
        return Status::InvalidArgument("delta users.csv row too short");
      }
      graph::UserRecord record;
      record.handle = row[0];
      record.profile_location = row[1];
      MLP_ASSIGN_OR_RETURN(int city,
                           ParseIntField(row[2], "delta registered_city"));
      record.registered_city = static_cast<geo::CityId>(city);
      batch.users.push_back(std::move(record));
    }
  }

  const std::string follow_path = PathJoin(directory, "following.csv");
  if (FileExists(follow_path)) {
    MLP_ASSIGN_OR_RETURN(auto rows, io::ReadCsvFile(follow_path));
    for (size_t r = 1; r < rows.size(); ++r) {
      const auto& row = rows[r];
      if (row.size() < 2) {
        return Status::InvalidArgument("delta following.csv row too short");
      }
      graph::FollowingEdge edge;
      MLP_ASSIGN_OR_RETURN(edge.follower,
                           ParseIntField(row[0], "delta follower"));
      MLP_ASSIGN_OR_RETURN(edge.friend_user,
                           ParseIntField(row[1], "delta friend"));
      batch.following.push_back(edge);
    }
  }

  const std::string tweet_path = PathJoin(directory, "tweeting.csv");
  if (FileExists(tweet_path)) {
    MLP_ASSIGN_OR_RETURN(auto rows, io::ReadCsvFile(tweet_path));
    for (size_t r = 1; r < rows.size(); ++r) {
      const auto& row = rows[r];
      if (row.size() < 2) {
        return Status::InvalidArgument("delta tweeting.csv row too short");
      }
      graph::TweetingEdge edge;
      MLP_ASSIGN_OR_RETURN(edge.user, ParseIntField(row[0], "delta tweeter"));
      MLP_ASSIGN_OR_RETURN(edge.venue, ParseIntField(row[1], "delta venue"));
      batch.tweeting.push_back(edge);
    }
  }

  return batch;
}

Result<graph::SocialGraph> MergeDelta(const graph::SocialGraph& base,
                                      const DeltaBatch& delta) {
  const int base_users = base.num_users();
  const int merged_users = base_users + static_cast<int>(delta.users.size());
  const int num_venues = base.num_venues();

  // User identity is the handle: a delta "new user" colliding with an
  // existing one is a data error, not an update (profile edits are a
  // different operation than appending observations).
  std::unordered_set<std::string> handles;
  handles.reserve(base_users + delta.users.size());
  for (graph::UserId u = 0; u < base_users; ++u) {
    handles.insert(base.user(u).handle);
  }
  for (const graph::UserRecord& record : delta.users) {
    if (!handles.insert(record.handle).second) {
      return Status::InvalidArgument(StringPrintf(
          "delta user '%s' already exists — duplicate user ids are "
          "rejected, a delta may only append new users",
          record.handle.c_str()));
    }
  }

  auto check_user = [&](graph::UserId id, const char* what) -> Status {
    if (id < 0 || id >= merged_users) {
      return Status::InvalidArgument(StringPrintf(
          "delta %s references user %d but the merged world has %d users "
          "(0..%d)",
          what, id, merged_users, merged_users - 1));
    }
    return Status::OK();
  };

  graph::SocialGraph merged(num_venues);
  for (graph::UserId u = 0; u < base_users; ++u) {
    merged.AddUser(base.user(u));
  }
  for (const graph::UserRecord& record : delta.users) {
    merged.AddUser(record);
  }
  for (graph::EdgeId s = 0; s < base.num_following(); ++s) {
    const graph::FollowingEdge& edge = base.following(s);
    MLP_RETURN_NOT_OK(merged.AddFollowing(edge.follower, edge.friend_user));
  }
  for (const graph::FollowingEdge& edge : delta.following) {
    MLP_RETURN_NOT_OK(check_user(edge.follower, "following edge"));
    MLP_RETURN_NOT_OK(check_user(edge.friend_user, "following edge"));
    MLP_RETURN_NOT_OK(merged.AddFollowing(edge.follower, edge.friend_user));
  }
  for (graph::EdgeId k = 0; k < base.num_tweeting(); ++k) {
    const graph::TweetingEdge& edge = base.tweeting(k);
    MLP_RETURN_NOT_OK(merged.AddTweeting(edge.user, edge.venue));
  }
  for (const graph::TweetingEdge& edge : delta.tweeting) {
    MLP_RETURN_NOT_OK(check_user(edge.user, "tweeting edge"));
    if (edge.venue < 0 || edge.venue >= num_venues) {
      return Status::InvalidArgument(StringPrintf(
          "delta tweeting edge references unknown venue %d (vocabulary has "
          "%d venues) — the venue universe is fixed at fit time",
          edge.venue, num_venues));
    }
    MLP_RETURN_NOT_OK(merged.AddTweeting(edge.user, edge.venue));
  }
  merged.Finalize();
  return merged;
}

}  // namespace stream
}  // namespace mlp
