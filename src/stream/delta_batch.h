#ifndef MLP_STREAM_DELTA_BATCH_H_
#define MLP_STREAM_DELTA_BATCH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/social_graph.h"

namespace mlp {
namespace stream {

/// One batch of appended observations — new users, new following
/// relationships, new tweeting relationships — to absorb into a fitted
/// model (ISSUE 5 / ROADMAP "streaming updates").
///
/// A delta directory uses the SAME CSV formats io::dataset_io writes
/// (users.csv / following.csv / tweeting.csv, truth columns optional and
/// ignored). User ids in the edge files are GLOBAL: ids below the base
/// world's user count reference existing users, ids at or above it
/// reference this batch's users in file order (the first delta user gets
/// id base_users, the next base_users + 1, …). A missing edge file means
/// "no new edges of that kind".
struct DeltaBatch {
  std::vector<graph::UserRecord> users;
  std::vector<graph::FollowingEdge> following;
  std::vector<graph::TweetingEdge> tweeting;

  bool empty() const {
    return users.empty() && following.empty() && tweeting.empty();
  }
};

/// Parses a delta directory. Purely syntactic — id/venue range checks
/// happen in MergeDelta, where the base world is known.
Result<DeltaBatch> LoadDeltaBatch(const std::string& directory);

/// Builds the merged observation graph: the base graph's users and
/// relationships as a strict prefix (ids unchanged), the delta appended,
/// finalized. Fails with InvalidArgument on
///   - a delta user whose handle already exists (in the base world or
///     twice within the batch) — user identity is the handle,
///   - an edge referencing a user id outside the merged universe,
///   - a tweeting edge referencing a venue id outside the base
///     vocabulary (the venue universe is fixed at fit time),
///   - a self-follow.
/// The base graph is untouched.
Result<graph::SocialGraph> MergeDelta(const graph::SocialGraph& base,
                                      const DeltaBatch& delta);

}  // namespace stream
}  // namespace mlp

#endif  // MLP_STREAM_DELTA_BATCH_H_
