#include "stream/delta_ingest.h"

#include <utility>

#include "obs/fit_profile.h"
#include "obs/trace.h"

namespace mlp {
namespace stream {

Result<IngestOutput> ApplyDeltaBatch(const core::ModelInput& base_input,
                                     const core::FitCheckpoint& base_checkpoint,
                                     const core::MlpResult& base_result,
                                     const DeltaBatch& delta,
                                     const IngestOptions& options) {
  const int64_t merge_start_ns = obs::NowNs();
  MLP_ASSIGN_OR_RETURN(graph::SocialGraph merged,
                       MergeDelta(*base_input.graph, delta));
  obs::EndSpan(obs::Registry::Global().GetCounter(obs::kIngestMergeNs),
               "ingest_merge", merge_start_ns);
  // Ingest volume counters (ISSUE 9): how much the world grew, batch by
  // batch — scraped from /metricsz alongside the ingest phase timers.
  {
    obs::Registry& registry = obs::Registry::Global();
    registry.GetCounter(obs::kIngestBatchesTotal)->Add(1);
    registry.GetCounter(obs::kIngestUsersAddedTotal)->Add(delta.users.size());
    registry.GetCounter(obs::kIngestFollowingAddedTotal)
        ->Add(delta.following.size());
    registry.GetCounter(obs::kIngestTweetingAddedTotal)
        ->Add(delta.tweeting.size());
  }

  IngestOutput out;
  out.merged_graph = std::make_unique<graph::SocialGraph>(std::move(merged));
  // New users join the serving population with whatever label they carry:
  // a parsed registered city is observed supervision (the fit workflow's
  // full-supervision convention), kInvalidCity keeps them unlabeled.
  out.merged_observed_home = base_input.observed_home;
  for (const graph::UserRecord& record : delta.users) {
    out.merged_observed_home.push_back(record.registered_city);
  }

  core::ModelInput merged_input = base_input;
  merged_input.graph = out.merged_graph.get();
  merged_input.observed_home = out.merged_observed_home;

  core::FitOptions fit_options;
  fit_options.warm_start = &base_checkpoint;
  fit_options.checkpoint_out = &out.checkpoint;
  fit_options.delta_burn_sweeps = options.resample_burn;
  fit_options.delta_sampling_sweeps = options.resample_sampling;

  core::MlpModel model(base_checkpoint.config);
  MLP_ASSIGN_OR_RETURN(out.result,
                       model.ApplyDelta(base_input, merged_input, base_result,
                                        fit_options, &out.report));
  return out;
}

}  // namespace stream
}  // namespace mlp
