#ifndef MLP_STREAM_DELTA_INGEST_H_
#define MLP_STREAM_DELTA_INGEST_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/input.h"
#include "core/model.h"
#include "stream/delta_batch.h"

namespace mlp {
namespace stream {

/// Knobs for one ingest (the `mlpctl ingest` flags map 1:1 onto these).
struct IngestOptions {
  /// Warm resampling sweeps over the touched shards: burn absorbs the new
  /// evidence into the chain, sampling averages the refreshed posteriors.
  int resample_burn = 3;
  int resample_sampling = 5;
};

/// Everything one ingest produces. The merged graph is owned here because
/// the updated checkpoint/result are only meaningful against it — callers
/// keep the pair together (snapshot it, serve it, or ingest again).
struct IngestOutput {
  std::unique_ptr<graph::SocialGraph> merged_graph;  // finalized
  /// base observed homes + the delta users' registered cities.
  std::vector<geo::CityId> merged_observed_home;
  core::FitCheckpoint checkpoint;  // bound to the merged world
  core::MlpResult result;
  core::DeltaReport report;
};

/// The delta-ingest lifecycle in one call (see src/stream/README.md):
/// merge the batch into the base graph (MergeDelta validation), extend the
/// observed-home vector with the new users' registered cities, and drive
/// core::MlpModel::ApplyDelta — candidate migration, warm shard-scoped
/// resampling, result merge. `base_input` must be the world
/// `base_checkpoint` was fitted on (fingerprint-enforced); `base_result`
/// is the fit's stored result (untouched rows are carried from it
/// verbatim). An empty batch returns the base model unchanged.
Result<IngestOutput> ApplyDeltaBatch(const core::ModelInput& base_input,
                                     const core::FitCheckpoint& base_checkpoint,
                                     const core::MlpResult& base_result,
                                     const DeltaBatch& delta,
                                     const IngestOptions& options = {});

}  // namespace stream
}  // namespace mlp

#endif  // MLP_STREAM_DELTA_INGEST_H_
