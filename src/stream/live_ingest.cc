#include "stream/live_ingest.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "io/model_snapshot.h"
#include "obs/fit_profile.h"
#include "serve/json.h"
#include "stream/delta_batch.h"

namespace mlp {
namespace stream {

namespace fs = std::filesystem;

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t WallNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Age of `path` in milliseconds via its mtime — the batch's spool age,
/// i.e. how stale its data is by the time the swap publishes it. Clamped
/// at zero (a writer's clock may run ahead); -1 when the mtime is gone
/// (already moved).
int64_t FileAgeMs(const fs::path& path) {
  std::error_code ec;
  const fs::file_time_type mtime = fs::last_write_time(path, ec);
  if (ec) return -1;
  const auto age = fs::file_time_type::clock::now() - mtime;
  const int64_t ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(age).count();
  return std::max<int64_t>(0, ms);
}

/// Picks a non-colliding destination under `dir` for `name` (a re-spooled
/// batch may reuse a name already in done/ or failed/).
fs::path UniqueDestination(const fs::path& dir, const std::string& name) {
  fs::path dest = dir / name;
  std::error_code ec;
  for (int i = 2; fs::exists(dest, ec); ++i) {
    dest = dir / (name + "." + std::to_string(i));
  }
  return dest;
}

}  // namespace

LiveIngestor::LiveIngestor(serve::ModelServer* server,
                           const core::ModelInput& base_input,
                           core::FitCheckpoint checkpoint,
                           core::MlpResult result,
                           const LiveIngestOptions& options)
    : server_(server),
      base_input_(base_input),
      options_(options),
      observed_home_(base_input.observed_home),
      checkpoint_(std::move(checkpoint)),
      result_(std::move(result)) {
  obs::Registry& registry = obs::Registry::Global();
  spool_depth_ = registry.GetGauge(obs::kIngestSpoolDepth);
  swap_staleness_ms_ = registry.GetGauge(obs::kIngestSwapStalenessMs);
  live_batches_total_ = registry.GetCounter(obs::kIngestLiveBatchesTotal);
  failed_batches_total_ = registry.GetCounter(obs::kIngestFailedBatchesTotal);
  apply_ns_ = registry.GetHistogram(obs::kIngestApplyNs,
                                    obs::IngestApplyNsBounds());
  swap_ns_ = registry.GetHistogram(obs::kIngestSwapNs,
                                   obs::IngestSwapNsBounds());
}

LiveIngestor::~LiveIngestor() { Stop(); }

Status LiveIngestor::Start() {
  if (started_.load()) {
    return Status::FailedPrecondition("live ingestor already started");
  }
  if (options_.spool_dir.empty()) {
    return Status::InvalidArgument("live ingest needs a spool directory");
  }
  if (options_.poll_ms <= 0) {
    return Status::InvalidArgument("live ingest poll interval must be > 0");
  }
  if (options_.checkpoint_every > 0 && options_.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "checkpoint_every needs a checkpoint path");
  }
  // Fail fast, on THIS thread: a typo'd or read-only spool is a startup
  // error the operator sees immediately, not a watcher-thread log line.
  std::error_code ec;
  if (!fs::is_directory(options_.spool_dir, ec)) {
    return Status::NotFound("spool directory does not exist: " +
                            options_.spool_dir);
  }
  const fs::path spool(options_.spool_dir);
  for (const char* sub : {"done", "failed"}) {
    fs::create_directories(spool / sub, ec);
    if (ec) {
      return Status::IOError(StringPrintf(
          "cannot create %s/%s: %s", options_.spool_dir.c_str(), sub,
          ec.message().c_str()));
    }
  }
  // create_directories succeeds without writing when the directory already
  // exists, so probe writability explicitly — quarantine moves and done/
  // moves both need it.
  const fs::path probe = spool / ".write-probe";
  std::FILE* f = std::fopen(probe.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("spool directory is not writable: " +
                           options_.spool_dir);
  }
  std::fclose(f);
  fs::remove(probe, ec);

  started_.store(true);
  thread_ = std::thread(&LiveIngestor::Run, this);
  return Status::OK();
}

void LiveIngestor::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (!options_.checkpoint_path.empty()) {
    // Drain-time checkpoint: whatever the daemon absorbed survives the
    // shutdown as an ordinary loadable snapshot.
    Status saved = SaveSnapshot(options_.checkpoint_path);
    if (!saved.ok()) {
      MLP_LOG(kError) << "drain checkpoint failed: " << saved.ToString();
    } else {
      MLP_LOG(kInfo) << "live ingest drained: checkpoint -> "
                     << options_.checkpoint_path;
    }
  }
}

void LiveIngestor::Run() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      if (stop_requested_) return;
    }
    ScanOnce();
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_ms),
                      [this] { return stop_requested_; });
    if (stop_requested_) return;
  }
}

void LiveIngestor::ScanOnce() {
  std::vector<std::string> pending;
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(options_.spool_dir, ec)) {
    if (ec) break;
    if (!entry.is_directory(ec)) continue;
    const std::string name = entry.path().filename().string();
    // tmp.* is a writer still staging; done/failed are our own output.
    if (name.rfind("batch-", 0) != 0) continue;
    if (stuck_.count(name) != 0) continue;
    pending.push_back(name);
  }
  // Lexicographic order is the protocol's apply order — writers that need
  // ordering encode it in the name (batch-0001, batch-0002, ...).
  std::sort(pending.begin(), pending.end());
  spool_depth_->Set(static_cast<int64_t>(pending.size()));
  for (size_t i = 0; i < pending.size(); ++i) {
    {
      // A drain finishes the batch being applied, not the whole backlog.
      std::lock_guard<std::mutex> lock(wake_mu_);
      if (stop_requested_) return;
    }
    ProcessBatch(pending[i]);
    spool_depth_->Set(static_cast<int64_t>(pending.size() - i - 1));
  }
}

void LiveIngestor::ProcessBatch(const std::string& name) {
  const fs::path batch_dir = fs::path(options_.spool_dir) / name;

  Result<DeltaBatch> delta = LoadDeltaBatch(batch_dir.string());
  if (!delta.ok()) {
    Quarantine(name, "load", delta.status());
    return;
  }

  // Apply + rebuild against a private copy of the serving state; nothing
  // the server can observe mutates until the atomic swap below.
  const int64_t apply_start_ns = SteadyNowNs();
  std::unique_lock<std::mutex> state_lock(state_mu_);
  Result<IngestOutput> out = ApplyDeltaBatch(CurrentInputLocked(), checkpoint_,
                                             result_, *delta, options_.ingest);
  state_lock.unlock();
  if (!out.ok()) {
    Quarantine(name, "apply", out.status());
    return;
  }

  core::ModelInput merged_input = base_input_;
  merged_input.graph = out->merged_graph.get();
  merged_input.observed_home = out->merged_observed_home;
  io::ModelSnapshot snapshot =
      io::MakeModelSnapshot(merged_input, out->checkpoint, out->result);
  Result<serve::ReadModel> model =
      serve::ReadModel::Build(snapshot, *out->merged_graph,
                              base_input_.gazetteer, options_.read_model);
  if (!model.ok()) {
    Quarantine(name, "build", model.status());
    return;
  }
  apply_ns_->Record(SteadyNowNs() - apply_start_ns);

  // Swap-visible staleness: how old the batch's bytes are at the moment
  // queries can first see them.
  const int64_t staleness_ms = FileAgeMs(batch_dir);

  const int64_t swap_start_ns = SteadyNowNs();
  server_->SwapReadModel(std::move(*model));
  swap_ns_->Record(SteadyNowNs() - swap_start_ns);
  if (staleness_ms >= 0) {
    swap_staleness_ms_->Set(staleness_ms);
    int64_t prev = max_swap_staleness_ms_.load(std::memory_order_relaxed);
    while (staleness_ms > prev &&
           !max_swap_staleness_ms_.compare_exchange_weak(
               prev, staleness_ms, std::memory_order_relaxed)) {
    }
  }

  // The swap published; commit the matching fit state.
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    graph_ = std::move(out->merged_graph);
    observed_home_ = std::move(out->merged_observed_home);
    checkpoint_ = std::move(out->checkpoint);
    result_ = std::move(out->result);
  }

  // done/ move comes strictly AFTER the swap: a crash anywhere above
  // leaves the batch in the spool, and a restart re-applies it — a
  // half-built model is never the published one. (The flip side: a crash
  // between swap and this rename re-applies an already-applied batch on
  // restart, which then quarantines on its duplicate handles — receipts
  // make that visible instead of silent.)
  std::error_code ec;
  const fs::path dest =
      UniqueDestination(fs::path(options_.spool_dir) / "done", name);
  fs::rename(batch_dir, dest, ec);
  if (ec) {
    MLP_LOG(kError) << "applied batch " << name
                    << " could not move to done/: " << ec.message();
    stuck_.insert(name);
  }

  live_batches_total_->Add(1);
  batches_applied_.fetch_add(1, std::memory_order_release);
  MLP_LOG(kInfo) << "live ingest applied " << name << ": +"
                 << delta->users.size() << " users, generation "
                 << server_->model_generation() << ", staleness "
                 << staleness_ms << "ms";

  if (options_.checkpoint_every > 0 &&
      ++applied_since_checkpoint_ >=
          static_cast<uint64_t>(options_.checkpoint_every)) {
    applied_since_checkpoint_ = 0;
    Status saved = SaveSnapshot(options_.checkpoint_path);
    if (!saved.ok()) {
      MLP_LOG(kError) << "periodic checkpoint failed: " << saved.ToString();
    }
  }
}

void LiveIngestor::Quarantine(const std::string& name,
                              const std::string& stage, const Status& error) {
  const fs::path spool(options_.spool_dir);
  const fs::path dest = UniqueDestination(spool / "failed", name);
  std::error_code ec;
  fs::rename(spool / name, dest, ec);
  if (ec) {
    // Can't move it aside: remember the name so the watcher doesn't spin
    // on it every poll, and surface the original failure anyway.
    stuck_.insert(name);
    MLP_LOG(kError) << "batch " << name << " failed (" << stage << ": "
                    << error.ToString() << ") and could not be quarantined: "
                    << ec.message();
  } else {
    // Machine-readable receipt next to the offending files, so an
    // operator (or the CI live-pipeline job) can see what was rejected
    // and why without scraping server logs.
    serve::JsonWriter w;
    w.BeginObject();
    w.Key("batch");
    w.String(name);
    w.Key("stage");
    w.String(stage);
    w.Key("error");
    w.String(error.ToString());
    w.Key("quarantined_unix_ms");
    w.Int(WallNowMs());
    w.EndObject();
    const std::string receipt = std::move(w).Take();
    std::FILE* f = std::fopen((dest / "receipt.json").c_str(), "w");
    if (f != nullptr) {
      std::fwrite(receipt.data(), 1, receipt.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
    MLP_LOG(kError) << "batch " << name << " quarantined to failed/ ("
                    << stage << "): " << error.ToString();
  }
  failed_batches_total_->Add(1);
  batches_failed_.fetch_add(1, std::memory_order_release);
}

core::ModelInput LiveIngestor::CurrentInputLocked() const {
  core::ModelInput input = base_input_;
  if (graph_ != nullptr) input.graph = graph_.get();
  input.observed_home = observed_home_;
  return input;
}

Status LiveIngestor::SaveSnapshot(const std::string& path) {
  std::lock_guard<std::mutex> lock(state_mu_);
  const io::ModelSnapshot snapshot =
      io::MakeModelSnapshot(CurrentInputLocked(), checkpoint_, result_);
  return io::SaveModelSnapshot(path, snapshot);
}

bool LiveIngestor::WaitForApplied(uint64_t n, int timeout_ms) const {
  const int64_t deadline = SteadyNowNs() + int64_t{timeout_ms} * 1000000;
  while (batches_applied_.load(std::memory_order_acquire) < n) {
    if (SteadyNowNs() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

bool LiveIngestor::WaitForFailed(uint64_t n, int timeout_ms) const {
  const int64_t deadline = SteadyNowNs() + int64_t{timeout_ms} * 1000000;
  while (batches_failed_.load(std::memory_order_acquire) < n) {
    if (SteadyNowNs() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

}  // namespace stream
}  // namespace mlp
