#ifndef MLP_STREAM_LIVE_INGEST_H_
#define MLP_STREAM_LIVE_INGEST_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/input.h"
#include "core/model.h"
#include "obs/metrics.h"
#include "serve/model_server.h"
#include "serve/read_model.h"
#include "stream/delta_ingest.h"

namespace mlp {
namespace stream {

/// Knobs for the live ingest daemon (the `mlpctl serve --spool*` flags map
/// 1:1 onto these).
struct LiveIngestOptions {
  /// Directory watched for delta-batch subdirectories. Writers MUST use
  /// the rename-in protocol (see src/stream/README.md): stage under
  /// `tmp.*`, then rename to `batch-*` — the rename is the commit point.
  std::string spool_dir;
  /// Poll interval between spool scans.
  int poll_ms = 200;
  /// Warm-resample knobs forwarded to ApplyDeltaBatch. Defaults match
  /// `mlpctl ingest`, so a live-spooled batch and an offline ingest of the
  /// same delta produce byte-identical models.
  IngestOptions ingest;
  /// Forwarded to ReadModel::Build for each swapped-in model.
  serve::ReadModelOptions read_model;
  /// > 0: snapshot the evolving model to `checkpoint_path` every K applied
  /// batches (in addition to the drain-time checkpoint).
  int checkpoint_every = 0;
  /// Non-empty: snapshot destination; Stop() always writes a final
  /// checkpoint here after the drain. Empty disables checkpointing.
  std::string checkpoint_path;
};

/// The one-process ingest+serve daemon (ISSUE 10 / ROADMAP "one-process
/// ingest+serve daemon"): a background thread attached to a running
/// serve::ModelServer that watches a spool directory for delta batches,
/// applies each with stream::ApplyDeltaBatch (candidate migration +
/// shard-scoped warm resample) against its own evolving
/// (graph, checkpoint, result) state, and atomically publishes the
/// post-delta ReadModel with ModelServer::SwapReadModel — queries are
/// never interrupted and no snapshot round-trip happens on the data path.
///
/// Spool protocol (full schema in src/stream/README.md):
///   - writers create `spool/tmp.<anything>`, fill in the delta CSVs, then
///     rename to `spool/batch-<name>` — rename(2) is atomic, so a visible
///     `batch-*` directory is always complete;
///   - batches are applied in lexicographic name order;
///   - an applied batch is moved to `spool/done/` AFTER its model swap
///     publishes (a crash between apply and swap therefore re-applies the
///     batch on restart instead of ever publishing a half-built model);
///   - a batch that fails to load, merge or apply is moved to
///     `spool/failed/` with a `receipt.json` describing the failure, and
///     the served model is left untouched — the watcher keeps running.
///
/// Threading: one watcher thread owns all mutable fit state; the server's
/// request threads only ever see immutable ReadModels through the atomic
/// publish, and `state_mu_` serializes the watcher against SaveSnapshot()
/// calls from other threads (tests, the drain path).
class LiveIngestor {
 public:
  /// `server` must outlive this object. `base_input` describes the world
  /// the server currently serves: the gazetteer/distances/referents
  /// pointers must stay valid for the ingestor's lifetime (the caller owns
  /// them, exactly like ApplyDeltaBatch); the graph pointer is only used
  /// until the first batch replaces it with an owned merged graph.
  /// `checkpoint`/`result` are the fitted state the snapshot was loaded
  /// with — moved in, the ingestor's copies evolve batch by batch.
  LiveIngestor(serve::ModelServer* server, const core::ModelInput& base_input,
               core::FitCheckpoint checkpoint, core::MlpResult result,
               const LiveIngestOptions& options);

  LiveIngestor(const LiveIngestor&) = delete;
  LiveIngestor& operator=(const LiveIngestor&) = delete;
  /// Stops the watcher (drain semantics, see Stop()).
  ~LiveIngestor();

  /// Validates the spool synchronously — the directory must exist and be
  /// writable (done/ and failed/ are created here) — then starts the
  /// watcher thread. A bad spool therefore fails fast at startup with
  /// NotFound/IOError, never later inside the watcher.
  Status Start();

  /// Graceful drain: the in-flight batch (if any) finishes applying and
  /// swapping, remaining spooled batches are left for the next run, the
  /// thread joins, and — when `checkpoint_path` is set — a final snapshot
  /// of the current model is written. Idempotent.
  void Stop();

  uint64_t batches_applied() const {
    return batches_applied_.load(std::memory_order_relaxed);
  }
  uint64_t batches_failed() const {
    return batches_failed_.load(std::memory_order_relaxed);
  }
  /// Largest swap-visible staleness seen so far: now − batch mtime at the
  /// moment its swap published, in milliseconds (bench_live_ingest's
  /// "staleness bounded" acceptance metric).
  int64_t max_swap_staleness_ms() const {
    return max_swap_staleness_ms_.load(std::memory_order_relaxed);
  }

  /// Test/bench helpers: block until the applied/failed counter reaches
  /// `n` or `timeout_ms` elapses. Return whether the count was reached.
  bool WaitForApplied(uint64_t n, int timeout_ms) const;
  bool WaitForFailed(uint64_t n, int timeout_ms) const;

  /// Snapshots the CURRENT model (base + every applied batch) to `path` —
  /// the same io::SaveModelSnapshot format `mlpctl fit --save` writes, and
  /// byte-identical to offline `mlpctl ingest` of the same deltas. Safe
  /// from any thread.
  Status SaveSnapshot(const std::string& path);

 private:
  void Run();
  /// One spool scan: list pending batch-* directories, update the depth
  /// gauge, process them in name order (checking the stop flag between
  /// batches, so a drain finishes the in-flight batch only).
  void ScanOnce();
  void ProcessBatch(const std::string& name);
  /// Moves spool/<name> to failed/ and drops a receipt.json beside the
  /// batch files; the served model is untouched by design.
  void Quarantine(const std::string& name, const std::string& stage,
                  const Status& error);
  /// The evolving world as a ModelInput (borrows base pointers, current
  /// graph + observed homes). Caller must hold state_mu_.
  core::ModelInput CurrentInputLocked() const;

  serve::ModelServer* server_;
  core::ModelInput base_input_;
  LiveIngestOptions options_;

  /// Evolving fit state, owned by the watcher, guarded by state_mu_
  /// against SaveSnapshot readers. graph_ is null until the first batch
  /// (base_input_.graph serves as generation 1).
  mutable std::mutex state_mu_;
  std::unique_ptr<graph::SocialGraph> graph_;
  std::vector<geo::CityId> observed_home_;
  core::FitCheckpoint checkpoint_;
  core::MlpResult result_;

  std::thread thread_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  std::atomic<uint64_t> batches_applied_{0};
  std::atomic<uint64_t> batches_failed_{0};
  std::atomic<int64_t> max_swap_staleness_ms_{0};
  uint64_t applied_since_checkpoint_ = 0;
  /// Batches that failed but could not be renamed into failed/ (e.g. the
  /// quarantine rename itself failed) — skipped on later scans so one
  /// stuck batch cannot hot-loop the watcher.
  std::set<std::string> stuck_;

  // Registry-owned handles, resolved once (see src/obs/README.md).
  obs::Gauge* spool_depth_;
  obs::Gauge* swap_staleness_ms_;
  obs::Counter* live_batches_total_;
  obs::Counter* failed_batches_total_;
  obs::Histogram* apply_ns_;
  obs::Histogram* swap_ns_;
};

}  // namespace stream
}  // namespace mlp

#endif  // MLP_STREAM_LIVE_INGEST_H_
