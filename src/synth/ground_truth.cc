#include "synth/ground_truth.h"

#include "common/logging.h"

namespace mlp {
namespace synth {

geo::CityId SampleLocation(const TrueProfile& profile, Pcg32* rng) {
  MLP_CHECK(!profile.locations.empty());
  int idx = rng->Categorical(profile.weights);
  if (idx < 0) idx = 0;
  return profile.locations[idx];
}

}  // namespace synth
}  // namespace mlp
