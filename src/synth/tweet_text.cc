#include "synth/tweet_text.h"

#include "common/logging.h"

namespace mlp {
namespace synth {

namespace {
// No template word may appear in the venue vocabulary (city names or
// landmarks); see TweetTextRoundtrip tests.
constexpr const char* kTemplates[] = {
    "good day from %s!",
    "cant wait to visit %s next week",
    "just got back from %s",
    "missing %s so much right now",
    "great evening out in %s tonight",
    "traffic around %s is crazy today",
    "whos coming to %s this weekend?",
    "lovely sky over %s",
    "quick stop in %s",
    "finally heading to %s again",
};
constexpr int kNumTemplates =
    static_cast<int>(sizeof(kTemplates) / sizeof(kTemplates[0]));
}  // namespace

TweetTextSynthesizer::TweetTextSynthesizer(uint64_t seed)
    : rng_(seed, 0xabcdef1234567ULL) {}

std::string TweetTextSynthesizer::Render(const std::string& venue_name) {
  const char* pattern = kTemplates[rng_.UniformInt(0, kNumTemplates - 1)];
  int size = std::snprintf(nullptr, 0, pattern, venue_name.c_str());
  MLP_CHECK(size > 0);
  std::string out(static_cast<size_t>(size), '\0');
  std::snprintf(out.data(), out.size() + 1, pattern, venue_name.c_str());
  return out;
}

std::vector<std::string> TweetTextSynthesizer::RenderTimeline(
    const SyntheticWorld& world, graph::UserId user) {
  std::vector<std::string> tweets;
  for (graph::EdgeId k : world.graph->TweetEdges(user)) {
    const graph::TweetingEdge& edge = world.graph->tweeting(k);
    tweets.push_back(Render(world.vocab->venue(edge.venue).name));
  }
  return tweets;
}

}  // namespace synth
}  // namespace mlp
