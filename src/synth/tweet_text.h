#ifndef MLP_SYNTH_TWEET_TEXT_H_
#define MLP_SYNTH_TWEET_TEXT_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "graph/social_graph.h"
#include "synth/world.h"

namespace mlp {
namespace synth {

/// Renders tweet text around venue mentions. Templates deliberately contain
/// no vocabulary words, so running text::VenueExtractor over the rendered
/// tweets recovers exactly the venue multiset that generated them — the
/// end-to-end text-pipeline tests rely on this roundtrip.
class TweetTextSynthesizer {
 public:
  explicit TweetTextSynthesizer(uint64_t seed = 7);

  /// One tweet mentioning `venue_name`.
  std::string Render(const std::string& venue_name);

  /// A user's full timeline: one tweet per tweeting relationship of `user`
  /// in `world.graph`, in edge order.
  std::vector<std::string> RenderTimeline(const SyntheticWorld& world,
                                          graph::UserId user);

 private:
  Pcg32 rng_;
};

}  // namespace synth
}  // namespace mlp

#endif  // MLP_SYNTH_TWEET_TEXT_H_
