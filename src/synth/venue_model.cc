#include "synth/venue_model.h"

#include <cmath>

#include "common/logging.h"
#include "stats/discrete.h"

namespace mlp {
namespace synth {

TrueVenueModel::TrueVenueModel(const geo::Gazetteer& gazetteer,
                               const text::VenueVocabulary& vocab,
                               const geo::CityDistanceMatrix& distances,
                               const VenueModelParams& params) {
  const int num_venues = vocab.size();
  const int num_cities = gazetteer.size();
  MLP_CHECK(num_venues > 0 && num_cities > 0);
  MLP_CHECK(std::abs(params.local_mass + params.global_mass +
                     params.uniform_mass - 1.0) < 1e-9);

  // Global popularity: a venue is popular in proportion to the population
  // of its referent cities, superlinearly (big-city venues dominate chatter).
  global_.assign(num_venues, 0.0);
  for (int v = 0; v < num_venues; ++v) {
    for (geo::CityId r : vocab.venue(v).referents) {
      global_[v] +=
          std::pow(static_cast<double>(gazetteer.city(r).population), 1.1);
    }
  }
  stats::NormalizeInPlace(&global_);

  per_city_.assign(num_cities, {});
  const double uniform = 1.0 / static_cast<double>(num_venues);
  for (geo::CityId c = 0; c < num_cities; ++c) {
    // Local component: venues decay exponentially with the distance from
    // this city to their nearest referent; the city's own name is boosted.
    std::vector<double> local(num_venues, 0.0);
    for (int v = 0; v < num_venues; ++v) {
      double best = 0.0;
      for (geo::CityId r : vocab.venue(v).referents) {
        double w = std::exp(-distances.raw_miles(c, r) / params.decay_miles);
        if (r == c) w *= params.own_city_boost;
        if (w > best) best = w;
      }
      local[v] = best;
    }
    stats::NormalizeInPlace(&local);

    std::vector<double>& psi = per_city_[c];
    psi.assign(num_venues, 0.0);
    for (int v = 0; v < num_venues; ++v) {
      psi[v] = params.local_mass * local[v] + params.global_mass * global_[v] +
               params.uniform_mass * uniform;
    }
  }
}

}  // namespace synth
}  // namespace mlp
