#ifndef MLP_SYNTH_VENUE_MODEL_H_
#define MLP_SYNTH_VENUE_MODEL_H_

#include <vector>

#include "geo/distance_matrix.h"
#include "geo/gazetteer.h"
#include "text/venue_vocab.h"

namespace mlp {
namespace synth {

/// Construction parameters for the true per-city tweeting distributions
/// ψ_true (mirrors WorldConfig's tweeting block).
struct VenueModelParams {
  double local_mass = 0.60;
  double global_mass = 0.30;
  double uniform_mass = 0.10;
  double decay_miles = 50.0;
  double own_city_boost = 3.0;
};

/// The true location-based tweeting models: one multinomial over venues V
/// per city, matching the paper's Fig-3(b) observations — a city's own and
/// nearby venues carry high mass, far-but-popular venues (Hollywood seen
/// from Austin) carry small-but-nonzero mass, and mass is not monotonic in
/// distance.
class TrueVenueModel {
 public:
  TrueVenueModel(const geo::Gazetteer& gazetteer,
                 const text::VenueVocabulary& vocab,
                 const geo::CityDistanceMatrix& distances,
                 const VenueModelParams& params);

  /// ψ_true(city): normalized venue distribution (size = vocab.size()).
  const std::vector<double>& CityDistribution(geo::CityId city) const {
    return per_city_[city];
  }

  /// The global popularity distribution — also the generator's random
  /// tweeting model TR_true.
  const std::vector<double>& GlobalPopularity() const { return global_; }

  int num_venues() const { return static_cast<int>(global_.size()); }

 private:
  std::vector<std::vector<double>> per_city_;
  std::vector<double> global_;
};

}  // namespace synth
}  // namespace mlp

#endif  // MLP_SYNTH_VENUE_MODEL_H_
