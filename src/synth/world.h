#ifndef MLP_SYNTH_WORLD_H_
#define MLP_SYNTH_WORLD_H_

#include <memory>

#include "geo/distance_matrix.h"
#include "geo/gazetteer.h"
#include "graph/social_graph.h"
#include "synth/ground_truth.h"
#include "synth/world_config.h"
#include "text/venue_vocab.h"

namespace mlp {
namespace synth {

/// A generated dataset: gazetteer (candidate locations L), venue vocabulary
/// V, the observation graph (f 1:S and t 1:K plus registered locations), and
/// the hidden ground truth the evaluation compares against.
///
/// Held behind unique_ptr members so the world is cheap to move while the
/// graph and matrices stay address-stable for the model classes that keep
/// pointers into them.
struct SyntheticWorld {
  WorldConfig config;
  std::unique_ptr<geo::Gazetteer> gazetteer;
  std::unique_ptr<geo::CityDistanceMatrix> distances;
  std::unique_ptr<text::VenueVocabulary> vocab;
  std::unique_ptr<graph::SocialGraph> graph;
  GroundTruth truth;
};

}  // namespace synth
}  // namespace mlp

#endif  // MLP_SYNTH_WORLD_H_
