#ifndef MLP_SYNTH_WORLD_CONFIG_H_
#define MLP_SYNTH_WORLD_CONFIG_H_

#include <cstdint>

namespace mlp {
namespace synth {

/// Parameters of the synthetic Twitter world. Defaults are calibrated to
/// the statistics the paper reports for its May-2011 crawl (Sec. 5:
/// 14.8 friends and 29.0 tweeted venues per user; Sec. 4.1: following
/// probability is a power law with α=-0.55; Sec. 5.2: multi-location users
/// average 2 locations).
struct WorldConfig {
  int num_users = 4000;
  uint64_t seed = 42;

  // ---- ground-truth location profiles ----
  /// Fraction of users with at least two long-term locations.
  double multi_location_fraction = 0.35;
  /// P(stop) after each additional location (geometric); with 0.65 the
  /// multi-location users average ≈2.15 locations, near the paper's 2.
  double extra_location_stop_prob = 0.65;
  int max_locations = 4;
  /// θ_true mass on the home location for multi-location users.
  double primary_weight = 0.7;
  /// Fraction of extra locations drawn population-weighted anywhere
  /// (relocation/college pattern); the rest are regional (within
  /// `nearby_radius_miles`).
  double faraway_extra_fraction = 0.7;
  double min_extra_distance_miles = 150.0;
  double nearby_radius_miles = 300.0;

  // ---- following network ----
  double avg_friends = 14.8;
  /// True ρf: fraction of follows not generated from locations.
  double following_noise_fraction = 0.15;
  /// Power-law exponent of the location-based following model (Fig. 3a).
  double following_alpha = -0.55;
  /// Finite-size correction: multiplier on the SAME-city target weight in
  /// the edge generator. The paper's Fig-3a fit applied to its 630k-user
  /// population implies same-city edges dominate real Twitter (same-city
  /// pair counts scale with n_c², which vanishes in a few-thousand-user
  /// simulation). Boosting the diagonal restores the real edge-distance
  /// mixture (~55% same-city at the default) without touching the
  /// power-law tail shape. See DESIGN.md.
  double same_city_boost = 6.0;
  /// Number of celebrity accounts that absorb most noisy follows.
  int num_celebrities = 25;
  /// Zipf exponent for celebrity popularity.
  double celebrity_zipf_exponent = 1.1;
  /// Among noisy follows, fraction aimed at celebrities (rest uniform).
  double celebrity_noise_share = 0.8;

  // ---- tweeting content ----
  double avg_tweeted_venues = 29.0;
  /// True ρt: fraction of venue tweets not generated from locations.
  double tweeting_noise_fraction = 0.15;
  /// ψ_true mixture: local distance-decayed venues, globally popular
  /// venues, uniform smoothing. Must sum to 1.
  double local_mass = 0.60;
  double global_mass = 0.30;
  double uniform_mass = 0.10;
  /// Exponential decay scale (miles) of the local venue component.
  double venue_decay_miles = 50.0;
  /// Multiplier on a city's own name within its local component.
  double own_city_boost = 3.0;

  // ---- registered profile strings ----
  /// Fraction of users whose profile location is nonsensical/general/blank
  /// (these parse to "unlabeled", mimicking the 84% of Twitter).
  double unparseable_profile_fraction = 0.10;
  /// Fraction of users whose registered location parses cleanly but names
  /// the WRONG city (stale moves, joke locations). The paper: "We are
  /// aware that some registered locations are incorrect, but we believe
  /// they are rare." These users' own evaluation uses the registered label
  /// (as in the paper), but their wrong label also corrupts the evidence
  /// their neighbors see.
  double wrong_label_fraction = 0.05;
};

}  // namespace synth
}  // namespace mlp

#endif  // MLP_SYNTH_WORLD_CONFIG_H_
