#include "synth/world_generator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "io/dataset_io.h"
#include "stats/alias_table.h"
#include "synth/venue_model.h"
#include "text/profile_parser.h"

namespace mlp {
namespace synth {

namespace {

using geo::CityId;
using graph::UserId;

/// Phrases that fail the "city, state" parsing rules — the nonsensical,
/// general, or blank registered locations the paper describes.
constexpr const char* kUnparseableProfiles[] = {
    "my home",   "CA",          "",           "earth",
    "USA",       "worldwide",   "best coast", "in your heart",
    "somewhere", "the universe"};

class WorldGenerator {
 public:
  explicit WorldGenerator(const WorldConfig& config)
      : config_(config), rng_(config.seed, 0x9e3779b97f4a7c15ULL) {}

  Result<SyntheticWorld> Generate() {
    MLP_RETURN_NOT_OK(Validate());
    Setup();
    world_.graph =
        std::make_unique<graph::SocialGraph>(world_.vocab->size());

    GenerateProfiles();
    PickCelebrities();
    GenerateProfileStrings();
    GenerateFollowing();
    GenerateTweeting();
    world_.graph->Finalize();
    return std::move(world_);
  }

  /// Streamed mode: same generative story, but users and edges go straight
  /// to the dataset CSVs — the graph and per-edge truth never exist in
  /// memory. Pass 1 (GenerateProfiles) still materializes the compact true
  /// profiles: the per-city user mass the edge generator samples from needs
  /// every profile before the first edge can be drawn.
  Result<StreamWorldStats> Stream(const std::string& directory,
                                  int chunk_users) {
    MLP_RETURN_NOT_OK(Validate());
    if (chunk_users < 1) {
      return Status::InvalidArgument("chunk_users must be >= 1");
    }
    Setup();
    GenerateProfiles();
    PickCelebrities();
    PrepareVenueModel();

    MLP_ASSIGN_OR_RETURN(io::DatasetStreamWriter writer,
                         io::DatasetStreamWriter::Open(directory,
                                                       /*with_truth=*/true));
    StreamWorldStats stats;
    Status write_status = Status::OK();
    auto note = [&write_status](Status status) {
      if (write_status.ok() && !status.ok()) write_status = status;
    };
    for (int u = 0; u < config_.num_users; ++u) {
      graph::UserRecord record = MakeUserRecord(u);
      if (record.registered_city != geo::kInvalidCity) ++stats.num_labeled;
      note(writer.AppendUser(record, &world_.truth.profiles[u]));
      FollowingForUser(u, [&](UserId j, const FollowingTruth& truth) {
        note(writer.AppendFollowing(u, j, &truth));
      });
      TweetingForUser(u, [&](int venue, const TweetingTruth& truth) {
        note(writer.AppendTweeting(u, venue, &truth));
      });
      if ((u + 1) % chunk_users == 0 || u + 1 == config_.num_users) {
        ++stats.chunks;
        MLP_LOG(kInfo) << "streamed " << (u + 1) << "/" << config_.num_users
                      << " users (" << writer.following_written()
                      << " following, " << writer.tweeting_written()
                      << " tweeting)";
      }
    }
    stats.num_users = writer.users_written();
    stats.num_following = writer.following_written();
    stats.num_tweeting = writer.tweeting_written();
    MLP_RETURN_NOT_OK(write_status);
    MLP_RETURN_NOT_OK(writer.Close());
    return stats;
  }

 private:
  /// World-level context shared by both modes: gazetteer, distances, venue
  /// vocabulary. No graph — streaming mode never creates one.
  void Setup() {
    world_.config = config_;
    world_.gazetteer =
        std::make_unique<geo::Gazetteer>(geo::Gazetteer::FromEmbedded());
    world_.distances = std::make_unique<geo::CityDistanceMatrix>(
        *world_.gazetteer, /*floor_miles=*/1.0);
    world_.vocab = std::make_unique<text::VenueVocabulary>(
        text::VenueVocabulary::Build(*world_.gazetteer));
  }

  Status Validate() const {
    if (config_.num_users < 2) {
      return Status::InvalidArgument("num_users must be >= 2");
    }
    if (config_.primary_weight <= 0.0 || config_.primary_weight > 1.0) {
      return Status::InvalidArgument("primary_weight must be in (0, 1]");
    }
    if (config_.max_locations < 1) {
      return Status::InvalidArgument("max_locations must be >= 1");
    }
    if (std::abs(config_.local_mass + config_.global_mass +
                 config_.uniform_mass - 1.0) > 1e-9) {
      return Status::InvalidArgument("venue mixture masses must sum to 1");
    }
    if (config_.following_alpha >= 0.0) {
      return Status::InvalidArgument("following_alpha must be negative");
    }
    return Status::OK();
  }

  void GenerateProfiles() {
    const geo::Gazetteer& gaz = *world_.gazetteer;
    stats::AliasTable population_alias(gaz.PopulationWeights());
    world_.truth.profiles.resize(config_.num_users);

    for (int u = 0; u < config_.num_users; ++u) {
      TrueProfile& profile = world_.truth.profiles[u];
      CityId home = population_alias.Sample(&rng_);
      profile.locations.push_back(home);

      int extra = 0;
      if (config_.max_locations > 1 &&
          rng_.Bernoulli(config_.multi_location_fraction)) {
        extra = 1;
        while (extra < config_.max_locations - 1 &&
               !rng_.Bernoulli(config_.extra_location_stop_prob)) {
          ++extra;
        }
      }
      for (int e = 0; e < extra; ++e) {
        CityId loc = rng_.Bernoulli(config_.faraway_extra_fraction)
                         ? SampleFarawayCity(profile, population_alias)
                         : SampleNearbyCity(home);
        if (loc == geo::kInvalidCity) continue;
        if (std::find(profile.locations.begin(), profile.locations.end(),
                      loc) != profile.locations.end()) {
          continue;
        }
        profile.locations.push_back(loc);
      }

      const size_t n = profile.locations.size();
      profile.weights.assign(n, 0.0);
      if (n == 1) {
        profile.weights[0] = 1.0;
      } else {
        profile.weights[0] = config_.primary_weight;
        double rest = (1.0 - config_.primary_weight) /
                      static_cast<double>(n - 1);
        for (size_t i = 1; i < n; ++i) profile.weights[i] = rest;
      }
    }

    // Per-city user mass and membership, used by both generators below.
    const int num_cities = gaz.size();
    city_mass_.assign(num_cities, 0.0);
    city_users_.assign(num_cities, {});
    city_user_weights_.assign(num_cities, {});
    for (int u = 0; u < config_.num_users; ++u) {
      const TrueProfile& p = world_.truth.profiles[u];
      for (size_t i = 0; i < p.locations.size(); ++i) {
        CityId c = p.locations[i];
        city_mass_[c] += p.weights[i];
        city_users_[c].push_back(u);
        city_user_weights_[c].push_back(p.weights[i]);
      }
    }
    city_user_alias_.resize(num_cities);
    for (int c = 0; c < num_cities; ++c) {
      if (!city_users_[c].empty()) {
        city_user_alias_[c] = stats::AliasTable(city_user_weights_[c]);
      }
    }
    target_city_alias_.assign(num_cities, stats::AliasTable());
  }

  CityId SampleFarawayCity(const TrueProfile& profile,
                           const stats::AliasTable& population_alias) {
    const geo::CityDistanceMatrix& dist = *world_.distances;
    for (int attempt = 0; attempt < 50; ++attempt) {
      CityId candidate = population_alias.Sample(&rng_);
      bool far_enough = true;
      for (CityId existing : profile.locations) {
        if (dist.raw_miles(existing, candidate) <
            config_.min_extra_distance_miles) {
          far_enough = false;
          break;
        }
      }
      if (far_enough) return candidate;
    }
    return geo::kInvalidCity;
  }

  CityId SampleNearbyCity(CityId home) {
    const geo::Gazetteer& gaz = *world_.gazetteer;
    const geo::CityDistanceMatrix& dist = *world_.distances;
    std::vector<CityId> ring;
    std::vector<double> weights;
    for (CityId c = 0; c < gaz.size(); ++c) {
      double d = dist.raw_miles(home, c);
      if (c != home && d <= config_.nearby_radius_miles) {
        ring.push_back(c);
        weights.push_back(static_cast<double>(gaz.city(c).population));
      }
    }
    if (ring.empty()) return geo::kInvalidCity;
    int idx = rng_.Categorical(weights);
    return idx < 0 ? geo::kInvalidCity : ring[idx];
  }

  void PickCelebrities() {
    world_.truth.is_celebrity.assign(config_.num_users, false);
    int want = std::min(config_.num_celebrities, config_.num_users / 2);
    std::vector<UserId> ids(config_.num_users);
    for (int u = 0; u < config_.num_users; ++u) ids[u] = u;
    rng_.Shuffle(&ids);
    celebrities_.assign(ids.begin(), ids.begin() + want);
    std::vector<double> zipf(want);
    for (int r = 0; r < want; ++r) {
      world_.truth.is_celebrity[celebrities_[r]] = true;
      zipf[r] = 1.0 / std::pow(static_cast<double>(r + 1),
                               config_.celebrity_zipf_exponent);
    }
    if (want > 0) celebrity_alias_ = stats::AliasTable(zipf);
  }

  graph::UserRecord MakeUserRecord(UserId u) {
    const geo::Gazetteer& gaz = *world_.gazetteer;
    graph::UserRecord record;
    record.handle = StringPrintf("user%06d", u);
    if (rng_.Bernoulli(config_.unparseable_profile_fraction)) {
      int pick = rng_.UniformInt(
          0, static_cast<int>(std::size(kUnparseableProfiles)) - 1);
      record.profile_location = kUnparseableProfiles[pick];
    } else {
      CityId rendered = world_.truth.profiles[u].home();
      if (rng_.Bernoulli(config_.wrong_label_fraction)) {
        rendered = static_cast<CityId>(
            rng_.UniformU32(static_cast<uint32_t>(gaz.size())));
      }
      const geo::City& city = gaz.city(rendered);
      // Render with the formatting quirks real profiles show; all of
      // these must survive the parser.
      switch (rng_.UniformInt(0, 3)) {
        case 0:
          record.profile_location = city.name + ", " + city.state;
          break;
        case 1:
          record.profile_location = ToLower(city.name) + ", " +
                                    ToLower(city.state);
          break;
        case 2:
          record.profile_location = city.name + " ,  " + city.state;
          break;
        default:
          record.profile_location = ToLower(city.name) + ", " + city.state;
          break;
      }
    }
    std::optional<CityId> parsed =
        text::ParseRegisteredLocation(record.profile_location, gaz);
    record.registered_city = parsed.value_or(geo::kInvalidCity);
    return record;
  }

  void GenerateProfileStrings() {
    for (int u = 0; u < config_.num_users; ++u) {
      world_.graph->AddUser(MakeUserRecord(u));
    }
  }

  /// Lazily builds the alias table over target cities for source city x:
  /// weight(c) = user-mass(c) · d(x, c)^α.
  const stats::AliasTable& TargetCityAlias(CityId x) {
    stats::AliasTable& table = target_city_alias_[x];
    if (table.ok()) return table;
    const geo::CityDistanceMatrix& dist = *world_.distances;
    std::vector<double> weights(city_mass_.size(), 0.0);
    for (size_t c = 0; c < city_mass_.size(); ++c) {
      if (city_mass_[c] <= 0.0) continue;
      weights[c] = city_mass_[c] *
                   std::pow(dist.miles(x, static_cast<CityId>(c)),
                            config_.following_alpha);
      if (static_cast<CityId>(c) == x) weights[c] *= config_.same_city_boost;
    }
    table = stats::AliasTable(weights);
    return table;
  }

  /// Draws user i's following edges and hands each (target, truth) to
  /// `emit`. Dedup is per source user, so the batch and streamed modes
  /// share the exact edge-rejection behavior.
  template <typename Emit>
  void FollowingForUser(UserId i, Emit&& emit) {
    std::unordered_set<UserId> friends;
    int degree = rng_.Poisson(config_.avg_friends);
    for (int slot = 0; slot < degree; ++slot) {
      if (rng_.Bernoulli(config_.following_noise_fraction)) {
        UserId j = SampleNoisyTarget(i, friends);
        if (j == graph::kInvalidUser) continue;
        friends.insert(j);
        emit(j, FollowingTruth{true, geo::kInvalidCity, geo::kInvalidCity});
      } else {
        CityId x = SampleLocation(world_.truth.profiles[i], &rng_);
        const stats::AliasTable& targets = TargetCityAlias(x);
        if (!targets.ok()) continue;
        UserId j = graph::kInvalidUser;
        CityId y = geo::kInvalidCity;
        for (int attempt = 0; attempt < 10; ++attempt) {
          CityId c = targets.Sample(&rng_);
          UserId candidate =
              city_users_[c][city_user_alias_[c].Sample(&rng_)];
          if (candidate != i && friends.count(candidate) == 0) {
            j = candidate;
            y = c;
            break;
          }
        }
        if (j == graph::kInvalidUser) continue;
        friends.insert(j);
        emit(j, FollowingTruth{false, x, y});
      }
    }
  }

  void GenerateFollowing() {
    graph::SocialGraph& graph = *world_.graph;
    for (int i = 0; i < config_.num_users; ++i) {
      FollowingForUser(i, [&](UserId j, const FollowingTruth& truth) {
        MLP_CHECK(graph.AddFollowing(i, j).ok());
        world_.truth.following.push_back(truth);
      });
    }
  }

  UserId SampleNoisyTarget(UserId self,
                           const std::unordered_set<UserId>& existing) {
    for (int attempt = 0; attempt < 10; ++attempt) {
      UserId j;
      if (celebrity_alias_.ok() &&
          rng_.Bernoulli(config_.celebrity_noise_share)) {
        j = celebrities_[celebrity_alias_.Sample(&rng_)];
      } else {
        j = static_cast<UserId>(
            rng_.UniformU32(static_cast<uint32_t>(config_.num_users)));
      }
      if (j != self && existing.count(j) == 0) return j;
    }
    return graph::kInvalidUser;
  }

  void PrepareVenueModel() {
    VenueModelParams params;
    params.local_mass = config_.local_mass;
    params.global_mass = config_.global_mass;
    params.uniform_mass = config_.uniform_mass;
    params.decay_miles = config_.venue_decay_miles;
    params.own_city_boost = config_.own_city_boost;
    venue_model_ = std::make_unique<TrueVenueModel>(
        *world_.gazetteer, *world_.vocab, *world_.distances, params);
    global_venue_alias_ = stats::AliasTable(venue_model_->GlobalPopularity());
    city_venue_alias_.assign(world_.gazetteer->size(), stats::AliasTable());
  }

  /// Draws user u's venue tweets and hands each (venue, truth) to `emit`.
  template <typename Emit>
  void TweetingForUser(UserId u, Emit&& emit) {
    int count = rng_.Poisson(config_.avg_tweeted_venues);
    for (int t = 0; t < count; ++t) {
      if (rng_.Bernoulli(config_.tweeting_noise_fraction)) {
        int v = global_venue_alias_.Sample(&rng_);
        emit(v, TweetingTruth{true, geo::kInvalidCity});
      } else {
        CityId z = SampleLocation(world_.truth.profiles[u], &rng_);
        if (!city_venue_alias_[z].ok()) {
          city_venue_alias_[z] =
              stats::AliasTable(venue_model_->CityDistribution(z));
        }
        int v = city_venue_alias_[z].Sample(&rng_);
        emit(v, TweetingTruth{false, z});
      }
    }
  }

  void GenerateTweeting() {
    PrepareVenueModel();
    graph::SocialGraph& graph = *world_.graph;
    for (int u = 0; u < config_.num_users; ++u) {
      TweetingForUser(u, [&](int v, const TweetingTruth& truth) {
        MLP_CHECK(graph.AddTweeting(u, v).ok());
        world_.truth.tweeting.push_back(truth);
      });
    }
  }

  WorldConfig config_;
  Pcg32 rng_;
  SyntheticWorld world_;

  std::vector<double> city_mass_;
  std::vector<std::vector<UserId>> city_users_;
  std::vector<std::vector<double>> city_user_weights_;
  std::vector<stats::AliasTable> city_user_alias_;
  std::vector<stats::AliasTable> target_city_alias_;
  std::vector<UserId> celebrities_;
  stats::AliasTable celebrity_alias_;

  std::unique_ptr<TrueVenueModel> venue_model_;
  stats::AliasTable global_venue_alias_;
  std::vector<stats::AliasTable> city_venue_alias_;
};

}  // namespace

Result<SyntheticWorld> GenerateWorld(const WorldConfig& config) {
  WorldGenerator generator(config);
  return generator.Generate();
}

Result<StreamWorldStats> StreamWorldToDataset(const WorldConfig& config,
                                              const std::string& directory,
                                              int chunk_users) {
  WorldGenerator generator(config);
  return generator.Stream(directory, chunk_users);
}

}  // namespace synth
}  // namespace mlp
