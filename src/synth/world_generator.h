#ifndef MLP_SYNTH_WORLD_GENERATOR_H_
#define MLP_SYNTH_WORLD_GENERATOR_H_

#include "common/result.h"
#include "synth/world.h"
#include "synth/world_config.h"

namespace mlp {
namespace synth {

/// Generates a synthetic Twitter world by running the paper's generative
/// story forward with the embedded gazetteer:
///
///  1. Each user gets a true multi-location profile (population-weighted
///     home; some users gain faraway or regional secondary locations).
///  2. Following edges: a per-user Poisson out-degree; each edge is either
///     noisy (celebrity/uniform target) or location-based — a location
///     assignment x ~ θ_true(i), then a target city ∝ user-mass(c)·d(x,c)^α,
///     then a user at that city ∝ θ_true(j)(c). The (x, c) pair is recorded
///     as the edge's ground-truth explanation.
///  3. Venue tweets: noisy draws from the popularity model TR_true, or
///     z ~ θ_true(i) followed by v ~ ψ_true(z).
///  4. Registered profile strings are rendered ("Austin, TX", case-mangled)
///     and re-parsed through text::ParseRegisteredLocation, so labeled users
///     are exactly those whose strings survive the paper's parsing rules.
///
/// Deterministic given config.seed.
Result<SyntheticWorld> GenerateWorld(const WorldConfig& config);

}  // namespace synth
}  // namespace mlp

#endif  // MLP_SYNTH_WORLD_GENERATOR_H_
