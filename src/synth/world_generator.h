#ifndef MLP_SYNTH_WORLD_GENERATOR_H_
#define MLP_SYNTH_WORLD_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "synth/world.h"
#include "synth/world_config.h"

namespace mlp {
namespace synth {

/// Generates a synthetic Twitter world by running the paper's generative
/// story forward with the embedded gazetteer:
///
///  1. Each user gets a true multi-location profile (population-weighted
///     home; some users gain faraway or regional secondary locations).
///  2. Following edges: a per-user Poisson out-degree; each edge is either
///     noisy (celebrity/uniform target) or location-based — a location
///     assignment x ~ θ_true(i), then a target city ∝ user-mass(c)·d(x,c)^α,
///     then a user at that city ∝ θ_true(j)(c). The (x, c) pair is recorded
///     as the edge's ground-truth explanation.
///  3. Venue tweets: noisy draws from the popularity model TR_true, or
///     z ~ θ_true(i) followed by v ~ ψ_true(z).
///  4. Registered profile strings are rendered ("Austin, TX", case-mangled)
///     and re-parsed through text::ParseRegisteredLocation, so labeled users
///     are exactly those whose strings survive the paper's parsing rules.
///
/// Deterministic given config.seed.
Result<SyntheticWorld> GenerateWorld(const WorldConfig& config);

/// What the streaming generator wrote (and how it was shaped), reported so
/// callers can log/verify without re-reading the CSVs.
struct StreamWorldStats {
  int64_t num_users = 0;
  int64_t num_following = 0;
  int64_t num_tweeting = 0;
  /// Users whose rendered profile string parsed to a city.
  int64_t num_labeled = 0;
  int64_t chunks = 0;
};

/// Streamed variant of GenerateWorld for worlds too large to materialize
/// (the ROADMAP million-user item): runs the same generative story but
/// emits users/edges straight to the dataset CSVs under `directory` via
/// io::DatasetStreamWriter, never building a SocialGraph or per-edge truth
/// vectors. Memory is O(users · avg locations) for the true profiles (the
/// per-city mass/alias tables need a full first pass) plus O(1) per edge.
///
/// Users are generated in chunks of `chunk_users` (flush + progress
/// logging granularity). Deterministic given config.seed, but the draw
/// order is interleaved per user, so a streamed world is NOT byte-identical
/// to the batch GenerateWorld world at the same seed — it is a sample from
/// the same distribution. Load the result with io::LoadDataset.
Result<StreamWorldStats> StreamWorldToDataset(const WorldConfig& config,
                                              const std::string& directory,
                                              int chunk_users = 65536);

}  // namespace synth
}  // namespace mlp

#endif  // MLP_SYNTH_WORLD_GENERATOR_H_
