#include "text/landmarks.h"

namespace mlp {
namespace text {

namespace {
constexpr LandmarkEntry kLandmarks[] = {
    // New York
    {"times square", "New York", "NY"},
    {"central park", "New York", "NY"},
    {"wall street", "New York", "NY"},
    {"broadway", "New York", "NY"},
    {"brooklyn", "New York", "NY"},
    {"manhattan", "New York", "NY"},
    {"harlem", "New York", "NY"},
    {"bronx", "New York", "NY"},
    {"madison square garden", "New York", "NY"},
    {"empire state", "New York", "NY"},
    {"statue of liberty", "New York", "NY"},
    {"yankees", "New York", "NY"},
    {"knicks", "New York", "NY"},
    // Los Angeles area
    {"hollywood", "Los Angeles", "CA"},
    {"venice beach", "Los Angeles", "CA"},
    {"sunset boulevard", "Los Angeles", "CA"},
    {"staples center", "Los Angeles", "CA"},
    {"griffith park", "Los Angeles", "CA"},
    {"dodger stadium", "Los Angeles", "CA"},
    {"lakers", "Los Angeles", "CA"},
    {"rodeo drive", "Beverly Hills", "CA"},
    {"santa monica pier", "Santa Monica", "CA"},
    // San Francisco bay
    {"golden gate", "San Francisco", "CA"},
    {"alcatraz", "San Francisco", "CA"},
    {"mission district", "San Francisco", "CA"},
    {"lombard street", "San Francisco", "CA"},
    {"fishermans wharf", "San Francisco", "CA"},
    {"silicon valley", "San Jose", "CA"},
    {"stanford university", "Palo Alto", "CA"},
    {"uc berkeley", "Berkeley", "CA"},
    // Chicago
    {"navy pier", "Chicago", "IL"},
    {"magnificent mile", "Chicago", "IL"},
    {"wrigley field", "Chicago", "IL"},
    {"millennium park", "Chicago", "IL"},
    {"michigan avenue", "Chicago", "IL"},
    {"cubs", "Chicago", "IL"},
    // Boston
    {"fenway park", "Boston", "MA"},
    {"faneuil hall", "Boston", "MA"},
    {"back bay", "Boston", "MA"},
    {"patriots", "Boston", "MA"},
    {"harvard square", "Cambridge", "MA"},
    // Washington DC
    {"national mall", "Washington", "DC"},
    {"georgetown", "Washington", "DC"},
    {"dupont circle", "Washington", "DC"},
    {"white house", "Washington", "DC"},
    // Austin (the paper's running example)
    {"sixth street", "Austin", "TX"},
    {"sxsw", "Austin", "TX"},
    {"zilker park", "Austin", "TX"},
    {"barton springs", "Austin", "TX"},
    {"ut austin", "Austin", "TX"},
    {"longhorns", "Austin", "TX"},
    // Texas metros
    {"alamo", "San Antonio", "TX"},
    {"riverwalk", "San Antonio", "TX"},
    {"spurs", "San Antonio", "TX"},
    {"mavericks", "Dallas", "TX"},
    {"rockets", "Houston", "TX"},
    // Seattle
    {"space needle", "Seattle", "WA"},
    {"pike place", "Seattle", "WA"},
    {"puget sound", "Seattle", "WA"},
    {"lake union", "Seattle", "WA"},
    {"seahawks", "Seattle", "WA"},
    {"capitol hill", "Seattle", "WA"},
    // The same name in a second city — deliberate ambiguity.
    {"capitol hill", "Washington", "DC"},
    {"broadway", "Nashville", "TN"},
    // Nashville / Memphis
    {"music row", "Nashville", "TN"},
    {"grand ole opry", "Nashville", "TN"},
    {"beale street", "Memphis", "TN"},
    {"graceland", "Memphis", "TN"},
    // New Orleans
    {"french quarter", "New Orleans", "LA"},
    {"bourbon street", "New Orleans", "LA"},
    // Miami
    {"south beach", "Miami", "FL"},
    {"little havana", "Miami", "FL"},
    {"calle ocho", "Miami", "FL"},
    // Orlando / Anaheim
    {"disney world", "Orlando", "FL"},
    {"disneyland", "Anaheim", "CA"},
    // Las Vegas
    {"vegas", "Las Vegas", "NV"},
    {"vegas strip", "Las Vegas", "NV"},
    // Honolulu
    {"waikiki", "Honolulu", "HI"},
    {"pearl harbor", "Honolulu", "HI"},
    // Other metros
    {"mile high", "Denver", "CO"},
    {"broncos", "Denver", "CO"},
    {"gateway arch", "St. Louis", "MO"},
    {"inner harbor", "Baltimore", "MD"},
    {"mall of america", "Bloomington", "MN"},
    {"buckhead", "Atlanta", "GA"},
    {"braves", "Atlanta", "GA"},
    {"packers", "Green Bay", "WI"},
    {"gaslamp quarter", "San Diego", "CA"},
    {"balboa park", "San Diego", "CA"},
    {"liberty bell", "Philadelphia", "PA"},
    {"bourbon", "New Orleans", "LA"},
};
constexpr int kNumLandmarks = sizeof(kLandmarks) / sizeof(kLandmarks[0]);
}  // namespace

const LandmarkEntry* EmbeddedLandmarks(int* count) {
  *count = kNumLandmarks;
  return kLandmarks;
}

}  // namespace text
}  // namespace mlp
