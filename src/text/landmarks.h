#ifndef MLP_TEXT_LANDMARKS_H_
#define MLP_TEXT_LANDMARKS_H_

namespace mlp {
namespace text {

/// A non-city venue name (place or local entity — "Time Square", "Stanford
/// University" in the paper's terminology) and the city it refers to. Some
/// names appear twice with different cities ("broadway" → New York and
/// Nashville): ambiguity is intentional and flows into venue referent sets.
struct LandmarkEntry {
  const char* name;        // lower-case, space-separated tokens (max 3)
  const char* city_name;   // gazetteer city name
  const char* city_state;  // USPS abbreviation
};

/// The embedded landmark table.
const LandmarkEntry* EmbeddedLandmarks(int* count);

}  // namespace text
}  // namespace mlp

#endif  // MLP_TEXT_LANDMARKS_H_
