#include "text/profile_parser.h"

#include "common/string_util.h"
#include "geo/us_states.h"

namespace mlp {
namespace text {

std::optional<geo::CityId> ParseRegisteredLocation(
    std::string_view raw, const geo::Gazetteer& gazetteer) {
  std::string trimmed = Trim(raw);
  if (trimmed.empty()) return std::nullopt;

  // Must be exactly "city, state"; more commas means free-form text
  // ("Augusta, GA/New London, CT" is handled by the multi-location labeling
  // pipeline, not here — the paper treats such users as unlabeled for the
  // home-location task too).
  std::vector<std::string> parts = Split(trimmed, ',');
  if (parts.size() != 2) return std::nullopt;

  std::string city = Trim(parts[0]);
  std::string state = Trim(parts[1]);
  if (city.empty() || state.empty()) return std::nullopt;

  // "CA" alone or "somewhere, earth" → reject via state normalization.
  if (!geo::NormalizeState(state).has_value()) return std::nullopt;

  geo::CityId id = gazetteer.Find(city, state);
  if (id == geo::kInvalidCity) return std::nullopt;
  return id;
}

}  // namespace text
}  // namespace mlp
