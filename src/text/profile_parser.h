#ifndef MLP_TEXT_PROFILE_PARSER_H_
#define MLP_TEXT_PROFILE_PARSER_H_

#include <optional>
#include <string_view>

#include "geo/gazetteer.h"

namespace mlp {
namespace text {

/// Parses a raw Twitter registered-location string using the rules of
/// Cheng et al. [8] that the paper adopts (Sec. 5 Data Collection):
/// accept only city-level labels of the form "cityName, stateName" or
/// "cityName, stateAbbreviation" where the city is in the gazetteer.
/// Nonsensical ("my home"), general ("CA"), blank, or unknown-city strings
/// yield nullopt — those users are unlabeled.
std::optional<geo::CityId> ParseRegisteredLocation(
    std::string_view raw, const geo::Gazetteer& gazetteer);

}  // namespace text
}  // namespace mlp

#endif  // MLP_TEXT_PROFILE_PARSER_H_
