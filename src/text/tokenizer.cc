#include "text/tokenizer.h"

#include <cctype>

namespace mlp {
namespace text {

namespace {
bool IsTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

bool LooksLikeUrlStart(std::string_view text, size_t pos) {
  return text.substr(pos, 7) == "http://" || text.substr(pos, 8) == "https://";
}
}  // namespace

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  size_t i = 0;
  while (i < text.size()) {
    if (LooksLikeUrlStart(text, i)) {
      // Skip to the next whitespace; URLs carry no venue signal.
      while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) {
        ++i;
      }
      continue;
    }
    char c = text[i];
    if (IsTokenChar(c)) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if ((c == '\'' || c == '.') && !current.empty() && i + 1 < text.size() &&
               IsTokenChar(text[i + 1])) {
      // In-token apostrophe/period: drop it, keep the token running
      // ("don't" → "dont", "st. " splits but "st.l" → "stl").
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
    ++i;
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::string JoinTokens(const std::vector<std::string>& tokens, size_t pos,
                       size_t count) {
  std::string out;
  for (size_t i = 0; i < count; ++i) {
    if (i > 0) out.push_back(' ');
    out += tokens[pos + i];
  }
  return out;
}

}  // namespace text
}  // namespace mlp
