#ifndef MLP_TEXT_TOKENIZER_H_
#define MLP_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace mlp {
namespace text {

/// Lower-cases and splits tweet text into word tokens. Letters and digits
/// are token characters; apostrophes and periods inside a token are dropped
/// ("st. louis" → ["st", "louis"]); everything else separates tokens.
/// @-mentions and #hashtags keep their word part; URLs are skipped.
std::vector<std::string> Tokenize(std::string_view text);

/// Joins `count` tokens starting at `pos` with single spaces
/// ("los" + "angeles" → "los angeles"). Caller guarantees the range.
std::string JoinTokens(const std::vector<std::string>& tokens, size_t pos,
                       size_t count);

}  // namespace text
}  // namespace mlp

#endif  // MLP_TEXT_TOKENIZER_H_
