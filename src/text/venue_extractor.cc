#include "text/venue_extractor.h"

#include <algorithm>

#include "common/logging.h"
#include "text/tokenizer.h"

namespace mlp {
namespace text {

VenueExtractor::VenueExtractor(const VenueVocabulary* vocab) : vocab_(vocab) {
  MLP_CHECK(vocab_ != nullptr);
}

std::vector<VenueMention> VenueExtractor::Extract(
    std::string_view tweet_text) const {
  std::vector<VenueMention> mentions;
  std::vector<std::string> tokens = Tokenize(tweet_text);
  size_t max_window = static_cast<size_t>(vocab_->max_name_tokens());
  size_t pos = 0;
  while (pos < tokens.size()) {
    size_t window = std::min(max_window, tokens.size() - pos);
    bool matched = false;
    for (size_t len = window; len >= 1; --len) {
      std::string candidate = JoinTokens(tokens, pos, len);
      std::optional<VenueId> id = vocab_->Find(candidate);
      if (id.has_value()) {
        mentions.push_back(VenueMention{*id, pos, len});
        pos += len;
        matched = true;
        break;
      }
    }
    if (!matched) ++pos;
  }
  return mentions;
}

std::vector<VenueId> VenueExtractor::ExtractIds(
    std::string_view tweet_text) const {
  std::vector<VenueId> ids;
  for (const VenueMention& m : Extract(tweet_text)) ids.push_back(m.venue);
  return ids;
}

}  // namespace text
}  // namespace mlp
