#ifndef MLP_TEXT_VENUE_EXTRACTOR_H_
#define MLP_TEXT_VENUE_EXTRACTOR_H_

#include <string_view>
#include <vector>

#include "text/venue_vocab.h"

namespace mlp {
namespace text {

/// One extracted venue mention.
struct VenueMention {
  VenueId venue = -1;
  size_t token_begin = 0;  // index of the first matched token
  size_t token_count = 0;
};

/// Extracts venue mentions from tweet text by greedy longest-match against
/// the vocabulary (the paper extracts venues "based on the same gazetteer").
/// "see you in los angeles" matches the 2-token venue "los angeles", not the
/// city "angeles". Overlapping matches are resolved left-to-right.
class VenueExtractor {
 public:
  /// `vocab` must outlive the extractor.
  explicit VenueExtractor(const VenueVocabulary* vocab);

  std::vector<VenueMention> Extract(std::string_view tweet_text) const;

  /// Convenience: just the venue ids, one per mention (duplicates kept —
  /// each mention is one tweeting relationship).
  std::vector<VenueId> ExtractIds(std::string_view tweet_text) const;

 private:
  const VenueVocabulary* vocab_;
};

}  // namespace text
}  // namespace mlp

#endif  // MLP_TEXT_VENUE_EXTRACTOR_H_
