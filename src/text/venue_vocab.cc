#include "text/venue_vocab.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "text/landmarks.h"
#include "text/tokenizer.h"

namespace mlp {
namespace text {

namespace {
int CountTokens(std::string_view name) {
  int tokens = 1;
  for (char c : name) {
    if (c == ' ') ++tokens;
  }
  return tokens;
}
}  // namespace

VenueVocabulary VenueVocabulary::Build(const geo::Gazetteer& gazetteer) {
  VenueVocabulary vocab;
  vocab.city_name_venue_.assign(gazetteer.size(), -1);

  auto intern = [&vocab](const std::string& name) -> VenueId {
    auto it = vocab.by_name_.find(name);
    if (it != vocab.by_name_.end()) return it->second;
    Venue v;
    v.name = name;
    VenueId id = static_cast<VenueId>(vocab.venues_.size());
    vocab.venues_.push_back(std::move(v));
    vocab.by_name_[name] = id;
    vocab.max_name_tokens_ =
        std::max(vocab.max_name_tokens_, CountTokens(name));
    return id;
  };
  auto add_referent = [&vocab](VenueId id, geo::CityId city) {
    auto& refs = vocab.venues_[id].referents;
    if (std::find(refs.begin(), refs.end(), city) == refs.end()) {
      refs.push_back(city);
    }
  };

  // City names first: "Princeton" becomes one venue whose referents are
  // Princeton NJ and Princeton WV.
  for (geo::CityId c = 0; c < gazetteer.size(); ++c) {
    // Tokenize to normalize punctuation ("St. Louis" → "st louis") so tweet
    // extraction and vocabulary agree on the key.
    std::vector<std::string> tokens = Tokenize(gazetteer.city(c).name);
    std::string name = JoinTokens(tokens, 0, tokens.size());
    VenueId id = intern(name);
    vocab.venues_[id].is_city_name = true;
    add_referent(id, c);
    vocab.city_name_venue_[c] = id;
  }

  int landmark_count = 0;
  const LandmarkEntry* landmarks = EmbeddedLandmarks(&landmark_count);
  for (int i = 0; i < landmark_count; ++i) {
    geo::CityId city =
        gazetteer.Find(landmarks[i].city_name, landmarks[i].city_state);
    if (city == geo::kInvalidCity) continue;  // gazetteer subset in use
    VenueId id = intern(landmarks[i].name);
    add_referent(id, city);
  }
  return vocab;
}

std::optional<VenueId> VenueVocabulary::Find(std::string_view name) const {
  auto it = by_name_.find(ToLower(Trim(name)));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::vector<geo::CityId>> VenueVocabulary::ReferentTable() const {
  std::vector<std::vector<geo::CityId>> table(venues_.size());
  for (size_t v = 0; v < venues_.size(); ++v) {
    table[v] = venues_[v].referents;
  }
  return table;
}

}  // namespace text
}  // namespace mlp
