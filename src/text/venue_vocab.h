#ifndef MLP_TEXT_VENUE_VOCAB_H_
#define MLP_TEXT_VENUE_VOCAB_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geo/gazetteer.h"

namespace mlp {
namespace text {

using VenueId = int32_t;

/// One venue name — a geo signal that can be tweeted. A venue may refer to
/// several locations ("there are 19 towns named Princeton"): `referents`
/// lists every gazetteer city the name may denote.
struct Venue {
  std::string name;  // lower-case, space-separated tokens
  std::vector<geo::CityId> referents;
  bool is_city_name = false;  // true when the name is a gazetteer city name
};

/// The venue vocabulary V (paper Tab. 1): all gazetteer city names plus the
/// embedded landmark table, with referent sets merged by name.
class VenueVocabulary {
 public:
  /// Builds city-name venues from `gazetteer` and merges in the landmark
  /// table (entries whose city is missing from the gazetteer are skipped).
  /// `gazetteer` must outlive the vocabulary.
  static VenueVocabulary Build(const geo::Gazetteer& gazetteer);

  int size() const { return static_cast<int>(venues_.size()); }
  const Venue& venue(VenueId id) const { return venues_[id]; }

  std::optional<VenueId> Find(std::string_view name) const;

  /// Longest venue name in tokens (bounds the extractor's window).
  int max_name_tokens() const { return max_name_tokens_; }

  /// Referent city sets, indexed by VenueId (for candidacy vectors).
  std::vector<std::vector<geo::CityId>> ReferentTable() const;

  /// The canonical venue id of a city's own name.
  VenueId CityNameVenue(geo::CityId city) const {
    return city_name_venue_[city];
  }

 private:
  std::vector<Venue> venues_;
  std::unordered_map<std::string, VenueId> by_name_;
  std::vector<VenueId> city_name_venue_;
  int max_name_tokens_ = 1;
};

}  // namespace text
}  // namespace mlp

#endif  // MLP_TEXT_VENUE_VOCAB_H_
