// Tests for src/baselines: BaseU (Backstrom et al.), BaseC (Cheng et al.),
// and the home-based relationship explainer.

#include <algorithm>

#include <gtest/gtest.h>

#include "baselines/base_c.h"
#include "baselines/base_u.h"
#include "baselines/home_explainer.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "synth/world_generator.h"

namespace mlp {
namespace baselines {
namespace {

class BaselineWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::WorldConfig config;
    config.num_users = 1500;
    config.seed = 404;
    world_ = new synth::SyntheticWorld(
        std::move(synth::GenerateWorld(config).ValueOrDie()));
    referents_ = new std::vector<std::vector<geo::CityId>>(
        world_->vocab->ReferentTable());
    registered_ = new std::vector<geo::CityId>(
        eval::RegisteredHomes(*world_->graph));
    folds_ = new eval::FoldAssignment(eval::MakeKFolds(*registered_, 5, 3));
  }
  static void TearDownTestSuite() {
    delete world_;
    delete referents_;
    delete registered_;
    delete folds_;
  }

  core::ModelInput MakeInput() const {
    core::ModelInput input;
    input.gazetteer = world_->gazetteer.get();
    input.graph = world_->graph.get();
    input.distances = world_->distances.get();
    input.venue_referents = referents_;
    input.observed_home = folds_->MaskedHomes(*registered_, 0);
    return input;
  }

  double TestAccuracy(const std::vector<geo::CityId>& predicted,
                      double miles = 100.0) const {
    return eval::AccuracyWithin(predicted, *registered_,
                                folds_->TestUsers(0), *world_->distances,
                                miles);
  }

  static synth::SyntheticWorld* world_;
  static std::vector<std::vector<geo::CityId>>* referents_;
  static std::vector<geo::CityId>* registered_;
  static eval::FoldAssignment* folds_;
};

synth::SyntheticWorld* BaselineWorldTest::world_ = nullptr;
std::vector<std::vector<geo::CityId>>* BaselineWorldTest::referents_ = nullptr;
std::vector<geo::CityId>* BaselineWorldTest::registered_ = nullptr;
eval::FoldAssignment* BaselineWorldTest::folds_ = nullptr;

// ------------------------------------------------------------------ BaseU

TEST_F(BaselineWorldTest, BaseUValidatesInput) {
  BaseU base;
  core::ModelInput empty;
  EXPECT_FALSE(base.Fit(empty).ok());
}

TEST_F(BaselineWorldTest, BaseUBeatsChanceByFar) {
  BaseU base;
  Result<BaselineResult> result = base.Fit(MakeInput());
  ASSERT_TRUE(result.ok());
  // Chance on ~330 cities is <1%; friend MLE should land a solid fraction.
  EXPECT_GT(TestAccuracy(result->home), 0.35);
}

TEST_F(BaselineWorldTest, BaseUOutputsWellFormedProfiles) {
  BaseU base;
  Result<BaselineResult> result = base.Fit(MakeInput());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(static_cast<int>(result->profiles.size()),
            world_->graph->num_users());
  for (graph::UserId u = 0; u < world_->graph->num_users(); ++u) {
    if (result->profiles[u].empty()) continue;  // isolated user fallback
    double total = 0.0;
    for (const auto& [city, prob] : result->profiles[u].entries()) {
      total += prob;
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
    EXPECT_EQ(result->home[u], result->profiles[u].Home());
  }
}

TEST_F(BaselineWorldTest, BaseUIsolatedUserGetsPopulationFallback) {
  // Build a tiny graph: one isolated user, two connected labeled users.
  graph::SocialGraph g(0);
  for (int i = 0; i < 3; ++i) g.AddUser({});
  ASSERT_TRUE(g.AddFollowing(1, 2).ok());
  g.Finalize();
  geo::CityId austin = world_->gazetteer->Find("Austin", "TX");
  core::ModelInput input;
  input.gazetteer = world_->gazetteer.get();
  input.graph = &g;
  input.distances = world_->distances.get();
  input.observed_home = {geo::kInvalidCity, austin, austin};
  BaseU base;
  Result<BaselineResult> result = base.Fit(input);
  ASSERT_TRUE(result.ok());
  // Isolated user 0: most populous city (New York).
  EXPECT_EQ(result->home[0], world_->gazetteer->Find("New York", "NY"));
  // Connected users resolve to their neighbor's city.
  EXPECT_EQ(result->home[1], austin);
}

TEST_F(BaselineWorldTest, BaseUSingleLocationAssumptionHurtsMultiUsers) {
  // The paper's core criticism: for users with two far-apart locations,
  // BaseU's top-2 usually sits inside ONE region. Verify DR@2 under MLP's
  // protocol is materially below 1 for the multi-location subset.
  BaseU base;
  Result<BaselineResult> result = base.Fit(MakeInput());
  ASSERT_TRUE(result.ok());

  std::vector<std::vector<geo::CityId>> predicted(world_->graph->num_users());
  std::vector<std::vector<geo::CityId>> truth(world_->graph->num_users());
  std::vector<graph::UserId> multi_users;
  for (graph::UserId u : folds_->TestUsers(0)) {
    const synth::TrueProfile& p = world_->truth.profiles[u];
    if (!p.IsMultiLocation()) continue;
    multi_users.push_back(u);
    predicted[u] = result->profiles[u].TopK(2);
    truth[u] = p.locations;
  }
  ASSERT_GT(multi_users.size(), 20u);
  eval::MultiLocationScores scores = eval::DistancePrecisionRecall(
      predicted, truth, multi_users, *world_->distances, 100.0);
  EXPECT_LT(scores.dr, 0.75);
}

// ------------------------------------------------------------------ BaseC

TEST_F(BaselineWorldTest, BaseCValidatesInput) {
  BaseC base;
  core::ModelInput empty;
  EXPECT_FALSE(base.Fit(empty).ok());
}

TEST_F(BaselineWorldTest, BaseCBeatsChanceByFar) {
  BaseC base;
  Result<BaselineResult> result = base.Fit(MakeInput());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(TestAccuracy(result->home), 0.30);
}

TEST_F(BaselineWorldTest, BaseCSelectsSpatiallyFocusedVenues) {
  BaseC base;
  std::vector<graph::VenueId> local = base.SelectLocalVenues(MakeInput());
  ASSERT_FALSE(local.empty());
  // A globally popular venue ("new york") is tweeted everywhere and must
  // not pass the focus filter; a small city's own name should.
  auto ny = world_->vocab->Find("new york");
  ASSERT_TRUE(ny.has_value());
  EXPECT_EQ(std::count(local.begin(), local.end(), *ny), 0);
}

TEST_F(BaselineWorldTest, BaseCWordSetSensitivity) {
  // The paper reports BaseC swings 35.98%–49.67% with the word set. A
  // stricter focus threshold must change accuracy (usually down, as it
  // starves the classifier of features).
  BaseCConfig loose;
  loose.focus_threshold = 0.25;
  BaseCConfig strict;
  strict.focus_threshold = 0.9;
  Result<BaselineResult> a = BaseC(loose).Fit(MakeInput());
  Result<BaselineResult> b = BaseC(strict).Fit(MakeInput());
  ASSERT_TRUE(a.ok() && b.ok());
  double acc_loose = TestAccuracy(a->home);
  double acc_strict = TestAccuracy(b->home);
  EXPECT_NE(acc_loose, acc_strict);
  EXPECT_GT(acc_loose, acc_strict);
}

TEST_F(BaselineWorldTest, BaseCUserWithoutLocalVenuesFallsBackToPrior) {
  graph::SocialGraph g(1);
  g.AddUser({});
  g.Finalize();
  core::ModelInput input;
  input.gazetteer = world_->gazetteer.get();
  input.graph = &g;
  input.distances = world_->distances.get();
  input.observed_home = {geo::kInvalidCity};
  BaseC base;
  Result<BaselineResult> result = base.Fit(input);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->profiles[0].empty());
  EXPECT_NE(result->home[0], geo::kInvalidCity);
}

// --------------------------------------------------------- home explainer

TEST_F(BaselineWorldTest, HomeExplainerAssignsBothHomes) {
  std::vector<core::FollowingExplanation> ex =
      ExplainByHome(*world_->graph, *registered_);
  ASSERT_EQ(static_cast<int>(ex.size()), world_->graph->num_following());
  for (graph::EdgeId s = 0; s < world_->graph->num_following(); ++s) {
    const graph::FollowingEdge& e = world_->graph->following(s);
    EXPECT_EQ(ex[s].x, (*registered_)[e.follower]);
    EXPECT_EQ(ex[s].y, (*registered_)[e.friend_user]);
  }
}

TEST_F(BaselineWorldTest, HomeExplainerCorrectExactlyOnHomeHomeEdges) {
  // With TRUE homes supplied, Base is right iff both true assignments sit
  // within the threshold of the homes — the paper's Sec. 5.3 observation
  // that Base caps out well below MLP.
  std::vector<geo::CityId> true_homes(world_->graph->num_users());
  for (graph::UserId u = 0; u < world_->graph->num_users(); ++u) {
    true_homes[u] = world_->truth.profiles[u].home();
  }
  std::vector<core::FollowingExplanation> ex =
      ExplainByHome(*world_->graph, true_homes);

  std::vector<graph::EdgeId> eval_edges;
  std::vector<std::pair<geo::CityId, geo::CityId>> truth(
      world_->truth.following.size(),
      {geo::kInvalidCity, geo::kInvalidCity});
  for (size_t s = 0; s < world_->truth.following.size(); ++s) {
    const synth::FollowingTruth& t = world_->truth.following[s];
    if (t.noisy) continue;
    truth[s] = {t.x, t.y};
    eval_edges.push_back(static_cast<graph::EdgeId>(s));
  }
  double acc = eval::RelationshipAccuracy(ex, truth, eval_edges,
                                          *world_->distances, 100.0);
  // Many edges are home-home, so Base lands a decent score, but the
  // multi-location edges bound it well below 1.
  EXPECT_GT(acc, 0.4);
  EXPECT_LT(acc, 0.95);
}

}  // namespace
}  // namespace baselines
}  // namespace mlp
