// Memory-budgeted fit (FitOptions::mem_budget_mb): an over-budget fit
// must ratchet the pruning schedule at merged burn-in barriers until the
// accounted footprint (arena + candidate space, exact byte walks) fits,
// and the obs gauges/counters that feed /statsz and `mlpctl fit
// --profile` must record both the enforcement and the final footprint.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/model.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "synth/world_generator.h"

namespace mlp {
namespace core {
namespace {

synth::SyntheticWorld TestWorld(int num_users, uint64_t seed) {
  synth::WorldConfig config;
  config.num_users = num_users;
  config.seed = seed;
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(config);
  EXPECT_TRUE(world.ok());
  return std::move(*world);
}

struct FitHarness {
  explicit FitHarness(const synth::SyntheticWorld& world) {
    input.gazetteer = world.gazetteer.get();
    input.graph = world.graph.get();
    input.distances = world.distances.get();
    referents = world.vocab->ReferentTable();
    input.venue_referents = &referents;
    input.observed_home.reserve(world.graph->num_users());
    for (graph::UserId u = 0; u < world.graph->num_users(); ++u) {
      input.observed_home.push_back(world.graph->user(u).registered_city);
    }
  }
  core::ModelInput input;
  std::vector<std::vector<geo::CityId>> referents;
};

MlpConfig BudgetConfig() {
  MlpConfig config;
  // Enough burn-in barriers for enforcement to fire, tighten the floor,
  // and for the following MaybePrune barriers to act on it.
  config.burn_in_iterations = 8;
  config.sampling_iterations = 3;
  config.seed = 17;
  return config;
}

int64_t GaugeValue(const char* name) {
  return obs::Registry::Global().GetGauge(name)->Value();
}

TEST(MemBudgetTest, OverBudgetFitTightensPruningAndLandsUnderBudget) {
  synth::SyntheticWorld world = TestWorld(300, 21);
  FitHarness harness(world);

  // Reference run, no budget: same world, same config — its accounted
  // footprint tells us what "over budget" means here.
  FitCheckpoint free_checkpoint;
  FitOptions free_opts;
  free_opts.checkpoint_out = &free_checkpoint;
  Result<MlpResult> free_fit =
      MlpModel(BudgetConfig()).Fit(harness.input, free_opts);
  ASSERT_TRUE(free_fit.ok()) << free_fit.status().ToString();
  const int64_t free_bytes = GaugeValue(obs::kMemFitAccountedBytes);
  ASSERT_GT(free_bytes, 0);
  EXPECT_EQ(GaugeValue(obs::kMemFitBudgetBytes), 0);
  EXPECT_TRUE(free_checkpoint.activation.history.empty())
      << "unbudgeted config must not prune on its own";

  // Budget below the burn-in footprint, so enforcement must fire.
  // Enforcement runs at burn-in barriers only (the sampling accumulators
  // need one fixed support), and the burn-in share of the final accounted
  // bytes is roughly half — halving the unconstrained total lands the
  // budget safely under it.
  const int budget_mb =
      std::max<int>(1, static_cast<int>(free_bytes / 2 / (1024 * 1024)));

  obs::Counter* tighten =
      obs::Registry::Global().GetCounter(obs::kFitBudgetTightenTotal);
  const uint64_t tighten_before = tighten->Value();

  FitCheckpoint checkpoint;
  FitOptions opts;
  opts.checkpoint_out = &checkpoint;
  opts.mem_budget_mb = budget_mb;
  Result<MlpResult> fit = MlpModel(BudgetConfig()).Fit(harness.input, opts);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();

  // Enforcement fired and the ratchet pruned. The final accounted
  // footprint must land well under the unconstrained one — the sampling
  // accumulators ride on the pruned support, so the saving compounds.
  // (The budget bounds the burn-in structures it governs; the final
  // total additionally carries the accumulators, which is why the bench
  // acceptance is on peak RSS vs budget, not this gauge.)
  EXPECT_GT(tighten->Value(), tighten_before);
  EXPECT_FALSE(checkpoint.activation.history.empty())
      << "budget enforcement never reached a prune barrier";
  const int64_t budgeted_bytes = GaugeValue(obs::kMemFitAccountedBytes);
  EXPECT_GT(budgeted_bytes, 0);
  EXPECT_LE(budgeted_bytes, free_bytes * 3 / 4);
  EXPECT_EQ(GaugeValue(obs::kMemFitBudgetBytes),
            static_cast<int64_t>(budget_mb) * 1024 * 1024);

  // The fit still answers: every user has a home posterior.
  EXPECT_EQ(fit->home.size(), static_cast<size_t>(world.graph->num_users()));
}

TEST(MemBudgetTest, UnderBudgetFitNeverTightens) {
  synth::SyntheticWorld world = TestWorld(200, 22);
  FitHarness harness(world);
  obs::Counter* tighten =
      obs::Registry::Global().GetCounter(obs::kFitBudgetTightenTotal);
  const uint64_t tighten_before = tighten->Value();

  FitCheckpoint checkpoint;
  FitOptions opts;
  opts.checkpoint_out = &checkpoint;
  opts.mem_budget_mb = 4096;  // far above any small-world footprint
  Result<MlpResult> fit = MlpModel(BudgetConfig()).Fit(harness.input, opts);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();

  EXPECT_EQ(tighten->Value(), tighten_before);
  EXPECT_TRUE(checkpoint.activation.history.empty());
  EXPECT_LE(GaugeValue(obs::kMemFitAccountedBytes),
            int64_t{4096} * 1024 * 1024);
}

}  // namespace
}  // namespace core
}  // namespace mlp
