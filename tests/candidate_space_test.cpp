// Tests for core::CandidateSpace — the single owner of the candidate
// universe — and for adaptive sweep-time pruning end to end: construction
// matches BuildPriors bit for bit, PruneStep compacts without losing ϕ
// mass or prior mass, activation state round-trips, and pruned fits stay
// deterministic and sane.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/candidate_space.h"
#include "core/model.h"
#include "core/pow_table.h"
#include "core/priors.h"
#include "core/random_models.h"
#include "core/sampler.h"
#include "engine/parallel_gibbs.h"
#include "eval/cross_validation.h"
#include "synth/world_generator.h"

namespace mlp {
namespace core {
namespace {

synth::SyntheticWorld TestWorld(int num_users, uint64_t seed) {
  synth::WorldConfig config;
  config.num_users = num_users;
  config.seed = seed;
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(config);
  EXPECT_TRUE(world.ok());
  return std::move(*world);
}

struct FitHarness {
  explicit FitHarness(const synth::SyntheticWorld& world) {
    input.gazetteer = world.gazetteer.get();
    input.graph = world.graph.get();
    input.distances = world.distances.get();
    referents = world.vocab->ReferentTable();
    input.venue_referents = &referents;
    input.observed_home = eval::RegisteredHomes(*world.graph);
  }
  ModelInput input;
  std::vector<std::vector<geo::CityId>> referents;
};

// ------------------------------------------------------------ construction

TEST(CandidateSpaceTest, BuildMatchesBuildPriorsExactly) {
  synth::SyntheticWorld world = TestWorld(300, 42);
  FitHarness harness(world);
  MlpConfig config;
  std::vector<UserPrior> priors = BuildPriors(harness.input, config);
  CandidateSpace space = CandidateSpace::Build(harness.input, config);

  ASSERT_EQ(space.num_users(), static_cast<int>(priors.size()));
  EXPECT_EQ(space.layout_version(), 0u);
  EXPECT_DOUBLE_EQ(space.ActiveFraction(), 1.0);
  for (graph::UserId u = 0; u < space.num_users(); ++u) {
    const CandidateView& view = space.view(u);
    ASSERT_EQ(view.size(), priors[u].size()) << "user " << u;
    EXPECT_EQ(view.gamma_sum, priors[u].gamma_sum);
    for (int l = 0; l < view.size(); ++l) {
      EXPECT_EQ(view.candidates[l], priors[u].candidates[l]);
      EXPECT_EQ(view.gamma[l], priors[u].gamma[l]);  // bit-exact, no tol
    }
    // The active view and the full universe agree before any prune.
    EXPECT_EQ(space.full_count(u), view.size());
    // Single lookup routine: SlotOf == UserPrior::IndexOf for every
    // candidate and for a guaranteed miss.
    for (int l = 0; l < view.size(); ++l) {
      EXPECT_EQ(space.SlotOf(u, view.candidates[l]),
                priors[u].IndexOf(view.candidates[l]));
    }
    EXPECT_EQ(space.SlotOf(u, geo::kInvalidCity), -1);
  }
  // The active layout is exactly the arena layout the sampler builds.
  SuffStatsLayout reference = SuffStatsLayout::Build(
      priors, harness.input.num_locations(), harness.input.num_venues());
  EXPECT_TRUE(space.layout().SameShape(reference));
}

// ---------------------------------------------------------------- pruning

struct PruneHarness {
  PruneHarness(const FitHarness& harness, const MlpConfig& config)
      : space(CandidateSpace::Build(harness.input, config)),
        random_models(RandomModels::Learn(*harness.input.graph)),
        pow_table(harness.input.distances, config.alpha,
                  config.distance_floor_miles),
        sampler(&harness.input, &config, &space, &random_models, &pow_table),
        engine(&sampler, &harness.input, &config, &space) {}

  CandidateSpace space;
  RandomModels random_models;
  PowTable pow_table;
  GibbsSampler sampler;
  engine::ParallelGibbsEngine engine;
};

void ExpectArenaConsistent(const GibbsSampler& sampler) {
  const SuffStatsArena& stats = sampler.stats();
  const SuffStatsLayout& layout = sampler.layout();
  for (graph::UserId u = 0; u < layout.num_users; ++u) {
    const double* phi_u = stats.phi_row(u);
    double row = 0.0;
    for (int l = 0; l < layout.candidate_count(u); ++l) {
      ASSERT_GE(phi_u[l], 0.0);
      row += phi_u[l];
    }
    ASSERT_DOUBLE_EQ(row, stats.phi_total[u]) << "user " << u;
  }
}

TEST(CandidateSpacePruneTest, PruneStepCompactsWithoutLosingMass) {
  synth::SyntheticWorld world = TestWorld(400, 7);
  FitHarness harness(world);
  MlpConfig config;
  config.prune_floor = 0.02;
  config.prune_patience = 1;
  PruneHarness h(harness, config);

  Pcg32 rng(config.seed, 0x5bd1e995u);
  h.engine.Initialize(&rng);
  for (int it = 0; it < 3; ++it) h.engine.RunSweep(&rng);

  const int64_t full = h.space.full_size();
  std::vector<double> phi_total_before = h.sampler.stats().phi_total;
  std::vector<double> gamma_sums_before(h.space.num_users());
  for (graph::UserId u = 0; u < h.space.num_users(); ++u) {
    gamma_sums_before[u] = h.space.view(u).gamma_sum;
  }

  bool pruned = h.engine.MaybePrune(3);
  ASSERT_TRUE(pruned) << "floor 0.02 should deactivate something";
  EXPECT_EQ(h.space.layout_version(), 1u);
  EXPECT_LT(h.space.active_size(), full);
  EXPECT_LT(h.space.ActiveFraction(), 1.0);
  ASSERT_EQ(h.space.history().size(), 1u);
  EXPECT_EQ(h.space.history()[0].sweep, 3);
  EXPECT_GT(h.space.history()[0].deactivated, 0);

  // No ϕ mass lost, per-user totals intact, arena rows still consistent.
  EXPECT_EQ(h.sampler.stats().phi_total, phi_total_before);
  ExpectArenaConsistent(h.sampler);
  for (graph::UserId u = 0; u < h.space.num_users(); ++u) {
    const CandidateView& view = h.space.view(u);
    ASSERT_GE(view.size(), 1) << "user " << u << " lost all candidates";
    // γ renormalized over survivors: row prior mass preserved.
    double row_gamma = 0.0;
    for (int l = 0; l < view.size(); ++l) row_gamma += view.gamma[l];
    EXPECT_NEAR(row_gamma, gamma_sums_before[u], 1e-9 * (1 + row_gamma));
    // Rows stay sorted (binary-search invariant).
    EXPECT_TRUE(std::is_sorted(view.candidates, view.candidates + view.size()));
  }

  // The chain keeps running on the compacted support.
  for (int it = 0; it < 2; ++it) h.engine.RunSweep(&rng);
  h.engine.Synchronize();
  ExpectArenaConsistent(h.sampler);
}

TEST(CandidateSpacePruneTest, SupervisedHomesSurvivePruning) {
  synth::SyntheticWorld world = TestWorld(300, 11);
  FitHarness harness(world);
  MlpConfig config;
  config.prune_floor = 0.2;  // aggressive on purpose
  config.prune_patience = 1;
  PruneHarness h(harness, config);
  Pcg32 rng(config.seed, 0x5bd1e995u);
  h.engine.Initialize(&rng);
  for (int sweep = 1; sweep <= 4; ++sweep) {
    h.engine.RunSweep(&rng);
    h.engine.MaybePrune(sweep);
  }
  for (graph::UserId u = 0; u < h.space.num_users(); ++u) {
    if (harness.input.observed_home[u] == geo::kInvalidCity) continue;
    EXPECT_GE(h.space.SlotOf(u, harness.input.observed_home[u]), 0)
        << "observed home of user " << u << " was pruned";
  }
}

TEST(CandidateSpacePruneTest, NoPruneKeepsVersionZeroAndFullSpace) {
  synth::SyntheticWorld world = TestWorld(200, 3);
  FitHarness harness(world);
  MlpConfig config;  // prune_floor defaults to 0 = off
  PruneHarness h(harness, config);
  Pcg32 rng(config.seed, 0x5bd1e995u);
  h.engine.Initialize(&rng);
  for (int sweep = 1; sweep <= 3; ++sweep) {
    h.engine.RunSweep(&rng);
    EXPECT_FALSE(h.engine.MaybePrune(sweep));
  }
  EXPECT_EQ(h.space.layout_version(), 0u);
  EXPECT_EQ(h.space.active_size(), h.space.full_size());
  CandidateActivation activation = h.space.SaveActivation();
  EXPECT_TRUE(activation.active.empty());  // canonical fully-active form
  EXPECT_TRUE(activation.history.empty());
}

// ------------------------------------------------------------- activation

TEST(CandidateSpacePruneTest, ActivationRoundTripRebuildsIdenticalView) {
  synth::SyntheticWorld world = TestWorld(350, 21);
  FitHarness harness(world);
  MlpConfig config;
  config.prune_floor = 0.03;
  config.prune_patience = 1;
  PruneHarness h(harness, config);
  Pcg32 rng(config.seed, 0x5bd1e995u);
  h.engine.Initialize(&rng);
  for (int sweep = 1; sweep <= 4; ++sweep) {
    h.engine.RunSweep(&rng);
    h.engine.MaybePrune(sweep);
  }
  ASSERT_GT(h.space.layout_version(), 0u);

  CandidateActivation activation = h.space.SaveActivation();
  CandidateSpace restored = CandidateSpace::Build(harness.input, config);
  ASSERT_TRUE(restored.RestoreActivation(activation).ok());

  EXPECT_EQ(restored.layout_version(), h.space.layout_version());
  EXPECT_EQ(restored.active_size(), h.space.active_size());
  ASSERT_TRUE(restored.layout().SameShape(h.space.layout()));
  for (graph::UserId u = 0; u < h.space.num_users(); ++u) {
    const CandidateView& a = h.space.view(u);
    const CandidateView& b = restored.view(u);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.gamma_sum, b.gamma_sum);
    for (int l = 0; l < a.size(); ++l) {
      EXPECT_EQ(a.candidates[l], b.candidates[l]);
      EXPECT_EQ(a.gamma[l], b.gamma[l]);  // renormalization is deterministic
    }
  }
  ASSERT_EQ(restored.history().size(), h.space.history().size());
  for (size_t i = 0; i < restored.history().size(); ++i) {
    EXPECT_EQ(restored.history()[i].sweep, h.space.history()[i].sweep);
    EXPECT_EQ(restored.history()[i].deactivated,
              h.space.history()[i].deactivated);
  }
}

TEST(CandidateSpacePruneTest, EmptyMaskRestoresFullyActive) {
  synth::SyntheticWorld world = TestWorld(150, 5);
  FitHarness harness(world);
  MlpConfig config;
  CandidateSpace space = CandidateSpace::Build(harness.input, config);
  CandidateActivation v1_style;  // what a loaded v1 snapshot carries
  ASSERT_TRUE(space.RestoreActivation(v1_style).ok());
  EXPECT_EQ(space.layout_version(), 0u);
  EXPECT_EQ(space.active_size(), space.full_size());
}

TEST(CandidateSpacePruneTest, MalformedActivationRejected) {
  synth::SyntheticWorld world = TestWorld(150, 9);
  FitHarness harness(world);
  MlpConfig config;
  CandidateSpace space = CandidateSpace::Build(harness.input, config);

  CandidateActivation wrong_size;
  wrong_size.active.assign(space.full_size() + 1, 1);
  EXPECT_FALSE(space.RestoreActivation(wrong_size).ok());

  CandidateActivation all_dead;
  all_dead.active.assign(space.full_size(), 0);
  EXPECT_FALSE(space.RestoreActivation(all_dead).ok());
}

// ------------------------------------------------------------ pruned fits

TEST(PrunedFitTest, PrunedFitsAreDeterministic) {
  synth::SyntheticWorld world = TestWorld(300, 13);
  FitHarness harness(world);
  MlpConfig config;
  config.burn_in_iterations = 4;
  config.sampling_iterations = 3;
  config.prune_floor = 0.02;
  config.prune_patience = 1;
  for (int threads : {1, 3}) {
    config.num_threads = threads;
    Result<MlpResult> a = MlpModel(config).Fit(harness.input);
    Result<MlpResult> b = MlpModel(config).Fit(harness.input);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->home, b->home) << "threads=" << threads;
    ASSERT_EQ(a->profiles.size(), b->profiles.size());
    for (size_t u = 0; u < a->profiles.size(); ++u) {
      EXPECT_EQ(a->profiles[u].entries(), b->profiles[u].entries());
    }
  }
}

TEST(PrunedFitTest, PrunedFitProducesValidHomesAndShrinksSpace) {
  synth::SyntheticWorld world = TestWorld(400, 17);
  FitHarness harness(world);
  MlpConfig config;
  config.burn_in_iterations = 5;
  config.sampling_iterations = 4;
  config.prune_floor = 0.02;
  config.prune_patience = 1;

  FitCheckpoint checkpoint;
  FitOptions opts;
  opts.checkpoint_out = &checkpoint;
  Result<MlpResult> result = MlpModel(config).Fit(harness.input, opts);
  ASSERT_TRUE(result.ok());
  for (geo::CityId home : result->home) {
    EXPECT_NE(home, geo::kInvalidCity);
  }
  // The checkpoint records that pruning actually fired.
  EXPECT_GT(checkpoint.activation.layout_version, 0u);
  EXPECT_FALSE(checkpoint.activation.history.empty());
  EXPECT_FALSE(checkpoint.activation.active.empty());
  int64_t active = 0;
  for (uint8_t a : checkpoint.activation.active) active += a;
  EXPECT_LT(active, static_cast<int64_t>(checkpoint.activation.active.size()));
}

TEST(PrunedFitTest, DisabledPruningMatchesDefaultConfigBitExactly) {
  synth::SyntheticWorld world = TestWorld(250, 29);
  FitHarness harness(world);
  MlpConfig config;
  config.burn_in_iterations = 3;
  config.sampling_iterations = 3;
  Result<MlpResult> base = MlpModel(config).Fit(harness.input);
  MlpConfig no_prune = config;
  no_prune.prune_floor = 0.0;  // the --no_prune path, explicit
  no_prune.prune_patience = 7;  // irrelevant while floor == 0
  Result<MlpResult> off = MlpModel(no_prune).Fit(harness.input);
  ASSERT_TRUE(base.ok() && off.ok());
  EXPECT_EQ(base->home, off->home);
  EXPECT_EQ(base->home_change_per_sweep, off->home_change_per_sweep);
  for (size_t u = 0; u < base->profiles.size(); ++u) {
    EXPECT_EQ(base->profiles[u].entries(), off->profiles[u].entries());
  }
}

}  // namespace
}  // namespace core
}  // namespace mlp
