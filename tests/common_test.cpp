// Unit tests for src/common: Status/Result, string utilities, and the
// Pcg32 generator's distributional properties.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace mlp {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryMethodsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, NotFoundPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsIOError());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
}

Status FailingFunction() { return Status::IOError("disk"); }
Status PropagatingFunction() {
  MLP_RETURN_NOT_OK(FailingFunction());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(PropagatingFunction().IsIOError());
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<int> r = 10;
  EXPECT_EQ(r.ValueOr(-1), 10);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}
Result<int> QuarterEven(int x) {
  MLP_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(QuarterEven(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(QuarterEven(3).ok());
}

// ---------------------------------------------------------------- strings

TEST(StringUtilTest, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StringUtilTest, ToLowerIsAsciiOnly) {
  EXPECT_EQ(ToLower("Los Angeles, CA"), "los angeles, ca");
  EXPECT_EQ(ToLower("ABC123xyz"), "abc123xyz");
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, JoinRoundtrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("houston tx", "hou"));
  EXPECT_FALSE(StartsWith("hou", "houston"));
  EXPECT_TRUE(EndsWith("houston tx", " tx"));
  EXPECT_FALSE(EndsWith("tx", "houston tx"));
}

TEST(StringUtilTest, IsAlpha) {
  EXPECT_TRUE(IsAlpha("Austin"));
  EXPECT_FALSE(IsAlpha("Austin1"));
  EXPECT_FALSE(IsAlpha(""));
  EXPECT_FALSE(IsAlpha("a b"));
}

TEST(StringUtilTest, StringPrintfFormats) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StringPrintf("empty"), "empty");
}

// ---------------------------------------------------------------- random

TEST(Pcg32Test, DeterministicGivenSeed) {
  Pcg32 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(Pcg32Test, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Pcg32Test, NextDoubleInUnitInterval) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Pcg32Test, UniformU32RespectsBound) {
  Pcg32 rng(7);
  std::set<uint32_t> seen;
  for (int i = 0; i < 5000; ++i) {
    uint32_t x = rng.UniformU32(7);
    EXPECT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues reached
}

TEST(Pcg32Test, UniformIntCoversInclusiveRange) {
  Pcg32 rng(11);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    int x = rng.UniformInt(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Pcg32Test, BernoulliEdgeCases) {
  Pcg32 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(Pcg32Test, BernoulliMeanNearP) {
  Pcg32 rng(5);
  int hits = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.015);
}

TEST(Pcg32Test, NormalMomentsMatch) {
  Pcg32 rng(13);
  const int n = 50000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(2.0, 3.0);
    sum += x;
    sumsq += x * x;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.4);
}

TEST(Pcg32Test, ExponentialMeanMatches) {
  Pcg32 rng(17);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Pcg32Test, GammaMeanMatchesShape) {
  Pcg32 rng(19);
  for (double shape : {0.5, 1.0, 3.0, 10.0}) {
    const int n = 30000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.Gamma(shape);
    EXPECT_NEAR(sum / n, shape, shape * 0.06) << "shape=" << shape;
  }
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, SampleMeanNearParameter) {
  double mean = GetParam();
  Pcg32 rng(23);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(mean);
  EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.5, 2.0, 14.8, 29.0, 60.0));

TEST(Pcg32Test, PoissonZeroMean) {
  Pcg32 rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(Pcg32Test, CategoricalFollowsWeights) {
  Pcg32 rng(29);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    int idx = rng.Categorical(w);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, 4);
    counts[idx]++;
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.015);
}

TEST(Pcg32Test, CategoricalDegenerateInputs) {
  Pcg32 rng(31);
  EXPECT_EQ(rng.Categorical({}), -1);
  EXPECT_EQ(rng.Categorical({0.0, 0.0}), -1);
}

TEST(Pcg32Test, DirichletSumsToOne) {
  Pcg32 rng(37);
  auto draw = rng.Dirichlet({0.1, 0.5, 2.0, 10.0});
  double total = 0.0;
  for (double x : draw) {
    EXPECT_GE(x, 0.0);
    total += x;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Pcg32Test, DirichletMeanProportionalToAlpha) {
  Pcg32 rng(41);
  std::vector<double> alpha = {1.0, 4.0};
  double sum0 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum0 += rng.Dirichlet(alpha)[0];
  EXPECT_NEAR(sum0 / n, 0.2, 0.01);
}

TEST(Pcg32Test, ShuffleIsPermutation) {
  Pcg32 rng(43);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Pcg32Test, ShuffleEmptyAndSingleton) {
  Pcg32 rng(47);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {9};
  rng.Shuffle(&one);
  EXPECT_EQ(one[0], 9);
}

TEST(Pcg32Test, ForkDecorrelates) {
  Pcg32 parent(53);
  Pcg32 child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU32() == child.NextU32()) ++same;
  }
  EXPECT_LT(same, 4);
}

}  // namespace
}  // namespace mlp
