// Tests for src/core: priors/candidacy (Sec. 4.3), random models
// (Sec. 4.2), the d^α table, pair-distance machinery (Sec. 4.1), the
// location profile type, and planted-recovery properties of the full
// Gibbs model (Sec. 4.5).

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/location_profile.h"
#include "core/model.h"
#include "core/pair_distance.h"
#include "core/pow_table.h"
#include "core/priors.h"
#include "core/random_models.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "stats/alias_table.h"
#include "synth/world_generator.h"

namespace mlp {
namespace core {
namespace {

// ------------------------------------------------------- location profile

TEST(LocationProfileTest, SortsByProbabilityDescending) {
  LocationProfile p({{3, 0.2}, {7, 0.5}, {1, 0.3}});
  EXPECT_EQ(p.Home(), 7);
  EXPECT_EQ(p.TopK(2), (std::vector<geo::CityId>{7, 1}));
  EXPECT_EQ(p.TopK(10).size(), 3u);
}

TEST(LocationProfileTest, TiesBrokenByCityId) {
  LocationProfile p({{9, 0.5}, {2, 0.5}});
  EXPECT_EQ(p.Home(), 2);
}

TEST(LocationProfileTest, EmptyProfile) {
  LocationProfile p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.Home(), geo::kInvalidCity);
  EXPECT_TRUE(p.TopK(3).empty());
  EXPECT_DOUBLE_EQ(p.ProbabilityOf(1), 0.0);
}

TEST(LocationProfileTest, ThresholdAndLookup) {
  LocationProfile p({{1, 0.6}, {2, 0.3}, {3, 0.1}});
  EXPECT_EQ(p.AboveThreshold(0.25), (std::vector<geo::CityId>{1, 2}));
  EXPECT_EQ(p.AboveThreshold(0.99).size(), 0u);
  EXPECT_DOUBLE_EQ(p.ProbabilityOf(2), 0.3);
}

// ------------------------------------------------------------- pow table

TEST(PowTableTest, MatchesStdPow) {
  geo::Gazetteer gaz = geo::Gazetteer::FromEmbedded();
  geo::CityDistanceMatrix dist(gaz, 1.0);
  PowTable table(&dist, -0.55);
  for (geo::CityId a = 0; a < gaz.size(); a += 53) {
    for (geo::CityId b = 0; b < gaz.size(); b += 47) {
      double expected = std::pow(dist.miles(a, b), -0.55);
      EXPECT_NEAR(table.Get(a, b), expected, expected * 1e-5);
    }
  }
}

TEST(PowTableTest, RebuildChangesExponent) {
  geo::Gazetteer gaz = geo::Gazetteer::FromEmbedded();
  geo::CityDistanceMatrix dist(gaz, 1.0);
  PowTable table(&dist, -0.55);
  geo::CityId la = gaz.Find("Los Angeles", "CA");
  geo::CityId ny = gaz.Find("New York", "NY");
  double before = table.Get(la, ny);
  table.Rebuild(-1.0);
  EXPECT_DOUBLE_EQ(table.alpha(), -1.0);
  EXPECT_LT(table.Get(la, ny), before);  // steeper decay at long range
  EXPECT_NEAR(table.Get(la, la), 1.0, 1e-6);  // 1^α = 1 at the floor
}

// ----------------------------------------------------------- random models

TEST(RandomModelsTest, FollowingProbIsSOverNSquared) {
  graph::SocialGraph g(2);
  for (int i = 0; i < 4; ++i) g.AddUser({});
  ASSERT_TRUE(g.AddFollowing(0, 1).ok());
  ASSERT_TRUE(g.AddFollowing(2, 3).ok());
  ASSERT_TRUE(g.AddTweeting(0, 1).ok());
  ASSERT_TRUE(g.AddTweeting(1, 1).ok());
  ASSERT_TRUE(g.AddTweeting(2, 0).ok());
  g.Finalize();
  RandomModels m = RandomModels::Learn(g);
  EXPECT_DOUBLE_EQ(m.following_prob, 2.0 / 16.0);
  ASSERT_EQ(m.venue_prob.size(), 2u);
  EXPECT_DOUBLE_EQ(m.venue_prob[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.venue_prob[1], 2.0 / 3.0);
}

TEST(RandomModelsTest, EmptyGraphSafe) {
  graph::SocialGraph g(3);
  g.Finalize();
  RandomModels m = RandomModels::Learn(g);
  EXPECT_DOUBLE_EQ(m.following_prob, 0.0);
  for (double p : m.venue_prob) EXPECT_DOUBLE_EQ(p, 0.0);
}

// ------------------------------------------------------------ pair distance

TEST(PairDistanceTest, HistogramCountsOrderedPairsByCity) {
  geo::Gazetteer gaz = geo::Gazetteer::FromEmbedded();
  geo::CityDistanceMatrix dist(gaz, 1.0);
  geo::CityId austin = gaz.Find("Austin", "TX");
  geo::CityId rr = gaz.Find("Round Rock", "TX");
  // 3 users in Austin, 2 in Round Rock.
  std::vector<geo::CityId> homes = {austin, austin, austin, rr, rr,
                                    geo::kInvalidCity};
  std::vector<double> hist = PairDistanceHistogram(homes, dist, 1.0, 100);
  double total = 0.0;
  for (double h : hist) total += h;
  // Ordered pairs: 3·2 (austin-austin) + 2·1 (rr-rr) + 2·3·2 (cross) = 20.
  EXPECT_DOUBLE_EQ(total, 20.0);
  // Cross pairs land in the bucket of the Austin–Round Rock distance.
  int bucket = static_cast<int>(dist.miles(austin, rr));
  EXPECT_DOUBLE_EQ(hist[bucket], 12.0);
}

TEST(PairDistanceTest, EdgeHistogramSkipsUnlabeledEndpoints) {
  geo::Gazetteer gaz = geo::Gazetteer::FromEmbedded();
  geo::CityDistanceMatrix dist(gaz, 1.0);
  graph::SocialGraph g(0);
  for (int i = 0; i < 3; ++i) g.AddUser({});
  ASSERT_TRUE(g.AddFollowing(0, 1).ok());
  ASSERT_TRUE(g.AddFollowing(1, 2).ok());
  g.Finalize();
  geo::CityId austin = gaz.Find("Austin", "TX");
  std::vector<geo::CityId> homes = {austin, austin, geo::kInvalidCity};
  std::vector<double> hist = EdgeDistanceHistogram(g, homes, dist, 1.0, 10);
  double total = 0.0;
  for (double h : hist) total += h;
  EXPECT_DOUBLE_EQ(total, 1.0);  // only the 0→1 edge is fully labeled
}

TEST(PairDistanceTest, FitRecoversPlantedPowerLaw) {
  // Build a labeled population and wire edges with probability β·d^α; the
  // fit must recover (α, β) within sampling error.
  geo::Gazetteer gaz = geo::Gazetteer::FromEmbedded();
  geo::CityDistanceMatrix dist(gaz, 1.0);
  Pcg32 rng(77);
  stats::AliasTable pop_alias(gaz.PopulationWeights());

  const int n = 900;
  graph::SocialGraph g(0);
  std::vector<geo::CityId> homes(n);
  for (int u = 0; u < n; ++u) {
    homes[u] = pop_alias.Sample(&rng);
    g.AddUser({});
  }
  stats::PowerLaw truth{-0.7, 0.3};
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      if (rng.Bernoulli(truth(dist.miles(homes[i], homes[j])))) {
        ASSERT_TRUE(g.AddFollowing(i, j).ok());
      }
    }
  }
  g.Finalize();
  Result<stats::PowerLaw> fit =
      FitFollowingPowerLaw(g, homes, dist, 1.0, 3000, 200.0);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->alpha, truth.alpha, 0.12);
  EXPECT_NEAR(fit->beta, truth.beta, truth.beta * 0.4);
}

// ----------------------------------------------------------------- priors

class PriorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    distances_ = std::make_unique<geo::CityDistanceMatrix>(gaz_, 1.0);
    austin_ = gaz_.Find("Austin", "TX");
    la_ = gaz_.Find("Los Angeles", "CA");
    ny_ = gaz_.Find("New York", "NY");
  }

  ModelInput MakeInput(graph::SocialGraph* g,
                       std::vector<geo::CityId> observed) {
    ModelInput input;
    input.gazetteer = &gaz_;
    input.graph = g;
    input.distances = distances_.get();
    input.venue_referents = &referents_;
    input.observed_home = std::move(observed);
    return input;
  }

  geo::Gazetteer gaz_ = geo::Gazetteer::FromEmbedded();
  std::unique_ptr<geo::CityDistanceMatrix> distances_;
  std::vector<std::vector<geo::CityId>> referents_;
  geo::CityId austin_, la_, ny_;
};

TEST_F(PriorsTest, CandidatesComeFromNeighborsAndVenues) {
  graph::SocialGraph g(1);
  for (int i = 0; i < 3; ++i) g.AddUser({});
  ASSERT_TRUE(g.AddFollowing(0, 1).ok());  // u0 follows u1 (home: austin)
  ASSERT_TRUE(g.AddFollowing(2, 0).ok());  // u2 (home: la) follows u0
  ASSERT_TRUE(g.AddTweeting(0, 0).ok());   // venue 0 refers to ny
  g.Finalize();
  referents_ = {{ny_}};
  ModelInput input =
      MakeInput(&g, {geo::kInvalidCity, austin_, la_});
  MlpConfig config;
  std::vector<UserPrior> priors = BuildPriors(input, config);
  // u0's candidates: friend's home (austin), follower's home (la), venue
  // referent (ny).
  EXPECT_EQ(priors[0].size(), 3);
  EXPECT_GE(priors[0].IndexOf(austin_), 0);
  EXPECT_GE(priors[0].IndexOf(la_), 0);
  EXPECT_GE(priors[0].IndexOf(ny_), 0);
  EXPECT_EQ(priors[0].IndexOf(gaz_.Find("Chicago", "IL")), -1);
}

TEST_F(PriorsTest, SourceFiltersCandidateEvidence) {
  graph::SocialGraph g(1);
  for (int i = 0; i < 2; ++i) g.AddUser({});
  ASSERT_TRUE(g.AddFollowing(0, 1).ok());
  ASSERT_TRUE(g.AddTweeting(0, 0).ok());
  g.Finalize();
  referents_ = {{ny_}};
  ModelInput input = MakeInput(&g, {geo::kInvalidCity, austin_});

  MlpConfig following_only;
  following_only.source = ObservationSource::kFollowingOnly;
  std::vector<UserPrior> pu = BuildPriors(input, following_only);
  EXPECT_GE(pu[0].IndexOf(austin_), 0);
  EXPECT_EQ(pu[0].IndexOf(ny_), -1);

  MlpConfig tweeting_only;
  tweeting_only.source = ObservationSource::kTweetingOnly;
  std::vector<UserPrior> pc = BuildPriors(input, tweeting_only);
  EXPECT_EQ(pc[0].IndexOf(austin_), -1);
  EXPECT_GE(pc[0].IndexOf(ny_), 0);
}

TEST_F(PriorsTest, SupervisionBoostsObservedHome) {
  graph::SocialGraph g(0);
  g.AddUser({});
  g.AddUser({});
  ASSERT_TRUE(g.AddFollowing(0, 1).ok());
  g.Finalize();
  ModelInput input = MakeInput(&g, {la_, austin_});
  MlpConfig config;
  std::vector<UserPrior> priors = BuildPriors(input, config);
  int own = priors[0].IndexOf(la_);
  int other = priors[0].IndexOf(austin_);
  ASSERT_GE(own, 0);
  ASSERT_GE(other, 0);
  EXPECT_DOUBLE_EQ(priors[0].gamma[own],
                   config.tau + config.supervision_boost);
  EXPECT_DOUBLE_EQ(priors[0].gamma[other], config.tau);
  EXPECT_NEAR(priors[0].gamma_sum,
              2 * config.tau + config.supervision_boost, 1e-12);
}

TEST_F(PriorsTest, SupervisionOffLeavesUniformPrior) {
  graph::SocialGraph g(0);
  g.AddUser({});
  g.AddUser({});
  ASSERT_TRUE(g.AddFollowing(0, 1).ok());
  g.Finalize();
  ModelInput input = MakeInput(&g, {la_, austin_});
  MlpConfig config;
  config.use_supervision = false;
  std::vector<UserPrior> priors = BuildPriors(input, config);
  for (double gamma : priors[0].gamma) {
    EXPECT_DOUBLE_EQ(gamma, config.tau);
  }
}

TEST_F(PriorsTest, FallbackToTopCitiesWhenNoEvidence) {
  graph::SocialGraph g(0);
  g.AddUser({});  // isolated unlabeled user
  g.Finalize();
  ModelInput input = MakeInput(&g, {geo::kInvalidCity});
  MlpConfig config;
  std::vector<UserPrior> priors = BuildPriors(input, config);
  EXPECT_EQ(priors[0].size(), config.fallback_top_cities);
  EXPECT_GE(priors[0].IndexOf(ny_), 0);  // NY is the most populous
}

TEST_F(PriorsTest, CandidacyOffUsesAllLocations) {
  graph::SocialGraph g(0);
  g.AddUser({});
  g.Finalize();
  ModelInput input = MakeInput(&g, {geo::kInvalidCity});
  MlpConfig config;
  config.use_candidacy = false;
  std::vector<UserPrior> priors = BuildPriors(input, config);
  EXPECT_EQ(priors[0].size(), gaz_.size());
}

TEST_F(PriorsTest, IndexOfBinarySearch) {
  UserPrior prior;
  prior.candidates = {2, 5, 9, 40};
  EXPECT_EQ(prior.IndexOf(2), 0);
  EXPECT_EQ(prior.IndexOf(40), 3);
  EXPECT_EQ(prior.IndexOf(7), -1);
  EXPECT_EQ(prior.IndexOf(100), -1);
}

// ----------------------------------------------------- full model (planted)

class MlpModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::WorldConfig config;
    config.num_users = 1500;
    config.seed = 2024;
    world_ = new synth::SyntheticWorld(
        std::move(synth::GenerateWorld(config).ValueOrDie()));
    referents_ = new std::vector<std::vector<geo::CityId>>(
        world_->vocab->ReferentTable());
    registered_ = new std::vector<geo::CityId>(
        eval::RegisteredHomes(*world_->graph));
    folds_ = new eval::FoldAssignment(
        eval::MakeKFolds(*registered_, 5, 11));
  }
  static void TearDownTestSuite() {
    delete world_;
    delete referents_;
    delete registered_;
    delete folds_;
  }

  ModelInput MakeInput() const {
    ModelInput input;
    input.gazetteer = world_->gazetteer.get();
    input.graph = world_->graph.get();
    input.distances = world_->distances.get();
    input.venue_referents = referents_;
    input.observed_home = folds_->MaskedHomes(*registered_, 0);
    return input;
  }

  MlpConfig FastConfig() const {
    MlpConfig config;
    config.burn_in_iterations = 8;
    config.sampling_iterations = 10;
    return config;
  }

  static synth::SyntheticWorld* world_;
  static std::vector<std::vector<geo::CityId>>* referents_;
  static std::vector<geo::CityId>* registered_;
  static eval::FoldAssignment* folds_;
};

synth::SyntheticWorld* MlpModelTest::world_ = nullptr;
std::vector<std::vector<geo::CityId>>* MlpModelTest::referents_ = nullptr;
std::vector<geo::CityId>* MlpModelTest::registered_ = nullptr;
eval::FoldAssignment* MlpModelTest::folds_ = nullptr;

TEST_F(MlpModelTest, ValidatesInput) {
  MlpModel model(FastConfig());
  ModelInput empty;
  EXPECT_FALSE(model.Fit(empty).ok());

  ModelInput bad_homes = MakeInput();
  bad_homes.observed_home.pop_back();
  EXPECT_FALSE(model.Fit(bad_homes).ok());

  ModelInput bad_range = MakeInput();
  bad_range.observed_home[0] = 99999;
  EXPECT_FALSE(model.Fit(bad_range).ok());

  MlpConfig bad_rho = FastConfig();
  bad_rho.rho_f = 1.0;
  EXPECT_FALSE(MlpModel(bad_rho).Fit(MakeInput()).ok());

  MlpConfig bad_iters = FastConfig();
  bad_iters.sampling_iterations = 0;
  EXPECT_FALSE(MlpModel(bad_iters).Fit(MakeInput()).ok());

  MlpConfig needs_referents = FastConfig();
  ModelInput no_refs = MakeInput();
  no_refs.venue_referents = nullptr;
  EXPECT_FALSE(MlpModel(needs_referents).Fit(no_refs).ok());
  // Following-only does not need referents.
  needs_referents.source = ObservationSource::kFollowingOnly;
  EXPECT_TRUE(MlpModel(needs_referents).Fit(no_refs).ok());
}

TEST_F(MlpModelTest, RecoversHiddenHomesWellAboveFallback) {
  MlpModel model(FastConfig());
  Result<MlpResult> result = model.Fit(MakeInput());
  ASSERT_TRUE(result.ok());
  std::vector<graph::UserId> test_users = folds_->TestUsers(0);
  double acc = eval::AccuracyWithin(result->home, *registered_, test_users,
                                    *world_->distances, 100.0);
  EXPECT_GT(acc, 0.6);
}

TEST_F(MlpModelTest, ProfilesAreNormalizedDistributions) {
  MlpModel model(FastConfig());
  Result<MlpResult> result = model.Fit(MakeInput());
  ASSERT_TRUE(result.ok());
  for (const LocationProfile& p : result->profiles) {
    ASSERT_FALSE(p.empty());
    double total = 0.0;
    double last = 1.0;
    for (const auto& [city, prob] : p.entries()) {
      EXPECT_GE(prob, 0.0);
      EXPECT_LE(prob, last + 1e-12);  // sorted descending
      last = prob;
      total += prob;
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST_F(MlpModelTest, LabeledUsersKeepObservedHome) {
  // Supervision must anchor visible users at their registered location.
  MlpModel model(FastConfig());
  ModelInput input = MakeInput();
  Result<MlpResult> result = model.Fit(input);
  ASSERT_TRUE(result.ok());
  int labeled = 0, kept = 0;
  for (graph::UserId u = 0; u < world_->graph->num_users(); ++u) {
    if (input.observed_home[u] == geo::kInvalidCity) continue;
    ++labeled;
    if (result->home[u] == input.observed_home[u]) ++kept;
  }
  ASSERT_GT(labeled, 0);
  EXPECT_GT(static_cast<double>(kept) / labeled, 0.95);
}

TEST_F(MlpModelTest, ConvergenceTraceDecreases) {
  MlpConfig config = FastConfig();
  config.burn_in_iterations = 14;
  MlpModel model(config);
  Result<MlpResult> result = model.Fit(MakeInput());
  ASSERT_TRUE(result.ok());
  const std::vector<double>& trace = result->home_change_per_sweep;
  ASSERT_GE(trace.size(), 10u);
  // Fig. 5: change shrinks by the mid-teens sweeps. Average of the last 3
  // sweeps must be well under the first sweep's change.
  double head = trace[0];
  double tail =
      (trace[trace.size() - 1] + trace[trace.size() - 2] +
       trace[trace.size() - 3]) / 3.0;
  EXPECT_LT(tail, head * 0.5 + 1e-9);
}

TEST_F(MlpModelTest, NoiseProbIdentifiesCelebrityEdges) {
  MlpConfig config = FastConfig();
  // Match ρ_f to the generator's true noise rate so the posterior noise
  // probabilities are calibrated rather than shrunk toward a mismatched
  // prior.
  config.rho_f = world_->config.following_noise_fraction;
  config.rho_t = world_->config.tweeting_noise_fraction;
  MlpModel model(config);
  Result<MlpResult> result = model.Fit(MakeInput());
  ASSERT_TRUE(result.ok());
  double noisy_sum = 0.0, noisy_n = 0.0, clean_sum = 0.0, clean_n = 0.0;
  for (size_t s = 0; s < world_->truth.following.size(); ++s) {
    if (world_->truth.following[s].noisy) {
      noisy_sum += result->following[s].noise_prob;
      noisy_n += 1.0;
    } else {
      clean_sum += result->following[s].noise_prob;
      clean_n += 1.0;
    }
  }
  ASSERT_GT(noisy_n, 0.0);
  ASSERT_GT(clean_n, 0.0);
  // Truly-noisy edges must look materially noisier than location edges.
  EXPECT_GT(noisy_sum / noisy_n, (clean_sum / clean_n) * 1.25);
}

TEST_F(MlpModelTest, ExplanationsOutperformHomeAssignmentOnMultiLocUsers) {
  MlpModel model(FastConfig());
  Result<MlpResult> result = model.Fit(MakeInput());
  ASSERT_TRUE(result.ok());

  // Score only location-based edges whose follower has >= 2 true locations
  // and whose true x is NOT the follower's home — exactly the cases the
  // home-based baseline cannot get right.
  int correct = 0, total = 0;
  for (size_t s = 0; s < world_->truth.following.size(); ++s) {
    const synth::FollowingTruth& t = world_->truth.following[s];
    if (t.noisy) continue;
    graph::UserId follower = world_->graph->following(s).follower;
    const synth::TrueProfile& profile = world_->truth.profiles[follower];
    if (!profile.IsMultiLocation() || t.x == profile.home()) continue;
    ++total;
    if (world_->distances->raw_miles(result->following[s].x, t.x) <= 100.0) {
      ++correct;
    }
  }
  ASSERT_GT(total, 50);
  // The home baseline scores 0 on these by construction; MLP must catch a
  // solid fraction.
  EXPECT_GT(static_cast<double>(correct) / total, 0.2);
}

TEST_F(MlpModelTest, SourceVariantsRun) {
  for (ObservationSource source :
       {ObservationSource::kFollowingOnly, ObservationSource::kTweetingOnly}) {
    MlpConfig config = FastConfig();
    config.source = source;
    MlpModel model(config);
    Result<MlpResult> result = model.Fit(MakeInput());
    ASSERT_TRUE(result.ok());
    std::vector<graph::UserId> test_users = folds_->TestUsers(0);
    double acc = eval::AccuracyWithin(result->home, *registered_, test_users,
                                      *world_->distances, 100.0);
    EXPECT_GT(acc, 0.35) << "source=" << static_cast<int>(source);
  }
}

TEST_F(MlpModelTest, DeterministicGivenSeed) {
  MlpModel model(FastConfig());
  Result<MlpResult> a = model.Fit(MakeInput());
  Result<MlpResult> b = model.Fit(MakeInput());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->home, b->home);
  for (size_t s = 0; s < a->following.size(); ++s) {
    EXPECT_EQ(a->following[s].x, b->following[s].x);
    EXPECT_EQ(a->following[s].y, b->following[s].y);
  }
}

TEST_F(MlpModelTest, GibbsEmRefinesAlphaTowardTruth) {
  MlpConfig config = FastConfig();
  config.gibbs_em_rounds = 1;
  MlpModel model(config);
  Result<MlpResult> result = model.Fit(MakeInput());
  ASSERT_TRUE(result.ok());
  // After EM the exponent must remain a sane negative decay.
  EXPECT_LT(result->alpha, -0.05);
  EXPECT_GT(result->alpha, -2.0);
  EXPECT_GT(result->beta, 0.0);
}

TEST_F(MlpModelTest, FitPowerLawFromDataChangesDefaults) {
  MlpConfig config = FastConfig();
  config.fit_power_law_from_data = true;
  MlpModel model(config);
  Result<MlpResult> result = model.Fit(MakeInput());
  ASSERT_TRUE(result.ok());
  // The synthetic world is denser than Twitter; β must have moved off the
  // paper default.
  EXPECT_NE(result->beta, 0.0045);
}

}  // namespace
}  // namespace core
}  // namespace mlp
