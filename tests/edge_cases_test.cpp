// Degenerate and boundary inputs across the public API: tiny graphs,
// missing observation types, isolated users, fully labeled or fully
// unlabeled populations. Everything must return cleanly (OK or a precise
// error Status) — never crash.

#include <gtest/gtest.h>

#include "baselines/base_c.h"
#include "baselines/base_u.h"
#include "core/model.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "synth/world_generator.h"

namespace mlp {
namespace {

class EdgeCaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    distances_ = std::make_unique<geo::CityDistanceMatrix>(gaz_, 1.0);
    austin_ = gaz_.Find("Austin", "TX");
    la_ = gaz_.Find("Los Angeles", "CA");
  }

  core::ModelInput InputFor(graph::SocialGraph* g,
                            std::vector<geo::CityId> homes) {
    core::ModelInput input;
    input.gazetteer = &gaz_;
    input.graph = g;
    input.distances = distances_.get();
    input.venue_referents = &referents_;
    input.observed_home = std::move(homes);
    return input;
  }

  core::MlpConfig TinyConfig() {
    core::MlpConfig config;
    config.burn_in_iterations = 2;
    config.sampling_iterations = 2;
    return config;
  }

  geo::Gazetteer gaz_ = geo::Gazetteer::FromEmbedded();
  std::unique_ptr<geo::CityDistanceMatrix> distances_;
  std::vector<std::vector<geo::CityId>> referents_;
  geo::CityId austin_, la_;
};

TEST_F(EdgeCaseTest, TwoUsersOneEdge) {
  graph::SocialGraph g(0);
  g.AddUser({});
  g.AddUser({});
  ASSERT_TRUE(g.AddFollowing(0, 1).ok());
  g.Finalize();
  core::ModelInput input = InputFor(&g, {austin_, geo::kInvalidCity});
  core::MlpConfig config = TinyConfig();
  config.source = core::ObservationSource::kFollowingOnly;
  Result<core::MlpResult> result = core::MlpModel(config).Fit(input);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->home[0], austin_);
  // The unlabeled friend's only evidence is the Austin neighbor.
  EXPECT_EQ(result->home[1], austin_);
}

TEST_F(EdgeCaseTest, NoFollowingEdgesTweetingOnlyWorld) {
  graph::SocialGraph g(1);
  referents_ = {{la_}};
  g.AddUser({});
  g.AddUser({});
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(g.AddTweeting(1, 0).ok());
  g.Finalize();
  core::ModelInput input = InputFor(&g, {la_, geo::kInvalidCity});
  Result<core::MlpResult> result =
      core::MlpModel(TinyConfig()).Fit(input);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->home[1], la_);
  EXPECT_TRUE(result->following.empty());
}

TEST_F(EdgeCaseTest, NoTweetsWithBothSources) {
  graph::SocialGraph g(0);
  g.AddUser({});
  g.AddUser({});
  ASSERT_TRUE(g.AddFollowing(0, 1).ok());
  g.Finalize();
  core::ModelInput input = InputFor(&g, {austin_, geo::kInvalidCity});
  Result<core::MlpResult> result = core::MlpModel(TinyConfig()).Fit(input);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tweeting.empty());
}

TEST_F(EdgeCaseTest, IsolatedUserGetsFallbackProfile) {
  graph::SocialGraph g(0);
  g.AddUser({});
  g.Finalize();
  core::ModelInput input = InputFor(&g, {geo::kInvalidCity});
  Result<core::MlpResult> result = core::MlpModel(TinyConfig()).Fit(input);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->home[0], geo::kInvalidCity);
  EXPECT_FALSE(result->profiles[0].empty());
}

TEST_F(EdgeCaseTest, FullyUnlabeledPopulationStillRuns) {
  graph::SocialGraph g(0);
  for (int i = 0; i < 6; ++i) g.AddUser({});
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(g.AddFollowing(i, i + 1).ok());
  g.Finalize();
  core::ModelInput input =
      InputFor(&g, std::vector<geo::CityId>(6, geo::kInvalidCity));
  Result<core::MlpResult> result = core::MlpModel(TinyConfig()).Fit(input);
  ASSERT_TRUE(result.ok());  // power-law fit fails; defaults kick in
  for (geo::CityId home : result->home) {
    EXPECT_NE(home, geo::kInvalidCity);
  }
}

TEST_F(EdgeCaseTest, FullyLabeledPopulation) {
  graph::SocialGraph g(0);
  for (int i = 0; i < 4; ++i) g.AddUser({});
  ASSERT_TRUE(g.AddFollowing(0, 1).ok());
  ASSERT_TRUE(g.AddFollowing(2, 3).ok());
  g.Finalize();
  core::ModelInput input =
      InputFor(&g, {austin_, austin_, la_, la_});
  Result<core::MlpResult> result = core::MlpModel(TinyConfig()).Fit(input);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->home[0], austin_);
  EXPECT_EQ(result->home[3], la_);
}

TEST_F(EdgeCaseTest, BaselinesHandleEmptyEvidence) {
  graph::SocialGraph g(0);
  g.AddUser({});
  g.Finalize();
  core::ModelInput input = InputFor(&g, {geo::kInvalidCity});
  Result<baselines::BaselineResult> u = baselines::BaseU().Fit(input);
  ASSERT_TRUE(u.ok());
  EXPECT_NE(u->home[0], geo::kInvalidCity);
  Result<baselines::BaselineResult> c = baselines::BaseC().Fit(input);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(c->home[0], geo::kInvalidCity);
}

TEST_F(EdgeCaseTest, KFoldsOnTinyLabeledSet) {
  // Fewer labeled users than folds: some folds are empty, none crash.
  std::vector<geo::CityId> registered = {austin_, geo::kInvalidCity, la_};
  eval::FoldAssignment folds = eval::MakeKFolds(registered, 5, 2);
  int total_test = 0;
  for (int f = 0; f < 5; ++f) {
    total_test += static_cast<int>(folds.TestUsers(f).size());
  }
  EXPECT_EQ(total_test, 2);
}

TEST_F(EdgeCaseTest, MetricsOnEmptySets) {
  EXPECT_DOUBLE_EQ(
      eval::AccuracyWithin({}, {}, {}, *distances_, 100.0), 0.0);
  eval::MultiLocationScores scores =
      eval::DistancePrecisionRecall({}, {}, {}, *distances_, 100.0);
  EXPECT_DOUBLE_EQ(scores.dp, 0.0);
  EXPECT_DOUBLE_EQ(scores.dr, 0.0);
  EXPECT_DOUBLE_EQ(
      eval::RelationshipAccuracy({}, {}, {}, *distances_, 100.0), 0.0);
}

TEST_F(EdgeCaseTest, MinimalWorldGenerates) {
  synth::WorldConfig config;
  config.num_users = 2;
  config.seed = 3;
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(config);
  ASSERT_TRUE(world.ok());
  EXPECT_EQ(world->graph->num_users(), 2);
  EXPECT_TRUE(world->graph->finalized());
}

TEST_F(EdgeCaseTest, SingleLocationWorld) {
  synth::WorldConfig config;
  config.num_users = 50;
  config.seed = 4;
  config.multi_location_fraction = 0.0;
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(config);
  ASSERT_TRUE(world.ok());
  for (const synth::TrueProfile& p : world->truth.profiles) {
    EXPECT_EQ(p.locations.size(), 1u);
    EXPECT_DOUBLE_EQ(p.weights[0], 1.0);
  }
}

TEST_F(EdgeCaseTest, MaxLocationsOneForcesSingle) {
  synth::WorldConfig config;
  config.num_users = 50;
  config.seed = 5;
  config.multi_location_fraction = 1.0;
  config.max_locations = 1;
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(config);
  ASSERT_TRUE(world.ok());
  for (const synth::TrueProfile& p : world->truth.profiles) {
    EXPECT_EQ(p.locations.size(), 1u);
  }
}

}  // namespace
}  // namespace mlp
